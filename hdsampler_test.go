package hdsampler

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

func localVehicles(t *testing.T, n, k int, mode hiddendb.CountMode) (*hiddendb.DB, Conn) {
	t.Helper()
	ds := datagen.Vehicles(n, 5)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return db, LocalConn(db)
}

func TestFacadeRandomWalkDraw(t *testing.T) {
	db, conn := localVehicles(t, 3000, 200, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 1, Slider: 0.9, K: db.K(), UseHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	tuples, stats, err := s.Draw(ctx, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 100 {
		t.Fatalf("drew %d", len(tuples))
	}
	if stats.Accepted != 100 || stats.Queries == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if s.C() >= 1 || s.C() <= 0 {
		t.Fatalf("slider-derived C = %g", s.C())
	}
	for _, tu := range tuples {
		if len(tu.Vals) != db.Schema().NumAttrs() {
			t.Fatal("malformed sample")
		}
	}
}

func TestFacadeZeroConfigIsFastest(t *testing.T) {
	_, conn := localVehicles(t, 500, 100, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.C() != 1 {
		t.Fatalf("zero config C = %g, want 1 (accept everything)", s.C())
	}
	tuples, stats, err := s.Draw(ctx, 20)
	if err != nil || len(tuples) != 20 {
		t.Fatalf("draw: %d, %v", len(tuples), err)
	}
	if stats.Rejected != 0 {
		t.Fatalf("rejected = %d, want 0", stats.Rejected)
	}
}

func TestFacadeBruteForce(t *testing.T) {
	// Tiny space so brute force terminates fast.
	ds := datagen.IIDBoolean(6, 40, 0.5, 3)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s, err := New(ctx, LocalConn(db), Config{Method: MethodBruteForce, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tuples, stats, err := s.Draw(ctx, 30)
	if err != nil || len(tuples) != 30 {
		t.Fatalf("draw: %d %v", len(tuples), err)
	}
	if stats.Rejected != 0 {
		t.Fatal("brute force must not reject")
	}
	if s.C() != 1 {
		t.Fatal("brute force should accept everything")
	}
}

func TestFacadeCountWeighted(t *testing.T) {
	db, conn := localVehicles(t, 2000, 500, hiddendb.CountExact)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{
		Method: MethodCountWeighted, Seed: 5, UseParentCount: true,
		UseHistory: true, TrustCounts: true, K: db.K(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tuples, stats, err := s.Draw(ctx, 50)
	if err != nil || len(tuples) != 50 {
		t.Fatalf("draw: %d %v", len(tuples), err)
	}
	saved, issued := s.HistoryStats()
	if issued == 0 {
		t.Fatal("no queries issued?")
	}
	if saved == 0 {
		t.Error("history cache saved nothing on repeated drill-downs")
	}
	if stats.QueriesSaved != saved {
		t.Error("stats disagree with HistoryStats")
	}
}

func TestFacadeOverHTTP(t *testing.T) {
	ds := datagen.Vehicles(1500, 6)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 300, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	defer srv.Close()
	ctx := context.Background()
	s, err := New(ctx, DialWithClient(srv.URL, srv.Client()), Config{Seed: 7, Slider: 1, UseHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	tuples, _, err := s.Draw(ctx, 40)
	if err != nil || len(tuples) != 40 {
		t.Fatalf("draw over HTTP: %d %v", len(tuples), err)
	}
	// Aggregate helpers work end-to-end: average price is plausible.
	avg := AvgEstimate(tuples, hiddendb.EmptyQuery(), datagen.VehAttrPrice)
	if avg.N == 0 || avg.Value < 500 || avg.Value > 120000 {
		t.Fatalf("avg price estimate = %+v", avg)
	}
}

func TestFacadePipelineKillSwitch(t *testing.T) {
	_, conn := localVehicles(t, 1000, 200, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := s.NewPipeline(0)
	ch := p.Start(ctx)
	for i := 0; i < 10; i++ {
		<-ch
	}
	p.Stop()
	for range ch {
	}
	if !p.Progress().Done {
		t.Fatal("pipeline should be done after Stop")
	}
}

func TestFacadeEstimators(t *testing.T) {
	db, conn := localVehicles(t, 20000, 1000, hiddendb.CountExact)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 9, Slider: 1, ShuffleOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	tuples, _, err := s.Draw(ctx, 600)
	if err != nil {
		t.Fatal(err)
	}
	// Marginal histogram over make roughly tracks the truth.
	ms := Marginals(db.Schema(), tuples)
	truth := db.TrueMarginal(datagen.VehAttrMake)
	total := 0
	for _, c := range truth {
		total += c
	}
	props := ms[datagen.VehAttrMake].Proportions()
	for v := range truth {
		want := float64(truth[v]) / float64(total)
		if math.Abs(props[v]-want) > 0.08 {
			t.Errorf("make[%d] proportion %g vs truth %g", v, props[v], want)
		}
	}
	// The paper's headline aggregate: percentage of Japanese cars.
	japaneseProp := 0.0
	for _, idx := range datagen.JapaneseMakeIndexes() {
		pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx})
		japaneseProp += ProportionEstimate(tuples, pred).Value
	}
	trueJapanese := 0.0
	for _, idx := range datagen.JapaneseMakeIndexes() {
		trueJapanese += float64(truth[idx]) / float64(total)
	}
	if math.Abs(japaneseProp-trueJapanese) > 0.08 {
		t.Errorf("japanese share %g vs truth %g", japaneseProp, trueJapanese)
	}
	// COUNT estimate scales by population.
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1})
	ce := CountEstimate(tuples, pred, db.Size())
	trueCount, _, _ := db.TrueAggregate(pred, -1)
	if math.Abs(ce.Value-float64(trueCount))/float64(trueCount) > 0.25 {
		t.Errorf("count estimate %g vs truth %d", ce.Value, trueCount)
	}
	se := SumEstimate(tuples, pred, datagen.VehAttrPrice, db.Size())
	_, trueSum, _ := db.TrueAggregate(pred, datagen.VehAttrPrice)
	if math.Abs(se.Value-trueSum)/trueSum > 0.3 {
		t.Errorf("sum estimate %g vs truth %g", se.Value, trueSum)
	}
}

func TestMethodString(t *testing.T) {
	if MethodRandomWalk.String() != "random-walk" ||
		MethodBruteForce.String() != "brute-force" ||
		MethodCountWeighted.String() != "count-weighted" {
		t.Error("method names wrong")
	}
	if Method(9).String() != "method(9)" {
		t.Error("unknown method rendering wrong")
	}
	_, conn := localVehicles(t, 50, 10, hiddendb.CountNone)
	if _, err := New(context.Background(), conn, Config{Method: Method(9)}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestAdaptiveQuantileFacade(t *testing.T) {
	db, conn := localVehicles(t, 3000, 500, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 21, AdaptiveQuantile: 0.5, AdaptiveWarmup: 50, K: db.K()})
	if err != nil {
		t.Fatal(err)
	}
	if s.C() != 0 {
		t.Fatalf("C before calibration = %g, want 0", s.C())
	}
	tuples, stats, err := s.Draw(ctx, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 60 {
		t.Fatalf("drew %d", len(tuples))
	}
	if s.C() <= 0 || s.C() > 1 {
		t.Fatalf("calibrated C = %g", s.C())
	}
	// Warmup candidates count as rejections.
	if stats.Rejected < 50 {
		t.Fatalf("rejected = %d, want >= warmup", stats.Rejected)
	}
}

func TestExplicitCOverridesSlider(t *testing.T) {
	_, conn := localVehicles(t, 300, 100, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 10, C: 0.001, Slider: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.C()-0.001) > 1e-15 {
		t.Fatalf("C = %g, want 0.001", s.C())
	}
}

// QueriesSaved must be a per-call delta like every other Stats field; a
// second Draw reporting the cache's cumulative savings was the regression.
func TestDrawStatsSavedIsPerCallDelta(t *testing.T) {
	_, conn := localVehicles(t, 2000, 500, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 3, UseHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	_, st1, err := s.Draw(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := s.Draw(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	totalSaved, _ := s.HistoryStats()
	if st1.QueriesSaved+st2.QueriesSaved != totalSaved {
		t.Fatalf("per-call savings %d + %d must sum to the cache total %d",
			st1.QueriesSaved, st2.QueriesSaved, totalSaved)
	}
	if st1.QueriesSaved == 0 || st2.QueriesSaved == 0 {
		t.Fatalf("both draws should save queries (got %d, %d)", st1.QueriesSaved, st2.QueriesSaved)
	}
}

// DrawWeighted shares Draw's windowing contract.
func TestDrawWeightedSavedIsPerCallDelta(t *testing.T) {
	_, conn := localVehicles(t, 2000, 500, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, conn, Config{Seed: 4, UseHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	_, st1, err := s.DrawWeighted(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := s.DrawWeighted(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	totalSaved, _ := s.HistoryStats()
	if st1.QueriesSaved+st2.QueriesSaved != totalSaved {
		t.Fatalf("per-call savings %d + %d must sum to the cache total %d",
			st1.QueriesSaved, st2.QueriesSaved, totalSaved)
	}
	if st2.QueriesSaved == 0 {
		t.Fatal("second weighted draw repeats hot paths and should save queries")
	}
}
