// Package hdsampler reproduces HDSampler (SIGMOD 2009): a practical system
// for drawing random samples from structured hidden web databases through
// their conjunctive top-k form interfaces, and for answering approximate
// aggregate queries from those samples.
//
// # Background
//
// A hidden database sits behind a web form: a client can only issue
// conjunctive equality queries and sees at most the top-k ranked matches,
// with an overflow notification when more qualify. HDSampler draws
// near-uniform random samples through that interface using the
// HIDDEN-DB-SAMPLER random drill-down (Dasgupta, Das, Mannila — SIGMOD
// 2007): start broad, add random predicates while the query overflows, and
// pick a returned row once it does not; an acceptance/rejection step then
// trades residual skew against query cost. Count-leveraging optimizations
// (Dasgupta, Zhang, Das — ICDE 2009) — query-history reuse and
// count-weighted drill-downs — cut the query bill further.
//
// # Layout
//
// This root package is a facade over the implementation packages:
//
//   - internal/hiddendb — the hidden database engine (schema, conjunctive
//     top-k execution, ranking, count modes, budgets)
//   - internal/webform — an HTTP server exposing a database behind an HTML
//     form interface (the Google Base stand-in)
//   - internal/htmlx, internal/formclient — HTML scraping and the Local /
//     HTTP / API connectors
//   - internal/history — query memoization and inference
//   - internal/queryexec — the query-execution layer concurrent sampler
//     paths route through: single-flight coalescing of identical in-flight
//     queries (complementing the history cache's completed-query
//     memoization), micro-batching of concurrent distinct queries into
//     one batch wire request, and an AIMD adaptive concurrency limiter
//     with an aggregate per-host rate budget (Config.Exec tunes it)
//   - internal/core — the samplers, rejection and pipeline
//   - internal/jobsvc — the sampling job-orchestration service behind
//     cmd/hdsamplerd: worker pools, shared per-host history caches,
//     politeness budgets, checkpoints and the REST API
//   - internal/store — durable sample sets with schema and provenance
//   - internal/exact — closed-form walk analysis for experiments
//   - internal/estimate, internal/metrics — output statistics
//   - internal/datagen — seeded synthetic datasets, including the Vehicles
//     inventory used throughout the experiments
//
// # Quickstart
//
//	conn := hdsampler.Dial("http://dealer.example.com")
//	s, err := hdsampler.New(ctx, conn, hdsampler.Config{Slider: 0.6, UseHistory: true})
//	if err != nil { ... }
//	tuples, stats, err := s.Draw(ctx, 200)
//
// # Performance
//
// The walk→history→exec→backend pipeline is allocation-free on its hot
// path: queries carry a canonical signature (cached key + 64-bit hash)
// computed once at construction, the history cache and execution layer
// key their maps on that hash with full-key collision verification, the
// simulated backend intersects posting lists on pooled scratch with
// galloping cursors, and results share immutable tuple storage instead
// of deep-cloning per layer (hiddendb.Result documents the read-only
// convention). See README.md's "Performance" section for the design and
// the measured before/after numbers.
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package hdsampler
