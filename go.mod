module hdsampler

go 1.24
