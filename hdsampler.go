package hdsampler

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/estimate"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
	"hdsampler/internal/queryexec"
	"hdsampler/internal/telemetry"
)

// Re-exported types so callers need only this package for common use.
type (
	// Schema describes a hidden database's searchable attributes.
	Schema = hiddendb.Schema
	// Attribute is one searchable field.
	Attribute = hiddendb.Attribute
	// Tuple is one sampled row.
	Tuple = hiddendb.Tuple
	// Query is a conjunction of equality predicates.
	Query = hiddendb.Query
	// Predicate is one equality constraint.
	Predicate = hiddendb.Predicate
	// Result is a query answer: top-k rows, overflow flag, optional count.
	Result = hiddendb.Result
	// Conn is the restricted interface connector samplers draw through.
	Conn = formclient.Conn
	// Sample is one accepted sample with provenance.
	Sample = core.Sample
	// Pipeline streams samples incrementally with a kill switch.
	Pipeline = core.Pipeline
	// Estimate is a point estimate with a standard error.
	Estimate = estimate.Estimate
	// Marginal is a sampled attribute histogram.
	Marginal = estimate.Marginal
	// ExecStats counts the query-execution layer's coalescing and
	// batching work.
	ExecStats = queryexec.Stats
)

// Method selects the sampling algorithm.
type Method int

const (
	// MethodRandomWalk is HIDDEN-DB-SAMPLER: the random drill-down with
	// early termination and acceptance/rejection (the system's default).
	MethodRandomWalk Method = iota
	// MethodBruteForce probes uniformly random fully-specified queries —
	// provably uniform, prohibitively slow; the validation baseline.
	MethodBruteForce
	// MethodCountWeighted drills down weighting branches by reported
	// counts (requires a count-reporting interface).
	MethodCountWeighted
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodRandomWalk:
		return "random-walk"
	case MethodBruteForce:
		return "brute-force"
	case MethodCountWeighted:
		return "count-weighted"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ExecConfig tunes the query-execution layer (internal/queryexec):
// single-flight coalescing of identical in-flight queries, micro-batching
// of concurrent distinct queries, and AIMD-adaptive concurrency limiting
// shared by every replica on the connector.
type ExecConfig struct {
	// Disable bypasses the execution layer entirely. The jobsvc daemon
	// sets this on its ReplicaSets: its per-host connector stacks already
	// contain a shared executor.
	Disable bool
	// BatchLinger, when positive, holds wire-bound queries up to this
	// long so concurrent distinct queries can share one batch request
	// (POST /api/search/batch, one rate-limit charge for the whole
	// batch). Effective only on batch-capable connectors (DialAPI,
	// LocalConn); HTML scraping falls back to sequential execution.
	BatchLinger time.Duration
	// MaxBatch bounds queries per batch request (default 16).
	MaxBatch int
	// MaxInFlight caps concurrent wire requests across all replicas: the
	// AIMD ceiling, additively raised on clean responses and
	// multiplicatively cut on 429 pushback. 0 disables concurrency
	// limiting.
	MaxInFlight int
	// RatePerSec caps the replicas' aggregate wire request rate — unlike
	// formclient's per-goroutine Politeness delay, which N replicas each
	// apply independently (so a site sees N× the configured rate), this
	// bounds the sum. 0 disables.
	RatePerSec float64
	// Burst is the rate cap's token bucket capacity (default 10).
	Burst int
	// TransientRetries bounds the execution layer's retries of wire
	// executions failing with transient interface faults (5xx blips,
	// timeouts) before the error reaches the sampler. Default 2; negative
	// disables retrying.
	TransientRetries int
}

// limited reports whether any knob is set that requires routing even a
// lone sampler through the execution layer: admission control, or an
// explicit transient-retry budget (retries live in the layer, so a
// sampler configured to survive blips must be wired through it).
func (e ExecConfig) limited() bool {
	return e.MaxInFlight > 0 || e.RatePerSec > 0 || e.TransientRetries > 0
}

// limiter builds the admission controller the knobs describe (nil when
// none is set).
func (e ExecConfig) limiter() *queryexec.Limiter {
	if !e.limited() {
		return nil
	}
	return queryexec.NewLimiter(queryexec.LimiterOptions{
		MaxInFlight: e.MaxInFlight,
		RatePerSec:  e.RatePerSec,
		Burst:       e.Burst,
	})
}

// options converts the knobs to the internal layer's options.
func (e ExecConfig) options() queryexec.Options {
	return queryexec.Options{
		BatchLinger:      e.BatchLinger,
		MaxBatch:         e.MaxBatch,
		Limiter:          e.limiter(),
		TransientRetries: e.TransientRetries,
	}
}

// Config tunes a Sampler.
type Config struct {
	// Method selects the algorithm; default MethodRandomWalk.
	Method Method
	// Seed drives all randomness; runs with equal seeds and connectors
	// are reproducible.
	Seed int64
	// Slider is the demo's efficiency↔skew knob in [0,1]: 0 = lowest skew
	// (most rejections), 1 = fastest (accept everything). The zero-value
	// Config defaults to 1 (fastest); set SliderSet to make an explicit
	// Slider: 0 mean what the documentation says.
	Slider float64
	// SliderSet marks Slider as explicitly configured. Without it a
	// Slider of 0 — the zero value — keeps the "fastest" default; with
	// it, Slider: 0 selects the documented lowest-skew walk.
	SliderSet bool
	// C, when positive, sets the rejection target reach probability
	// directly, overriding Slider.
	C float64
	// K is the interface's top-k limit, used only to map Slider onto C;
	// defaults to 1000 (Google Base's limit) when unknown.
	K int
	// Attrs restricts sampling to an attribute subset (schema indexes).
	Attrs []int
	// ShuffleOrder reshuffles the walk's attribute order per walk.
	ShuffleOrder bool
	// UseHistory interposes the query-history cache (memoization and
	// inference) between the sampler and the connector.
	UseHistory bool
	// TrustCounts enables count-based history inference; enable only when
	// the interface reports exact counts.
	TrustCounts bool
	// UseParentCount enables the count-weighted walker's sibling
	// inference; meaningful only with MethodCountWeighted + exact counts.
	UseParentCount bool
	// AdaptiveQuantile, when in (0,1], replaces the fixed C with an
	// adaptive rejector: a warmup phase observes candidate reaches and
	// freezes C at this quantile, so no knowledge of the reach
	// distribution is needed. Overrides Slider and C.
	AdaptiveQuantile float64
	// AdaptiveWarmup is the calibration candidate count (default 100).
	AdaptiveWarmup int
	// Exec tunes the query-execution layer. A single Sampler routes
	// through it only when an admission knob is set (a lone generator
	// goroutine has nothing to coalesce or batch); ReplicaSet and
	// DrawParallel always route through it unless Disable is set.
	Exec ExecConfig
	// Obs observes candidate draws: walk-duration histogram, sampled walk
	// tracing, and the slow-walk log. The observer's instruments are
	// concurrency-safe, so ReplicaSet shares one observer across all
	// replicas. Nil disables observation (the zero-overhead default).
	Obs *telemetry.WalkObserver
}

// Stats summarizes a Draw call.
type Stats struct {
	// Candidates, Accepted, Rejected describe the rejection step.
	Candidates int64
	Accepted   int64
	Rejected   int64
	// Queries is the number of interface queries the generator issued;
	// QueriesSaved the number answered by the history cache instead.
	Queries      int64
	QueriesSaved int64
	// QueriesCoalesced counts queries answered by joining an identical
	// in-flight query, QueriesBatched those shipped inside shared batch
	// wire requests — the execution layer's savings (zero without it).
	QueriesCoalesced int64
	QueriesBatched   int64
	// QueriesRetried counts wire executions the execution layer repeated
	// after transient interface faults — misbehaviour absorbed before it
	// could kill a walk (zero without the layer).
	QueriesRetried int64
	Elapsed        time.Duration
}

// Sampler is the assembled system: connector (optionally wrapped in the
// history cache), generator, and rejection processor.
type Sampler struct {
	conn   Conn
	cache  *history.Cache
	exec   *queryexec.Executor
	gen    core.Generator
	rej    core.Acceptor
	schema *Schema
	cfg    Config
}

// New assembles a sampler over the connector.
func New(ctx context.Context, conn Conn, cfg Config) (*Sampler, error) {
	schema, err := conn.Schema(ctx)
	if err != nil {
		return nil, err
	}
	s := &Sampler{conn: conn, schema: schema, cfg: cfg}
	effective := conn
	// The execution layer sits below the cache: cache misses are the
	// queries worth rate-bounding. A lone sampler has no concurrency to
	// coalesce or batch (its generator issues queries sequentially, so a
	// linger window could only ever hold one query and would add pure
	// latency), so it routes through the layer only when an admission
	// knob asks for it; ReplicaSet wires the full layer for the
	// concurrent paths.
	if !cfg.Exec.Disable && cfg.Exec.limited() {
		opts := cfg.Exec.options()
		opts.BatchLinger = 0
		s.exec = queryexec.New(conn, opts)
		effective = s.exec
	}
	if cfg.UseHistory {
		s.cache = history.New(effective, history.Options{TrustCounts: cfg.TrustCounts})
		effective = s.cache
	}
	order := core.OrderFixed
	if cfg.ShuffleOrder {
		order = core.OrderShuffle
	}
	switch cfg.Method {
	case MethodRandomWalk:
		s.gen, err = core.NewWalker(ctx, effective, core.WalkerConfig{
			Seed: cfg.Seed, Order: order, Attrs: cfg.Attrs, Obs: cfg.Obs,
		})
	case MethodBruteForce:
		s.gen, err = core.NewBruteForce(ctx, effective, core.BruteForceConfig{
			Seed: cfg.Seed, Attrs: cfg.Attrs,
		})
	case MethodCountWeighted:
		s.gen, err = core.NewCountWalker(ctx, effective, core.CountWalkerConfig{
			Seed: cfg.Seed, Order: order, Attrs: cfg.Attrs,
			UseParentCount: cfg.UseParentCount, Obs: cfg.Obs,
		})
	default:
		return nil, fmt.Errorf("hdsampler: unknown method %v", cfg.Method)
	}
	if err != nil {
		return nil, err
	}
	// Brute force is already uniform: no rejection. Otherwise use the
	// adaptive rejector when requested, else derive C from the explicit
	// value or the slider.
	if cfg.Method != MethodBruteForce {
		if cfg.AdaptiveQuantile > 0 {
			s.rej = core.NewAdaptiveRejector(cfg.AdaptiveQuantile, cfg.AdaptiveWarmup, cfg.Seed+1)
			return s, nil
		}
		c := cfg.C
		if c <= 0 {
			k := cfg.K
			if k <= 0 {
				k = 1000
			}
			slider := cfg.Slider
			if slider == 0 && !cfg.SliderSet {
				// Zero-value Config means "fastest": the raw walk. An
				// explicit Slider: 0 (SliderSet) keeps the documented
				// lowest-skew meaning instead.
				slider = 1
			}
			c = core.SliderC(schema, cfg.Attrs, k, slider)
		}
		if c < 1 {
			s.rej = core.NewRejector(c, cfg.Seed+1)
		}
	}
	return s, nil
}

// Schema returns the target database's discovered schema.
func (s *Sampler) Schema() *Schema { return s.schema }

// C returns the effective rejection target: 1 when accepting everything,
// 0 while an adaptive rejector is still calibrating.
func (s *Sampler) C() float64 {
	switch r := s.rej.(type) {
	case nil:
		return 1
	case *core.Rejector:
		if r == nil {
			return 1
		}
		return r.C
	case *core.AdaptiveRejector:
		return r.C()
	default:
		return 1
	}
}

// Draw synchronously collects n accepted samples. Stats are per-call
// deltas: QueriesSaved is windowed over this call like every other
// counter, so consecutive Draws never double-report cache savings.
func (s *Sampler) Draw(ctx context.Context, n int) ([]Tuple, Stats, error) {
	var saved0 int64
	if s.cache != nil {
		saved0 = s.cache.CacheStats().Saved()
	}
	tuples, cs, err := core.Collect(ctx, s.gen, s.rej, n)
	st := Stats{
		Candidates: cs.Candidates,
		Accepted:   cs.Accepted,
		Rejected:   cs.Rejected,
		Queries:    cs.Queries,
		Elapsed:    cs.Elapsed,
	}
	if s.cache != nil {
		st.QueriesSaved = s.cache.CacheStats().Saved() - saved0
	}
	return tuples, st, err
}

// NewPipeline returns an incremental pipeline targeting n samples (0 = run
// until the kill switch); read samples from Pipeline.Start.
func (s *Sampler) NewPipeline(n int) *Pipeline {
	return core.NewPipeline(s.gen, s.rej, core.PipelineConfig{Target: n})
}

// ExecStats returns the execution layer's counters; ok is false when the
// sampler runs without the layer.
func (s *Sampler) ExecStats() (ExecStats, bool) {
	if s.exec == nil {
		return ExecStats{}, false
	}
	return s.exec.ExecStats(), true
}

// HistoryStats returns (saved, issued) query counts when UseHistory is on.
func (s *Sampler) HistoryStats() (saved, issued int64) {
	if s.cache == nil {
		return 0, 0
	}
	cs := s.cache.CacheStats()
	return cs.Saved(), cs.Issued
}

// Dial returns a connector that scrapes the HTML form interface rooted at
// baseURL — the way HDSampler drove Google Base.
func Dial(baseURL string) Conn {
	return formclient.NewHTTP(baseURL, formclient.HTTPOptions{})
}

// DialWithClient is Dial with a custom *http.Client (timeouts, proxies,
// test servers).
func DialWithClient(baseURL string, client *http.Client) Conn {
	return formclient.NewHTTP(baseURL, formclient.HTTPOptions{Client: client})
}

// DialAPI returns a connector using the site's machine-readable API
// endpoints instead of HTML scraping.
func DialAPI(baseURL string) Conn {
	return formclient.NewAPI(baseURL, formclient.HTTPOptions{})
}

// LocalConn wraps an in-process hidden database as a connector (the demo's
// "locally simulated hidden database" mode).
func LocalConn(db *hiddendb.DB) Conn {
	return formclient.NewLocal(db)
}

// Marginals computes per-attribute histograms of a sample set.
func Marginals(schema *Schema, samples []Tuple) []Marginal {
	return estimate.Marginals(schema, samples)
}

// CountEstimate estimates COUNT(*) WHERE pred given the population size.
func CountEstimate(samples []Tuple, pred Query, population int) Estimate {
	return estimate.Count(samples, pred, population)
}

// SumEstimate estimates SUM(attr) WHERE pred given the population size.
func SumEstimate(samples []Tuple, pred Query, attr, population int) Estimate {
	return estimate.Sum(samples, pred, attr, population)
}

// AvgEstimate estimates AVG(attr) WHERE pred.
func AvgEstimate(samples []Tuple, pred Query, attr int) Estimate {
	return estimate.Avg(samples, pred, attr)
}

// ProportionEstimate estimates the fraction of rows matching pred.
func ProportionEstimate(samples []Tuple, pred Query) Estimate {
	return estimate.Proportion(samples, pred)
}
