package hdsampler

// One benchmark per paper exhibit (see DESIGN.md's per-experiment index).
// Each runs the corresponding experiment at small scale and reports its
// headline metrics, so `go test -bench=.` regenerates every table's
// numbers in miniature; `cmd/hdbench -scale full` prints the full tables
// recorded in EXPERIMENTS.md. Micro-benchmarks for the hot substrate paths
// follow at the end.

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/experiments"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
	"hdsampler/internal/htmlx"
	"hdsampler/internal/queryexec"
	"hdsampler/internal/telemetry"
)

// benchExperiment runs one experiment per iteration and reports its
// metrics through the benchmark framework.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var tbl *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = e.Run(context.Background(), experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, v := range tbl.Metrics {
		b.ReportMetric(v, strings.ReplaceAll(name, " ", "_"))
	}
}

func BenchmarkFigure1WalkExample(b *testing.B)      { benchExperiment(b, "figure1") }
func BenchmarkFigure2Pipeline(b *testing.B)         { benchExperiment(b, "figure2") }
func BenchmarkFigure3AttributeScoping(b *testing.B) { benchExperiment(b, "figure3") }
func BenchmarkFigure4Marginals(b *testing.B)        { benchExperiment(b, "figure4") }
func BenchmarkTableTopK(b *testing.B)               { benchExperiment(b, "topk") }
func BenchmarkTableTradeoff(b *testing.B)           { benchExperiment(b, "tradeoff") }
func BenchmarkTableHistorySavings(b *testing.B)     { benchExperiment(b, "history") }
func BenchmarkTableBruteForce(b *testing.B)         { benchExperiment(b, "bruteforce") }
func BenchmarkTableCountLeverage(b *testing.B)      { benchExperiment(b, "count") }
func BenchmarkTableAggregates(b *testing.B)         { benchExperiment(b, "aggregates") }
func BenchmarkTableScalability(b *testing.B)        { benchExperiment(b, "scale") }
func BenchmarkTableOrdering(b *testing.B)           { benchExperiment(b, "ordering") }
func BenchmarkTableCrawlVsSample(b *testing.B)      { benchExperiment(b, "crawl") }
func BenchmarkTableWeighted(b *testing.B)           { benchExperiment(b, "weighted") }
func BenchmarkTableDeployment(b *testing.B)         { benchExperiment(b, "deployment") }
func BenchmarkTableCacheConcurrency(b *testing.B)   { benchExperiment(b, "cache") }

// --- substrate micro-benchmarks ---

func benchVehiclesDB(b *testing.B, n, k int, mode hiddendb.CountMode) *hiddendb.DB {
	b.Helper()
	ds := datagen.Vehicles(n, 1)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkHiddenDBExecute measures one conjunctive top-k query on a 50k
// tuple inventory.
func BenchmarkHiddenDBExecute(b *testing.B) {
	db := benchVehiclesDB(b, 50000, 1000, hiddendb.CountExact)
	q := hiddendb.MustQuery(
		hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0},
		hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalkerCandidate measures one full drill-down (including
// restarts) against an in-process interface.
func BenchmarkWalkerCandidate(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
	ctx := context.Background()
	w, err := core.NewWalker(ctx, formclient.NewLocal(db), core.WalkerConfig{Seed: 2, Order: core.OrderShuffle})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Candidate(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(w.GenStats().Queries)/float64(b.N), "queries/candidate")
}

// BenchmarkCountWalkerCandidate measures the count-weighted drill-down.
func BenchmarkCountWalkerCandidate(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountExact)
	ctx := context.Background()
	cw, err := core.NewCountWalker(ctx, formclient.NewLocal(db),
		core.CountWalkerConfig{Seed: 3, UseParentCount: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cw.Candidate(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cw.GenStats().Queries)/float64(b.N), "queries/candidate")
}

// BenchmarkHistoryCachedExecute measures a cache hit through the history
// decorator.
func BenchmarkHistoryCachedExecute(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 100, hiddendb.CountNone)
	cache := history.New(formclient.NewLocal(db), history.Options{})
	ctx := context.Background()
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1})
	if _, err := cache.Execute(ctx, q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.Execute(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoryParallelExecute measures contended cache-hit throughput:
// every goroutine hammers one shared history cache with a warm working set,
// the access pattern of a jobsvc worker pool sharing a per-host cache.
func BenchmarkHistoryParallelExecute(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
	cache := history.New(formclient.NewLocal(db), history.Options{})
	ctx := context.Background()
	var queries []hiddendb.Query
	for mk := 0; mk < 8; mk++ {
		for cond := 0; cond < 2; cond++ {
			q := hiddendb.MustQuery(
				hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: mk},
				hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: cond})
			if _, err := cache.Execute(ctx, q); err != nil {
				b.Fatal(err)
			}
			queries = append(queries, q)
		}
	}
	b.SetParallelism(4) // 4 x GOMAXPROCS goroutines: a busy worker pool
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := cache.Execute(ctx, queries[i%len(queries)]); err != nil {
				// b.Fatal must not be called off the benchmark goroutine.
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkHistoryDeepInference measures ancestor inference on deep
// queries (d = 12 predicates): a complete root answer is cached, every
// iteration infers a distinct depth-12 query's answer from it.
func BenchmarkHistoryDeepInference(b *testing.B) {
	const attrs = 24
	ds := datagen.IIDBoolean(attrs, 50, 0.5, 11)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 100})
	if err != nil {
		b.Fatal(err)
	}
	cache := history.New(formclient.NewLocal(db), history.Options{MaxInferDepth: 12})
	ctx := context.Background()
	// k >= n: the root answer is complete, so every deeper query is
	// inferable from it (rule 2) — after scanning the ancestor space.
	if _, err := cache.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm := rng.Perm(attrs)[:12]
		sort.Ints(perm)
		q := hiddendb.EmptyQuery()
		for _, a := range perm {
			q = q.With(a, rng.Intn(2))
		}
		if _, err := cache.Execute(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	cs := cache.CacheStats()
	if cs.Issued > 1+int64(b.N)/100 {
		b.Fatalf("deep queries leaked past inference: issued %d of %d", cs.Issued, b.N)
	}
}

// BenchmarkHTMLParseResultPage measures parsing a realistic 100-row result
// page — the scraping hot path.
func BenchmarkHTMLParseResultPage(b *testing.B) {
	var sb strings.Builder
	sb.WriteString(`<html><body><div id="status" data-overflow="true">overflow</div><table id="results">`)
	sb.WriteString(`<tr><th>item</th><th>make</th><th>price</th></tr>`)
	for i := 0; i < 100; i++ {
		sb.WriteString(`<tr><td><a href="/item/1">#1</a></td><td>toyota</td><td>12345</td></tr>`)
	}
	sb.WriteString(`</table></body></html>`)
	page := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := htmlx.Parse(page)
		if htmlx.TableByID(root, "results") == nil {
			b.Fatal("table lost")
		}
	}
	b.SetBytes(int64(len(page)))
}

// BenchmarkEndToEndDraw measures the complete facade path: walk + history
// + rejection at a moderate slider, one accepted sample per iteration.
func BenchmarkEndToEndDraw(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, LocalConn(db), Config{Seed: 4, Slider: 0.9, K: 1000, UseHistory: true, ShuffleOrder: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, _, err := s.Draw(ctx, b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWalkEndToEnd measures the full walk→history→exec→backend hot
// path per accepted sample, allocations included: the assembled sampler
// (random walk, shuffled order, history cache, execution layer) drawing
// from an in-process interface. The allocs/op figure is the PR 4
// zero-allocation target's headline metric.
func BenchmarkWalkEndToEnd(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
	ctx := context.Background()
	s, err := New(ctx, LocalConn(db), Config{
		Seed: 7, Slider: 0.9, K: 1000, UseHistory: true, ShuffleOrder: true,
		Exec: ExecConfig{MaxInFlight: 64},
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the schema and cache top levels so iterations measure the
	// steady-state walk, not the first-touch misses.
	if _, _, err := s.Draw(ctx, 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, _, err := s.Draw(ctx, b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTelemetryOverhead measures what instrumentation costs the
// BenchmarkWalkEndToEnd hot path: "off" runs with no observer installed
// (the baseline every earlier PR measured), "sampled-1pct" with the full
// telemetry stack attached — walk-duration histogram, slow-walk
// thresholds, and a tracer sampling 1% of draws. cmd/benchgate gates the
// pair, so a telemetry change that taxes the untraced path shows up as a
// regression of either sub-benchmark.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, obs *telemetry.WalkObserver) {
		db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
		ctx := context.Background()
		s, err := New(ctx, LocalConn(db), Config{
			Seed: 7, Slider: 0.9, K: 1000, UseHistory: true, ShuffleOrder: true,
			Exec: ExecConfig{MaxInFlight: 64},
			Obs:  obs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Draw(ctx, 10); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if _, _, err := s.Draw(ctx, b.N); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("sampled-1pct", func(b *testing.B) {
		run(b, &telemetry.WalkObserver{
			Tracer:      telemetry.NewTracer(telemetry.TracerOptions{Rate: 0.01, Seed: 7, Capacity: 128}),
			Duration:    &telemetry.Histogram{},
			SlowWalk:    5 * time.Second,
			SlowQueries: 10000,
		})
	})
}

func BenchmarkTableExecLayer(b *testing.B) { benchExperiment(b, "exec") }

// BenchmarkExecCoalesce measures the single-flight fast path: parallel
// workers hammering one hot query through the execution layer. The
// coalesce ratio it reports is the fraction of queries answered by
// joining an in-flight request instead of paying a wire round trip.
func BenchmarkExecCoalesce(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
	x := queryexec.New(formclient.NewLocal(db), queryexec.Options{})
	ctx := context.Background()
	q := hiddendb.MustQuery(
		hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1},
		hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 0})
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := x.Execute(ctx, q); err != nil {
				b.Error(err) // b.Fatal must not be called off the benchmark goroutine
				return
			}
		}
	})
	b.StopTimer()
	st := x.ExecStats()
	if st.Queries > 0 {
		b.ReportMetric(float64(st.Coalesced)/float64(st.Queries), "coalesced/query")
	}
}

// BenchmarkExecBatch measures the micro-batching path: parallel workers
// issuing distinct queries that the linger window packs into shared batch
// requests. wire/query < 1 is the amortization of the per-request
// rate-limit charge.
func BenchmarkExecBatch(b *testing.B) {
	db := benchVehiclesDB(b, 20000, 1000, hiddendb.CountNone)
	x := queryexec.New(formclient.NewLocal(db), queryexec.Options{
		BatchLinger: 200 * time.Microsecond,
		MaxBatch:    16,
	})
	ctx := context.Background()
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1))
		i := 0
		for pb.Next() {
			q := hiddendb.MustQuery(
				hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: (w + i) % 8},
				hiddendb.Predicate{Attr: datagen.VehAttrYear, Value: i % 5},
				hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: w % 2})
			i++
			if _, err := x.Execute(ctx, q); err != nil {
				b.Error(err) // b.Fatal must not be called off the benchmark goroutine
				return
			}
		}
	})
	b.StopTimer()
	st := x.ExecStats()
	if st.Queries > 0 {
		b.ReportMetric(float64(st.WireCalls)/float64(st.Queries), "wire/query")
		b.ReportMetric(float64(st.Batched)/float64(st.Queries), "batched/query")
	}
}
