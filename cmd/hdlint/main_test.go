package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestListAnalyzers checks the -list inventory names every analyzer.
func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("run -list = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{
		"resultimmut", "nilsafe", "hotpath", "atomicmix", "errtransient",
		"lockorder", "goleak", "ctxflow", "zerocost",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks -only rejects names not in the suite.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("run -only nosuch = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb.String())
	}
}

// TestDedup loads the fixture module's package a both directly and as a
// dependency of b: its finding must print exactly once — the regression
// guard for double-reported diagnostics.
func TestDedup(t *testing.T) {
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"-C", "testdata/dedupmod", "./a", "./b"})
	if code != 1 {
		t.Fatalf("run = %d, want 1 (one finding)\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if n := strings.Count(out.String(), "context.Background"); n != 1 {
		t.Errorf("finding printed %d times, want exactly once:\n%s", n, out.String())
	}
}

// TestFactsOnlyDepsStaySilent analyzes only ./b; package a is loaded as
// a facts-only dependency and its finding must not surface.
func TestFactsOnlyDepsStaySilent(t *testing.T) {
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"-C", "testdata/dedupmod", "./b"})
	if code != 0 {
		t.Fatalf("run ./b = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no output for ./b, got:\n%s", out.String())
	}
}

// TestJSONOutput checks the -json wire format: module-relative file,
// position, analyzer, message.
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"-C", "testdata/dedupmod", "-json", "./a"})
	if code != 1 {
		t.Fatalf("run -json ./a = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "ctxflow" || d.File != "a/a.go" || d.Line == 0 || d.Column == 0 ||
		!strings.Contains(d.Message, "context.Background") {
		t.Errorf("unexpected JSON finding: %+v", d)
	}
}

// TestCache runs the same invocation twice against one cache directory;
// the second run must hit the cache and reproduce output and exit code.
func TestCache(t *testing.T) {
	dir := t.TempDir()
	var out1, err1 strings.Builder
	code1 := run(&out1, &err1, []string{"-C", "testdata/dedupmod", "-cache", dir, "./a"})
	if code1 != 1 {
		t.Fatalf("first run = %d, want 1\nstderr: %s", code1, err1.String())
	}
	if strings.Contains(err1.String(), "cache hit") {
		t.Fatalf("first run must miss the cache: %s", err1.String())
	}
	var out2, err2 strings.Builder
	code2 := run(&out2, &err2, []string{"-C", "testdata/dedupmod", "-cache", dir, "./a"})
	if code2 != 1 {
		t.Fatalf("second run = %d, want 1\nstderr: %s", code2, err2.String())
	}
	if !strings.Contains(err2.String(), "cache hit") {
		t.Errorf("second run did not hit the cache: %s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cached output differs:\nfirst:\n%s\nsecond:\n%s", out1.String(), out2.String())
	}
}

// TestTreeIsClean runs the full suite over the repository — the same
// invocation CI gates on. Any finding here means either a real violation
// crept in or an analyzer grew a false positive; both block.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree analysis in -short mode")
	}
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"./..."})
	if code != 0 {
		t.Fatalf("hdlint over the tree = %d\n%s%s", code, out.String(), errb.String())
	}
}

// TestTreeIsCleanInterprocedural gates the interprocedural analyzers on
// their own, mirroring the dedicated CI step.
func TestTreeIsCleanInterprocedural(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree analysis in -short mode")
	}
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"-only", "lockorder,goleak,ctxflow,zerocost", "./..."})
	if code != 0 {
		t.Fatalf("hdlint -only interprocedural over the tree = %d\n%s%s", code, out.String(), errb.String())
	}
}
