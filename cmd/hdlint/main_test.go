package main

import (
	"strings"
	"testing"
)

// TestListAnalyzers checks the -list inventory names every analyzer.
func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("run -list = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"resultimmut", "nilsafe", "hotpath", "atomicmix", "errtransient"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestUnknownAnalyzer checks -only rejects names not in the suite.
func TestUnknownAnalyzer(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("run -only nosuch = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errb.String())
	}
}

// TestTreeIsClean runs the full suite over the repository — the same
// invocation CI gates on. Any finding here means either a real violation
// crept in or an analyzer grew a false positive; both block.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree analysis in -short mode")
	}
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"./..."})
	if code != 0 {
		t.Fatalf("hdlint over the tree = %d\n%s%s", code, out.String(), errb.String())
	}
}
