// Package a carries one deliberate ctxflow finding for the
// deduplication and facts-only regression tests: it is loaded both as a
// requested pattern and as a dependency of package b.
package a

import "context"

// Fresh returns a detached root context.
func Fresh() context.Context {
	return context.Background()
}
