// Package b imports a, so analyzing ./a and ./b together loads a twice
// over (pattern match plus dependency edge) — the finding in a must
// still print exactly once.
package b

import "dedupmod/a"

// Use consumes a's root context without holding one of its own.
func Use() {
	_ = a.Fresh()
}
