module dedupmod

go 1.21
