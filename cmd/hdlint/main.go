// Command hdlint is the repo's multichecker: it machine-checks the
// by-convention invariants the codebase relies on (Result immutability,
// nil-safe telemetry instruments, allocation-free hot paths, unmixed
// atomics, errors.Is on sentinels) and the interprocedural ones built on
// the call-graph/facts engine (lock-order cycles, goroutine termination,
// context threading, zero-cost telemetry guards). It loads packages with
// the stdlib-only loader in internal/lint — no cmd/go, no external deps —
// and exits non-zero when any finding survives //hdlint:ignore
// suppression.
//
// Usage:
//
//	go run ./cmd/hdlint ./...
//	go run ./cmd/hdlint -list
//	go run ./cmd/hdlint -only lockorder,goleak,ctxflow,zerocost ./...
//	go run ./cmd/hdlint -json ./... | jq .
//	go run ./cmd/hdlint -C some/module -cache ~/.cache/hdlint ./...
//
// Requested packages are loaded together with their in-module
// dependencies (as silent facts-only units), so interprocedural findings
// are identical whether a package is named directly, reached through a
// dependency edge, or both — each package is analyzed exactly once.
//
// -cache keys a result cache on the content of every Go source file in
// the module plus the invocation flags: CI jobs sharing the cache
// directory skip the type-check and analysis entirely when nothing
// changed.
//
// See internal/lint/doc.go and the README's "Static analysis" section
// for what each analyzer enforces and how to annotate or suppress.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hdsampler/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// jsonDiag is the -json wire form of one finding; File is module-root
// relative with forward slashes.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// cacheEntry is one memoized invocation result.
type cacheEntry struct {
	Code   int    `json:"code"`
	Stdout string `json:"stdout"`
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("hdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer subset to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	chdir := fs.String("C", "", "analyze the module containing this directory instead of the working directory")
	cacheDir := fs.String("cache", "", "directory for the result cache keyed on module sources and flags")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "hdlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	base := *chdir
	if base == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintln(stderr, "hdlint:", err)
			return 2
		}
		base = wd
	}
	modPath, modRoot, err := lint.ModuleRoot(base)
	if err != nil {
		fmt.Fprintln(stderr, "hdlint:", err)
		return 2
	}

	var cacheFile string
	if *cacheDir != "" {
		key, err := cacheKey(modRoot, *only, *asJSON, patterns)
		if err != nil {
			fmt.Fprintln(stderr, "hdlint: cache key:", err)
		} else {
			cacheFile = filepath.Join(*cacheDir, key+".json")
			if data, err := os.ReadFile(cacheFile); err == nil {
				var ent cacheEntry
				if json.Unmarshal(data, &ent) == nil {
					io.WriteString(stdout, ent.Stdout)
					fmt.Fprintln(stderr, "hdlint: cache hit")
					return ent.Code
				}
			}
		}
	}

	loader := lint.NewLoader(lint.Root{Prefix: modPath, Dir: modRoot})
	units, err := loader.LoadPatternsWithDeps(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hdlint: load:", err)
		return 2
	}
	diags := lint.Run(units, loader.Fset, analyzers)

	var out strings.Builder
	if *asJSON {
		arr := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			arr = append(arr, jsonDiag{
				Analyzer: d.Analyzer,
				File:     relFile(modRoot, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc, err := json.MarshalIndent(arr, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "hdlint:", err)
			return 2
		}
		out.Write(enc)
		out.WriteByte('\n')
	} else {
		for _, d := range diags {
			fmt.Fprintf(&out, "%s:%d:%d: %s (%s)\n",
				relFile(modRoot, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	io.WriteString(stdout, out.String())

	code := 0
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hdlint: %d finding(s)\n", len(diags))
		code = 1
	}
	if cacheFile != "" {
		if err := writeCache(cacheFile, cacheEntry{Code: code, Stdout: out.String()}); err != nil {
			fmt.Fprintln(stderr, "hdlint: cache write:", err)
		}
	}
	return code
}

// relFile renders a diagnostic filename relative to the module root with
// forward slashes — stable across machines, and what CI problem matchers
// and annotations need.
func relFile(modRoot, name string) string {
	if rel, err := filepath.Rel(modRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// cacheKey hashes the invocation (analyzer subset, output mode,
// patterns) and the content of go.mod plus every .go file under the
// module (skipping testdata, hidden and underscore directories, and
// nested modules). Analyzer implementations live in this same module, so
// changes to the lint engine change the key too.
func cacheKey(modRoot, only string, asJSON bool, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "only=%s json=%v patterns=%s\n", only, asJSON, strings.Join(patterns, ","))
	var files []string
	err := filepath.WalkDir(modRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if p != modRoot {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") || d.Name() == "go.mod" {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(modRoot, f)
		fmt.Fprintf(h, "%s %d\n", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func writeCache(file string, ent cacheEntry) error {
	if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, file)
}
