// Command hdlint is the repo's multichecker: it machine-checks the
// by-convention invariants the codebase relies on (Result immutability,
// nil-safe telemetry instruments, allocation-free hot paths, unmixed
// atomics, errors.Is on sentinels). It loads packages with the stdlib-only
// loader in internal/lint — no cmd/go, no external deps — and exits
// non-zero when any finding survives //hdlint:ignore suppression.
//
// Usage:
//
//	go run ./cmd/hdlint ./...
//	go run ./cmd/hdlint -list
//	go run ./cmd/hdlint -only hotpath,resultimmut ./internal/...
//
// See internal/lint/doc.go and the README's "Static analysis" section
// for what each analyzer enforces and how to annotate or suppress.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hdsampler/internal/lint"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("hdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer subset to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "hdlint: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hdlint:", err)
		return 2
	}
	modPath, modRoot, err := lint.ModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "hdlint:", err)
		return 2
	}

	loader := lint.NewLoader(lint.Root{Prefix: modPath, Dir: modRoot})
	units, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hdlint: load:", err)
		return 2
	}
	diags := lint.Run(units, loader.Fset, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hdlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
