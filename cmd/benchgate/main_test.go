package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line   string
		name   string
		ns     float64
		wantOK bool
	}{
		{"BenchmarkWalkEndToEnd-8   200   3052 ns/op   120 B/op   9 allocs/op", "BenchmarkWalkEndToEnd", 3052, true},
		{"BenchmarkExecuteIntersect-16  500  4912.5 ns/op", "BenchmarkExecuteIntersect", 4912.5, true},
		{"BenchmarkNoSuffix 10 99 ns/op", "BenchmarkNoSuffix", 99, true},
		{"PASS", "", 0, false},
		{"ok  	hdsampler	1.2s", "", 0, false},
		{"goos: linux", "", 0, false},
		{"BenchmarkBroken-8 x y", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseLine(c.line)
		if ok != c.wantOK || name != c.name || ns != c.ns {
			t.Errorf("parseLine(%q) = (%q, %g, %v), want (%q, %g, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.wantOK)
		}
	}
}

func TestVerdicts(t *testing.T) {
	stable := func(v float64) []float64 { return []float64{v, v * 1.01, v * 0.99, v * 1.005} }
	cases := []struct {
		name         string
		base, head   []float64
		fail, advise bool
	}{
		{"clean pass", stable(3000), stable(3050), false, false},
		{"improvement", stable(3000), stable(2000), false, false},
		{"confident regression", stable(3000), stable(4000), true, false},
		{"boundary under threshold", stable(3000), stable(3400), false, false},
		{"noisy head downgrades", stable(3000), []float64{3000, 6000, 2000, 4000}, false, true},
		{"noisy base downgrades", []float64{1000, 4000, 2500, 5000}, stable(6000), false, true},
		{"too few samples", []float64{3000, 3001}, stable(4500), false, true},
		// Missing samples on either side are a hard failure, never an
		// advisory pass: a deleted or silently skipped benchmark must not
		// sail through the gate.
		{"missing base", nil, stable(3000), true, false},
		{"missing head", stable(3000), nil, true, false},
		{"missing both", nil, nil, true, false},
	}
	for _, c := range cases {
		v := verdict("BenchmarkX", c.base, c.head, 15, 10, 3)
		if v.fail != c.fail || v.advisory != c.advise {
			t.Errorf("%s: fail=%v advisory=%v (%s), want fail=%v advisory=%v",
				c.name, v.fail, v.advisory, v.note, c.fail, c.advise)
		}
	}
}

func TestExpandCoversSubBenchmarks(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkExecuteIntersect/none":  {5000},
		"BenchmarkExecuteIntersect/exact": {19000},
		"BenchmarkWalkEndToEnd":           {3000},
		"BenchmarkExecuteIntersection":    {1}, // different benchmark, no '/'
	}
	head := map[string][]float64{
		"BenchmarkExecuteIntersect/none": {5100},
	}
	got := expand("BenchmarkExecuteIntersect", base, head)
	want := []string{"BenchmarkExecuteIntersect/exact", "BenchmarkExecuteIntersect/none"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("expand = %v, want %v", got, want)
	}
	if got := expand("BenchmarkWalkEndToEnd", base, head); len(got) != 1 || got[0] != "BenchmarkWalkEndToEnd" {
		t.Fatalf("plain benchmark expand = %v", got)
	}
	if got := expand("BenchmarkMissing", base, head); len(got) != 0 {
		t.Fatalf("missing benchmark expand = %v, want empty", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_baseline.json")
	head := map[string][]float64{
		"BenchmarkWalkEndToEnd":           {3052, 3010, 3100},
		"BenchmarkExecuteIntersect/none":  {5000, 5100, 4950},
		"BenchmarkExecuteIntersect/exact": {19000, 19500, 18800},
		"BenchmarkUnrelated":              {1},
	}
	if err := writeBaseline(path, head, "BenchmarkWalkEndToEnd,BenchmarkExecuteIntersect", "test note"); err != nil {
		t.Fatal(err)
	}
	bl, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Note != "test note" {
		t.Fatalf("note %q", bl.Note)
	}
	if len(bl.Benchmarks) != 3 {
		t.Fatalf("baseline kept %d benchmarks, want 3 (gate-filtered): %v", len(bl.Benchmarks), bl.Benchmarks)
	}
	if _, ok := bl.Benchmarks["BenchmarkUnrelated"]; ok {
		t.Fatal("ungated benchmark leaked into the baseline")
	}
	if m := median(bl.Benchmarks["BenchmarkWalkEndToEnd"]); m != 3052 {
		t.Fatalf("round-tripped median %g, want 3052", m)
	}
	// Updating with a gate name that has no samples must fail loudly —
	// an -update that silently drops a gated benchmark would let the
	// missing-name hard failure pass on the next run.
	if err := writeBaseline(path, head, "BenchmarkNoSuchThing", ""); err == nil {
		t.Fatal("writeBaseline accepted a gate name with no samples")
	}
}

func TestParseFileGroupsRepeatedCounts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	content := `goos: linux
BenchmarkWalkEndToEnd-8   200   3052 ns/op   120 B/op
BenchmarkWalkEndToEnd-8   200   3010 ns/op   120 B/op
BenchmarkWalkEndToEnd-8   200   3100 ns/op   120 B/op
BenchmarkExecuteIntersect-8  500  4900 ns/op
PASS
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(got["BenchmarkWalkEndToEnd"]); n != 3 {
		t.Fatalf("WalkEndToEnd samples = %d, want 3", n)
	}
	if n := len(got["BenchmarkExecuteIntersect"]); n != 1 {
		t.Fatalf("ExecuteIntersect samples = %d, want 1", n)
	}
	if m := median(got["BenchmarkWalkEndToEnd"]); m != 3052 {
		t.Fatalf("median = %g, want 3052", m)
	}
}
