// Command benchgate turns a benchmark comparison into a CI verdict: it
// compares the median ns/op of named benchmarks between a base run and a
// head run and fails when a benchmark regressed beyond the threshold —
// unless the measurements are too noisy to trust, in which case it
// downgrades to an advisory note (a flaky runner must not block merges,
// but a real 15% walk-path regression must). A gated benchmark that is
// missing from either side is always a hard failure: a silently skipped
// or renamed benchmark would otherwise pass the gate forever.
//
// The base side is either another `go test -bench` output (-base) or a
// checked-in JSON baseline (-baseline, see BENCH_baseline.json at the
// repo root). Baselines are maintained with the tool itself:
//
//	# gate head.txt against the checked-in baseline
//	benchgate -baseline BENCH_baseline.json -head head.txt \
//	    -bench BenchmarkWalkEndToEnd,BenchmarkExecuteIntersect \
//	    -threshold 15 -noise 10
//
//	# refresh the baseline from a new measurement run
//	benchgate -baseline BENCH_baseline.json -head head.txt \
//	    -bench BenchmarkWalkEndToEnd,BenchmarkExecuteIntersect -update
//
//	# render the baseline as a markdown table (README "Benchmarks")
//	benchgate -baseline BENCH_baseline.json -render
//
// Exit status: 0 (pass or advisory), 1 (confident regression or missing
// gated benchmark), 2 (usage).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// baselineFile is the JSON schema of a checked-in baseline: raw ns/op
// samples per benchmark (medians and spreads are recomputed at gate
// time, so the gate and the render always agree with the data).
type baselineFile struct {
	// Note records how the samples were produced, for humans reading
	// the diff when the file is regenerated.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string][]float64 `json:"benchmarks"`
}

func main() {
	var (
		baseF      = flag.String("base", "", "base-branch benchmark output file (`go test -bench` text)")
		baselineF  = flag.String("baseline", "", "checked-in JSON baseline file (alternative base side; also the -update/-render target)")
		headF      = flag.String("head", "", "head benchmark output file")
		benchF     = flag.String("bench", "", "comma-separated benchmark names to gate; a name also covers its sub-benchmarks (BenchmarkExecuteIntersect gates .../none and .../exact separately)")
		thresholdF = flag.Float64("threshold", 15, "fail when median ns/op regresses more than this percentage")
		noiseF     = flag.Float64("noise", 10, "advisory-only when either side's relative spread exceeds this percentage")
		minN       = flag.Int("min-samples", 3, "advisory-only when either side has fewer samples than this")
		updateF    = flag.Bool("update", false, "rewrite -baseline from the -head samples (filtered to -bench when given) instead of gating")
		renderF    = flag.Bool("render", false, "print -baseline as a markdown table and exit")
		noteF      = flag.String("note", "", "provenance note stored in the baseline on -update")
	)
	flag.Parse()
	if *renderF {
		if *baselineF == "" {
			fmt.Fprintln(os.Stderr, "benchgate: -render requires -baseline")
			os.Exit(2)
		}
		bl, err := loadBaseline(*baselineF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		renderMarkdown(os.Stdout, bl)
		return
	}
	if *headF == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -head is required")
		os.Exit(2)
	}
	head, err := parseFile(*headF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if *updateF {
		if *baselineF == "" {
			fmt.Fprintln(os.Stderr, "benchgate: -update requires -baseline")
			os.Exit(2)
		}
		if err := writeBaseline(*baselineF, head, *benchF, *noteF); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if (*baseF == "") == (*baselineF == "") || *benchF == "" {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -base/-baseline, plus -head and -bench, are required")
		os.Exit(2)
	}
	var base map[string][]float64
	if *baselineF != "" {
		bl, err := loadBaseline(*baselineF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		base = bl.Benchmarks
	} else {
		base, err = parseFile(*baseF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}
	failed := 0
	for _, name := range strings.Split(*benchF, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// A gated name covers itself plus its sub-benchmarks
		// (BenchmarkExecuteIntersect matches .../none and .../exact), each
		// gated on its own samples — pooling sub-benchmarks of different
		// magnitudes into one median would hide regressions in the mix.
		keys := expand(name, base, head)
		if len(keys) == 0 {
			keys = []string{name}
		}
		for _, key := range keys {
			v := verdict(key, base[key], head[key], *thresholdF, *noiseF, *minN)
			fmt.Println(v.String())
			if v.fail {
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed or went missing\n", failed)
		os.Exit(1)
	}
}

// loadBaseline reads and validates a JSON baseline.
func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bl baselineFile
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(bl.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: baseline has no benchmarks", path)
	}
	return &bl, nil
}

// writeBaseline filters head's samples to the gated names (all of head
// when names is empty) and rewrites the baseline file.
func writeBaseline(path string, head map[string][]float64, names, note string) error {
	keep := head
	if names != "" {
		keep = make(map[string][]float64)
		for _, name := range strings.Split(names, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			keys := expand(name, head, nil)
			if len(keys) == 0 {
				return fmt.Errorf("-update: gated benchmark %s has no samples in %d parsed head benchmarks", name, len(head))
			}
			for _, key := range keys {
				keep[key] = head[key]
			}
		}
	}
	bl := baselineFile{Note: note, Benchmarks: keep}
	data, err := json.MarshalIndent(&bl, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// renderMarkdown prints the baseline as the README's benchmark table.
func renderMarkdown(w *os.File, bl *baselineFile) {
	keys := make([]string, 0, len(bl.Benchmarks))
	for key := range bl.Benchmarks {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	fmt.Fprintln(w, "| Benchmark | median | spread | samples |")
	fmt.Fprintln(w, "|---|---|---|---|")
	for _, key := range keys {
		s := bl.Benchmarks[key]
		fmt.Fprintf(w, "| %s | %s | ±%.1f%% | %d |\n",
			strings.TrimPrefix(key, "Benchmark"), formatNs(median(s)), spread(s), len(s))
	}
	if bl.Note != "" {
		fmt.Fprintf(w, "\n%s\n", bl.Note)
	}
}

// formatNs renders a ns/op median with a human-scaled unit.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// expand resolves a gated benchmark name to the concrete keys present in
// either run: the name itself and any `name/sub` sub-benchmarks.
func expand(name string, base, head map[string][]float64) []string {
	seen := make(map[string]bool)
	for _, m := range []map[string][]float64{base, head} {
		for key := range m {
			if key == name || strings.HasPrefix(key, name+"/") {
				seen[key] = true
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// parseFile reads `go test -bench` output, grouping ns/op samples by
// benchmark base name (the -N GOMAXPROCS suffix is stripped, so repeated
// -count runs accumulate).
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], ns)
		}
	}
	return out, sc.Err()
}

// parseLine extracts (benchmark base name, ns/op) from one output line.
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return baseName(fields[0]), ns, true
		}
	}
	return "", 0, false
}

// baseName strips the -N parallelism suffix go test appends.
func baseName(s string) string {
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

// result is one benchmark's gate outcome.
type result struct {
	name     string
	fail     bool
	advisory bool
	note     string
}

func (r result) String() string {
	switch {
	case r.fail:
		return fmt.Sprintf("FAIL     %-28s %s", r.name, r.note)
	case r.advisory:
		return fmt.Sprintf("ADVISORY %-28s %s", r.name, r.note)
	default:
		return fmt.Sprintf("ok       %-28s %s", r.name, r.note)
	}
}

// verdict gates one benchmark: a confident regression beyond threshold%
// fails; noisy data downgrades to advisory. A gated benchmark missing
// from either side is a hard failure, not an advisory — a deleted,
// renamed, or silently skipped benchmark must not pass the gate (refresh
// the baseline with -update after intentional changes).
func verdict(name string, base, head []float64, threshold, noise float64, minSamples int) result {
	r := result{name: name}
	if len(base) == 0 || len(head) == 0 {
		r.fail = true
		r.note = fmt.Sprintf("missing samples (base %d, head %d) — gated benchmarks must exist in both runs; refresh the baseline with -update if this rename/removal is intentional", len(base), len(head))
		return r
	}
	mb, mh := median(base), median(head)
	if mb <= 0 {
		r.advisory = true
		r.note = "degenerate base median; not gated"
		return r
	}
	delta := (mh - mb) / mb * 100
	r.note = fmt.Sprintf("base %.4gns head %.4gns delta %+.1f%%", mb, mh, delta)
	sb, sh := spread(base), spread(head)
	switch {
	case len(base) < minSamples || len(head) < minSamples:
		r.advisory = true
		r.note += fmt.Sprintf(" (advisory: %d/%d samples < %d)", len(base), len(head), minSamples)
	case sb > noise || sh > noise:
		r.advisory = true
		r.note += fmt.Sprintf(" (advisory: spread base %.1f%% head %.1f%% > %.0f%% noise limit)", sb, sh, noise)
	case delta > threshold:
		r.fail = true
		r.note += fmt.Sprintf(" — regression beyond %.0f%%", threshold)
	}
	return r
}

// median returns the middle sample (upper-middle for even counts).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// spread is the relative half-range around the median, in percent — a
// cheap robust noise measure for the handful of samples -count produces.
func spread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := median(s)
	if m <= 0 {
		return 100
	}
	return (s[len(s)-1] - s[0]) / m * 100 / 2
}
