// Command benchgate turns a benchmark comparison into a CI verdict: it
// parses two `go test -bench` outputs (base branch vs head), compares the
// median ns/op of named benchmarks, and fails when a benchmark regressed
// beyond the threshold — unless the measurements are too noisy to trust,
// in which case it downgrades to an advisory note (a flaky runner must
// not block merges, but a real 15% walk-path regression must).
//
// Usage:
//
//	benchgate -base base.txt -head head.txt \
//	    -bench BenchmarkWalkEndToEnd,BenchmarkExecuteIntersect \
//	    -threshold 15 -noise 10
//
// Exit status: 0 (pass or advisory), 1 (confident regression), 2 (usage).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		baseF      = flag.String("base", "", "base-branch benchmark output file")
		headF      = flag.String("head", "", "head benchmark output file")
		benchF     = flag.String("bench", "", "comma-separated benchmark names to gate; a name also covers its sub-benchmarks (BenchmarkExecuteIntersect gates .../none and .../exact separately)")
		thresholdF = flag.Float64("threshold", 15, "fail when median ns/op regresses more than this percentage")
		noiseF     = flag.Float64("noise", 10, "advisory-only when either side's relative spread exceeds this percentage")
		minN       = flag.Int("min-samples", 3, "advisory-only when either side has fewer samples than this")
	)
	flag.Parse()
	if *baseF == "" || *headF == "" || *benchF == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base, -head and -bench are required")
		os.Exit(2)
	}
	base, err := parseFile(*baseF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	failed := 0
	for _, name := range strings.Split(*benchF, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		// A gated name covers itself plus its sub-benchmarks
		// (BenchmarkExecuteIntersect matches .../none and .../exact), each
		// gated on its own samples — pooling sub-benchmarks of different
		// magnitudes into one median would hide regressions in the mix.
		keys := expand(name, base, head)
		if len(keys) == 0 {
			v := verdict(name, nil, nil, *thresholdF, *noiseF, *minN)
			fmt.Println(v.String())
			continue
		}
		for _, key := range keys {
			v := verdict(key, base[key], head[key], *thresholdF, *noiseF, *minN)
			fmt.Println(v.String())
			if v.fail {
				failed++
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed beyond %.0f%%\n", failed, *thresholdF)
		os.Exit(1)
	}
}

// expand resolves a gated benchmark name to the concrete keys present in
// either run: the name itself and any `name/sub` sub-benchmarks.
func expand(name string, base, head map[string][]float64) []string {
	seen := make(map[string]bool)
	for _, m := range []map[string][]float64{base, head} {
		for key := range m {
			if key == name || strings.HasPrefix(key, name+"/") {
				seen[key] = true
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// parseFile reads `go test -bench` output, grouping ns/op samples by
// benchmark base name (the -N GOMAXPROCS suffix is stripped, so repeated
// -count runs accumulate).
func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if ok {
			out[name] = append(out[name], ns)
		}
	}
	return out, sc.Err()
}

// parseLine extracts (benchmark base name, ns/op) from one output line.
func parseLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i+1 < len(fields); i++ {
		if fields[i+1] == "ns/op" {
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return "", 0, false
			}
			return baseName(fields[0]), ns, true
		}
	}
	return "", 0, false
}

// baseName strips the -N parallelism suffix go test appends.
func baseName(s string) string {
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			return s[:i]
		}
	}
	return s
}

// result is one benchmark's gate outcome.
type result struct {
	name     string
	fail     bool
	advisory bool
	note     string
}

func (r result) String() string {
	switch {
	case r.fail:
		return fmt.Sprintf("FAIL     %-28s %s", r.name, r.note)
	case r.advisory:
		return fmt.Sprintf("ADVISORY %-28s %s", r.name, r.note)
	default:
		return fmt.Sprintf("ok       %-28s %s", r.name, r.note)
	}
}

// verdict gates one benchmark: a confident regression beyond threshold%
// fails; noisy or missing data downgrades to advisory.
func verdict(name string, base, head []float64, threshold, noise float64, minSamples int) result {
	r := result{name: name}
	if len(base) == 0 || len(head) == 0 {
		r.advisory = true
		r.note = fmt.Sprintf("missing samples (base %d, head %d); not gated", len(base), len(head))
		return r
	}
	mb, mh := median(base), median(head)
	if mb <= 0 {
		r.advisory = true
		r.note = "degenerate base median; not gated"
		return r
	}
	delta := (mh - mb) / mb * 100
	r.note = fmt.Sprintf("base %.4gns head %.4gns delta %+.1f%%", mb, mh, delta)
	sb, sh := spread(base), spread(head)
	switch {
	case len(base) < minSamples || len(head) < minSamples:
		r.advisory = true
		r.note += fmt.Sprintf(" (advisory: %d/%d samples < %d)", len(base), len(head), minSamples)
	case sb > noise || sh > noise:
		r.advisory = true
		r.note += fmt.Sprintf(" (advisory: spread base %.1f%% head %.1f%% > %.0f%% noise limit)", sb, sh, noise)
	case delta > threshold:
		r.fail = true
		r.note += fmt.Sprintf(" — regression beyond %.0f%%", threshold)
	}
	return r
}

// median returns the middle sample (upper-middle for even counts).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// spread is the relative half-range around the median, in percent — a
// cheap robust noise measure for the handful of samples -count produces.
func spread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m := median(s)
	if m <= 0 {
		return 100
	}
	return (s[len(s)-1] - s[0]) / m * 100 / 2
}
