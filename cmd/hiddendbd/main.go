// Command hiddendbd serves a simulated hidden database behind a
// conjunctive web form interface — the stand-in for a live site like
// Google Base. Point cmd/hdsampler (or any scraper) at it.
//
// Usage:
//
//	hiddendbd -addr :8080 -dataset vehicles -n 50000 -k 1000 -counts approx -rate 50
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/pprofserve"
	"hdsampler/internal/telemetry"
	"hdsampler/internal/webform"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dataset   = flag.String("dataset", "vehicles", "dataset: vehicles | jobs | bool-iid | bool-corr | zipf")
		csvPath   = flag.String("csv", "", "serve rows from this CSV file instead of a synthetic dataset (schema inferred)")
		n         = flag.Int("n", 50000, "number of tuples")
		m         = flag.Int("m", 12, "attributes (boolean/zipf datasets)")
		seed      = flag.Int64("seed", 1, "generator seed")
		k         = flag.Int("k", 1000, "top-k display limit")
		counts    = flag.String("counts", "none", "count reporting: none | exact | approx")
		noise     = flag.Float64("noise", 0.3, "max relative error of approximate counts")
		rate      = flag.Float64("rate", 0, "per-client queries/sec (0 = unlimited)")
		burst     = flag.Int("burst", 10, "rate-limit burst")
		budget    = flag.Int64("budget", 0, "total query budget (0 = unlimited)")
		maxBatch  = flag.Int("max-batch", 16, "max queries per /api/search/batch request")
		pprofAddr = flag.String("pprof", "", "listen address for net/http/pprof profiling, e.g. localhost:6061 (empty = disabled)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
		logFormat = flag.String("log-format", "text", "log output format: text | json")
		parIsect  = flag.Bool("parallel-intersect", false, "split large multi-predicate posting-list intersections across GOMAXPROCS workers")
	)
	flag.Parse()
	lg, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hiddendbd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(lg)
	lg = lg.With("component", "hiddendbd")

	var ds *datagen.Dataset
	if *csvPath != "" {
		ds, err = loadCSV(*csvPath)
	} else {
		ds, err = makeDataset(*dataset, *m, *n, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mode, err := parseCountMode(*counts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{
		K: *k, CountMode: mode, CountNoise: *noise, NoiseSeed: uint64(*seed), QueryBudget: *budget,
		ParallelIntersect: *parIsect,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// The interface's own observability: request counters, rate-limit
	// rejections and request latency, served on /metrics beside the form.
	reg := telemetry.NewRegistry()
	srv := webform.NewServer(db, webform.Options{
		RatePerSec: *rate, Burst: *burst, MaxBatch: *maxBatch, Metrics: reg,
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/", srv)
	pprofserve.Start("hiddendbd", *pprofAddr)
	lg.Info("serving", "dataset", ds.Schema.Name, "tuples", db.Size(),
		"k", db.K(), "counts", mode.String(), "addr", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		lg.Error("server failed", "error", err)
		os.Exit(1)
	}
}

// loadCSV serves user data: schema and domains are inferred from the file.
func loadCSV(path string) (*datagen.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, skipped, err := datagen.FromCSV(f, datagen.CSVOptions{Name: filepath.Base(path)})
	if err != nil {
		return nil, err
	}
	if len(skipped) > 0 {
		slog.Warn("skipped constant columns", "component", "hiddendbd", "columns", strings.Join(skipped, ", "))
	}
	return ds, nil
}

func makeDataset(name string, m, n int, seed int64) (*datagen.Dataset, error) {
	switch strings.ToLower(name) {
	case "vehicles":
		return datagen.Vehicles(n, seed), nil
	case "jobs":
		return datagen.Jobs(n, seed), nil
	case "bool-iid":
		return datagen.IIDBoolean(m, n, 0.5, seed), nil
	case "bool-corr":
		return datagen.CorrelatedBoolean(m, n, 0.8, seed), nil
	case "zipf":
		doms := make([]int, m)
		for i := range doms {
			doms[i] = 8
		}
		return datagen.ZipfCategorical(doms, n, 1.0, seed), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want vehicles, jobs, bool-iid, bool-corr, zipf)", name)
	}
}

func parseCountMode(s string) (hiddendb.CountMode, error) {
	switch strings.ToLower(s) {
	case "none":
		return hiddendb.CountNone, nil
	case "exact":
		return hiddendb.CountExact, nil
	case "approx":
		return hiddendb.CountApprox, nil
	default:
		return 0, fmt.Errorf("unknown count mode %q (want none, exact, approx)", s)
	}
}
