package main

import (
	"os"
	"path/filepath"
	"testing"

	"hdsampler/internal/hiddendb"
)

func TestMakeDataset(t *testing.T) {
	for _, name := range []string{"vehicles", "jobs", "bool-iid", "bool-corr", "zipf", "VEHICLES"} {
		ds, err := makeDataset(name, 6, 50, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(ds.Tuples) != 50 {
			t.Errorf("%s: %d tuples", name, len(ds.Tuples))
		}
		if _, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 5}); err != nil {
			t.Errorf("%s: invalid dataset: %v", name, err)
		}
	}
	if _, err := makeDataset("nope", 6, 50, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestParseCountMode(t *testing.T) {
	cases := map[string]hiddendb.CountMode{
		"none": hiddendb.CountNone, "exact": hiddendb.CountExact,
		"approx": hiddendb.CountApprox, "EXACT": hiddendb.CountExact,
	}
	for in, want := range cases {
		got, err := parseCountMode(in)
		if err != nil || got != want {
			t.Errorf("parseCountMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseCountMode("fuzzy"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestLoadCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inv.csv")
	csv := "make,price\ntoyota,1\nhonda,2\ntoyota,3\nford,4\nhonda,5\ntoyota,6\nford,7\nhonda,8\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := loadCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Name != "inv.csv" || ds.Schema.NumAttrs() != 2 {
		t.Fatalf("schema = %+v", ds.Schema)
	}
	if _, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCSV(filepath.Join(dir, "absent.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}
