package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/jobsvc"
	"hdsampler/internal/webform"
)

// TestDaemonSmoke boots the wired daemon handler against an in-process
// hidden database and runs one job through the REST API end to end.
func TestDaemonSmoke(t *testing.T) {
	ds := datagen.Vehicles(800, 21)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 120})
	if err != nil {
		t.Fatal(err)
	}
	target := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	t.Cleanup(target.Close)

	mgr, srv := newDaemon(":0", jobsvc.Config{Client: target.Client(), DataDir: t.TempDir()})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	api := httptest.NewServer(srv.Handler)
	t.Cleanup(api.Close)

	resp, err := http.Get(api.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	body := strings.NewReader(`{"url":"` + target.URL + `","n":15,"workers":2,"seed":3}`)
	resp, err = http.Post(api.URL+"/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(api.URL + "/jobs/j-0001")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		s := string(raw)
		if strings.Contains(s, `"completed"`) {
			break
		}
		if strings.Contains(s, `"failed"`) || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %s", s)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
