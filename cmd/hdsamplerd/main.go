// Command hdsamplerd is the HDSampler job-orchestration daemon: a
// long-running HTTP/JSON service that accepts sampling jobs against web
// form interfaces, runs them on per-job worker pools, shares query
// history across jobs per target host, enforces per-host politeness
// budgets, and checkpoints finished sample sets to disk.
//
// Usage:
//
//	hdsamplerd -addr :8099 -data ./samples -host-rate 50 -max-jobs 8
//
// Submit and watch jobs:
//
//	curl -X POST localhost:8099/jobs -d '{"url":"http://localhost:8080","n":200,"workers":4,"slider":0.85}'
//	curl localhost:8099/jobs/j-0001
//	curl localhost:8099/jobs/j-0001/samples > samples.json
//	curl -X DELETE localhost:8099/jobs/j-0001
//	curl localhost:8099/metrics
//	curl localhost:8099/debug/walks
//
// SIGINT/SIGTERM shut the daemon down gracefully: workers drain and
// partial sample sets are persisted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hdsampler/internal/faultform"
	"hdsampler/internal/jobsvc"
	"hdsampler/internal/pprofserve"
	"hdsampler/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":8099", "listen address")
		dataDir      = flag.String("data", "", "checkpoint directory for finished sample sets (empty = no persistence)")
		maxJobs      = flag.Int("max-jobs", 4, "max concurrently running jobs")
		hostRate     = flag.Float64("host-rate", 0, "per-host politeness budget in wire requests/sec (0 = unlimited)")
		hostBurst    = flag.Int("host-burst", 10, "politeness token bucket capacity")
		hostInFlight = flag.Int("host-inflight", 0, "per-host AIMD concurrency ceiling for wire requests (0 = unlimited)")
		batchLinger  = flag.Duration("batch-linger", 0, "micro-batch linger window for API targets, e.g. 3ms (0 = no batching)")
		batchMax     = flag.Int("batch-max", 16, "max queries per batch wire request")
		cacheCap     = flag.Int("cache-entries", 0, "max entries per shared host history cache (0 = unlimited)")
		histDir      = flag.String("history-dir", "", "checkpoint directory for shared history caches: dumped on shutdown, warm-started on first use (empty = off)")
		journalDir   = flag.String("journal-dir", "", "crash-safe job journal directory: admissions fsynced before ack, progress checkpointed, interrupted jobs requeued on restart (empty = no durability)")
		ckptEvery    = flag.Duration("checkpoint-every", 2*time.Second, "mid-run progress checkpoint interval for journaled jobs (negative = admission/terminal records only)")
		compactEvery = flag.Int("journal-compact-every", 0, "journal records between snapshot+truncate compactions (0 = default 4096)")
		faultProf    = flag.String("fault-profile", "none", "chaos mode: wrap every target connector in this faultform preset ("+strings.Join(faultform.PresetNames(), "|")+")")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for reproducible fault injection")
		drain        = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		pprofAddr    = flag.String("pprof", "", "listen address for net/http/pprof profiling, e.g. localhost:6060 (empty = disabled)")
		traceRate    = flag.Float64("trace-rate", 0.01, "fraction of candidate draws traced end-to-end on /debug/walks (0 = off, 1 = every walk)")
		traceBuffer  = flag.Int("trace-buffer", 128, "finished walk traces retained in the ring buffer")
		slowWalk     = flag.Duration("slow-walk", 0, "log candidate draws slower than this, e.g. 2s (0 = off)")
		slowQueries  = flag.Int("slow-walk-queries", 0, "log candidate draws spending at least this many interface queries (0 = off)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug | info | warn | error")
		logFormat    = flag.String("log-format", "text", "log output format: text | json")
	)
	flag.Parse()
	base, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdsamplerd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(base)
	lg := base.With("component", "hdsamplerd")
	if _, ok := faultform.Preset(*faultProf); !ok {
		lg.Error("unknown -fault-profile", "profile", *faultProf, "known", fmt.Sprint(faultform.PresetNames()))
		os.Exit(2)
	}
	pprofserve.Start("hdsamplerd", *pprofAddr)

	mgr, srv := newDaemon(*addr, jobsvc.Config{
		DataDir:             *dataDir,
		MaxConcurrent:       *maxJobs,
		HostRatePerSec:      *hostRate,
		HostBurst:           *hostBurst,
		HostMaxInFlight:     *hostInFlight,
		BatchLinger:         *batchLinger,
		BatchMax:            *batchMax,
		CacheMaxEntries:     *cacheCap,
		HistoryDir:          *histDir,
		JournalDir:          *journalDir,
		CheckpointEvery:     *ckptEvery,
		JournalCompactEvery: *compactEvery,
		FaultProfile:        *faultProf,
		FaultSeed:           *faultSeed,
		TraceSampleRate:     *traceRate,
		TraceCapacity:       *traceBuffer,
		SlowWalk:            *slowWalk,
		SlowWalkQueries:     *slowQueries,
		Logger:              base,
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	lg.Info("listening", "addr", *addr, "max_jobs", *maxJobs,
		"host_rate", *hostRate, "data", *dataDir, "journal", *journalDir, "trace_rate", *traceRate)

	select {
	case err := <-errc:
		lg.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	lg.Info("shutting down", "drain", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		lg.Warn("http shutdown", "error", err)
	}
	if err := mgr.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		lg.Warn("job drain", "error", err)
	}
	lg.Info("bye")
}

// newDaemon wires the job manager and its HTTP server.
func newDaemon(addr string, cfg jobsvc.Config) (*jobsvc.Manager, *http.Server) {
	mgr := jobsvc.NewManager(cfg)
	return mgr, &http.Server{Addr: addr, Handler: jobsvc.NewHandler(mgr)}
}
