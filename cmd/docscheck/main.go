// Command docscheck enforces the repo's documentation invariants in CI:
//
//   - Every Go package (internal/, cmd/, examples/, and the root) has a
//     package comment — the one-paragraph contract ARCHITECTURE.md's
//     per-package table is built from. A package whose doc comment lives
//     in any one of its files passes; a package with none fails.
//   - Relative markdown links in the given documents resolve to files
//     that actually exist, so ARCHITECTURE.md and README.md cannot rot
//     as files move. External links (with a URL scheme) and pure
//     fragment links are not checked.
//
// Usage:
//
//	docscheck [-root .] [doc.md ...]
//
// Exit status: 0 (clean), 1 (findings), 2 (usage or I/O error).
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "module root to scan for Go packages")
	flag.Parse()
	findings, err := checkPackageComments(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, doc := range flag.Args() {
		fs, err := checkLinks(doc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("docscheck: clean")
}

// skipDirs are directories that never contain checked packages.
var skipDirs = map[string]bool{
	".git": true, "testdata": true, ".hdlint-cache": true, ".github": true,
}

// checkPackageComments walks root for Go packages and reports every
// package directory whose non-test files all lack a package doc comment.
func checkPackageComments(root string) ([]string, error) {
	dirs := make(map[string][]string) // dir -> non-test .go files
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		dirs[dir] = append(dirs[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var findings []string
	for dir, files := range dirs {
		documented := false
		for _, file := range files {
			f, err := parser.ParseFile(token.NewFileSet(), file, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			findings = append(findings, fmt.Sprintf("%s: package has no package comment in any of its %d file(s)", dir, len(files)))
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// linkRE matches inline markdown links; image links share the syntax and
// are checked the same way.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks reports relative links in doc that do not resolve to an
// existing file or directory (relative to the document's own directory).
func checkLinks(doc string) ([]string, error) {
	data, err := os.ReadFile(doc)
	if err != nil {
		return nil, err
	}
	base := filepath.Dir(doc)
	var findings []string
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // pure fragment, links within the document
			}
			joined := filepath.Join(base, target)
			if rel, err := filepath.Rel(base, joined); err == nil && strings.HasPrefix(rel, "..") {
				continue // escapes the tree: a GitHub web-UI path (badges), not a file
			}
			if _, err := os.Stat(joined); err != nil {
				findings = append(findings, fmt.Sprintf("%s:%d: broken relative link %q", doc, i+1, m[1]))
			}
		}
	}
	return findings, nil
}
