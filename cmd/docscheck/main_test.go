package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPackageComments(t *testing.T) {
	root := t.TempDir()
	// documented: doc comment in one of two files.
	write(t, filepath.Join(root, "good", "impl.go"), "package good\n\nvar X = 1\n")
	write(t, filepath.Join(root, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	// undocumented: a detached comment does not count.
	write(t, filepath.Join(root, "bad", "bad.go"), "// floating comment\n\npackage bad\n")
	// test-only doc comments do not count either.
	write(t, filepath.Join(root, "testdoc", "impl.go"), "package testdoc\n")
	write(t, filepath.Join(root, "testdoc", "doc_test.go"), "// Package testdoc looks documented only in tests.\npackage testdoc\n")
	// skipped trees are not scanned.
	write(t, filepath.Join(root, "testdata", "ignored.go"), "package ignored\n")

	findings, err := checkPackageComments(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want exactly bad/ and testdoc/", findings)
	}
	if !strings.Contains(findings[0], "bad") || !strings.Contains(findings[1], "testdoc") {
		t.Fatalf("findings = %v", findings)
	}
}

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "exists.md"), "target\n")
	write(t, filepath.Join(root, "sub", "file.go"), "package sub\n")
	doc := filepath.Join(root, "DOC.md")
	write(t, doc, strings.Join([]string{
		"[ok file](exists.md)",
		"[ok dir](sub)",
		"[ok fragment](exists.md#section)",
		"[pure fragment](#local)",
		"[external](https://example.com/missing)",
		"[web-ui path](../../actions/workflows/ci.yml)",
		"[broken](missing.md) and [also broken](sub/missing.go)",
	}, "\n"))
	findings, err := checkLinks(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want the two broken links", findings)
	}
	for _, f := range findings {
		if !strings.Contains(f, "DOC.md:7") {
			t.Fatalf("finding %q should point at line 7", f)
		}
	}
}

// TestRepoIsClean runs the checks the CI docs job runs, against this
// repository itself: every package documented, every relative link in
// the top-level docs resolving.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	findings, err := checkPackageComments(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range []string{"README.md", "ARCHITECTURE.md"} {
		fs, err := checkLinks(filepath.Join(root, doc))
		if err != nil {
			t.Fatal(err)
		}
		findings = append(findings, fs...)
	}
	if len(findings) > 0 {
		t.Fatalf("repo documentation findings:\n%s", strings.Join(findings, "\n"))
	}
}
