// Command hdbench regenerates every table and figure of the HDSampler
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded outputs), plus the system-side exhibits (e.g. "cache": the
// shared history cache under concurrency). CI runs `hdbench -json` at
// small scale on every PR and archives the report, so the perf
// trajectory of the hot paths is recorded per change.
//
// Usage:
//
//	hdbench                      # run everything at full scale
//	hdbench -scale small         # quick pass
//	hdbench -run figure4,tradeoff
//	hdbench -json BENCH_PR1.json # also record results as JSON
//	hdbench -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hdsampler/internal/experiments"
)

// benchReport is the machine-readable run record -json writes, so the
// perf trajectory (BENCH_*.json) can be compared across PRs.
type benchReport struct {
	GeneratedAt time.Time     `json:"generated_at"`
	Scale       string        `json:"scale"`
	Results     []benchResult `json:"results"`
}

type benchResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seconds float64            `json:"seconds"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

func main() {
	var (
		scaleF = flag.String("scale", "full", "experiment sizing: small | full")
		runF   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		jsonF  = flag.String("json", "", "also write results (metrics + timings) to this JSON file")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	var scale experiments.Scale
	switch strings.ToLower(*scaleF) {
	case "small":
		scale = experiments.ScaleSmall
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleF)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *runF == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runF, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{GeneratedAt: time.Now().UTC(), Scale: strings.ToLower(*scaleF)}
	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(scale)
		res := benchResult{ID: e.ID, Title: e.Title, Seconds: time.Since(start).Seconds()}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			res.Error = err.Error()
			report.Results = append(report.Results, res)
			failed++
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, res.Seconds)
		res.Metrics = tbl.Metrics
		report.Results = append(report.Results, res)
	}
	if *jsonF != "" {
		if err := writeReport(*jsonF, &report); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonF, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// writeReport saves the run record as indented JSON.
func writeReport(path string, report *benchReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	return f.Close()
}
