// Command hdbench regenerates every table and figure of the HDSampler
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded outputs), plus the system-side exhibits (e.g. "cache": the
// shared history cache under concurrency). CI runs `hdbench -json` at
// small scale on every PR and archives the report, so the perf
// trajectory of the hot paths is recorded per change.
//
// -matrix switches to the adversarial scenario matrix (internal/scenario):
// dataset shapes × interface fault profiles × sampler configs, with
// chi-square/KS bias gates against the exact distribution on fault-free
// cells and liveness gates everywhere. The nightly CI workflow runs it at
// full scale and archives the JSON report.
//
// Usage:
//
//	hdbench                      # run everything at full scale
//	hdbench -scale small         # quick pass
//	hdbench -run figure4,tradeoff
//	hdbench -json BENCH_PR1.json # also record results as JSON
//	hdbench -matrix -scale full -seed 42 -json MATRIX.json
//	hdbench -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/experiments"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/scenario"
	"hdsampler/internal/telemetry"
)

// benchReport is the machine-readable run record -json writes, so the
// perf trajectory (BENCH_*.json) can be compared across PRs.
type benchReport struct {
	GeneratedAt time.Time        `json:"generated_at"`
	Scale       string           `json:"scale"`
	Results     []benchResult    `json:"results"`
	Telemetry   *telemetryReport `json:"telemetry,omitempty"`
}

// telemetryReport is the instrumented reference draw recorded alongside
// the experiment results: whole-walk latency quantiles from the telemetry
// histograms plus a handful of fully traced walks, so each archived
// BENCH_*.json also tracks what the observability layer itself measures.
type telemetryReport struct {
	Samples     int                   `json:"samples"`
	Walk        telemetry.Summary     `json:"walk_latency"`
	TracedWalks int64                 `json:"traced_walks"`
	Traces      []telemetry.TraceView `json:"traces,omitempty"`
}

// telemetrySnapshot runs a small fully-traced reference draw over an
// in-process vehicles database through the production stack (history
// cache + execution layer) and packages the telemetry it produced.
func telemetrySnapshot(seed int64) (*telemetryReport, error) {
	const n = 150
	ds := datagen.Vehicles(20000, seed)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 1000})
	if err != nil {
		return nil, err
	}
	walkHist := &telemetry.Histogram{}
	tracer := telemetry.NewTracer(telemetry.TracerOptions{Rate: 1, Seed: uint64(seed), Capacity: 64})
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{
		Seed: seed, Slider: 0.9, K: 1000, UseHistory: true, ShuffleOrder: true,
		Exec: hdsampler.ExecConfig{MaxInFlight: 16},
		Obs:  &telemetry.WalkObserver{Tracer: tracer, Duration: walkHist},
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := s.Draw(ctx, n); err != nil {
		return nil, err
	}
	traces := tracer.Dump()
	if len(traces) > 5 {
		traces = traces[len(traces)-5:]
	}
	return &telemetryReport{
		Samples:     n,
		Walk:        walkHist.Snapshot().Summary(),
		TracedWalks: tracer.Stats().Finished,
		Traces:      traces,
	}, nil
}

type benchResult struct {
	ID      string               `json:"id"`
	Title   string               `json:"title"`
	Seconds float64              `json:"seconds"`
	Metrics map[string]safeFloat `json:"metrics,omitempty"`
	Error   string               `json:"error,omitempty"`
}

// safeFloat marshals non-finite values as JSON strings instead of letting
// encoding/json abort mid-stream: a single +Inf metric (e.g. an infinite
// queries-per-sample from a degenerate cell) used to kill the encoder
// halfway through the file, leaving a truncated, unparseable report
// exactly when an experiment failed — the run whose record matters most.
type safeFloat float64

// MarshalJSON implements json.Marshaler.
func (f safeFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsInf(v, 1) {
		return []byte(`"+Inf"`), nil
	}
	if math.IsInf(v, -1) {
		return []byte(`"-Inf"`), nil
	}
	if math.IsNaN(v) {
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both forms.
func (f *safeFloat) UnmarshalJSON(b []byte) error {
	var v float64
	if err := json.Unmarshal(b, &v); err == nil {
		*f = safeFloat(v)
		return nil
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "+Inf":
		*f = safeFloat(math.Inf(1))
	case "-Inf":
		*f = safeFloat(math.Inf(-1))
	case "NaN":
		*f = safeFloat(math.NaN())
	default:
		return fmt.Errorf("hdbench: bad metric value %q", s)
	}
	return nil
}

// safeMetrics converts an experiment's metric map.
func safeMetrics(m map[string]float64) map[string]safeFloat {
	if m == nil {
		return nil
	}
	out := make(map[string]safeFloat, len(m))
	for k, v := range m {
		out[k] = safeFloat(v)
	}
	return out
}

func main() {
	var (
		scaleF  = flag.String("scale", "full", "experiment sizing: small | full")
		runF    = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		jsonF   = flag.String("json", "", "also write results (metrics + timings) to this JSON file")
		matrixF = flag.Bool("matrix", false, "run the adversarial scenario matrix instead of the experiments")
		seedF   = flag.Int64("seed", 42, "matrix seed (with -matrix): equal seeds replay identically")
	)
	flag.Parse()

	if *list {
		for _, e := range allExperiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	var scale experiments.Scale
	switch strings.ToLower(*scaleF) {
	case "small":
		scale = experiments.ScaleSmall
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleF)
		os.Exit(2)
	}

	if *matrixF {
		os.Exit(runMatrix(scale, *seedF, *jsonF))
	}

	var selected []experiments.Experiment
	if *runF == "all" {
		selected = allExperiments()
	} else {
		for _, id := range strings.Split(*runF, ",") {
			e, ok := experimentByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	report := benchReport{GeneratedAt: time.Now().UTC(), Scale: strings.ToLower(*scaleF)}
	failed := 0
	ctx := context.Background()
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(ctx, scale)
		res := benchResult{ID: e.ID, Title: e.Title, Seconds: time.Since(start).Seconds()}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			res.Error = err.Error()
			if tbl != nil {
				res.Metrics = safeMetrics(tbl.Metrics)
			}
			report.Results = append(report.Results, res)
			failed++
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, res.Seconds)
		res.Metrics = safeMetrics(tbl.Metrics)
		report.Results = append(report.Results, res)
	}
	if *jsonF != "" {
		tele, err := telemetrySnapshot(*seedF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "telemetry snapshot: %v\n", err)
			failed++
		} else {
			report.Telemetry = tele
			fmt.Fprintf(os.Stderr, "telemetry: %d draws traced, walk p50=%.3fms p99=%.3fms max=%.3fms\n",
				tele.TracedWalks, tele.Walk.P50MS, tele.Walk.P99MS, tele.Walk.MaxMS)
		}
		if err := writeReport(*jsonF, &report); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonF, err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runMatrix executes the scenario matrix, emits the JSON report (stdout,
// plus the -json file when given) and returns the exit code: non-zero
// when any cell lost samples or a fault-free cell failed its bias gate.
func runMatrix(scale experiments.Scale, seed int64, jsonPath string) int {
	cfg := scenario.Config{Seed: seed}
	if scale == experiments.ScaleFull {
		cfg.SamplesPerCell = 1200
		cfg.Datasets = scenario.DefaultDatasets(false)
	}
	rep, err := scenario.Run(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "matrix: %v\n", err)
		return 1
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		verdict := "ok"
		switch {
		case !c.OK():
			verdict = "FAIL"
		case !c.BiasGated:
			verdict = "live"
		}
		fmt.Fprintf(os.Stderr, "%-10s %-8s %-8s acc=%4d/%-4d chi2p=%-9.3g ks=%.3f q/s=%-6.1f retried=%-3d faults=%-4d %s\n",
			c.Dataset, c.Fault, c.Sampler, c.Accepted, c.Requested, c.ChiP, c.KS,
			c.QueriesPerSample, c.QueriesRetried, c.Faults.Total(), verdict)
	}
	if err := emitJSON(os.Stdout, rep); err != nil {
		fmt.Fprintf(os.Stderr, "matrix: %v\n", err)
		return 1
	}
	if jsonPath != "" {
		if err := writeJSONFile(jsonPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			return 1
		}
	}
	if fs := rep.Failures(); len(fs) > 0 {
		fmt.Fprintf(os.Stderr, "matrix: %d of %d cells FAILED:\n", len(fs), len(rep.Cells))
		for _, f := range fs {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "matrix: all %d cells passed (grid %dx%dx%d, seed %d)\n",
		len(rep.Cells), rep.Grid[0], rep.Grid[1], rep.Grid[2], rep.Seed)
	return 0
}

// writeReport saves the run record as indented JSON, atomically: the
// record is fully marshalled in memory first (safeFloat keeps non-finite
// metrics encodable) and lands under a temp name renamed into place, so a
// half-written file can never be mistaken for a report — partial failures
// were precisely when the old streaming encoder produced garbage.
func writeReport(path string, report *benchReport) error {
	return writeJSONFile(path, report)
}

// emitJSON writes v as indented JSON after a full in-memory marshal.
func emitJSON(w *os.File, v any) error {
	raw, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// writeJSONFile atomically replaces path with v's indented JSON.
func writeJSONFile(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
