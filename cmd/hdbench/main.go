// Command hdbench regenerates every table and figure of the HDSampler
// reproduction (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded outputs).
//
// Usage:
//
//	hdbench                      # run everything at full scale
//	hdbench -scale small         # quick pass
//	hdbench -run figure4,tradeoff
//	hdbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hdsampler/internal/experiments"
)

func main() {
	var (
		scaleF = flag.String("scale", "full", "experiment sizing: small | full")
		runF   = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	var scale experiments.Scale
	switch strings.ToLower(*scaleF) {
	case "small":
		scale = experiments.ScaleSmall
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleF)
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *runF == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*runF, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(start).Seconds())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
