package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := benchReport{
		GeneratedAt: time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC),
		Scale:       "small",
		Results: []benchResult{
			{ID: "topk", Title: "top-k limits", Seconds: 1.5, Metrics: map[string]float64{"queries/candidate@k=1000": 3.2}},
			{ID: "broken", Title: "a failing one", Seconds: 0.1, Error: "boom"},
		},
	}
	if err := writeReport(path, &want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got benchReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Scale != want.Scale || len(got.Results) != 2 {
		t.Fatalf("report lost data: %+v", got)
	}
	if got.Results[0].Metrics["queries/candidate@k=1000"] != 3.2 {
		t.Fatalf("metrics lost: %+v", got.Results[0])
	}
	if got.Results[1].Error != "boom" {
		t.Fatalf("error lost: %+v", got.Results[1])
	}
}
