package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := benchReport{
		GeneratedAt: time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC),
		Scale:       "small",
		Results: []benchResult{
			{ID: "topk", Title: "top-k limits", Seconds: 1.5, Metrics: map[string]safeFloat{"queries/candidate@k=1000": 3.2}},
			{ID: "broken", Title: "a failing one", Seconds: 0.1, Error: "boom"},
		},
	}
	if err := writeReport(path, &want); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got benchReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Scale != want.Scale || len(got.Results) != 2 {
		t.Fatalf("report lost data: %+v", got)
	}
	if got.Results[0].Metrics["queries/candidate@k=1000"] != 3.2 {
		t.Fatalf("metrics lost: %+v", got.Results[0])
	}
	if got.Results[1].Error != "boom" {
		t.Fatalf("error lost: %+v", got.Results[1])
	}
}

// TestWriteReportValidJSONOnPartialFailure is the regression test for the
// truncated-stream bug: a report holding non-finite metrics (an infinite
// queries-per-sample from a degenerate or failed experiment) used to kill
// the streaming encoder mid-file, leaving invalid JSON precisely when one
// experiment failed. The written file must always be complete, valid
// JSON that round-trips every result — including the failed one.
func TestWriteReportValidJSONOnPartialFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := benchReport{
		GeneratedAt: time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC),
		Scale:       "small",
		Results: []benchResult{
			{ID: "good", Title: "a clean one", Seconds: 0.2,
				Metrics: map[string]safeFloat{"skew": 0.01}},
			{ID: "degenerate", Title: "the one that used to truncate the file", Seconds: 0.1,
				Error: "sampler starved",
				Metrics: map[string]safeFloat{
					"queries/sample": safeFloat(math.Inf(1)),
					"skew":           safeFloat(math.NaN()),
					"drift":          safeFloat(math.Inf(-1)),
				}},
			{ID: "after", Title: "results after the failure must survive", Seconds: 0.3,
				Metrics: map[string]safeFloat{"tv": 0.5}},
		},
	}
	if err := writeReport(path, &want); err != nil {
		t.Fatalf("writeReport with non-finite metrics: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatalf("written report is not valid JSON:\n%s", raw)
	}
	var got benchReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 {
		t.Fatalf("results after the failing entry were lost: %+v", got.Results)
	}
	deg := got.Results[1]
	if !math.IsInf(float64(deg.Metrics["queries/sample"]), 1) {
		t.Fatalf("+Inf metric did not round-trip: %v", deg.Metrics)
	}
	if !math.IsNaN(float64(deg.Metrics["skew"])) {
		t.Fatalf("NaN metric did not round-trip: %v", deg.Metrics)
	}
	if !math.IsInf(float64(deg.Metrics["drift"]), -1) {
		t.Fatalf("-Inf metric did not round-trip: %v", deg.Metrics)
	}
	if got.Results[2].Metrics["tv"] != 0.5 {
		t.Fatalf("trailing result corrupted: %+v", got.Results[2])
	}
}

// TestWriteReportAtomicReplace: an existing report is replaced, never
// left half-overwritten, and no temp file lingers.
func TestWriteReportAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte("old garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := benchReport{Scale: "small"}
	if err := writeReport(path, &rep); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatalf("replacement not valid JSON: %s", raw)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp artifacts left behind: %v", entries)
	}
}
