package main

import (
	"context"
	"fmt"

	"hdsampler/internal/experiments"
	"hdsampler/internal/scenario"
)

// scenarioExperiment adapts a slice of the adversarial scenario matrix
// (internal/scenario) into the experiment list, so every default hdbench
// run — including the per-PR CI artifact — carries a bias/liveness
// exhibit. It lives here rather than in internal/experiments because the
// matrix drives the assembled system through the root hdsampler package,
// which the experiments package (imported by the root package's
// benchmarks) cannot import back. The exhaustive sweep is `hdbench
// -matrix`, the nightly gate.
func scenarioExperiment() experiments.Experiment {
	return experiments.Experiment{
		ID:    "scenario",
		Title: "ext — scenario matrix: bias and liveness under interface faults",
		Run:   runScenarioExperiment,
	}
}

// runScenarioExperiment runs the matrix slice and renders it as a table.
func runScenarioExperiment(ctx context.Context, s Scale) (*experiments.Table, error) {
	cfg := scenario.Config{
		Seed:           42,
		SamplesPerCell: 200,
		Datasets:       scenario.DefaultDatasets(true)[:2],
	}
	if s == experiments.ScaleFull {
		cfg.SamplesPerCell = 600
		cfg.Datasets = scenario.DefaultDatasets(false)
	}
	rep, err := scenario.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	t := &experiments.Table{
		ID:     "scenario",
		Title:  "ext — scenario matrix: bias and liveness under interface faults",
		Header: []string{"dataset", "fault", "sampler", "accepted", "chi2 p", "KS", "q/sample", "retried", "faults", "verdict"},
		Notes: []string{
			fmt.Sprintf("grid %dx%dx%d, %d samples/cell, seed %d; bias gated on fault-free cells only",
				rep.Grid[0], rep.Grid[1], rep.Grid[2], rep.SamplesPerCell, rep.Seed),
		},
		Metrics: map[string]float64{},
	}
	var failures, gated int
	worstP := 1.0
	for i := range rep.Cells {
		c := &rep.Cells[i]
		verdict := "ok"
		switch {
		case !c.OK():
			verdict = "FAIL"
			failures++
		case !c.BiasGated:
			verdict = "live"
		}
		if c.BiasGated {
			gated++
			if c.ChiP < worstP {
				worstP = c.ChiP
			}
		}
		t.Rows = append(t.Rows, []string{
			c.Dataset, c.Fault, c.Sampler,
			fmt.Sprintf("%d/%d", c.Accepted, c.Requested),
			fmt.Sprintf("%.3g", c.ChiP), fmt.Sprintf("%.3f", c.KS), fmt.Sprintf("%.1f", c.QueriesPerSample),
			fmt.Sprintf("%d", c.QueriesRetried), fmt.Sprintf("%d", c.Faults.Total()),
			verdict,
		})
	}
	t.Metrics["cells"] = float64(len(rep.Cells))
	t.Metrics["failures"] = float64(failures)
	t.Metrics["gated cells"] = float64(gated)
	t.Metrics["worst gated chi2 p"] = worstP
	if failures > 0 {
		return t, fmt.Errorf("scenario: %d cells failed: %v", failures, rep.Failures())
	}
	return t, nil
}

// Scale aliases the experiments sizing type for the local adapter.
type Scale = experiments.Scale

// allExperiments is the selectable set: the reproduction's exhibits plus
// the locally-adapted scenario exhibit.
func allExperiments() []experiments.Experiment {
	return append(experiments.All(), scenarioExperiment())
}

// experimentByID resolves an ID against the combined set.
func experimentByID(id string) (experiments.Experiment, bool) {
	for _, e := range allExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return experiments.Experiment{}, false
}
