package main

import (
	"path/filepath"
	"testing"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/store"
)

func TestPersistSamplesRoundTrip(t *testing.T) {
	ds := datagen.Vehicles(30, 1)
	schema := ds.Schema
	dir := t.TempDir()
	out := filepath.Join(dir, "run1.json")

	first, err := persistSamples(schema, ds.Tuples[:20], hdsampler.Stats{Queries: 40},
		"walk", 0.5, "test", "", out)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 20 {
		t.Fatalf("first run returned %d samples", len(first))
	}

	// Second run merges with the first and saves the union.
	out2 := filepath.Join(dir, "run2.json")
	combined, err := persistSamples(schema, ds.Tuples[20:], hdsampler.Stats{Queries: 15},
		"walk", 0.5, "test", out, out2)
	if err != nil {
		t.Fatal(err)
	}
	if len(combined) != 30 {
		t.Fatalf("combined = %d samples, want 30", len(combined))
	}
	set, err := store.LoadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != 30 || set.Queries != 55 {
		t.Fatalf("persisted set: %d samples, %d queries", len(set.Samples), set.Queries)
	}

	// No flags: pass-through.
	same, err := persistSamples(schema, ds.Tuples[:5], hdsampler.Stats{}, "walk", 1, "t", "", "")
	if err != nil || len(same) != 5 {
		t.Fatalf("pass-through: %d %v", len(same), err)
	}
	// Missing -in file errors.
	if _, err := persistSamples(schema, ds.Tuples[:5], hdsampler.Stats{}, "walk", 1, "t",
		filepath.Join(dir, "absent.json"), ""); err == nil {
		t.Fatal("missing input accepted")
	}
}
