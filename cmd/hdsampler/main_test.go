package main

import (
	"context"
	"strings"
	"testing"

	"hdsampler/internal/datagen"
)

func TestBuildConnLocal(t *testing.T) {
	for _, name := range []string{"vehicles", "bool-iid", "bool-corr"} {
		conn, err := buildConn("", false, name, 200, 50, "exact", 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		schema, err := conn.Schema(context.Background())
		if err != nil || schema.NumAttrs() == 0 {
			t.Fatalf("%s: schema %v %v", name, schema, err)
		}
	}
	if _, err := buildConn("", false, "", 200, 50, "exact", 1); err == nil {
		t.Error("missing -url and -local accepted")
	}
	if _, err := buildConn("", false, "mystery", 200, 50, "exact", 1); err == nil {
		t.Error("unknown local dataset accepted")
	}
	if _, err := buildConn("", false, "vehicles", 200, 50, "sometimes", 1); err == nil {
		t.Error("unknown count mode accepted")
	}
}

func TestBuildConnURLModes(t *testing.T) {
	html, err := buildConn("http://example.invalid", false, "", 0, 0, "", 1)
	if err != nil || html == nil {
		t.Fatalf("html conn: %v", err)
	}
	api, err := buildConn("http://example.invalid", true, "", 0, 0, "", 1)
	if err != nil || api == nil {
		t.Fatalf("api conn: %v", err)
	}
}

func TestParseAttrs(t *testing.T) {
	schema := datagen.VehiclesSchema()
	got, err := parseAttrs(schema, "make, color ,doors")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{datagen.VehAttrMake, datagen.VehAttrColor, datagen.VehAttrDoors}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("parseAttrs = %v, want %v", got, want)
	}
	if _, err := parseAttrs(schema, "warp-drive"); err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Fatalf("unknown attribute: %v", err)
	}
	if got, err := parseAttrs(schema, ""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
}

func TestPrintAggregatesValidation(t *testing.T) {
	schema := datagen.VehiclesSchema()
	ds := datagen.Vehicles(50, 1)
	samples := ds.Tuples
	if err := printAggregates(schema, samples, "make=toyota", "price"); err != nil {
		t.Fatalf("valid aggregate failed: %v", err)
	}
	for _, bad := range []struct{ where, attr string }{
		{"noequals", ""},
		{"warp=1", ""},
		{"make=delorean", ""},
		{"make=toyota", "warp"},
	} {
		if err := printAggregates(schema, samples, bad.where, bad.attr); err == nil {
			t.Errorf("printAggregates(%q,%q) accepted", bad.where, bad.attr)
		}
	}
}
