// Command hdsampler samples a hidden database behind a web form interface
// and prints marginal histograms and aggregate estimates — the demo system
// as a CLI. With -ui it serves the interactive front end instead.
//
// Usage:
//
//	hdsampler -url http://localhost:8080 -n 300 -slider 0.85
//	hdsampler -url http://localhost:8080 -ui -addr :8090
//	hdsampler -local vehicles -n 200 -method count
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/estimate"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/store"
	"hdsampler/internal/webui"
)

func main() {
	var (
		urlFlag = flag.String("url", "", "base URL of the target web form interface")
		useAPI  = flag.Bool("api", false, "use the site's JSON API instead of HTML scraping")
		local   = flag.String("local", "", "sample an in-process dataset instead of a URL (vehicles | jobs | bool-iid | bool-corr)")
		localN  = flag.Int("local-n", 20000, "tuples of the in-process dataset")
		k       = flag.Int("k", 1000, "target interface's top-k (for the slider mapping and -local)")
		countsF = flag.String("counts", "exact", "count mode of the -local interface")

		n       = flag.Int("n", 200, "samples to draw")
		method  = flag.String("method", "walk", "sampler: walk | count | brute")
		slider  = flag.Float64("slider", 0.85, "efficiency<->skew slider in [0,1] (1 = fastest)")
		cFlag   = flag.Float64("c", 0, "explicit rejection target C (overrides -slider)")
		seed    = flag.Int64("seed", 1, "random seed")
		attrsF  = flag.String("attrs", "", "comma-separated attribute names to scope sampling to")
		shuffle = flag.Bool("shuffle", true, "reshuffle attribute order per walk")
		hist    = flag.Bool("history", true, "reuse query history (memoize + infer)")
		trust   = flag.Bool("trust-counts", false, "enable count-based history inference")

		ui   = flag.Bool("ui", false, "serve the interactive web UI instead of sampling")
		addr = flag.String("addr", ":8090", "web UI listen address")

		aggWhere = flag.String("agg-where", "", "aggregate predicate, e.g. make=toyota")
		aggAttr  = flag.String("agg-attr", "", "numeric attribute for SUM/AVG aggregates")

		outFile = flag.String("out", "", "save the (merged) sample set to this JSON file")
		inFile  = flag.String("in", "", "load a previous sample set and merge the new draw into it")
	)
	flag.Parse()

	conn, err := buildConn(*urlFlag, *useAPI, *local, *localN, *k, *countsF, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *ui {
		log.Printf("hdsampler: web UI on %s", *addr)
		log.Fatal(http.ListenAndServe(*addr, webui.NewServer(conn, *k)))
	}

	ctx := context.Background()
	schema, err := conn.Schema(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	attrs, err := parseAttrs(schema, *attrsF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := hdsampler.Config{
		Seed: *seed, Slider: *slider, C: *cFlag, K: *k, Attrs: attrs,
		ShuffleOrder: *shuffle, UseHistory: *hist, TrustCounts: *trust,
		// The flag always carries an explicit value (its default is 0.85),
		// so -slider 0 means the documented lowest-skew walk, not the
		// zero-value "fastest" fallback.
		SliderSet: true,
	}
	switch strings.ToLower(*method) {
	case "walk":
		cfg.Method = hdsampler.MethodRandomWalk
	case "count":
		cfg.Method = hdsampler.MethodCountWeighted
		cfg.UseParentCount = *trust
	case "brute":
		cfg.Method = hdsampler.MethodBruteForce
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	s, err := hdsampler.New(ctx, conn, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sampling %q: method=%s, C=%.3g, %d samples...\n", schema.Name, cfg.Method, s.C(), *n)
	tuples, stats, err := s.Draw(ctx, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sampling failed after %d samples: %v\n", len(tuples), err)
		if len(tuples) == 0 {
			os.Exit(1)
		}
	}
	fmt.Printf("done: %d samples, %d candidates, %d queries sent, %d saved by history, %.1fs\n\n",
		stats.Accepted, stats.Candidates, stats.Queries, stats.QueriesSaved, stats.Elapsed.Seconds())

	tuples, err = persistSamples(schema, tuples, stats, *method, s.C(), *urlFlag+*local, *inFile, *outFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	printHistograms(schema, tuples, attrs)
	if *aggWhere != "" {
		if err := printAggregates(schema, tuples, *aggWhere, *aggAttr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
}

// persistSamples merges the new draw with a previously saved set (when
// -in is given), saves the result (when -out is given), and returns the
// combined samples for analysis.
func persistSamples(schema *hdsampler.Schema, tuples []hdsampler.Tuple, stats hdsampler.Stats,
	method string, c float64, source, inFile, outFile string) ([]hdsampler.Tuple, error) {
	if inFile == "" && outFile == "" {
		return tuples, nil
	}
	set, err := store.New(source, method, c, schema, tuples, nil, stats.Queries)
	if err != nil {
		return nil, err
	}
	if inFile != "" {
		prev, err := store.LoadFile(inFile)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", inFile, err)
		}
		if err := prev.Merge(set); err != nil {
			return nil, err
		}
		set = prev
		combined, _, err := set.DecodeSamples()
		if err != nil {
			return nil, err
		}
		tuples = combined
		fmt.Printf("merged with %s: %d samples total\n\n", inFile, len(tuples))
	}
	if outFile != "" {
		if err := store.SaveFile(outFile, set); err != nil {
			return nil, fmt.Errorf("saving %s: %w", outFile, err)
		}
		fmt.Printf("saved %d samples to %s\n\n", len(set.Samples), outFile)
	}
	return tuples, nil
}

func buildConn(url string, useAPI bool, local string, localN, k int, counts string, seed int64) (hdsampler.Conn, error) {
	if url != "" {
		if useAPI {
			return hdsampler.DialAPI(url), nil
		}
		return hdsampler.Dial(url), nil
	}
	if local == "" {
		return nil, fmt.Errorf("need -url or -local")
	}
	var ds *datagen.Dataset
	switch strings.ToLower(local) {
	case "vehicles":
		ds = datagen.Vehicles(localN, seed)
	case "jobs":
		ds = datagen.Jobs(localN, seed)
	case "bool-iid":
		ds = datagen.IIDBoolean(12, localN, 0.5, seed)
	case "bool-corr":
		ds = datagen.CorrelatedBoolean(12, localN, 0.8, seed)
	default:
		return nil, fmt.Errorf("unknown -local dataset %q", local)
	}
	var mode hiddendb.CountMode
	switch strings.ToLower(counts) {
	case "none":
		mode = hiddendb.CountNone
	case "exact":
		mode = hiddendb.CountExact
	case "approx":
		mode = hiddendb.CountApprox
	default:
		return nil, fmt.Errorf("unknown count mode %q", counts)
	}
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: k, CountMode: mode, CountNoise: 0.3})
	if err != nil {
		return nil, err
	}
	return formclient.NewLocal(db), nil
}

func parseAttrs(schema *hdsampler.Schema, list string) ([]int, error) {
	if list == "" {
		return nil, nil
	}
	var out []int
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		idx := schema.AttrIndex(name)
		if idx < 0 {
			return nil, fmt.Errorf("unknown attribute %q (schema has %v)", name, attrNames(schema))
		}
		out = append(out, idx)
	}
	return out, nil
}

func attrNames(schema *hdsampler.Schema) []string {
	var out []string
	for i := range schema.Attrs {
		out = append(out, schema.Attrs[i].Name)
	}
	return out
}

func printHistograms(schema *hdsampler.Schema, tuples []hdsampler.Tuple, attrs []int) {
	if len(attrs) == 0 {
		for i := 0; i < schema.NumAttrs(); i++ {
			attrs = append(attrs, i)
		}
	}
	ms := estimate.Marginals(schema, tuples)
	for _, a := range attrs {
		m := ms[a]
		fmt.Printf("%s:\n", schema.Attrs[a].Name)
		props := m.Proportions()
		for v, label := range schema.Attrs[a].Values {
			bar := strings.Repeat("#", int(props[v]*50+0.5))
			lo, hi := m.CI(v, 1.96)
			fmt.Printf("  %-14s %5.1f%%  [%4.1f%%,%5.1f%%]  %s\n", label, props[v]*100, lo*100, hi*100, bar)
		}
		fmt.Println()
	}
}

func printAggregates(schema *hdsampler.Schema, tuples []hdsampler.Tuple, where, attr string) error {
	parts := strings.SplitN(where, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -agg-where %q (want attr=value)", where)
	}
	pa := schema.AttrIndex(strings.TrimSpace(parts[0]))
	if pa < 0 {
		return fmt.Errorf("unknown predicate attribute %q", parts[0])
	}
	pv := schema.Attrs[pa].ValueIndex(strings.TrimSpace(parts[1]))
	if pv < 0 {
		return fmt.Errorf("unknown value %q for %q", parts[1], parts[0])
	}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: pa, Value: pv})
	p := hdsampler.ProportionEstimate(tuples, pred)
	fmt.Printf("proportion(%s): %s\n", where, p)
	if attr != "" {
		na := schema.AttrIndex(attr)
		if na < 0 {
			return fmt.Errorf("unknown aggregate attribute %q", attr)
		}
		fmt.Printf("avg(%s | %s): %s\n", attr, where, hdsampler.AvgEstimate(tuples, pred, na))
	}
	return nil
}
