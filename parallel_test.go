package hdsampler

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

func TestDrawParallel(t *testing.T) {
	db, conn := localVehicles(t, 5000, 500, hiddendb.CountNone)
	ctx := context.Background()
	cfg := Config{Seed: 1, Slider: 1, ShuffleOrder: true, UseHistory: true, K: db.K()}
	tuples, stats, err := DrawParallel(ctx, conn, cfg, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 200 {
		t.Fatalf("drew %d, want 200", len(tuples))
	}
	if stats.Accepted != 200 || stats.Queries == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.QueriesSaved == 0 {
		t.Error("shared history cache saved nothing across workers")
	}
	// Sample quality: make marginal tracks truth loosely.
	truth := db.TrueMarginal(datagen.VehAttrMake)
	counts := make([]int, len(truth))
	for _, tu := range tuples {
		counts[tu.Vals[datagen.VehAttrMake]]++
	}
	for v := range truth {
		want := float64(truth[v]) / float64(db.Size())
		got := float64(counts[v]) / float64(len(tuples))
		if math.Abs(got-want) > 0.12 {
			t.Errorf("make[%d] = %g, truth %g", v, got, want)
		}
	}
}

func TestDrawParallelDegenerateCases(t *testing.T) {
	_, conn := localVehicles(t, 500, 100, hiddendb.CountNone)
	ctx := context.Background()
	cfg := Config{Seed: 2, Slider: 1}
	if _, _, err := DrawParallel(ctx, conn, cfg, 10, 0); err == nil {
		t.Error("workers=0 accepted")
	}
	// workers > n falls back to sequential.
	tuples, _, err := DrawParallel(ctx, conn, cfg, 3, 8)
	if err != nil || len(tuples) != 3 {
		t.Fatalf("fallback draw: %d %v", len(tuples), err)
	}
}

func TestDrawParallelPropagatesError(t *testing.T) {
	// Count-weighted sampling against an interface without counts fails
	// in every worker; the error must surface.
	_, conn := localVehicles(t, 500, 100, hiddendb.CountNone)
	ctx := context.Background()
	cfg := Config{Seed: 3, Method: MethodCountWeighted}
	if _, _, err := DrawParallel(ctx, conn, cfg, 40, 4); err == nil {
		t.Fatal("expected error from count sampler without counts")
	}
}

func TestDrawParallelContextCancellation(t *testing.T) {
	_, conn := localVehicles(t, 5000, 500, hiddendb.CountNone)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	cfg := Config{Seed: 9, Slider: 1, UseHistory: true}
	tuples, stats, err := DrawParallel(ctx, conn, cfg, 10_000_000, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if len(tuples) >= 10_000_000 {
		t.Fatal("cancelled draw completed anyway")
	}
	if int(stats.Accepted) != len(tuples) {
		t.Fatalf("stats.Accepted = %d but %d tuples returned", stats.Accepted, len(tuples))
	}
}

func TestReplicaSetLiveProgressAndSamples(t *testing.T) {
	_, conn := localVehicles(t, 2000, 200, hiddendb.CountNone)
	ctx := context.Background()
	rs, err := NewReplicaSet(ctx, conn, Config{Seed: 7, Slider: 1, UseHistory: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Workers() != 3 || rs.Schema() == nil {
		t.Fatalf("replica set malformed: workers=%d", rs.Workers())
	}
	tuples, stats, err := rs.Draw(ctx, 50)
	if err != nil || len(tuples) != 50 {
		t.Fatalf("draw: %d tuples, %v", len(tuples), err)
	}
	samples := rs.Samples()
	if len(samples) != 50 {
		t.Fatalf("provenance snapshot has %d samples", len(samples))
	}
	for i := range samples {
		if samples[i].Tuple.ID != tuples[i].ID {
			t.Fatal("Samples() and Draw() disagree on order")
		}
		if samples[i].Reach <= 0 || samples[i].Reach > 1 {
			t.Fatalf("sample %d reach = %g", i, samples[i].Reach)
		}
	}
	if pr := rs.Progress(); pr.Accepted != stats.Accepted || pr.Queries != stats.Queries {
		t.Fatalf("post-draw Progress %+v disagrees with Draw stats %+v", pr, stats)
	}
	// A ReplicaSet is one-shot.
	if _, _, err := rs.Draw(ctx, 1); err == nil {
		t.Fatal("second Draw accepted")
	}
}

func TestReplicaSetAdoptsInjectedCache(t *testing.T) {
	_, conn := localVehicles(t, 2000, 200, hiddendb.CountNone)
	ctx := context.Background()
	shared := history.New(conn, history.Options{})
	cfg := Config{Seed: 11, Slider: 1, UseHistory: true}

	rs1, err := NewReplicaSet(ctx, shared, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs1.Draw(ctx, 40); err != nil {
		t.Fatal(err)
	}
	warm := shared.CacheStats()

	// A second set over the same cache draws on the first set's answers;
	// its QueriesSaved counts only its own run.
	cfg.Seed = 12
	rs2, err := NewReplicaSet(ctx, shared, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := rs2.Draw(ctx, 40)
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueriesSaved == 0 {
		t.Fatal("second replica set saw no savings from the shared cache")
	}
	total := shared.CacheStats()
	if got, want := stats.QueriesSaved, total.Saved()-warm.Saved(); got != want {
		t.Fatalf("QueriesSaved = %d, want the run's delta %d", got, want)
	}
}

func TestCrawlFacade(t *testing.T) {
	ds := datagen.IIDBoolean(8, 100, 0.5, 4)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tuples, queries, err := Crawl(ctx, LocalConn(db), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != db.Size() {
		t.Fatalf("crawled %d of %d", len(tuples), db.Size())
	}
	if queries == 0 {
		t.Fatal("no queries counted")
	}
	// Budgeted crawl fails fast.
	if _, _, err := Crawl(ctx, LocalConn(db), 5); err == nil {
		t.Fatal("budget 5 should abort the crawl")
	}
}

func TestPopulationEstimate(t *testing.T) {
	ctx := context.Background()
	// With exact counts: one root query answers it.
	db, conn := localVehicles(t, 3000, 100, hiddendb.CountExact)
	est, ok := PopulationEstimate(ctx, conn, nil)
	if !ok || est.Value != float64(db.Size()) {
		t.Fatalf("estimate = %+v ok=%v, want exact %d", est, ok, db.Size())
	}
	// Without counts: fall back to sample collisions.
	dbNone, connNone := localVehicles(t, 300, 100, hiddendb.CountNone)
	s, err := New(ctx, connNone, Config{Seed: 5, Slider: 1, ShuffleOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	samples, _, err := s.Draw(ctx, 250)
	if err != nil {
		t.Fatal(err)
	}
	est, ok = PopulationEstimate(ctx, connNone, samples)
	if !ok {
		t.Skip("no collisions with this seed; estimator undefined")
	}
	if est.Value < float64(dbNone.Size())/10 || est.Value > float64(dbNone.Size())*10 {
		t.Errorf("population estimate %g wildly off truth %d", est.Value, dbNone.Size())
	}
}
