// Population: how large is the hidden database? The interface never says —
// this example estimates it three ways through the form interface alone:
//
//  1. the root count, when the interface reports (exact) counts;
//
//  2. birthday/collision estimation from repeated uniform samples;
//
//  3. Horvitz–Thompson weighting of raw walk candidates (no counts, no
//     uniformity needed — every candidate's reach probability is known).
//
// Run with: go run ./examples/population
package main

import (
	"context"
	"fmt"
	"log"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

func main() {
	const trueSize = 12000
	ds := datagen.Vehicles(trueSize, 13)

	ctx := context.Background()
	fmt.Printf("hidden database true size: %d (unknown to the client)\n\n", trueSize)

	// 1. Count-reporting interface: one query answers it.
	dbExact, err := hiddendb.New(ds.Schema, cloneTuples(ds.Tuples), nil,
		hiddendb.Config{K: 1000, CountMode: hiddendb.CountExact})
	if err != nil {
		log.Fatal(err)
	}
	est, ok := hdsampler.PopulationEstimate(ctx, hdsampler.LocalConn(dbExact), nil)
	fmt.Printf("root count (counts=exact):   %8.0f        ok=%v\n", est.Value, ok)

	// The remaining estimators assume the realistic case: no counts.
	dbNone, err := hiddendb.New(ds.Schema, cloneTuples(ds.Tuples), nil,
		hiddendb.Config{K: 1000, CountMode: hiddendb.CountNone})
	if err != nil {
		log.Fatal(err)
	}
	conn := hdsampler.LocalConn(dbNone)

	// 2. Birthday estimator over near-uniform samples: needs enough draws
	// to collide (~sqrt(N) scale).
	s, err := hdsampler.New(ctx, conn, hdsampler.Config{
		Seed: 1, Slider: 0.5, K: 1000, ShuffleOrder: true, UseHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, stats, err := s.Draw(ctx, 500)
	if err != nil {
		log.Fatal(err)
	}
	est, ok = hdsampler.PopulationEstimate(ctx, conn, samples)
	fmt.Printf("birthday (500 samples):      %8.0f ± %-6.0f ok=%v  (%d queries)\n",
		est.Value, est.StdErr, ok, stats.Queries)

	// 3. Horvitz–Thompson over raw candidates: no rejection, no counts.
	s2, err := hdsampler.New(ctx, conn, hdsampler.Config{
		Seed: 2, K: 1000, ShuffleOrder: true, UseHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ws, wstats, err := s2.DrawWeighted(ctx, 1500)
	if err != nil {
		log.Fatal(err)
	}
	pop := ws.Population()
	fmt.Printf("Horvitz-Thompson (1500 raw): %8.0f ± %-6.0f ok=true (%d queries)\n",
		pop.Value, pop.StdErr, wstats.Queries)
}

func cloneTuples(in []hiddendb.Tuple) []hiddendb.Tuple {
	out := make([]hiddendb.Tuple, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}
