// Quickstart: sample a locally simulated hidden database (the demo's
// backup-plan mode) and print the marginal distribution of its attributes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

func main() {
	// A hidden database: 2,000 rows over 16 boolean attributes (sparse,
	// as real hidden databases are: far more domain cells than rows),
	// reachable only through a conjunctive top-k interface with k = 50.
	ds := datagen.IIDBoolean(16, 2000, 0.3, 42)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 50})
	if err != nil {
		log.Fatal(err)
	}
	conn := hdsampler.LocalConn(db)

	// Assemble HDSampler: random walk + history cache. The slider is the
	// demo's efficiency<->skew knob; 0.4 leans toward accuracy, so
	// most of the walk's skew is rejected away (try 1.0 to see the raw
	// walk oversample rare-value tuples).
	ctx := context.Background()
	s, err := hdsampler.New(ctx, conn, hdsampler.Config{
		Seed:         1,
		Slider:       0.4,
		K:            db.K(),
		ShuffleOrder: true,
		UseHistory:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	samples, stats, err := s.Draw(ctx, 400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d samples with %d interface queries (%d more answered from history)\n\n",
		stats.Accepted, stats.Queries, stats.QueriesSaved)

	// The Output Module's view: marginal histograms with the true
	// fractions alongside (we own the database, so we can check).
	schema := s.Schema()
	marginals := hdsampler.Marginals(schema, samples)
	fmt.Println("attr      sampled P(true)   actual P(true)")
	for a := 0; a < schema.NumAttrs(); a++ {
		props := marginals[a].Proportions()
		truth := db.TrueMarginal(a)
		actual := float64(truth[1]) / float64(db.Size())
		bar := strings.Repeat("#", int(props[1]*40+0.5))
		fmt.Printf("%-8s  %5.1f%%            %5.1f%%   %s\n",
			schema.Attrs[a].Name, props[1]*100, actual*100, bar)
	}
}
