// Vehicles: the paper's end-to-end scenario. Serve a 30,000-vehicle
// inventory behind a live HTML web form interface (the Google Base
// stand-in, k = 1000, approximate counts), then sample it over HTTP —
// discovering the schema by parsing the form page and scraping every
// result page — and reproduce the Figure 4 histograms against ground
// truth.
//
//	go run ./examples/vehicles
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

func main() {
	// The hidden site: vehicles inventory behind a web form.
	ds := datagen.Vehicles(30000, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{
		K: 1000, CountMode: hiddendb.CountApprox, CountNoise: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, webform.NewServer(db, webform.Options{})) }()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("hidden database serving at %s (try it in a browser)\n", baseURL)

	// HDSampler side: everything below sees only the web interface.
	ctx := context.Background()
	conn := hdsampler.Dial(baseURL)
	schema, err := conn.Schema(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered schema %q with %d attributes by parsing the form page\n",
		schema.Name, schema.NumAttrs())

	s, err := hdsampler.New(ctx, conn, hdsampler.Config{
		Seed: 2, Slider: 0.9, K: 1000, ShuffleOrder: true, UseHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, stats, err := s.Draw(ctx, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d samples: %d queries over HTTP, %d answered from history, %.1fs\n\n",
		stats.Accepted, stats.Queries, stats.QueriesSaved, stats.Elapsed.Seconds())

	// Figure 4: the make histogram, sampled vs truth.
	marginals := hdsampler.Marginals(schema, samples)
	makeIdx := schema.AttrIndex("make")
	props := marginals[makeIdx].Proportions()
	truth := db.TrueMarginal(makeIdx)
	fmt.Println("make          sampled   actual")
	for v, label := range schema.Attrs[makeIdx].Values {
		actual := float64(truth[v]) / float64(db.Size())
		bar := strings.Repeat("#", int(props[v]*120+0.5))
		fmt.Printf("%-12s  %5.1f%%   %5.1f%%  %s\n", label, props[v]*100, actual*100, bar)
	}

	// The paper's motivating aggregate: percentage of Japanese cars.
	japanese := 0.0
	for _, idx := range datagen.JapaneseMakeIndexes() {
		pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: makeIdx, Value: idx})
		japanese += hdsampler.ProportionEstimate(samples, pred).Value
	}
	trueJapanese := 0.0
	for _, idx := range datagen.JapaneseMakeIndexes() {
		trueJapanese += float64(truth[idx])
	}
	trueJapanese /= float64(db.Size())
	fmt.Printf("\npercentage of Japanese cars: estimated %.1f%%, actual %.1f%%\n",
		japanese*100, trueJapanese*100)
}
