// Tradeoff: the demo's §3.1 efficiency↔skew slider, measured two ways on
// the same database — exactly (closed-form analysis of the walk tree) and
// empirically (running the sampler) — so you can see both that the slider
// behaves as promised and that the implementation matches the math.
//
//	go run ./examples/tradeoff
package main

import (
	"context"
	"fmt"
	"log"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/exact"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

func main() {
	const (
		m, n, k = 10, 800, 10
		samples = 300
	)
	ds := datagen.CorrelatedBoolean(m, n, 0.7, 5)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := exact.WalkDist(db, nil, k)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Printf("correlated boolean database: m=%d, n=%d, k=%d\n", m, n, k)
	fmt.Println("slider  C         exact q/sample  measured q/sample  exact skew")
	for _, pos := range []float64{0.25, 0.5, 0.75, 1} {
		c := core.SliderC(db.Schema(), nil, k, pos)
		sum := dist.Summarize(c)

		gen, err := core.NewWalker(ctx, formclient.NewLocal(db),
			core.WalkerConfig{Seed: int64(100 * pos), Order: core.OrderFixed})
		if err != nil {
			log.Fatal(err)
		}
		var rej *core.Rejector
		if c < 1 {
			rej = core.NewRejector(c, 9)
		}
		drawn, cs, err := core.Collect(ctx, gen, rej, samples)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-8.3g  %-14.1f  %-17.1f  %.2f\n",
			pos, c, sum.QueriesPerSample, float64(cs.Queries)/float64(len(drawn)), sum.Skew)
	}
	fmt.Println("\nleft of the slider: cheap but skewed; right: uniform but expensive —")
	fmt.Println("the knob the demo exposes so analysts 'make a proper tradeoff' (§3.1).")
}
