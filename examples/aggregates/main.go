// Aggregates: the paper's §1 use case — "if one wants to learn the
// percentage of Japanese cars in the dealer's inventory, a very small
// number of uniform random samples can provide a quite accurate answer" —
// plus the §3.4 COUNT/SUM/AVG interface, with confidence intervals checked
// against ground truth.
//
//	go run ./examples/aggregates
package main

import (
	"context"
	"fmt"
	"log"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

func main() {
	ds := datagen.Vehicles(40000, 11)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 1000, CountMode: hiddendb.CountExact})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	// Exact counts let the count-weighted sampler draw perfectly uniform
	// samples cheaply — the ICDE 2009 upgrade HDSampler cites as [2].
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{
		Method: hdsampler.MethodCountWeighted, Seed: 3,
		UseParentCount: true, UseHistory: true, TrustCounts: true, K: db.K(),
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, stats, err := s.Draw(ctx, 800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d uniform samples with %d queries (%d saved by history)\n\n",
		stats.Accepted, stats.Queries, stats.QueriesSaved)

	schema := s.Schema()
	makeIdx := schema.AttrIndex("make")
	condIdx := schema.AttrIndex("condition")
	priceIdx := schema.AttrIndex("price")
	mileIdx := schema.AttrIndex("mileage")

	// Percentage of Japanese cars.
	japanese := 0.0
	for _, idx := range datagen.JapaneseMakeIndexes() {
		pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: makeIdx, Value: idx})
		japanese += hdsampler.ProportionEstimate(samples, pred).Value
	}
	trueJP := 0.0
	for _, idx := range datagen.JapaneseMakeIndexes() {
		c, _, _ := db.TrueAggregate(hiddendb.MustQuery(hiddendb.Predicate{Attr: makeIdx, Value: idx}), -1)
		trueJP += float64(c)
	}
	trueJP /= float64(db.Size())
	fmt.Printf("%% Japanese cars:        estimate %5.1f%%      truth %5.1f%%\n", japanese*100, trueJP*100)

	// COUNT(condition = used), scaled by the known population size.
	usedPred := hiddendb.MustQuery(hiddendb.Predicate{Attr: condIdx, Value: 1})
	countEst := hdsampler.CountEstimate(samples, usedPred, db.Size())
	trueCount, trueMiles, _ := db.TrueAggregate(usedPred, mileIdx)
	lo, hi := countEst.CI(1.96)
	fmt.Printf("COUNT(used):            %8.0f [%0.0f, %0.0f]  truth %d\n", countEst.Value, lo, hi, trueCount)

	// AVG(price | make = toyota).
	toyotaPred := hiddendb.MustQuery(hiddendb.Predicate{Attr: makeIdx, Value: 0})
	avgEst := hdsampler.AvgEstimate(samples, toyotaPred, priceIdx)
	_, _, trueAvg := db.TrueAggregate(toyotaPred, priceIdx)
	lo, hi = avgEst.CI(1.96)
	fmt.Printf("AVG(price | toyota):    %8.0f [%0.0f, %0.0f]  truth %.0f\n", avgEst.Value, lo, hi, trueAvg)

	// SUM(mileage | used).
	sumEst := hdsampler.SumEstimate(samples, usedPred, mileIdx, db.Size())
	lo, hi = sumEst.CI(1.96)
	fmt.Printf("SUM(mileage | used):  %.3e [%.3e, %.3e]  truth %.3e\n", sumEst.Value, lo, hi, trueMiles)
}
