package hdsampler_test

// Documentation examples for the public API. The ones with Output
// comments run under go test against in-process simulated databases
// (sample counts are deterministic: Draw returns exactly n accepted
// samples); the rest are compile-checked and rendered by godoc, their
// output being statistical.

import (
	"context"
	"fmt"
	"log"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

// Example shows the canonical flow: dial a hidden database's web form
// interface, draw near-uniform samples, and answer an aggregate.
func Example() {
	ctx := context.Background()
	conn := hdsampler.Dial("http://dealer.example.com")
	s, err := hdsampler.New(ctx, conn, hdsampler.Config{
		Slider: 0.85, K: 1000, ShuffleOrder: true, UseHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, stats, err := s.Draw(ctx, 300)
	if err != nil {
		log.Fatal(err)
	}
	schema := s.Schema()
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: schema.AttrIndex("make"), Value: 0})
	fmt.Printf("%d samples, %d queries; share: %s\n",
		stats.Accepted, stats.Queries, hdsampler.ProportionEstimate(samples, pred))
}

// ExampleNew_localSimulation samples an in-process database — the demo's
// "locally simulated hidden database" backup plan.
func ExampleNew_localSimulation() {
	ds := datagen.Vehicles(10000, 1)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 1000, CountMode: hiddendb.CountExact})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{
		Method: hdsampler.MethodCountWeighted, UseParentCount: true, K: db.K(),
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, _, err := s.Draw(ctx, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(samples))
}

// ExampleSampler_Draw draws a fixed number of near-uniform samples from
// an in-process hidden database and reports what the walk cost. It runs
// under go test: every piece — dataset, walk, rejection — is seeded, so
// the draw is reproducible.
func ExampleSampler_Draw() {
	ds := datagen.Vehicles(20000, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 1000})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{
		Seed: 42, UseHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, stats, err := s.Draw(ctx, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted %d of %d requested; every sample schema-wide: %v\n",
		stats.Accepted, len(samples), len(samples[0].Vals) == len(s.Schema().Attrs))
	// Output:
	// accepted 50 of 50 requested; every sample schema-wide: true
}

// ExampleDrawParallel fans a draw out over independent sampler replicas
// sharing one history cache — the way to exploit a site that tolerates
// concurrent clients. It runs under go test; the combined sample is a
// fair mixture of the replicas' independent streams.
func ExampleDrawParallel() {
	ds := datagen.Vehicles(20000, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 1000})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	samples, stats, err := hdsampler.DrawParallel(ctx, hdsampler.LocalConn(db), hdsampler.Config{
		Seed: 42, UseHistory: true,
	}, 80, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted %d of %d requested\n", stats.Accepted, len(samples))
	// Output:
	// accepted 80 of 80 requested
}

// ExampleSampler_NewPipeline streams samples incrementally with a kill
// switch, the demo's Figure 2 interaction.
func ExampleSampler_NewPipeline() {
	ds := datagen.Vehicles(5000, 2)
	db, _ := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 500})
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{ShuffleOrder: true})
	if err != nil {
		log.Fatal(err)
	}
	pipe := s.NewPipeline(0) // unbounded: run until stopped
	got := 0
	for range pipe.Start(ctx) {
		got++
		if got == 25 {
			pipe.Stop() // the kill switch
		}
	}
	fmt.Println(got >= 25)
}

// ExampleSampler_DrawWeighted estimates an aggregate and the database size
// from unrejected candidates via Horvitz–Thompson weighting.
func ExampleSampler_DrawWeighted() {
	ds := datagen.Vehicles(8000, 3)
	db, _ := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 1000})
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{ShuffleOrder: true})
	if err != nil {
		log.Fatal(err)
	}
	ws, _, err := s.DrawWeighted(ctx, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated size: %s\n", ws.Population())
}
