package hdsampler_test

// Compile-checked documentation examples for the public API. These are not
// executed (no Output comments — sampling output is statistical), but godoc
// renders them and the compiler keeps them honest.

import (
	"context"
	"fmt"
	"log"

	"hdsampler"
	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

// Example shows the canonical flow: dial a hidden database's web form
// interface, draw near-uniform samples, and answer an aggregate.
func Example() {
	ctx := context.Background()
	conn := hdsampler.Dial("http://dealer.example.com")
	s, err := hdsampler.New(ctx, conn, hdsampler.Config{
		Slider: 0.85, K: 1000, ShuffleOrder: true, UseHistory: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, stats, err := s.Draw(ctx, 300)
	if err != nil {
		log.Fatal(err)
	}
	schema := s.Schema()
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: schema.AttrIndex("make"), Value: 0})
	fmt.Printf("%d samples, %d queries; share: %s\n",
		stats.Accepted, stats.Queries, hdsampler.ProportionEstimate(samples, pred))
}

// ExampleNew_localSimulation samples an in-process database — the demo's
// "locally simulated hidden database" backup plan.
func ExampleNew_localSimulation() {
	ds := datagen.Vehicles(10000, 1)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 1000, CountMode: hiddendb.CountExact})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{
		Method: hdsampler.MethodCountWeighted, UseParentCount: true, K: db.K(),
	})
	if err != nil {
		log.Fatal(err)
	}
	samples, _, err := s.Draw(ctx, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(samples))
}

// ExampleSampler_NewPipeline streams samples incrementally with a kill
// switch, the demo's Figure 2 interaction.
func ExampleSampler_NewPipeline() {
	ds := datagen.Vehicles(5000, 2)
	db, _ := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 500})
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{ShuffleOrder: true})
	if err != nil {
		log.Fatal(err)
	}
	pipe := s.NewPipeline(0) // unbounded: run until stopped
	got := 0
	for range pipe.Start(ctx) {
		got++
		if got == 25 {
			pipe.Stop() // the kill switch
		}
	}
	fmt.Println(got >= 25)
}

// ExampleSampler_DrawWeighted estimates an aggregate and the database size
// from unrejected candidates via Horvitz–Thompson weighting.
func ExampleSampler_DrawWeighted() {
	ds := datagen.Vehicles(8000, 3)
	db, _ := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 1000})
	ctx := context.Background()
	s, err := hdsampler.New(ctx, hdsampler.LocalConn(db), hdsampler.Config{ShuffleOrder: true})
	if err != nil {
		log.Fatal(err)
	}
	ws, _, err := s.DrawWeighted(ctx, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated size: %s\n", ws.Population())
}
