// Package faultform wraps any formclient.Conn in a deterministic
// adversarial interface: the messy behaviours real hidden-database sites
// exhibit — 429 bursts, 5xx/timeout blips, top-k jitter (the visible page
// size varies per query), result reordering, stale/rounded counts, and
// slow-start latency — injected as pure functions of a seed and the query
// signature, so every run with one seed replays the same misbehaviour.
//
// The wrapper sits where the wire would be, below the execution layer:
//
//	sampler → history.Cache → queryexec.Executor → faultform → formclient.Local
//
// which makes queryexec's AIMD limiter, transient-retry and batch-fallback
// paths, and the samplers' liveness properties testable without a flaky
// network. 429 bursts are emulated the way formclient.HTTP experiences
// them (internal client retries surfacing as a RateLimitRetries advance,
// ErrRateLimited past the budget); transient blips surface as
// formclient.ErrTransient for the layer above to retry.
package faultform
