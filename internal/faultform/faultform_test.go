package faultform

import (
	"context"
	"errors"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

func testDB(t testing.TB, n, k int, mode hiddendb.CountMode) *hiddendb.DB {
	t.Helper()
	ds := datagen.Vehicles(n, 17)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func overflowQuery(t testing.TB, db *hiddendb.DB) hiddendb.Query {
	t.Helper()
	// The empty query over a db larger than k always overflows with k rows.
	q := hiddendb.EmptyQuery()
	res, err := db.Execute(q)
	if err != nil || !res.Overflow {
		t.Fatalf("empty query should overflow (err=%v)", err)
	}
	return q
}

func TestInactiveProfilePassesThrough(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountExact)
	conn := Wrap(formclient.NewLocal(db), Profile{Name: "none"}, 1)
	res, err := conn.Execute(context.Background(), hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.Execute(hiddendb.EmptyQuery())
	if len(res.Tuples) != len(want.Tuples) || res.Count != want.Count || res.Overflow != want.Overflow {
		t.Fatal("inactive profile altered the result")
	}
	if got := conn.FaultStats().Total(); got != 0 {
		t.Fatalf("inactive profile injected %d faults", got)
	}
}

func TestRateLimitBurstAbsorbedByEmulatedRetries(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountNone)
	conn := Wrap(formclient.NewLocal(db), Profile{RateLimitProb: 1, RateLimitBurst: 2}, 3)
	ctx := context.Background()
	q := overflowQuery(t, db)

	before := conn.Stats().RateLimitRetries
	res, err := conn.Execute(ctx, q)
	if err != nil {
		t.Fatalf("burst within budget must succeed: %v", err)
	}
	if res == nil || len(res.Tuples) == 0 {
		t.Fatal("no result")
	}
	st := conn.FaultStats()
	if st.RateLimited != 2 {
		t.Fatalf("RateLimited = %d, want 2", st.RateLimited)
	}
	// The AIMD limiter watches the connector's retry counter: injected
	// 429s must advance it exactly like formclient.HTTP's internal
	// retries do.
	if adv := conn.Stats().RateLimitRetries - before; adv != 2 {
		t.Fatalf("RateLimitRetries advanced by %d, want 2", adv)
	}

	// The burst is consumed: the same query now flows cleanly.
	if _, err := conn.Execute(ctx, q); err != nil {
		t.Fatalf("second execution: %v", err)
	}
	if st := conn.FaultStats(); st.RateLimited != 2 {
		t.Fatalf("burst not consumed: RateLimited = %d", st.RateLimited)
	}
}

func TestRateLimitBurstBeyondBudgetSurfacesThenRecovers(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountNone)
	conn := Wrap(formclient.NewLocal(db), Profile{RateLimitProb: 1, RateLimitBurst: 7, MaxRetries: 5}, 3)
	ctx := context.Background()
	q := overflowQuery(t, db)

	if _, err := conn.Execute(ctx, q); !errors.Is(err, formclient.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if st := conn.FaultStats(); st.Exhausted429s != 1 {
		t.Fatalf("Exhausted429s = %d, want 1", st.Exhausted429s)
	}
	// 5 of the 7-burst are consumed; the next execution eats the last two
	// as internal retries and succeeds: liveness by construction.
	if _, err := conn.Execute(ctx, q); err != nil {
		t.Fatalf("post-burst execution: %v", err)
	}
}

func TestTransientBlipThenRecovery(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountNone)
	conn := Wrap(formclient.NewLocal(db), Profile{TransientProb: 1, TransientBurst: 2}, 3)
	ctx := context.Background()
	q := overflowQuery(t, db)

	for i := 0; i < 2; i++ {
		if _, err := conn.Execute(ctx, q); !errors.Is(err, formclient.ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want ErrTransient", i, err)
		}
	}
	if _, err := conn.Execute(ctx, q); err != nil {
		t.Fatalf("post-burst: %v", err)
	}
	if st := conn.FaultStats(); st.Transients != 2 {
		t.Fatalf("Transients = %d, want 2", st.Transients)
	}
}

func TestJitterTrimsAndFlagsOverflow(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountNone)
	inner := formclient.NewLocal(db)
	conn := Wrap(inner, Profile{TopKJitter: 1}, 99)
	ctx := context.Background()
	q := overflowQuery(t, db)

	want, _ := db.Execute(q)
	res, err := conn.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) >= len(want.Tuples) || len(res.Tuples) < 1 {
		t.Fatalf("jitter kept %d of %d rows", len(res.Tuples), len(want.Tuples))
	}
	if !res.Overflow {
		t.Fatal("a trimmed page must report overflow — hiding rows silently biases the walk")
	}
	// Determinism: an independent wrapper with the same seed trims
	// identically.
	conn2 := Wrap(formclient.NewLocal(db), Profile{TopKJitter: 1}, 99)
	res2, err := conn2.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tuples) != len(res.Tuples) {
		t.Fatalf("jitter nondeterministic: %d vs %d rows", len(res2.Tuples), len(res.Tuples))
	}
	// Immutability: the inner result must be untouched.
	again, _ := db.Execute(q)
	if len(again.Tuples) != len(want.Tuples) {
		t.Fatal("jitter mutated the shared inner result")
	}
}

func TestReorderPermutesDeterministically(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountNone)
	conn := Wrap(formclient.NewLocal(db), Profile{Reorder: true}, 7)
	ctx := context.Background()
	q := overflowQuery(t, db)

	want, _ := db.Execute(q)
	res, err := conn.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatalf("reorder changed row count: %d vs %d", len(res.Tuples), len(want.Tuples))
	}
	sameOrder := true
	seen := make(map[int]bool, len(want.Tuples))
	for i := range want.Tuples {
		if res.Tuples[i].ID != want.Tuples[i].ID {
			sameOrder = false
		}
		seen[want.Tuples[i].ID] = true
	}
	if sameOrder {
		t.Fatal("reorder left the rank order intact")
	}
	for i := range res.Tuples {
		if !seen[res.Tuples[i].ID] {
			t.Fatalf("reorder invented row %d", res.Tuples[i].ID)
		}
	}
	res2, _ := conn.Execute(ctx, q)
	for i := range res.Tuples {
		if res.Tuples[i].ID != res2.Tuples[i].ID {
			t.Fatal("reorder nondeterministic across executions")
		}
	}
}

func TestCountRounding(t *testing.T) {
	db := testDB(t, 203, 25, hiddendb.CountExact)
	conn := Wrap(formclient.NewLocal(db), Profile{CountRoundTo: 10}, 7)
	res, err := conn.Execute(context.Background(), hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 200 {
		t.Fatalf("Count = %d, want 200 (203 rounded down to 10s)", res.Count)
	}
	if st := conn.FaultStats(); st.RoundedCounts != 1 {
		t.Fatalf("RoundedCounts = %d, want 1", st.RoundedCounts)
	}
}

func TestBatchCapabilityPreservedAndFaulted(t *testing.T) {
	db := testDB(t, 200, 25, hiddendb.CountNone)
	conn := Wrap(formclient.NewLocal(db), Profile{TransientProb: 1, TransientBurst: 1}, 5)
	be, ok := conn.(interface {
		ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error)
	})
	if !ok {
		t.Fatal("wrapping a batch-capable conn lost the batch capability")
	}
	ctx := context.Background()
	qs := []hiddendb.Query{
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1}),
	}
	// The batch's combined signature blips once (one wire interaction),
	// then the retried batch flows.
	if _, err := be.ExecuteBatch(ctx, qs); !errors.Is(err, formclient.ErrTransient) {
		t.Fatalf("first batch: err = %v, want ErrTransient", err)
	}
	results, err := be.ExecuteBatch(ctx, qs)
	if err != nil {
		t.Fatalf("retried batch: %v", err)
	}
	if len(results) != len(qs) {
		t.Fatalf("batch answered %d of %d", len(results), len(qs))
	}
}

func TestPresetsResolve(t *testing.T) {
	for _, name := range PresetNames() {
		p, ok := Preset(name)
		if !ok || p.Name != name {
			t.Fatalf("preset %q does not resolve", name)
		}
	}
	if _, ok := Preset("nonsense"); ok {
		t.Fatal("unknown preset resolved")
	}
	if p, _ := Preset("none"); p.Active() {
		t.Fatal("the none preset injects faults")
	}
	for _, name := range []string{"flaky", "jitter", "hostile"} {
		if p, _ := Preset(name); !p.Active() {
			t.Fatalf("preset %q inactive", name)
		}
	}
}
