package faultform

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// Profile configures one adversarial interface persona. The zero Profile
// injects nothing.
type Profile struct {
	// Name identifies the profile in reports and metrics labels.
	Name string

	// RateLimitProb is the probability a query is 429-hit: its first
	// RateLimitBurst wire attempts (default 2) answer 429 before the site
	// calms down for that query. Bursts shorter than MaxRetries (default
	// 5, formclient.HTTP's budget) are absorbed by the emulated client
	// retry loop — visible to the AIMD limiter as a retry-counter advance;
	// longer bursts surface formclient.ErrRateLimited.
	RateLimitProb  float64
	RateLimitBurst int

	// TransientProb is the probability a query blips: its first
	// TransientBurst attempts (default 1) fail with formclient.ErrTransient
	// — a 5xx or timeout the layer above must retry.
	TransientProb  float64
	TransientBurst int

	// TopKJitter, in (0,1], varies the visible page size per query: a
	// jittered query hides up to this fraction of its returned rows (at
	// least one row stays). Hidden rows flip the result to overflow, the
	// way a site whose k fluctuates under-reports — the drill-down must
	// keep descending instead of trusting the short page.
	TopKJitter float64

	// Reorder shuffles each result's visible rows deterministically —
	// ranked/reordered interfaces must not bias row-picking samplers.
	Reorder bool

	// CountRoundTo rounds reported counts down to a multiple ("about
	// 1,200 results"), the stale/estimated count shape; values < 2 are
	// off. Counts already absent stay absent.
	CountRoundTo int

	// SlowStartCalls delays each of the first N wire interactions by
	// SlowStartLatency — a cold site warming up. Latency, when set, delays
	// every wire interaction.
	SlowStartCalls   int
	SlowStartLatency time.Duration
	Latency          time.Duration

	// MaxRetries is the emulated client's 429 retry budget per logical
	// execution (default 5, mirroring formclient.HTTPOptions).
	MaxRetries int
}

// Active reports whether the profile injects anything at all.
func (p Profile) Active() bool {
	return p.RateLimitProb > 0 || p.TransientProb > 0 || p.TopKJitter > 0 ||
		p.Reorder || p.CountRoundTo > 1 || p.SlowStartCalls > 0 || p.Latency > 0
}

// Presets returns the named fault profiles the scenario matrix and the
// daemon's -fault-profile flag accept, "none" first.
func Presets() []Profile {
	return []Profile{
		{Name: "none"},
		{
			// Availability faults only: the interface answers correctly but
			// rudely. Exercises AIMD backoff, client 429 retries and the
			// execution layer's transient retry without touching content.
			Name:          "flaky",
			RateLimitProb: 0.05, RateLimitBurst: 2,
			TransientProb: 0.04, TransientBurst: 1,
		},
		{
			// Content faults only: pages shrink, rows arrive reordered,
			// counts are rounded. Exercises the walk's overflow handling
			// and rank-independence.
			Name:       "jitter",
			TopKJitter: 0.5,
			Reorder:    true, CountRoundTo: 10,
		},
		{
			// Everything at once, plus a cold start.
			Name:          "hostile",
			RateLimitProb: 0.08, RateLimitBurst: 2,
			TransientProb: 0.06, TransientBurst: 2,
			TopKJitter: 0.5,
			Reorder:    true, CountRoundTo: 25,
			SlowStartCalls: 20, SlowStartLatency: 200 * time.Microsecond,
		},
	}
}

// Preset returns the named profile.
func Preset(name string) (Profile, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// PresetNames lists the accepted profile names in order.
func PresetNames() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Stats counts the faults injected so far.
type Stats struct {
	// RateLimited is the number of simulated 429 responses; Exhausted429s
	// counts logical executions that ran out of the emulated retry budget
	// (and surfaced ErrRateLimited).
	RateLimited   int64 `json:"rate_limited"`
	Exhausted429s int64 `json:"exhausted_429s"`
	// Transients is the number of injected blips (ErrTransient returns).
	Transients int64 `json:"transients"`
	// Jittered counts results whose visible rows were trimmed, Reordered
	// those shuffled, RoundedCounts those whose count was coarsened.
	Jittered      int64 `json:"jittered"`
	Reordered     int64 `json:"reordered"`
	RoundedCounts int64 `json:"rounded_counts"`
	// SlowCalls counts wire interactions delayed by slow-start or latency.
	SlowCalls int64 `json:"slow_calls"`
}

// Total is the grand total of injected fault events.
func (s Stats) Total() int64 {
	return s.RateLimited + s.Exhausted429s + s.Transients + s.Jittered +
		s.Reordered + s.RoundedCounts + s.SlowCalls
}

// Faulty is the wrapped connector: a formclient.Conn that also reports
// what it injected.
type Faulty interface {
	formclient.Conn
	// FaultStats snapshots the injection counters.
	FaultStats() Stats
	// FaultProfile returns the active profile.
	FaultProfile() Profile
}

// batchExecer mirrors queryexec.BatchExecer structurally (importing it
// here would be a needless dependency).
type batchExecer interface {
	ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error)
}

// Wrap decorates inner with the profile's faults, deterministically from
// seed. When inner supports batch execution the wrapper does too, so the
// execution layer's micro-batching (and its fault fallback) stays
// exercised.
func Wrap(inner formclient.Conn, p Profile, seed int64) Faulty {
	if p.RateLimitBurst <= 0 {
		p.RateLimitBurst = 2
	}
	if p.TransientBurst <= 0 {
		p.TransientBurst = 1
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 5
	}
	c := &Conn{
		inner:   inner,
		profile: p,
		seed:    uint64(seed),
		sleep:   sleepCtx,
		att:     make(map[uint64]*attemptState),
	}
	if be, ok := inner.(batchExecer); ok {
		return &BatchConn{Conn: c, batch: be}
	}
	return c
}

// Conn is the fault-injecting connector for batchless inner connectors.
type Conn struct {
	inner   formclient.Conn
	profile Profile
	seed    uint64
	sleep   func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	att map[uint64]*attemptState // per query-signature fault consumption

	wireCalls  atomic.Int64
	simRetries atomic.Int64 // emulated client 429 retries, surfaced in Stats()

	sRateLimited atomic.Int64
	sExhausted   atomic.Int64
	sTransients  atomic.Int64
	sJittered    atomic.Int64
	sReordered   atomic.Int64
	sRounded     atomic.Int64
	sSlow        atomic.Int64
}

// attemptState tracks how much of a query's fault budget is consumed, so
// bursts are finite and every walk eventually gets through: liveness by
// construction.
type attemptState struct {
	rl, tr int
}

// maxAttemptEntries bounds the fault-consumption map: a long-running
// chaos deployment (hdsamplerd -fault-profile) must not grow memory with
// every distinct query it ever faulted.
const maxAttemptEntries = 1 << 16

// state returns (creating) the attempt state for a query signature; the
// caller must hold c.mu. At the cap the map resets wholesale: long-spent
// bursts may replay once, which the retry budgets above absorb (per
// logical execution the exposure is still bounded by the burst lengths);
// unbounded growth would not be absorbed by anything.
func (c *Conn) stateLocked(hash uint64) *attemptState {
	a, ok := c.att[hash]
	if !ok {
		if len(c.att) >= maxAttemptEntries {
			clear(c.att)
		}
		a = &attemptState{}
		c.att[hash] = a
	}
	return a
}

// Schema implements formclient.Conn.
func (c *Conn) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	return c.inner.Schema(ctx)
}

// Stats implements formclient.Conn: the inner connector's traffic plus
// the emulated client-side 429 retries, so the AIMD limiter above sees
// injected congestion exactly as it would see the real thing.
func (c *Conn) Stats() formclient.Stats {
	s := c.inner.Stats()
	s.RateLimitRetries += c.simRetries.Load()
	return s
}

// FaultStats implements Faulty.
func (c *Conn) FaultStats() Stats {
	return Stats{
		RateLimited:   c.sRateLimited.Load(),
		Exhausted429s: c.sExhausted.Load(),
		Transients:    c.sTransients.Load(),
		Jittered:      c.sJittered.Load(),
		Reordered:     c.sReordered.Load(),
		RoundedCounts: c.sRounded.Load(),
		SlowCalls:     c.sSlow.Load(),
	}
}

// FaultProfile implements Faulty.
func (c *Conn) FaultProfile() Profile { return c.profile }

// Execute implements formclient.Conn.
func (c *Conn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	if err := c.preflight(ctx, q.Hash(), q.Key()); err != nil {
		return nil, err
	}
	res, err := c.inner.Execute(ctx, q)
	if err != nil {
		return nil, err
	}
	return c.mutate(q.Hash(), res), nil
}

// preflight emulates the wire-level fault sequence of one logical
// execution identified by a signature hash: latency, the client-retried
// 429 burst, then a transient blip.
func (c *Conn) preflight(ctx context.Context, hash uint64, key string) error {
	n := c.wireCalls.Add(1)
	if c.profile.SlowStartCalls > 0 && n <= int64(c.profile.SlowStartCalls) {
		c.sSlow.Add(1)
		if err := c.sleep(ctx, c.profile.SlowStartLatency); err != nil {
			return err
		}
	}
	if d := c.profile.Latency; d > 0 {
		c.sSlow.Add(1)
		if err := c.sleep(ctx, d); err != nil {
			return err
		}
	}
	if err := c.sim429(ctx, hash, key); err != nil {
		return err
	}
	return c.simTransient(hash, key)
}

// sim429 plays out the emulated HTTP client's 429 retry loop for a
// rate-limit-hit query: each simulated 429 either becomes an internal
// retry (advancing the retry counter the AIMD limiter watches) or, past
// the budget, ErrRateLimited.
func (c *Conn) sim429(ctx context.Context, hash uint64, key string) error {
	if c.profile.RateLimitProb <= 0 || !c.hit(hash, saltRateLimit, c.profile.RateLimitProb) {
		return nil
	}
	for attempt := 0; attempt < c.profile.MaxRetries; attempt++ {
		c.mu.Lock()
		a := c.stateLocked(hash)
		hit := a.rl < c.profile.RateLimitBurst
		if hit {
			a.rl++
		}
		c.mu.Unlock()
		if !hit {
			return nil // the burst is spent; the site lets this one through
		}
		c.sRateLimited.Add(1)
		if attempt == c.profile.MaxRetries-1 {
			break
		}
		c.simRetries.Add(1)
		if err := c.sleep(ctx, 50*time.Microsecond); err != nil {
			return err
		}
	}
	c.sExhausted.Add(1)
	return fmt.Errorf("%w: faultform: %q kept answering 429", formclient.ErrRateLimited, key)
}

// simTransient injects one blip while the query's transient burst lasts.
func (c *Conn) simTransient(hash uint64, key string) error {
	if c.profile.TransientProb <= 0 || !c.hit(hash, saltTransient, c.profile.TransientProb) {
		return nil
	}
	c.mu.Lock()
	a := c.stateLocked(hash)
	hit := a.tr < c.profile.TransientBurst
	if hit {
		a.tr++
	}
	c.mu.Unlock()
	if !hit {
		return nil
	}
	c.sTransients.Add(1)
	return fmt.Errorf("%w: faultform: injected blip for %q", formclient.ErrTransient, key)
}

// mutate applies the content faults — top-k jitter, reordering, count
// rounding — as pure functions of the query signature, never touching the
// inner result (Results are immutable by convention).
func (c *Conn) mutate(hash uint64, res *hiddendb.Result) *hiddendb.Result {
	p := c.profile
	trim := 0
	if p.TopKJitter > 0 && len(res.Tuples) > 1 {
		trim = int(c.u01(hash, saltJitter) * p.TopKJitter * float64(len(res.Tuples)))
		if trim >= len(res.Tuples) {
			trim = len(res.Tuples) - 1
		}
	}
	round := p.CountRoundTo > 1 && res.Count != hiddendb.CountAbsent && res.Count%p.CountRoundTo != 0
	reorder := p.Reorder && len(res.Tuples) > 1
	if trim == 0 && !round && !reorder {
		return res
	}
	out := &hiddendb.Result{Overflow: res.Overflow, Count: res.Count}
	out.Tuples = make([]hiddendb.Tuple, len(res.Tuples))
	copy(out.Tuples, res.Tuples)
	if reorder {
		c.sReordered.Add(1)
		shuffle(out.Tuples, mix(c.seed, hash, saltReorder))
	}
	if trim > 0 {
		c.sJittered.Add(1)
		out.Tuples = out.Tuples[:len(out.Tuples)-trim]
		// Rows exist beyond the page: the honest flag for a shrunken page
		// is overflow, and the drill-down must descend rather than treat
		// the page as complete (silently unreachable rows would bias it).
		out.Overflow = true
	}
	if round {
		c.sRounded.Add(1)
		out.Count -= out.Count % p.CountRoundTo
	}
	return out
}

// hit decides a per-query fault membership from the seed, the query
// signature and a salt.
func (c *Conn) hit(hash, salt uint64, prob float64) bool {
	return c.u01(hash, salt) < prob
}

// u01 maps (seed, hash, salt) onto [0,1).
func (c *Conn) u01(hash, salt uint64) float64 {
	return float64(mix(c.seed, hash, salt)>>11) / float64(1<<53)
}

// BatchConn adds batch execution to a fault-injecting connector whose
// inner connector supports it.
type BatchConn struct {
	*Conn
	batch batchExecer
}

// ExecuteBatch implements the batch capability: one wire interaction for
// the whole batch, so wire-level faults are decided by the batch's
// combined signature (a 429 burst or a blip fails every member at once —
// exactly how one HTTP response behaves), while content faults stay
// per-query.
func (b *BatchConn) ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error) {
	combined := b.seed
	for _, q := range qs {
		combined = mix(combined, q.Hash())
	}
	if err := b.preflight(ctx, combined, fmt.Sprintf("batch(%d)", len(qs))); err != nil {
		return nil, err
	}
	results, err := b.batch.ExecuteBatch(ctx, qs)
	if err != nil {
		return nil, err
	}
	out := make([]*hiddendb.Result, len(results))
	for i, res := range results {
		if i < len(qs) {
			out[i] = b.mutate(qs[i].Hash(), res)
		} else {
			out[i] = res
		}
	}
	return out, nil
}

// shuffle permutes tuples with a Fisher–Yates walk driven by splitmix64.
func shuffle(ts []hiddendb.Tuple, state uint64) {
	for i := len(ts) - 1; i > 0; i-- {
		state = splitmix64(state)
		j := int(state % uint64(i+1))
		ts[i], ts[j] = ts[j], ts[i]
	}
}

// Salts separate the fault families' hash streams.
const (
	saltRateLimit uint64 = 0xA1
	saltTransient uint64 = 0xB2
	saltJitter    uint64 = 0xC3
	saltReorder   uint64 = 0xD4
)

// mix folds values into one 64-bit hash via splitmix64.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h = splitmix64(h ^ v)
	}
	return h
}

// splitmix64 is the standard 64-bit finalizer.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

var _ formclient.Conn = (*Conn)(nil)
var _ Faulty = (*BatchConn)(nil)
