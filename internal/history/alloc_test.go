package history

import (
	"context"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// Allocation ceilings for the cache's hot paths, guarding the
// zero-allocation rekeying: a rule-1 hit costs only the Result envelope
// (rows are shared with the immutable entry), and sibling-count probes
// render scratch signatures instead of materializing Querys.

func TestExecuteHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	_, _, cache := newCachedConn(t, datagen.IIDBoolean(5, 200, 0.5, 3), 50, hiddendb.CountNone, Options{})
	ctx := context.Background()
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1}, hiddendb.Predicate{Attr: 2, Value: 0})
	if _, err := cache.Execute(ctx, q); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := cache.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	})
	if n > 1 {
		t.Fatalf("cache hit allocated %.1f per call, want <= 1 (the Result envelope)", n)
	}
}

// siblingDB builds a database whose attribute "a" has a domain value (z)
// no tuple carries, so sibling-count inference can pin {a=z} empty once
// the parent and both real siblings are cached with exact counts.
func siblingDB(t *testing.T) (*Cache, hiddendb.Query) {
	t.Helper()
	schema := hiddendb.MustSchema("sib",
		hiddendb.CatAttr("a", "x", "y", "z"),
		hiddendb.CatAttr("b", "p", "q"),
	)
	tuples := make([]hiddendb.Tuple, 40)
	for i := range tuples {
		tuples[i] = hiddendb.Tuple{Vals: []int{i % 2, i % 2}}
	}
	db, err := hiddendb.New(schema, tuples, nil, hiddendb.Config{K: 10, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	cache := New(formclient.NewLocal(db), Options{TrustCounts: true})
	ctx := context.Background()
	for _, q := range []hiddendb.Query{
		hiddendb.EmptyQuery(),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1}),
	} {
		if _, err := cache.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	return cache, hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 2})
}

func TestInferSiblingCountsPinsEmpty(t *testing.T) {
	cache, q := siblingDB(t)
	res, err := cache.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() || res.Count != 0 {
		t.Fatalf("sibling inference failed: %+v", res)
	}
	if st := cache.CacheStats(); st.Inferred == 0 {
		t.Fatalf("answer was not inferred: %+v", st)
	}
}

func TestInferSiblingProbeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	cache, q := siblingDB(t)
	schema := cache.schema.Load()
	// Probe the rule-4 path directly so repeated runs never turn into
	// rule-1 hits of a stored answer.
	n := testing.AllocsPerRun(200, func() {
		res := cache.inferFromSiblingCounts(schema, q)
		if res == nil || res.Count != 0 {
			t.Fatal("sibling inference failed")
		}
	})
	// One Result for the pinned-empty answer; the parent and sibling
	// probes themselves must be allocation-free.
	if n > 1 {
		t.Fatalf("sibling probes allocated %.1f per call, want <= 1", n)
	}
}

// TestShardCollisionChainFullKeyVerify fabricates entries whose signature
// hashes collide and drives the shard chain operations directly: every
// probe must fall back to full-key verification, and chain surgery
// (replacement, detach at head/middle/tail) must never drop a bystander.
func TestShardCollisionChainFullKeyVerify(t *testing.T) {
	sh := &shard{entries: make(map[uint64]*entry)}
	const h = uint64(0xdecafbad)
	q1 := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	q2 := hiddendb.MustQuery(hiddendb.Predicate{Attr: 1, Value: 1})
	q3 := hiddendb.MustQuery(hiddendb.Predicate{Attr: 2, Value: 2})
	e1 := &entry{q: q1, hash: h, count: 1, slot: -1}
	e2 := &entry{q: q2, hash: h, count: 2, slot: -1}
	e3 := &entry{q: q3, hash: h, count: 3, slot: -1}
	for _, e := range []*entry{e1, e2, e3} {
		if old := sh.put(e); old != nil {
			t.Fatalf("put(%q) displaced %q", e.q.Key(), old.q.Key())
		}
	}
	if len(sh.entries) != 1 {
		t.Fatalf("colliding entries occupy %d slots, want 1", len(sh.entries))
	}
	if sh.size() != 3 {
		t.Fatalf("size = %d, want 3", sh.size())
	}
	for _, e := range []*entry{e1, e2, e3} {
		if got := sh.get(h, e.q.Key()); got != e {
			t.Fatalf("get(%q) = %v, want entry with count %d", e.q.Key(), got, e.count)
		}
		if got := sh.getBytes(h, []byte(e.q.Key())); got != e {
			t.Fatalf("getBytes(%q) = %v, want entry with count %d", e.q.Key(), got, e.count)
		}
	}
	if got := sh.get(h, "9=9"); got != nil {
		t.Fatalf("get of absent key returned %q", got.q.Key())
	}

	// Same-key replacement must unlink exactly the old entry.
	e2b := &entry{q: q2, hash: h, count: 22, slot: -1}
	if old := sh.put(e2b); old != e2 {
		t.Fatalf("replacement displaced %v, want the old same-key entry", old)
	}
	if sh.size() != 3 || sh.get(h, q2.Key()) != e2b {
		t.Fatal("replacement corrupted the chain")
	}

	// Detach middle, then head, then last; bystanders must survive.
	sh.detach(e2b)
	if sh.get(h, q2.Key()) != nil || sh.get(h, q1.Key()) != e1 || sh.get(h, q3.Key()) != e3 {
		t.Fatal("detach(middle) corrupted the chain")
	}
	sh.detach(e3)
	if sh.get(h, q1.Key()) != e1 || sh.get(h, q3.Key()) != nil {
		t.Fatal("detach(head) corrupted the chain")
	}
	sh.detach(e1)
	if len(sh.entries) != 0 {
		t.Fatalf("slot not reclaimed after final detach: %d", len(sh.entries))
	}
}
