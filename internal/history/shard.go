package history

import "sync"

// shard is one hash partition of the entry map plus its CLOCK eviction
// ring. Entries are keyed by their query's 64-bit signature hash; the
// (vanishingly rare) queries whose signatures collide share a slot as a
// short linked chain, and every probe verifies the full canonical key, so
// a collision costs a pointer hop, never a wrong answer. The ring holds
// only evictable entries; pinned entries live in the map alone and can
// never become victims.
type shard struct {
	mu        sync.RWMutex
	entries   map[uint64]*entry
	n         int      // resident entries, chains included (occupancy in O(1))
	ring      []*entry // CLOCK ring over evictable entries
	hand      int      // next ring position the clock hand inspects
	protected int      // pinned entries resident in this shard
}

// get returns the entry with the given signature, walking the collision
// chain and verifying the full key. The caller holds sh.mu. The chain
// discipline mirrors queryexec's findCall/removeCall (internal/queryexec/
// exec.go) — a change to either unlink path likely applies to both; each
// has its own collision-chain test pinning the surgery.
func (sh *shard) get(hash uint64, key string) *entry {
	for e := sh.entries[hash]; e != nil; e = e.next {
		if e.q.Key() == key {
			return e
		}
	}
	return nil
}

// getBytes is get with the key in a scratch buffer — the []byte→string
// conversion in the comparison does not allocate.
func (sh *shard) getBytes(hash uint64, key []byte) *entry {
	for e := sh.entries[hash]; e != nil; e = e.next {
		if e.q.Key() == string(key) {
			return e
		}
	}
	return nil
}

// put inserts e at the head of its hash slot, unlinking and returning any
// existing entry with the same full key. The caller holds sh.mu for
// writing.
func (sh *shard) put(e *entry) (old *entry) {
	head := sh.entries[e.hash]
	var prev *entry
	for cur := head; cur != nil; cur = cur.next {
		if cur.q.Key() == e.q.Key() {
			old = cur
			if prev == nil {
				head = cur.next
			} else {
				prev.next = cur.next
			}
			cur.next = nil
			break
		}
		prev = cur
	}
	e.next = head
	sh.entries[e.hash] = e
	if old == nil {
		sh.n++
	}
	return old
}

// detach unlinks e from its hash chain. The caller holds sh.mu; e must be
// resident.
func (sh *shard) detach(e *entry) {
	sh.n--
	head := sh.entries[e.hash]
	if head == e {
		if e.next == nil {
			delete(sh.entries, e.hash)
		} else {
			sh.entries[e.hash] = e.next
		}
		e.next = nil
		return
	}
	for cur := head; cur != nil; cur = cur.next {
		if cur.next == e {
			cur.next = e.next
			e.next = nil
			return
		}
	}
}

// size returns the shard's resident entry count, chains included. The
// caller holds sh.mu. O(1): occupancy reporting (metrics scrapes, Len)
// must not scan chains under the lock writers need.
func (sh *shard) size() int { return sh.n }

// unlink removes an entry from the eviction ring (swap-with-last); the
// caller holds sh.mu.
func (sh *shard) unlink(e *entry) {
	last := len(sh.ring) - 1
	moved := sh.ring[last]
	sh.ring[e.slot] = moved
	moved.slot = e.slot
	sh.ring[last] = nil
	sh.ring = sh.ring[:last]
	e.slot = -1
}

// evictOne runs the CLOCK hand over the ring: recently-touched entries
// get their reference bit cleared and a second chance; the first entry
// found with a clear bit is evicted. Returns nil when the shard has no
// evictable entries.
func (sh *shard) evictOne() *entry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(sh.ring)
	if n == 0 {
		return nil
	}
	// Two laps suffice when the bits are quiescent: the first lap clears
	// every bit the hand passes. Concurrent touches can keep re-setting
	// bits, so fall back to evicting at the hand rather than spinning.
	for i := 0; i < 2*n; i++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		if e.ref.CompareAndSwap(true, false) {
			sh.hand++
			continue
		}
		sh.remove(e)
		return e
	}
	if sh.hand >= len(sh.ring) {
		sh.hand = 0
	}
	e := sh.ring[sh.hand]
	sh.remove(e)
	return e
}

// remove deletes an evictable entry from both the ring and the map; the
// caller holds sh.mu.
func (sh *shard) remove(e *entry) {
	sh.unlink(e)
	sh.detach(e)
}
