package history

import "sync"

// shard is one hash partition of the entry map plus its CLOCK eviction
// ring. The ring holds only evictable entries; pinned entries live in the
// map alone and can never become victims.
type shard struct {
	mu        sync.RWMutex
	entries   map[string]*entry
	ring      []*entry // CLOCK ring over evictable entries
	hand      int      // next ring position the clock hand inspects
	protected int      // pinned entries resident in this shard
}

// unlink removes an entry from the eviction ring (swap-with-last); the
// caller holds sh.mu.
func (sh *shard) unlink(e *entry) {
	last := len(sh.ring) - 1
	moved := sh.ring[last]
	sh.ring[e.slot] = moved
	moved.slot = e.slot
	sh.ring[last] = nil
	sh.ring = sh.ring[:last]
	e.slot = -1
}

// evictOne runs the CLOCK hand over the ring: recently-touched entries
// get their reference bit cleared and a second chance; the first entry
// found with a clear bit is evicted. Returns nil when the shard has no
// evictable entries.
func (sh *shard) evictOne() *entry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n := len(sh.ring)
	if n == 0 {
		return nil
	}
	// Two laps suffice when the bits are quiescent: the first lap clears
	// every bit the hand passes. Concurrent touches can keep re-setting
	// bits, so fall back to evicting at the hand rather than spinning.
	for i := 0; i < 2*n; i++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		e := sh.ring[sh.hand]
		if e.ref.CompareAndSwap(true, false) {
			sh.hand++
			continue
		}
		sh.remove(e)
		return e
	}
	if sh.hand >= len(sh.ring) {
		sh.hand = 0
	}
	e := sh.ring[sh.hand]
	sh.remove(e)
	return e
}

// remove deletes an evictable entry from both the ring and the map; the
// caller holds sh.mu.
func (sh *shard) remove(e *entry) {
	sh.unlink(e)
	delete(sh.entries, e.key)
}
