package history

import (
	"sync"

	"hdsampler/internal/hiddendb"
)

// ancestorIndex is a subset trie over complete (non-overflow) cached
// answers, keyed by predicates in canonical (attribute-sorted) order. An
// ancestor of query q is any cached query whose predicate set is a proper
// subset of q's; because both are sorted, an ancestor's predicate
// sequence is a subsequence of q's, so the trie walk only descends edges
// labeled with q's own predicates. Lookup work is therefore proportional
// to the subset-paths actually present — O(d·matches) — where the old
// implementation probed all 2^d subsets of q unconditionally.
//
// Predicates are read straight off the Query via its indexed accessor;
// the trie never copies a predicate list.
//
// Writes (one per real issued query) take the exclusive lock; lookups
// share the read lock, so concurrent workers infer in parallel.
type ancestorIndex struct {
	mu   sync.RWMutex
	root trieNode
}

// trieNode is one prefix of a canonical predicate sequence. e is non-nil
// when a complete cached answer terminates here.
type trieNode struct {
	children map[hiddendb.Predicate]*trieNode
	e        *entry
}

// insert registers a complete answer under its predicate sequence,
// replacing any previous entry for the same query.
func (ix *ancestorIndex) insert(q hiddendb.Query, e *entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := &ix.root
	for i := 0; i < q.Len(); i++ {
		p := q.Pred(i)
		child, ok := n.children[p]
		if !ok {
			if n.children == nil {
				n.children = make(map[hiddendb.Predicate]*trieNode)
			}
			child = &trieNode{}
			n.children[p] = child
		}
		n = child
	}
	n.e = e
}

// remove clears the terminal for q if it still holds exactly e (a
// replacement may have installed a newer entry) and prunes now-empty
// nodes on the way back up.
func (ix *ancestorIndex) remove(q hiddendb.Query, e *entry) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	path := make([]*trieNode, 1, q.Len()+1)
	path[0] = &ix.root
	n := &ix.root
	for i := 0; i < q.Len(); i++ {
		child := n.children[q.Pred(i)]
		if child == nil {
			return
		}
		n = child
		path = append(path, n)
	}
	if n.e != e {
		return
	}
	n.e = nil
	for i := len(path) - 1; i >= 1; i-- {
		nd := path[i]
		if nd.e != nil || len(nd.children) > 0 {
			break
		}
		delete(path[i-1].children, q.Pred(i-1))
	}
}

// bestAncestor returns the deepest complete cached answer whose predicate
// set is a proper subset of q's (the query itself is excluded), or nil.
// Deeper ancestors are preferred because they leave fewer rows to filter.
func (ix *ancestorIndex) bestAncestor(q hiddendb.Query) *entry {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var best *entry
	bestDepth := -1
	var walk func(n *trieNode, from, depth int)
	walk = func(n *trieNode, from, depth int) {
		if n.e != nil && depth < q.Len() && depth > bestDepth {
			best, bestDepth = n.e, depth
		}
		if len(n.children) == 0 {
			return
		}
		for j := from; j < q.Len(); j++ {
			if child, ok := n.children[q.Pred(j)]; ok {
				walk(child, j+1, depth+1)
			}
		}
	}
	walk(&ix.root, 0, 0)
	return best
}
