package history

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// TestConcurrentOverlappingQueries exercises one shared cache from many
// goroutines issuing overlapping ancestor/descendant queries (run under
// -race in CI): every answer must equal the uncached connector's answer,
// and the counters must account for every call.
func TestConcurrentOverlappingQueries(t *testing.T) {
	const (
		workers = 8
		rounds  = 150
	)
	ds := datagen.IIDBoolean(6, 80, 0.5, 42)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 20, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	local := formclient.NewLocal(db)
	cache := New(local, Options{TrustCounts: true, Shards: 8})
	ctx := context.Background()

	var calls atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			// Walk ancestor chains: extend a query predicate by predicate
			// so goroutines constantly hit each other's ancestors.
			for r := 0; r < rounds; r++ {
				q := hiddendb.EmptyQuery()
				for a := 0; a < 6; a++ {
					if rng.Intn(2) == 0 {
						continue
					}
					q = q.With(a, rng.Intn(2))
					got, err := cache.Execute(ctx, q)
					if err != nil {
						errc <- err
						return
					}
					calls.Add(1)
					want, err := db.Execute(q)
					if err != nil {
						errc <- err
						return
					}
					if got.Overflow != want.Overflow {
						t.Errorf("query %v: overflow %v, want %v", q, got.Overflow, want.Overflow)
						return
					}
					if !got.Overflow {
						if len(got.Tuples) != len(want.Tuples) {
							t.Errorf("query %v: %d tuples, want %d", q, len(got.Tuples), len(want.Tuples))
							return
						}
						for i := range want.Tuples {
							if got.Tuples[i].ID != want.Tuples[i].ID {
								t.Errorf("query %v: tuple %d differs", q, i)
								return
							}
						}
					}
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := cache.CacheStats()
	if got := st.Issued + st.Saved(); got != calls.Load() {
		t.Fatalf("issued %d + saved %d = %d, want every call accounted (%d)",
			st.Issued, st.Saved(), got, calls.Load())
	}
	if st.Saved() == 0 {
		t.Fatal("overlapping workload produced no cache savings")
	}
	if got := local.Stats().Queries; got != st.Issued {
		t.Fatalf("inner connector saw %d queries, cache issued %d", got, st.Issued)
	}
}

// TestConcurrentStoreAndEvict hammers a small-capacity cache from many
// goroutines so stores, CLOCK evictions and trie updates interleave; the
// invariants are: no panic/race, the cap holds, and answers stay correct.
func TestConcurrentStoreAndEvict(t *testing.T) {
	ds := datagen.IIDBoolean(8, 120, 0.5, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	cache := New(formclient.NewLocal(db), Options{MaxEntries: 32, Shards: 4})
	ctx := context.Background()

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				q := hiddendb.EmptyQuery()
				for a := 0; a < 8; a++ {
					if rng.Intn(2) == 0 {
						q = q.With(a, rng.Intn(2))
					}
				}
				got, err := cache.Execute(ctx, q)
				if err != nil {
					t.Error(err)
					return
				}
				want, err := db.Execute(q)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Overflow != want.Overflow || (!got.Overflow && len(got.Tuples) != len(want.Tuples)) {
					t.Errorf("query %v: got %d tuples overflow=%v, want %d overflow=%v",
						q, len(got.Tuples), got.Overflow, len(want.Tuples), want.Overflow)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()

	stats := cache.ShardStats()
	total, protected := 0, 0
	for _, s := range stats {
		total += s.Entries
		protected += s.Protected
	}
	if evictable := total - protected; evictable > 32 {
		t.Fatalf("evictable population %d exceeds cap 32", evictable)
	}
	if cache.CacheStats().Evictions == 0 {
		t.Fatal("workload of ~hundreds of distinct queries never evicted under cap 32")
	}
}
