package history

import (
	"context"

	"hdsampler/internal/hiddendb"
)

// Snapshot is a point-in-time dump of a cache's entries — the portable
// form internal/store serializes so a daemon restart can warm-start the
// per-host caches instead of re-paying their query bills.
type Snapshot struct {
	Entries []SnapshotEntry
}

// SnapshotEntry is one cached answer in portable form. The canonical key
// is re-parsed against the live schema on restore, so snapshots survive
// restarts but are dropped entry-by-entry on schema drift.
type SnapshotEntry struct {
	Key      string
	Overflow bool
	Count    int
	Tuples   []hiddendb.Tuple
}

// Dump snapshots every cached entry. Tuples are deep-copied, so the
// snapshot stays valid however the cache evolves afterwards.
func (c *Cache) Dump() *Snapshot {
	snap := &Snapshot{}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, e := range sh.entries {
			for ; e != nil; e = e.next { // walk signature-collision chains
				se := SnapshotEntry{Key: e.q.Key(), Overflow: e.overflow, Count: e.count}
				if len(e.tuples) > 0 {
					se.Tuples = make([]hiddendb.Tuple, len(e.tuples))
					for j := range e.tuples {
						se.Tuples[j] = e.tuples[j].Clone()
					}
				}
				snap.Entries = append(snap.Entries, se)
			}
		}
		sh.mu.RUnlock()
	}
	return snap
}

// Restore warm-starts the cache from a snapshot, returning how many
// entries were adopted. Entries whose keys no longer parse against the
// connector's current schema are skipped (the target may have changed);
// hit/eviction counters are untouched, and MaxEntries still applies.
//
// Restore takes ownership of the snapshot's tuple slices: adopted entries
// alias them (entries are immutable, so no defensive copy is paid), and
// the caller must not mutate or reuse snap after the call. Snapshots
// decoded from disk — the warm-start path — satisfy this naturally; to
// keep a snapshot writable, Dump a fresh one (Dump deep-copies).
func (c *Cache) Restore(ctx context.Context, snap *Snapshot) (int, error) {
	schema, err := c.Schema(ctx)
	if err != nil {
		return 0, err
	}
	adopted := 0
	for _, se := range snap.Entries {
		q, err := hiddendb.ParseQueryKey(schema, se.Key)
		if err != nil {
			continue
		}
		res := &hiddendb.Result{Overflow: se.Overflow, Count: se.Count, Tuples: se.Tuples}
		keepRows := !se.Overflow || len(se.Tuples) > 0
		c.store(q, res, keepRows)
		adopted++
	}
	return adopted, nil
}
