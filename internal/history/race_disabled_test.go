//go:build !race

package history

// raceEnabled reports the race detector is active: its instrumentation
// adds allocations, so allocation-ceiling tests skip themselves.
const raceEnabled = false
