package history

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

func newCachedConn(t *testing.T, ds *datagen.Dataset, k int, mode hiddendb.CountMode, opts Options) (*hiddendb.DB, *formclient.Local, *Cache) {
	t.Helper()
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	local := formclient.NewLocal(db)
	return db, local, New(local, opts)
}

func TestExactRepeatHit(t *testing.T) {
	_, local, cache := newCachedConn(t, datagen.IIDBoolean(5, 100, 0.5, 1), 10, hiddendb.CountNone, Options{})
	ctx := context.Background()
	q := hiddendb.MustQuery(
		hiddendb.Predicate{Attr: 0, Value: 1},
		hiddendb.Predicate{Attr: 1, Value: 0},
		hiddendb.Predicate{Attr: 2, Value: 1},
		hiddendb.Predicate{Attr: 3, Value: 0})
	r1, err := cache.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overflow {
		t.Fatal("test needs a non-overflowing query; tighten the predicate")
	}
	r2, err := cache.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Overflow != r2.Overflow || len(r1.Tuples) != len(r2.Tuples) {
		t.Fatal("cached answer differs")
	}
	if got := local.Stats().Queries; got != 1 {
		t.Fatalf("inner queries = %d, want 1", got)
	}
	st := cache.CacheStats()
	if st.Issued != 1 || st.ExactHits != 1 || st.Saved() != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestValidAncestorInference(t *testing.T) {
	ds := datagen.IIDBoolean(6, 60, 0.5, 2)
	db, local, cache := newCachedConn(t, ds, 100, hiddendb.CountExact, Options{})
	ctx := context.Background()
	// k=100 >= n: the very first broad query is valid and complete, so
	// every subsequent query must be answered locally.
	parent := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	if _, err := cache.Execute(ctx, parent); err != nil {
		t.Fatal(err)
	}
	child := parent.With(1, 1).With(2, 0)
	got, err := cache.Execute(ctx, child)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(child)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow {
		t.Fatalf("inferred (%d tuples) differs from direct (%d tuples)", len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if want.Tuples[i].ID != got.Tuples[i].ID {
			t.Fatal("inferred rows differ from direct execution")
		}
	}
	if got.Count != len(want.Tuples) {
		t.Fatalf("inferred count = %d, want %d", got.Count, len(want.Tuples))
	}
	// Only the parent went through the connector; the ground-truth call
	// above hit the DB directly.
	if local.Stats().Queries != 1 {
		t.Fatalf("inner queries = %d, want 1", local.Stats().Queries)
	}
	st := cache.CacheStats()
	if st.Inferred != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyAncestorInference(t *testing.T) {
	// Construct data where a1=1 is empty.
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"), hiddendb.BoolAttr("c"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 1}}, {Vals: []int{0, 1, 0}}, {Vals: []int{0, 1, 1}},
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	local := formclient.NewLocal(db)
	cache := New(local, Options{})
	ctx := context.Background()
	empty := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1})
	if r, err := cache.Execute(ctx, empty); err != nil || !r.Empty() {
		t.Fatalf("setup: %+v %v", r, err)
	}
	// Any specialization of an empty query is empty without a query.
	child := empty.With(1, 0).With(2, 1)
	r, err := cache.Execute(ctx, child)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Fatalf("inferred %+v, want empty", r)
	}
	if local.Stats().Queries != 1 {
		t.Fatalf("inner queries = %d, want 1", local.Stats().Queries)
	}
}

func TestOverflowAncestorNotUsed(t *testing.T) {
	// An overflowing ancestor answer must not be filtered into a child
	// answer (its rows are incomplete).
	ds := datagen.IIDBoolean(6, 500, 0.5, 3)
	db, local, cache := newCachedConn(t, ds, 5, hiddendb.CountNone, Options{})
	ctx := context.Background()
	parent := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	if r, err := cache.Execute(ctx, parent); err != nil || !r.Overflow {
		t.Fatalf("setup: parent should overflow: %+v %v", r, err)
	}
	child := parent.With(1, 1)
	got, err := cache.Execute(ctx, child)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(child)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
		t.Fatal("child answer should come from a real query, not the overflow ancestor")
	}
	if local.Stats().Queries != 2 {
		t.Fatalf("inner queries = %d, want 2", local.Stats().Queries)
	}
}

func TestCachedOverflowKeepsNoTuples(t *testing.T) {
	ds := datagen.IIDBoolean(6, 500, 0.5, 4)
	_, _, cache := newCachedConn(t, ds, 5, hiddendb.CountNone, Options{})
	ctx := context.Background()
	if _, err := cache.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		t.Fatal(err)
	}
	r, err := cache.Execute(ctx, hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Overflow {
		t.Fatal("want overflow")
	}
	if len(r.Tuples) != 0 {
		t.Fatalf("cached overflow carries %d tuples, want 0 (documented)", len(r.Tuples))
	}
}

func TestSiblingCountInference(t *testing.T) {
	// Parent count 10, a1=0 count 10 cached; then a1=1 must be inferable
	// as empty without a query when counts are trusted.
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	tuples := make([]hiddendb.Tuple, 10)
	for i := range tuples {
		tuples[i] = hiddendb.Tuple{Vals: []int{0, i % 2}}
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 3, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	local := formclient.NewLocal(db)
	cache := New(local, Options{TrustCounts: true})
	ctx := context.Background()
	if _, err := cache.Execute(ctx, hiddendb.EmptyQuery()); err != nil { // parent: count 10
		t.Fatal(err)
	}
	if _, err := cache.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})); err != nil { // sibling: count 10
		t.Fatal(err)
	}
	r, err := cache.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Empty() || r.Count != 0 {
		t.Fatalf("inferred %+v, want empty with count 0", r)
	}
	if local.Stats().Queries != 2 {
		t.Fatalf("inner queries = %d, want 2", local.Stats().Queries)
	}
	if cache.CacheStats().Inferred != 1 {
		t.Fatalf("stats = %+v", cache.CacheStats())
	}
}

func TestSiblingCountInferenceDisabledByDefault(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	tuples := make([]hiddendb.Tuple, 10)
	for i := range tuples {
		tuples[i] = hiddendb.Tuple{Vals: []int{0, i % 2}}
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 3, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	local := formclient.NewLocal(db)
	cache := New(local, Options{TrustCounts: false})
	ctx := context.Background()
	cache.Execute(ctx, hiddendb.EmptyQuery())
	cache.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0}))
	cache.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1}))
	if local.Stats().Queries != 3 {
		t.Fatalf("inner queries = %d, want 3 (no count inference)", local.Stats().Queries)
	}
}

func TestMaxEntriesEviction(t *testing.T) {
	ds := datagen.IIDBoolean(8, 200, 0.5, 5)
	_, _, cache := newCachedConn(t, ds, 5, hiddendb.CountNone, Options{MaxEntries: 16})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		q := hiddendb.EmptyQuery()
		for a := 0; a < 8; a++ {
			if rng.Intn(2) == 0 {
				q = q.With(a, rng.Intn(2))
			}
		}
		if _, err := cache.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() > 16 {
		t.Fatalf("cache grew to %d entries despite cap 16", cache.Len())
	}
}

func TestInferenceDepthCap(t *testing.T) {
	ds := datagen.IIDBoolean(6, 40, 0.5, 6)
	_, local, cache := newCachedConn(t, ds, 100, hiddendb.CountNone, Options{MaxInferDepth: 2})
	ctx := context.Background()
	parent := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	cache.Execute(ctx, parent) // valid (k >= n)
	deep := parent.With(1, 0).With(2, 0).With(3, 0)
	if _, err := cache.Execute(ctx, deep); err != nil {
		t.Fatal(err)
	}
	// Depth 4 > cap 2: inference skipped, real query issued.
	if local.Stats().Queries != 2 {
		t.Fatalf("inner queries = %d, want 2", local.Stats().Queries)
	}
}

// Property: for random query sequences, the cached connector returns
// answers identical (overflow flag, tuple IDs) to direct execution.
func TestCacheEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := datagen.IIDBoolean(5, 30+rng.Intn(100), 0.5, seed)
		db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
			hiddendb.Config{K: 1 + rng.Intn(10), CountMode: hiddendb.CountExact})
		if err != nil {
			return false
		}
		cache := New(formclient.NewLocal(db), Options{TrustCounts: true})
		ctx := context.Background()
		for i := 0; i < 40; i++ {
			q := hiddendb.EmptyQuery()
			for a := 0; a < 5; a++ {
				if rng.Intn(3) == 0 {
					q = q.With(a, rng.Intn(2))
				}
			}
			got, err := cache.Execute(ctx, q)
			if err != nil {
				return false
			}
			want, err := db.Execute(q)
			if err != nil {
				return false
			}
			if got.Overflow != want.Overflow {
				return false
			}
			if !got.Overflow {
				if len(got.Tuples) != len(want.Tuples) {
					return false
				}
				for j := range want.Tuples {
					if got.Tuples[j].ID != want.Tuples[j].ID {
						return false
					}
				}
			}
			// Counts must agree whenever the cache reports one.
			if got.Count != hiddendb.CountAbsent && got.Count != want.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A complete (non-overflow) ancestor answer shows every match, so the
// inferred child's count is exact even when the interface reports no
// counts at all — regression for the rule-2/3 count bug that only set
// Count when the ancestor carried an interface count.
func TestInferredCountPinnedWithoutInterfaceCounts(t *testing.T) {
	ds := datagen.IIDBoolean(6, 60, 0.5, 2)
	db, local, cache := newCachedConn(t, ds, 100, hiddendb.CountNone, Options{})
	ctx := context.Background()
	parent := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	if r, err := cache.Execute(ctx, parent); err != nil || r.Overflow {
		t.Fatalf("setup: want complete parent, got %+v %v", r, err)
	}
	child := parent.With(1, 1).With(2, 0)
	got, err := cache.Execute(ctx, child)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(child)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count == hiddendb.CountAbsent {
		t.Fatal("inferred answer from a complete ancestor must pin the exact count")
	}
	if got.Count != len(want.Tuples) {
		t.Fatalf("inferred count = %d, want %d", got.Count, len(want.Tuples))
	}
	if local.Stats().Queries != 1 {
		t.Fatalf("inner queries = %d, want 1", local.Stats().Queries)
	}
}

// Fully-specified overflow entries are the only window onto
// duplicate-heavy cells; eviction must never reclaim them.
func TestEvictionNeverDropsPinnedOverflow(t *testing.T) {
	// One cell holds 10 duplicates with K = 3: its fully-specified query
	// overflows and keeps its rows (pinned).
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	var tuples []hiddendb.Tuple
	for i := 0; i < 10; i++ {
		tuples = append(tuples, hiddendb.Tuple{Vals: []int{1, 1}})
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	local := formclient.NewLocal(db)
	cache := New(local, Options{MaxEntries: 2, Shards: 1})
	ctx := context.Background()
	hot := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1}, hiddendb.Predicate{Attr: 1, Value: 1})
	r, err := cache.Execute(ctx, hot)
	if err != nil || !r.Overflow || len(r.Tuples) == 0 {
		t.Fatalf("setup: want pinned full-overflow answer with rows, got %+v %v", r, err)
	}
	// Churn far past the cap so every evictable entry turns over.
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if a == 1 && b == 1 {
				continue
			}
			q := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: a}, hiddendb.Predicate{Attr: 1, Value: b})
			if _, err := cache.Execute(ctx, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := local.Stats().Queries
	r2, err := cache.Execute(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	if local.Stats().Queries != before {
		t.Fatal("pinned fully-specified overflow entry was evicted")
	}
	if !r2.Overflow || len(r2.Tuples) != len(r.Tuples) {
		t.Fatalf("pinned replay lost rows: %+v", r2)
	}
}

// Deep queries must infer through the ancestor index without an
// exponential subset scan; this guards the query-count contract (a single
// issued root answers every descendant).
func TestDeepInferenceThroughIndex(t *testing.T) {
	ds := datagen.IIDBoolean(16, 40, 0.5, 9)
	_, local, cache := newCachedConn(t, ds, 100, hiddendb.CountNone, Options{})
	ctx := context.Background()
	if _, err := cache.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		t.Fatal(err)
	}
	q := hiddendb.EmptyQuery()
	for a := 0; a < 16; a++ {
		q = q.With(a, a%2)
	}
	if _, err := cache.Execute(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := local.Stats().Queries; got != 1 {
		t.Fatalf("inner queries = %d, want 1 (root only; depth-16 child inferred)", got)
	}
	if st := cache.CacheStats(); st.Inferred != 1 {
		t.Fatalf("stats = %+v, want 1 inference", st)
	}
}

// Restore round-trips a dump into a fresh cache: replayed queries are
// answered without touching the connector.
func TestDumpRestoreWarmStart(t *testing.T) {
	ds := datagen.IIDBoolean(5, 40, 0.5, 3)
	db, _, cache := newCachedConn(t, ds, 100, hiddendb.CountExact, Options{})
	ctx := context.Background()
	queries := []hiddendb.Query{
		hiddendb.EmptyQuery(),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: 1, Value: 1}, hiddendb.Predicate{Attr: 2, Value: 0}),
	}
	for _, q := range queries {
		if _, err := cache.Execute(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	snap := cache.Dump()
	if len(snap.Entries) != cache.Len() {
		t.Fatalf("dump holds %d entries, cache %d", len(snap.Entries), cache.Len())
	}

	local2 := formclient.NewLocal(db)
	warm := New(local2, Options{})
	n, err := warm.Restore(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(snap.Entries) {
		t.Fatalf("restored %d of %d entries", n, len(snap.Entries))
	}
	for _, q := range queries {
		got, err := warm.Execute(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Overflow != want.Overflow || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("warm replay of %v differs: %+v vs %+v", q, got, want)
		}
	}
	// The schema fetch is the only traffic the warm cache may generate.
	if got := local2.Stats().Queries; got != 0 {
		t.Fatalf("warm cache issued %d queries, want 0", got)
	}
}

func TestCacheSharesImmutableRows(t *testing.T) {
	// Cache hits share the entry's tuple rows (Results are read-only by
	// convention): repeated hits must return identical rows without the
	// per-hit deep copies the cache used to pay for, and Clone must hand
	// a caller detached storage.
	ds := datagen.IIDBoolean(4, 20, 0.5, 7)
	_, _, cache := newCachedConn(t, ds, 50, hiddendb.CountNone, Options{})
	ctx := context.Background()
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	r1, err := cache.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Tuples) == 0 {
		t.Skip("unlucky seed: empty result")
	}
	c := r1.Tuples[0].Clone()
	c.Vals[0] = 99
	r2, err := cache.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tuples[0].Vals[0] == 99 {
		t.Fatal("Clone aliased cache storage")
	}
	if len(r2.Tuples) != len(r1.Tuples) || r2.Tuples[0].ID != r1.Tuples[0].ID {
		t.Fatal("replayed rows differ from the original answer")
	}
}

func TestSchemaPassThroughAndCache(t *testing.T) {
	ds := datagen.IIDBoolean(3, 10, 0.5, 8)
	db, _, cache := newCachedConn(t, ds, 5, hiddendb.CountNone, Options{})
	ctx := context.Background()
	s1, err := cache.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cache.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("schema should be cached (same pointer)")
	}
	if !s1.Equal(db.Schema()) {
		t.Error("schema differs from database schema")
	}
}
