// Package history implements the query-history optimization HDSampler
// adopts from "Leveraging count information in sampling hidden databases"
// (ICDE 2009, reference [2] of the demo paper): a caching connector that
// never pays for a query whose answer was already observed or can be
// logically inferred from earlier answers.
//
// Inference rules, applied in order:
//
//  1. Exact repeat — the same canonical query was answered before.
//  2. Valid ancestor — some ancestor query (a predicate subset) returned a
//     complete (non-overflowing) answer; the current query's answer is that
//     result filtered locally.
//  3. Empty ancestor — some ancestor returned zero tuples; every
//     specialization is empty.
//  4. Sibling counts (only when counts are trusted/exact) — the count of
//     q = parent ∧ (a=v) equals count(parent) minus the counts of the
//     other values of a when all are known; when that pins the answer to
//     empty, no query is needed. (A pinned positive count still needs a
//     real query for its rows, so it is not fabricated.)
//
// Cached and inferred overflow answers carry no tuple rows (the top-k rows
// of an overflowing query are never used by the samplers, and storing k
// rows per overflow would dominate memory).
package history

import (
	"context"
	"sync"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// Options tunes the cache.
type Options struct {
	// TrustCounts enables count-based inference (rule 4). Enable only when
	// the interface reports exact counts; HDSampler's default against
	// Google Base was to distrust its approximate estimates.
	TrustCounts bool
	// MaxEntries caps the number of cached queries; 0 means unlimited.
	// When the cap is hit, a random ~10% of entries are evicted.
	MaxEntries int
	// MaxInferDepth bounds the predicate count up to which ancestor
	// enumeration (2^depth subset lookups) is attempted. Defaults to 12.
	MaxInferDepth int
}

// Stats reports the cache's effect.
type Stats struct {
	// Issued is the number of queries forwarded to the wrapped connector.
	Issued int64
	// ExactHits counts rule-1 answers, Inferred counts rules 2-4.
	ExactHits int64
	Inferred  int64
}

// Saved is the total number of interface queries avoided.
func (s Stats) Saved() int64 { return s.ExactHits + s.Inferred }

// Cache is a formclient.Conn decorator adding memoization and inference.
type Cache struct {
	inner formclient.Conn
	opts  Options

	mu      sync.Mutex
	schema  *hiddendb.Schema
	entries map[string]*entry
	stats   Stats
}

// entry stores one observed or derived answer. Overflow entries keep no
// tuples. count is the interface-reported count (CountAbsent if none).
type entry struct {
	overflow bool
	count    int
	tuples   []hiddendb.Tuple // nil for overflow entries
}

// New wraps inner with a history cache.
func New(inner formclient.Conn, opts Options) *Cache {
	if opts.MaxInferDepth <= 0 {
		opts.MaxInferDepth = 12
	}
	return &Cache{inner: inner, opts: opts, entries: make(map[string]*entry)}
}

// Schema implements formclient.Conn.
func (c *Cache) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	c.mu.Lock()
	if c.schema != nil {
		s := c.schema
		c.mu.Unlock()
		return s, nil
	}
	c.mu.Unlock()
	s, err := c.inner.Schema(ctx)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.schema = s
	c.mu.Unlock()
	return s, nil
}

// Stats returns the inner connector's traffic statistics (so samplers keep
// observing real query costs through the decorator).
func (c *Cache) Stats() formclient.Stats { return c.inner.Stats() }

// CacheStats returns hit/inference counters.
func (c *Cache) CacheStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Execute implements formclient.Conn.
func (c *Cache) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	schema, err := c.Schema(ctx)
	if err != nil {
		return nil, err
	}
	key := q.Key()

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.ExactHits++
		res := e.result()
		c.mu.Unlock()
		return res, nil
	}
	if res := c.infer(schema, q); res != nil {
		c.stats.Inferred++
		c.storeLocked(key, res, !res.Overflow)
		out := res.Clone()
		c.mu.Unlock()
		return out, nil
	}
	c.mu.Unlock()

	res, err := c.inner.Execute(ctx, q)
	if err != nil {
		return nil, err
	}
	// Fully-specified overflow answers keep their rows: they are the only
	// window onto duplicate-heavy cells, and a row-less replay would make
	// those rows unreachable on cache hits.
	keepRows := !res.Overflow || q.Len() == schema.NumAttrs()
	c.mu.Lock()
	c.stats.Issued++
	c.storeLocked(key, res, keepRows)
	c.mu.Unlock()
	return res, nil
}

// result materializes an entry as a fresh Result.
func (e *entry) result() *hiddendb.Result {
	res := &hiddendb.Result{Overflow: e.overflow, Count: e.count}
	res.Tuples = make([]hiddendb.Tuple, len(e.tuples))
	for i := range e.tuples {
		res.Tuples[i] = e.tuples[i].Clone()
	}
	return res
}

// storeLocked records an answer; the caller holds c.mu. keepRows controls
// whether the visible rows are retained (always for complete answers,
// never for intermediate overflow pages, and for fully-specified overflow
// pages whose duplicates have no other access path).
func (c *Cache) storeLocked(key string, res *hiddendb.Result, keepRows bool) {
	e := &entry{overflow: res.Overflow, count: res.Count}
	if keepRows {
		e.tuples = make([]hiddendb.Tuple, len(res.Tuples))
		for i := range res.Tuples {
			e.tuples[i] = res.Tuples[i].Clone()
		}
	}
	if c.opts.MaxEntries > 0 && len(c.entries) >= c.opts.MaxEntries {
		c.evictLocked()
	}
	c.entries[key] = e
}

// evictLocked drops ~10% of entries (at least one) in map order, which is
// effectively random.
func (c *Cache) evictLocked() {
	drop := len(c.entries)/10 + 1
	for k := range c.entries {
		delete(c.entries, k)
		drop--
		if drop == 0 {
			break
		}
	}
}

// infer attempts rules 2-4; the caller holds c.mu. Returns nil when the
// answer cannot be derived.
func (c *Cache) infer(schema *hiddendb.Schema, q hiddendb.Query) *hiddendb.Result {
	preds := q.Preds()
	d := len(preds)
	if d == 0 || d > c.opts.MaxInferDepth {
		return nil
	}
	// Enumerate proper ancestors: all strict predicate subsets. Mask bit i
	// keeps preds[i]. Iterate from largest subsets down so the tightest
	// ancestor is found first (fewer tuples to filter).
	nSub := 1 << d
	masks := make([]int, 0, nSub-1)
	for mask := 0; mask < nSub-1; mask++ {
		masks = append(masks, mask)
	}
	// Order by descending popcount.
	sortByPopcountDesc(masks)
	for _, mask := range masks {
		sub := hiddendb.EmptyQuery()
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				sub = sub.With(preds[i].Attr, preds[i].Value)
			}
		}
		e, ok := c.entries[sub.Key()]
		if !ok || e.overflow {
			continue
		}
		// Rule 2/3: complete ancestor answer; filter locally.
		res := &hiddendb.Result{Count: hiddendb.CountAbsent}
		for i := range e.tuples {
			if q.Matches(e.tuples[i].Vals) {
				res.Tuples = append(res.Tuples, e.tuples[i].Clone())
			}
		}
		if e.count != hiddendb.CountAbsent {
			res.Count = len(res.Tuples)
		}
		return res
	}
	if c.opts.TrustCounts {
		if res := c.inferFromSiblingCounts(schema, q, preds); res != nil {
			return res
		}
	}
	return nil
}

// inferFromSiblingCounts applies rule 4: for some predicate (a=v) of q,
// the parent (q without a) and every sibling value of a are cached with
// exact counts, pinning count(q). Only empty (count 0) and overflow
// (count > k, unknown rows) outcomes can be fabricated without rows; a
// pinned small positive count still needs a real query for its tuples, so
// we return nil then.
func (c *Cache) inferFromSiblingCounts(schema *hiddendb.Schema, q hiddendb.Query, preds []hiddendb.Predicate) *hiddendb.Result {
	for _, p := range preds {
		parent := q.Without(p.Attr)
		pe, ok := c.entries[parent.Key()]
		if !ok || pe.count == hiddendb.CountAbsent {
			continue
		}
		remaining := pe.count
		complete := true
		for v := 0; v < schema.DomainSize(p.Attr) && complete; v++ {
			if v == p.Value {
				continue
			}
			se, ok := c.entries[parent.With(p.Attr, v).Key()]
			if !ok || se.count == hiddendb.CountAbsent {
				complete = false
				break
			}
			remaining -= se.count
		}
		if !complete {
			continue
		}
		if remaining <= 0 {
			return &hiddendb.Result{Count: 0}
		}
		// A pinned positive count only helps when it implies overflow;
		// infer conservatively via the parent's own overflow threshold:
		// we do not know k here, so only the empty case is safe.
	}
	return nil
}

// sortByPopcountDesc orders subset masks so larger subsets come first.
func sortByPopcountDesc(masks []int) {
	pc := func(x int) int {
		n := 0
		for ; x != 0; x &= x - 1 {
			n++
		}
		return n
	}
	// Counting sort by popcount (masks are small).
	buckets := make([][]int, 32)
	for _, m := range masks {
		p := pc(m)
		buckets[p] = append(buckets[p], m)
	}
	i := 0
	for p := len(buckets) - 1; p >= 0; p-- {
		for _, m := range buckets[p] {
			masks[i] = m
			i++
		}
	}
}

var _ formclient.Conn = (*Cache)(nil)
