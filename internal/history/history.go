// Package history implements the query-history optimization HDSampler
// adopts from "Leveraging count information in sampling hidden databases"
// (ICDE 2009, reference [2] of the demo paper): a caching connector that
// never pays for a query whose answer was already observed or can be
// logically inferred from earlier answers.
//
// Inference rules, applied in order:
//
//  1. Exact repeat — the same canonical query was answered before.
//  2. Valid ancestor — some ancestor query (a predicate subset) returned a
//     complete (non-overflowing) answer; the current query's answer is that
//     result filtered locally, and the exact count is pinned to the number
//     of surviving rows (a complete answer shows every match).
//  3. Empty ancestor — some ancestor returned zero tuples; every
//     specialization is empty.
//  4. Sibling counts (only when counts are trusted/exact) — the count of
//     q = parent ∧ (a=v) equals count(parent) minus the counts of the
//     other values of a when all are known; when that pins the answer to
//     empty, no query is needed. (A pinned positive count still needs a
//     real query for its rows, so it is not fabricated.)
//
// The cache is safe for heavy concurrent use — the daemon shares one per
// target host across every job's worker pool — and is built not to
// serialize those workers, nor to allocate on its hottest paths:
//
//   - Entries live in hash shards keyed by the query's precomputed 64-bit
//     signature (hiddendb.Query.Hash): shard selection and map probes cost
//     no hashing or string building, and the rare signature collision is
//     resolved by a full canonical-key comparison along a short chain.
//     Each shard is guarded by its own RWMutex, so parallel exact-repeat
//     hits (rule 1, the hottest path) proceed without contention. Entries
//     are immutable once stored, and cache hits share an entry's tuple
//     rows rather than cloning them (Results are read-only by convention).
//   - Ancestor lookup (rules 2–3) goes through a subset trie over the
//     canonical predicate order instead of enumerating all 2^d predicate
//     subsets: the walk visits only trie paths that are subsets of the
//     query, so a deep query costs O(d·matches), not O(2^d) map probes.
//   - Sibling-count probes (rule 4) render scratch signatures into a
//     pooled buffer instead of allocating a Query per probed parent and
//     sibling.
//   - Statistics are atomic counters, readable from any goroutine.
//
// When MaxEntries caps the cache, a per-shard CLOCK (second-chance)
// policy evicts approximately-least-recently-used entries. Fully
// specified overflow entries are pinned and never evicted: their rows are
// the only window onto duplicate-heavy cells, and dropping them would
// make those rows unreachable on replay (see storeRows in Execute).
//
// Cached and inferred overflow answers carry no tuple rows (the top-k rows
// of an overflowing query are never used by the samplers, and storing k
// rows per overflow would dominate memory).
package history

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/telemetry"
)

// Options tunes the cache.
type Options struct {
	// TrustCounts enables count-based inference (rule 4). Enable only when
	// the interface reports exact counts; HDSampler's default against
	// Google Base was to distrust its approximate estimates.
	TrustCounts bool
	// MaxEntries caps the number of evictable cached queries; 0 means
	// unlimited. When the cap is hit, CLOCK eviction reclaims the
	// least-recently-touched entries one at a time. Pinned fully-specified
	// overflow entries do not count against the cap.
	MaxEntries int
	// MaxInferDepth bounds the predicate count up to which ancestor
	// inference is attempted. The subset trie makes deep inference cheap,
	// so the default is 24 (it exists to bound pathological queries, not
	// to protect an exponential scan as it once did).
	MaxInferDepth int
	// Shards is the number of entry-map shards (rounded up to a power of
	// two, default 64). More shards admit more concurrent writers; reads
	// already run concurrently within a shard.
	Shards int
	// Lookup, when set, observes the cache's share of each Execute on
	// traced walks only — the untraced hot path reads no clocks, keeping
	// the rule-1 hit allocation-free and timer-free.
	Lookup *telemetry.Histogram
}

// Stats reports the cache's effect.
type Stats struct {
	// Issued is the number of queries forwarded to the wrapped connector.
	Issued int64
	// ExactHits counts rule-1 answers, Inferred counts rules 2-4.
	ExactHits int64
	Inferred  int64
	// Evictions counts entries reclaimed by the MaxEntries CLOCK policy.
	Evictions int64
}

// Saved is the total number of interface queries avoided.
func (s Stats) Saved() int64 { return s.ExactHits + s.Inferred }

// ShardStat describes one shard's occupancy, for balance monitoring.
type ShardStat struct {
	// Entries is the shard's total entry count; Protected the subset
	// pinned against eviction (fully-specified overflow answers).
	Entries   int
	Protected int
}

// Cache is a formclient.Conn decorator adding memoization and inference.
// It is safe for concurrent use by any number of goroutines.
type Cache struct {
	inner formclient.Conn
	opts  Options

	schemaMu sync.Mutex // serializes the initial schema fetch
	schema   atomic.Pointer[hiddendb.Schema]

	shards []shard
	mask   uint64

	idx ancestorIndex

	issued    atomic.Int64
	exactHits atomic.Int64
	inferred  atomic.Int64
	evictions atomic.Int64
	evictable atomic.Int64 // entries currently eligible for eviction
	evictHand atomic.Uint64
}

// entry stores one observed or derived answer. Overflow entries keep no
// tuples unless pinned. All fields except the CLOCK reference bit, the
// ring slot, and the collision-chain link are immutable after the entry
// is published (the mutable three change only under the shard lock),
// which is what lets readers use an entry after dropping it.
type entry struct {
	q        hiddendb.Query // canonical query; carries cached Key and Hash
	hash     uint64         // q.Hash(), denormalized for chain bookkeeping
	next     *entry         // signature-collision chain within a shard slot
	overflow bool
	count    int              // interface-reported count (CountAbsent if none)
	tuples   []hiddendb.Tuple // nil for row-less overflow entries; shared, read-only

	pinned  bool // fully-specified overflow: never evicted
	indexed bool // complete answer: present in the ancestor trie

	ref  atomic.Bool // CLOCK reference bit, set on every touch
	slot int         // position in the shard's eviction ring; -1 when absent
}

// keyScratch pools the buffers sibling-count probes render scratch
// signatures into.
var keyScratch = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// New wraps inner with a history cache.
func New(inner formclient.Conn, opts Options) *Cache {
	if opts.MaxInferDepth <= 0 {
		opts.MaxInferDepth = 24
	}
	n := opts.Shards
	if n <= 0 {
		n = 64
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{
		inner:  inner,
		opts:   opts,
		shards: make([]shard, pow),
		mask:   uint64(pow - 1),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]*entry)
	}
	return c
}

// shardFor maps a query signature hash onto its shard.
func (c *Cache) shardFor(hash uint64) *shard {
	return &c.shards[hash&c.mask]
}

// Schema implements formclient.Conn.
func (c *Cache) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	if s := c.schema.Load(); s != nil {
		return s, nil
	}
	c.schemaMu.Lock()
	defer c.schemaMu.Unlock()
	if s := c.schema.Load(); s != nil {
		return s, nil
	}
	//hdlint:ignore lockorder the decorator stack is acyclic by construction — inner is never another history.Cache, so this interface call cannot reenter schemaMu
	s, err := c.inner.Schema(ctx)
	if err != nil {
		return nil, err
	}
	c.schema.Store(s)
	return s, nil
}

// Stats returns the inner connector's traffic statistics (so samplers keep
// observing real query costs through the decorator).
func (c *Cache) Stats() formclient.Stats { return c.inner.Stats() }

// CacheStats returns hit/inference/eviction counters.
func (c *Cache) CacheStats() Stats {
	return Stats{
		Issued:    c.issued.Load(),
		ExactHits: c.exactHits.Load(),
		Inferred:  c.inferred.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		total += sh.size()
		sh.mu.RUnlock()
	}
	return total
}

// ShardStats snapshots per-shard occupancy, in shard order.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		out[i] = ShardStat{Entries: sh.size(), Protected: sh.protected}
		sh.mu.RUnlock()
	}
	return out
}

// lookupScratch probes a cache slot by a scratch-built signature (hash
// plus key bytes), touching the CLOCK bit on a hit. The entry is immutable,
// so using it after the lock is dropped is safe.
//
//hdlint:hotpath
func (c *Cache) lookupScratch(hash uint64, key []byte) *entry {
	sh := c.shardFor(hash)
	sh.mu.RLock()
	e := sh.getBytes(hash, key)
	sh.mu.RUnlock()
	if e != nil {
		e.ref.Store(true)
	}
	return e
}

// Execute implements formclient.Conn.
//
//hdlint:hotpath
func (c *Cache) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	schema, err := c.Schema(ctx)
	if err != nil {
		return nil, err
	}

	// Traced walks time the cache's share of the call; the untraced path
	// costs one ctx.Value miss and no clock reads.
	tr := telemetry.TraceFrom(ctx)
	var lookupStart time.Time
	if tr != nil {
		lookupStart = time.Now()
	}

	// Rule 1: exact repeat. Shared (read) lock only — parallel workers
	// replaying hot queries never serialize here — and the precomputed
	// signature means no hashing or string building on the hit path.
	sh := c.shardFor(q.Hash())
	sh.mu.RLock()
	e := sh.get(q.Hash(), q.Key())
	sh.mu.RUnlock()
	if e != nil {
		e.ref.Store(true)
		c.exactHits.Add(1)
		if tr != nil {
			c.markLookup(tr, telemetry.CacheHit, lookupStart)
		}
		return e.result(), nil
	}

	if res, rule := c.infer(schema, q); res != nil {
		c.inferred.Add(1)
		if tr != nil {
			c.markLookup(tr, rule, lookupStart)
		}
		c.store(q, res, !res.Overflow)
		return res, nil
	}

	if tr != nil {
		// A miss: the lookup cost ends here; the wire cost lands on the
		// same span via the execution layer's own marks.
		c.markLookup(tr, telemetry.CacheMiss, lookupStart)
	}
	res, err := c.inner.Execute(ctx, q)
	if err != nil {
		return nil, err
	}
	// Fully-specified overflow answers keep their rows: they are the only
	// window onto duplicate-heavy cells, and a row-less replay would make
	// those rows unreachable on cache hits.
	keepRows := !res.Overflow || q.Len() == schema.NumAttrs()
	c.issued.Add(1)
	c.store(q, res, keepRows)
	return res, nil
}

// result materializes an entry as a Result. The rows are shared with the
// immutable entry, per the Result read-only convention — a rule-1 hit
// costs one allocation, not a deep copy of up to k tuples.
//
//hdlint:hotpath
func (e *entry) result() *hiddendb.Result {
	//hdlint:ignore hotpath the one documented allocation of a rule-1 hit: a Result header sharing the entry's immutable rows
	return &hiddendb.Result{Overflow: e.overflow, Count: e.count, Tuples: e.tuples}
}

// store publishes an answer: the entry joins its shard (and, when it is a
// complete answer, the ancestor trie), then the MaxEntries cap is
// enforced. keepRows controls whether the visible rows are retained
// (always for complete answers, never for intermediate overflow pages,
// and for fully-specified overflow pages whose duplicates have no other
// access path — those are pinned against eviction). Retained rows are
// shared with the result, not cloned: entries and Results are both
// immutable by convention.
func (c *Cache) store(q hiddendb.Query, res *hiddendb.Result, keepRows bool) {
	e := &entry{
		q:        q,
		hash:     q.Hash(),
		overflow: res.Overflow,
		count:    res.Count,
		pinned:   res.Overflow && keepRows,
		indexed:  !res.Overflow,
		slot:     -1,
	}
	if keepRows {
		e.tuples = res.Tuples
	}

	// Map and trie must change together under the shard lock: with the
	// trie updated outside it, two same-key stores can interleave so the
	// losing entry's removal deletes the winner's trie terminal (or
	// leaves a stale one). Lock order is always shard → trie; no path
	// acquires a shard lock while holding the trie lock.
	sh := c.shardFor(e.hash)
	sh.mu.Lock()
	old := sh.put(e)
	if old != nil {
		if old.slot >= 0 {
			sh.unlink(old)
			c.evictable.Add(-1)
		}
		if old.pinned {
			sh.protected--
		}
	}
	if e.pinned {
		sh.protected++
	} else {
		e.slot = len(sh.ring)
		sh.ring = append(sh.ring, e)
		c.evictable.Add(1)
	}
	if e.indexed {
		c.idx.insert(e.q, e)
	}
	if old != nil && old.indexed {
		// No-op when the new entry already replaced it at the same trie
		// node; removes a stale terminal when the answer flipped to
		// overflow (interface drift).
		c.idx.remove(old.q, old)
	}
	sh.mu.Unlock()

	c.enforceCap()
}

// enforceCap evicts CLOCK victims (round-robin across shards) until the
// evictable population fits MaxEntries again. Pinned entries are skipped
// by construction — they are never in an eviction ring.
func (c *Cache) enforceCap() {
	max := int64(c.opts.MaxEntries)
	if max <= 0 {
		return
	}
	for c.evictable.Load() > max {
		start := int(c.evictHand.Add(1))
		var victim *entry
		for i := 0; i < len(c.shards) && victim == nil; i++ {
			victim = c.shards[(start+i)&int(c.mask)].evictOne()
		}
		if victim == nil {
			return // nothing evictable anywhere
		}
		c.evictable.Add(-1)
		c.evictions.Add(1)
		if victim.indexed {
			c.idx.remove(victim.q, victim)
		}
	}
}

// markLookup closes out a traced Execute's cache stage: the lookup
// latency feeds the per-host histogram and the walk trace's span.
func (c *Cache) markLookup(tr *telemetry.WalkTrace, o telemetry.CacheOutcome, start time.Time) {
	d := time.Since(start)
	c.opts.Lookup.Observe(d)
	tr.MarkCache(o, d)
}

// infer attempts rules 2-4 without holding any shard lock, reporting
// which rule answered for tracing. Returns nil when the answer cannot be
// derived.
func (c *Cache) infer(schema *hiddendb.Schema, q hiddendb.Query) (*hiddendb.Result, telemetry.CacheOutcome) {
	d := q.Len()
	if d == 0 || d > c.opts.MaxInferDepth {
		return nil, telemetry.CacheNone
	}
	// Rules 2/3: find the deepest complete ancestor in the subset trie
	// (deepest = fewest tuples to filter) and filter its rows locally.
	// Surviving rows are shared with the (immutable) ancestor entry.
	if anc := c.idx.bestAncestor(q); anc != nil {
		anc.ref.Store(true)
		res := &hiddendb.Result{}
		for i := range anc.tuples {
			if q.Matches(anc.tuples[i].Vals) {
				res.Tuples = append(res.Tuples, anc.tuples[i])
			}
		}
		// A complete ancestor shows every match, so filtering pins the
		// exact count whether or not the interface reported one.
		res.Count = len(res.Tuples)
		if len(anc.tuples) == 0 {
			return res, telemetry.CacheInferEmpty
		}
		return res, telemetry.CacheInferAncestor
	}
	if c.opts.TrustCounts {
		if res := c.inferFromSiblingCounts(schema, q); res != nil {
			return res, telemetry.CacheInferSibling
		}
	}
	return nil, telemetry.CacheNone
}

// inferFromSiblingCounts applies rule 4: for some predicate (a=v) of q,
// the parent (q without a) and every sibling value of a are cached with
// exact counts, pinning count(q). Only empty (count 0) and overflow
// (count > k, unknown rows) outcomes can be fabricated without rows; a
// pinned small positive count still needs a real query for its tuples, so
// we return nil then.
//
// Parent and sibling probes render scratch signatures (hash + key bytes)
// into a pooled buffer instead of materializing a Query per probe — a
// deep query over wide domains probes d·|dom| siblings, and building a
// predicate list and canonical key for each dominated this path's cost.
func (c *Cache) inferFromSiblingCounts(schema *hiddendb.Schema, q hiddendb.Query) *hiddendb.Result {
	bufp := keyScratch.Get().(*[]byte)
	defer keyScratch.Put(bufp)
	for i := 0; i < q.Len(); i++ {
		p := q.Pred(i)
		buf, ph := q.AppendKeyWithout((*bufp)[:0], p.Attr)
		*bufp = buf
		pe := c.lookupScratch(ph, buf)
		if pe == nil || pe.count == hiddendb.CountAbsent {
			continue
		}
		remaining := pe.count
		complete := true
		for v := 0; v < schema.DomainSize(p.Attr); v++ {
			if v == p.Value {
				continue
			}
			sbuf, sh := q.AppendKeyReplace((*bufp)[:0], p.Attr, v)
			*bufp = sbuf
			se := c.lookupScratch(sh, sbuf)
			if se == nil || se.count == hiddendb.CountAbsent {
				complete = false
				break
			}
			remaining -= se.count
		}
		if !complete {
			continue
		}
		if remaining <= 0 {
			return &hiddendb.Result{Count: 0}
		}
		// A pinned positive count only helps when it implies overflow;
		// infer conservatively via the parent's own overflow threshold:
		// we do not know k here, so only the empty case is safe.
	}
	return nil
}

var _ formclient.Conn = (*Cache)(nil)
