// Package history implements the query-history optimization HDSampler
// adopts from "Leveraging count information in sampling hidden databases"
// (ICDE 2009, reference [2] of the demo paper): a caching connector that
// never pays for a query whose answer was already observed or can be
// logically inferred from earlier answers.
//
// Inference rules, applied in order:
//
//  1. Exact repeat — the same canonical query was answered before.
//  2. Valid ancestor — some ancestor query (a predicate subset) returned a
//     complete (non-overflowing) answer; the current query's answer is that
//     result filtered locally, and the exact count is pinned to the number
//     of surviving rows (a complete answer shows every match).
//  3. Empty ancestor — some ancestor returned zero tuples; every
//     specialization is empty.
//  4. Sibling counts (only when counts are trusted/exact) — the count of
//     q = parent ∧ (a=v) equals count(parent) minus the counts of the
//     other values of a when all are known; when that pins the answer to
//     empty, no query is needed. (A pinned positive count still needs a
//     real query for its rows, so it is not fabricated.)
//
// The cache is safe for heavy concurrent use — the daemon shares one per
// target host across every job's worker pool — and is built not to
// serialize those workers:
//
//   - Entries live in hash shards, each guarded by its own RWMutex, so
//     parallel exact-repeat hits (rule 1, the hottest path) proceed
//     without contention. Entries are immutable once stored.
//   - Ancestor lookup (rules 2–3) goes through a subset trie over the
//     canonical predicate order instead of enumerating all 2^d predicate
//     subsets: the walk visits only trie paths that are subsets of the
//     query, so a deep query costs O(d·matches), not O(2^d) map probes.
//   - Statistics are atomic counters, readable from any goroutine.
//
// When MaxEntries caps the cache, a per-shard CLOCK (second-chance)
// policy evicts approximately-least-recently-used entries. Fully
// specified overflow entries are pinned and never evicted: their rows are
// the only window onto duplicate-heavy cells, and dropping them would
// make those rows unreachable on replay (see storeRows in Execute).
//
// Cached and inferred overflow answers carry no tuple rows (the top-k rows
// of an overflowing query are never used by the samplers, and storing k
// rows per overflow would dominate memory).
package history

import (
	"context"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// Options tunes the cache.
type Options struct {
	// TrustCounts enables count-based inference (rule 4). Enable only when
	// the interface reports exact counts; HDSampler's default against
	// Google Base was to distrust its approximate estimates.
	TrustCounts bool
	// MaxEntries caps the number of evictable cached queries; 0 means
	// unlimited. When the cap is hit, CLOCK eviction reclaims the
	// least-recently-touched entries one at a time. Pinned fully-specified
	// overflow entries do not count against the cap.
	MaxEntries int
	// MaxInferDepth bounds the predicate count up to which ancestor
	// inference is attempted. The subset trie makes deep inference cheap,
	// so the default is 24 (it exists to bound pathological queries, not
	// to protect an exponential scan as it once did).
	MaxInferDepth int
	// Shards is the number of entry-map shards (rounded up to a power of
	// two, default 64). More shards admit more concurrent writers; reads
	// already run concurrently within a shard.
	Shards int
}

// Stats reports the cache's effect.
type Stats struct {
	// Issued is the number of queries forwarded to the wrapped connector.
	Issued int64
	// ExactHits counts rule-1 answers, Inferred counts rules 2-4.
	ExactHits int64
	Inferred  int64
	// Evictions counts entries reclaimed by the MaxEntries CLOCK policy.
	Evictions int64
}

// Saved is the total number of interface queries avoided.
func (s Stats) Saved() int64 { return s.ExactHits + s.Inferred }

// ShardStat describes one shard's occupancy, for balance monitoring.
type ShardStat struct {
	// Entries is the shard's total entry count; Protected the subset
	// pinned against eviction (fully-specified overflow answers).
	Entries   int
	Protected int
}

// Cache is a formclient.Conn decorator adding memoization and inference.
// It is safe for concurrent use by any number of goroutines.
type Cache struct {
	inner formclient.Conn
	opts  Options

	schemaMu sync.Mutex // serializes the initial schema fetch
	schema   atomic.Pointer[hiddendb.Schema]

	seed   maphash.Seed
	shards []shard
	mask   uint64

	idx ancestorIndex

	issued    atomic.Int64
	exactHits atomic.Int64
	inferred  atomic.Int64
	evictions atomic.Int64
	evictable atomic.Int64 // entries currently eligible for eviction
	evictHand atomic.Uint64
}

// entry stores one observed or derived answer. Overflow entries keep no
// tuples unless pinned. All fields except the CLOCK reference bit and the
// ring slot are immutable after the entry is published, which is what
// lets readers use an entry after dropping the shard lock.
type entry struct {
	key      string
	preds    []hiddendb.Predicate
	overflow bool
	count    int              // interface-reported count (CountAbsent if none)
	tuples   []hiddendb.Tuple // nil for row-less overflow entries

	pinned  bool // fully-specified overflow: never evicted
	indexed bool // complete answer: present in the ancestor trie

	ref  atomic.Bool // CLOCK reference bit, set on every touch
	slot int         // position in the shard's eviction ring; -1 when absent
}

// New wraps inner with a history cache.
func New(inner formclient.Conn, opts Options) *Cache {
	if opts.MaxInferDepth <= 0 {
		opts.MaxInferDepth = 24
	}
	n := opts.Shards
	if n <= 0 {
		n = 64
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{
		inner:  inner,
		opts:   opts,
		seed:   maphash.MakeSeed(),
		shards: make([]shard, pow),
		mask:   uint64(pow - 1),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry)
	}
	return c
}

// shardFor maps a canonical query key onto its shard.
func (c *Cache) shardFor(key string) *shard {
	return &c.shards[maphash.String(c.seed, key)&c.mask]
}

// Schema implements formclient.Conn.
func (c *Cache) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	if s := c.schema.Load(); s != nil {
		return s, nil
	}
	c.schemaMu.Lock()
	defer c.schemaMu.Unlock()
	if s := c.schema.Load(); s != nil {
		return s, nil
	}
	s, err := c.inner.Schema(ctx)
	if err != nil {
		return nil, err
	}
	c.schema.Store(s)
	return s, nil
}

// Stats returns the inner connector's traffic statistics (so samplers keep
// observing real query costs through the decorator).
func (c *Cache) Stats() formclient.Stats { return c.inner.Stats() }

// CacheStats returns hit/inference/eviction counters.
func (c *Cache) CacheStats() Stats {
	return Stats{
		Issued:    c.issued.Load(),
		ExactHits: c.exactHits.Load(),
		Inferred:  c.inferred.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		total += len(sh.entries)
		sh.mu.RUnlock()
	}
	return total
}

// ShardStats snapshots per-shard occupancy, in shard order.
func (c *Cache) ShardStats() []ShardStat {
	out := make([]ShardStat, len(c.shards))
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		out[i] = ShardStat{Entries: len(sh.entries), Protected: sh.protected}
		sh.mu.RUnlock()
	}
	return out
}

// lookup returns the entry for a canonical key, touching its CLOCK bit.
// The entry is immutable, so using it after the lock is dropped is safe.
func (c *Cache) lookup(key string) *entry {
	sh := c.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	if e != nil {
		e.ref.Store(true)
	}
	return e
}

// Execute implements formclient.Conn.
func (c *Cache) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	schema, err := c.Schema(ctx)
	if err != nil {
		return nil, err
	}
	key := q.Key()

	// Rule 1: exact repeat. Shared (read) lock only — parallel workers
	// replaying hot queries never serialize here.
	sh := c.shardFor(key)
	sh.mu.RLock()
	if e, ok := sh.entries[key]; ok {
		res := e.result()
		sh.mu.RUnlock()
		e.ref.Store(true)
		c.exactHits.Add(1)
		return res, nil
	}
	sh.mu.RUnlock()

	if res := c.infer(schema, q); res != nil {
		c.inferred.Add(1)
		c.store(key, q, res, !res.Overflow)
		return res, nil
	}

	res, err := c.inner.Execute(ctx, q)
	if err != nil {
		return nil, err
	}
	// Fully-specified overflow answers keep their rows: they are the only
	// window onto duplicate-heavy cells, and a row-less replay would make
	// those rows unreachable on cache hits.
	keepRows := !res.Overflow || q.Len() == schema.NumAttrs()
	c.issued.Add(1)
	c.store(key, q, res, keepRows)
	return res, nil
}

// result materializes an entry as a fresh Result.
func (e *entry) result() *hiddendb.Result {
	res := &hiddendb.Result{Overflow: e.overflow, Count: e.count}
	res.Tuples = make([]hiddendb.Tuple, len(e.tuples))
	for i := range e.tuples {
		res.Tuples[i] = e.tuples[i].Clone()
	}
	return res
}

// store publishes an answer: the entry joins its shard (and, when it is a
// complete answer, the ancestor trie), then the MaxEntries cap is
// enforced. keepRows controls whether the visible rows are retained
// (always for complete answers, never for intermediate overflow pages,
// and for fully-specified overflow pages whose duplicates have no other
// access path — those are pinned against eviction).
func (c *Cache) store(key string, q hiddendb.Query, res *hiddendb.Result, keepRows bool) {
	e := &entry{
		key:      key,
		preds:    q.Preds(),
		overflow: res.Overflow,
		count:    res.Count,
		pinned:   res.Overflow && keepRows,
		indexed:  !res.Overflow,
		slot:     -1,
	}
	if keepRows {
		e.tuples = make([]hiddendb.Tuple, len(res.Tuples))
		for i := range res.Tuples {
			e.tuples[i] = res.Tuples[i].Clone()
		}
	}

	// Map and trie must change together under the shard lock: with the
	// trie updated outside it, two same-key stores can interleave so the
	// losing entry's removal deletes the winner's trie terminal (or
	// leaves a stale one). Lock order is always shard → trie; no path
	// acquires a shard lock while holding the trie lock.
	sh := c.shardFor(key)
	sh.mu.Lock()
	old := sh.entries[key]
	sh.entries[key] = e
	if old != nil {
		if old.slot >= 0 {
			sh.unlink(old)
			c.evictable.Add(-1)
		}
		if old.pinned {
			sh.protected--
		}
	}
	if e.pinned {
		sh.protected++
	} else {
		e.slot = len(sh.ring)
		sh.ring = append(sh.ring, e)
		c.evictable.Add(1)
	}
	if e.indexed {
		c.idx.insert(e.preds, e)
	}
	if old != nil && old.indexed {
		// No-op when the new entry already replaced it at the same trie
		// node; removes a stale terminal when the answer flipped to
		// overflow (interface drift).
		c.idx.remove(old.preds, old)
	}
	sh.mu.Unlock()

	c.enforceCap()
}

// enforceCap evicts CLOCK victims (round-robin across shards) until the
// evictable population fits MaxEntries again. Pinned entries are skipped
// by construction — they are never in an eviction ring.
func (c *Cache) enforceCap() {
	max := int64(c.opts.MaxEntries)
	if max <= 0 {
		return
	}
	for c.evictable.Load() > max {
		start := int(c.evictHand.Add(1))
		var victim *entry
		for i := 0; i < len(c.shards) && victim == nil; i++ {
			victim = c.shards[(start+i)&int(c.mask)].evictOne()
		}
		if victim == nil {
			return // nothing evictable anywhere
		}
		c.evictable.Add(-1)
		c.evictions.Add(1)
		if victim.indexed {
			c.idx.remove(victim.preds, victim)
		}
	}
}

// infer attempts rules 2-4 without holding any shard lock. Returns nil
// when the answer cannot be derived.
func (c *Cache) infer(schema *hiddendb.Schema, q hiddendb.Query) *hiddendb.Result {
	preds := q.Preds()
	d := len(preds)
	if d == 0 || d > c.opts.MaxInferDepth {
		return nil
	}
	// Rules 2/3: find the deepest complete ancestor in the subset trie
	// (deepest = fewest tuples to filter) and filter its rows locally.
	if anc := c.idx.bestAncestor(preds); anc != nil {
		anc.ref.Store(true)
		res := &hiddendb.Result{}
		for i := range anc.tuples {
			if q.Matches(anc.tuples[i].Vals) {
				res.Tuples = append(res.Tuples, anc.tuples[i].Clone())
			}
		}
		// A complete ancestor shows every match, so filtering pins the
		// exact count whether or not the interface reported one.
		res.Count = len(res.Tuples)
		return res
	}
	if c.opts.TrustCounts {
		if res := c.inferFromSiblingCounts(schema, q, preds); res != nil {
			return res
		}
	}
	return nil
}

// inferFromSiblingCounts applies rule 4: for some predicate (a=v) of q,
// the parent (q without a) and every sibling value of a are cached with
// exact counts, pinning count(q). Only empty (count 0) and overflow
// (count > k, unknown rows) outcomes can be fabricated without rows; a
// pinned small positive count still needs a real query for its tuples, so
// we return nil then.
func (c *Cache) inferFromSiblingCounts(schema *hiddendb.Schema, q hiddendb.Query, preds []hiddendb.Predicate) *hiddendb.Result {
	for _, p := range preds {
		parent := q.Without(p.Attr)
		pe := c.lookup(parent.Key())
		if pe == nil || pe.count == hiddendb.CountAbsent {
			continue
		}
		remaining := pe.count
		complete := true
		for v := 0; v < schema.DomainSize(p.Attr); v++ {
			if v == p.Value {
				continue
			}
			se := c.lookup(parent.With(p.Attr, v).Key())
			if se == nil || se.count == hiddendb.CountAbsent {
				complete = false
				break
			}
			remaining -= se.count
		}
		if !complete {
			continue
		}
		if remaining <= 0 {
			return &hiddendb.Result{Count: 0}
		}
		// A pinned positive count only helps when it implies overflow;
		// infer conservatively via the parent's own overflow threshold:
		// we do not know k here, so only the empty case is safe.
	}
	return nil
}

var _ formclient.Conn = (*Cache)(nil)
