package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// fig1DB is the demo paper's Figure 1 database: three boolean attributes,
// tuples t1=001, t2=010, t3=011, t4=110.
func fig1DB(t *testing.T, k int) *hiddendb.DB {
	t.Helper()
	s := hiddendb.MustSchema("fig1",
		hiddendb.BoolAttr("a1"), hiddendb.BoolAttr("a2"), hiddendb.BoolAttr("a3"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 1}},
		{Vals: []int{0, 1, 0}},
		{Vals: []int{0, 1, 1}},
		{Vals: []int{1, 1, 0}},
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// spyConn wraps a Conn and records every query issued.
type spyConn struct {
	formclient.Conn
	mu      sync.Mutex
	queries []hiddendb.Query
}

func (s *spyConn) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	s.mu.Lock()
	s.queries = append(s.queries, q)
	s.mu.Unlock()
	return s.Conn.Execute(ctx, q)
}

func TestWalkerFigure1Reaches(t *testing.T) {
	// Exact reach probabilities on the Figure 1 tree with k=1:
	// t1 = 1/4, t2 = 1/8, t3 = 1/8, t4 = 1/2 (worked in the paper's §2).
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 1, Order: OrderFixed})
	if err != nil {
		t.Fatal(err)
	}
	wantReach := map[int]float64{0: 0.25, 1: 0.125, 2: 0.125, 3: 0.5}
	counts := make(map[int]int)
	const draws = 4000
	for i := 0; i < draws; i++ {
		cand, err := w.Candidate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := wantReach[cand.Tuple.ID]; math.Abs(cand.Reach-got) > 1e-12 {
			t.Fatalf("tuple %d reported reach %g, want %g", cand.Tuple.ID, cand.Reach, got)
		}
		counts[cand.Tuple.ID]++
	}
	for id, want := range wantReach {
		got := float64(counts[id]) / draws
		if math.Abs(got-want) > 0.03 {
			t.Errorf("tuple %d empirical reach %g, want %g", id, got, want)
		}
	}
	// This database has no dead ends: every walk must yield a candidate.
	if w.GenStats().Restarts != 0 {
		t.Errorf("restarts = %d, want 0", w.GenStats().Restarts)
	}
}

func TestWalkerWithRejectionUniform(t *testing.T) {
	// C = 1/8 (the minimum reach) equalizes all four tuples at 1/8.
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 2, Order: OrderFixed})
	if err != nil {
		t.Fatal(err)
	}
	rej := NewRejector(0.125, 3)
	samples, stats, err := Collect(ctx, w, rej, 2000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for _, s := range samples {
		counts[s.ID]++
	}
	for id := 0; id < 4; id++ {
		got := float64(counts[id]) / 2000
		if math.Abs(got-0.25) > 0.035 {
			t.Errorf("tuple %d frequency %g, want 0.25", id, got)
		}
	}
	// Acceptance rate should be near 1/2 (computed analytically).
	rate := float64(stats.Accepted) / float64(stats.Candidates)
	if math.Abs(rate-0.5) > 0.05 {
		t.Errorf("acceptance rate %g, want ~0.5", rate)
	}
	// Expected queries per accepted sample = 1.75 / 0.5 = 3.5.
	qps := float64(stats.Queries) / float64(stats.Accepted)
	if math.Abs(qps-3.5) > 0.35 {
		t.Errorf("queries/sample = %g, want ~3.5", qps)
	}
}

func TestWalkerShuffleOrderStillCoversAll(t *testing.T) {
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 4, Order: OrderShuffle})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 400; i++ {
		cand, err := w.Candidate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[cand.Tuple.ID] = true
		if cand.Reach <= 0 || cand.Reach > 1 {
			t.Fatalf("reach %g out of (0,1]", cand.Reach)
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d distinct tuples reached", len(seen))
	}
}

func TestWalkerDeadEndRestarts(t *testing.T) {
	// Both tuples share a1=0, so the a1=1 branch is empty and half of all
	// fixed-order walks dead-end.
	s := hiddendb.MustSchema("sparse",
		hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"), hiddendb.BoolAttr("c"),
		hiddendb.BoolAttr("d"), hiddendb.BoolAttr("e"), hiddendb.BoolAttr("f"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 0, 0, 0, 0}},
		{Vals: []int{0, 1, 1, 1, 1, 1}},
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := w.Candidate(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if w.GenStats().Restarts == 0 {
		t.Error("expected restarts on a sparse database")
	}
}

func TestWalkerMaxRestarts(t *testing.T) {
	// k=1 with a database whose every walk dead-ends is impossible, so
	// instead bound restarts at 1 on a sparse database and expect
	// ErrNoCandidate sometimes; drive until observed.
	s := hiddendb.MustSchema("sparse",
		hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"), hiddendb.BoolAttr("c"),
		hiddendb.BoolAttr("d"), hiddendb.BoolAttr("e"), hiddendb.BoolAttr("f"),
		hiddendb.BoolAttr("g"), hiddendb.BoolAttr("h"))
	tuples := []hiddendb.Tuple{{Vals: []int{0, 0, 0, 0, 0, 0, 0, 0}}}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 6, MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 50 && !sawErr; i++ {
		if _, err := w.Candidate(ctx); errors.Is(err, ErrNoCandidate) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("MaxRestarts=1 never produced ErrNoCandidate on a 1/256 database")
	}
}

func TestWalkerAttributeScoping(t *testing.T) {
	ds := datagen.Vehicles(500, 31)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	spy := &spyConn{Conn: formclient.NewLocal(db)}
	ctx := context.Background()
	scope := []int{datagen.VehAttrMake, datagen.VehAttrCondition, datagen.VehAttrColor}
	w, err := NewWalker(ctx, spy, WalkerConfig{Seed: 7, Attrs: scope, Order: OrderShuffle})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := w.Candidate(ctx); err != nil {
			t.Fatal(err)
		}
	}
	allowed := map[int]bool{}
	for _, a := range scope {
		allowed[a] = true
	}
	for _, q := range spy.queries {
		for _, p := range q.Preds() {
			if !allowed[p.Attr] {
				t.Fatalf("query %v constrains out-of-scope attribute %d", q, p.Attr)
			}
		}
	}
}

func TestResolveAttrsErrors(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	if _, err := resolveAttrs(s, []int{0, 0}); err == nil {
		t.Error("duplicate attr accepted")
	}
	if _, err := resolveAttrs(s, []int{5}); err == nil {
		t.Error("out-of-range attr accepted")
	}
	got, err := resolveAttrs(s, nil)
	if err != nil || len(got) != 2 {
		t.Errorf("default scope = %v, %v", got, err)
	}
}

func TestBruteForceUniformAndCost(t *testing.T) {
	// 16-cell space, 6 distinct tuples: expected tries/sample = 16/6.
	s := hiddendb.MustSchema("s",
		hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"),
		hiddendb.BoolAttr("c"), hiddendb.BoolAttr("d"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 0, 0}}, {Vals: []int{0, 1, 0, 1}}, {Vals: []int{1, 0, 1, 0}},
		{Vals: []int{1, 1, 1, 1}}, {Vals: []int{0, 0, 1, 1}}, {Vals: []int{1, 1, 0, 0}},
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b, err := NewBruteForce(ctx, formclient.NewLocal(db), BruteForceConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	const draws = 3000
	for i := 0; i < draws; i++ {
		cand, err := b.Candidate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cand.Reach-1.0/16) > 1e-12 {
			t.Fatalf("brute-force reach = %g, want 1/16", cand.Reach)
		}
		counts[cand.Tuple.ID]++
	}
	for id := 0; id < 6; id++ {
		got := float64(counts[id]) / draws
		if math.Abs(got-1.0/6) > 0.03 {
			t.Errorf("tuple %d frequency %g, want %g", id, got, 1.0/6)
		}
	}
	qps := float64(b.GenStats().Queries) / draws
	if math.Abs(qps-16.0/6) > 0.25 {
		t.Errorf("queries/sample = %g, want ~%g", qps, 16.0/6)
	}
}

func TestBruteForceMaxTries(t *testing.T) {
	ds := datagen.IIDBoolean(10, 2, 0.5, 9) // 2 tuples in 1024 cells
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b, err := NewBruteForce(ctx, formclient.NewLocal(db), BruteForceConfig{Seed: 10, MaxTries: 3})
	if err != nil {
		t.Fatal(err)
	}
	sawErr := false
	for i := 0; i < 20 && !sawErr; i++ {
		if _, err := b.Candidate(ctx); errors.Is(err, ErrNoCandidate) {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("MaxTries=3 on a 2/1024 database never exhausted")
	}
}

func TestCountWalkerExactCountsUniform(t *testing.T) {
	// k must exceed the largest full-depth cell (71 here): tuples hidden
	// beyond the top-k of a fully-specified query are unreachable by ANY
	// interface-based sampler, so uniformity is only defined above it.
	ds := datagen.ZipfCategorical([]int{4, 3, 3}, 600, 1.0, 11)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 100, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cw, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(db.Size())
	counts := make(map[int]int)
	const draws = 3000
	for i := 0; i < draws; i++ {
		cand, err := cw.Candidate(ctx)
		if err != nil {
			t.Fatal(err)
		}
		// Exact counts make every candidate's reach exactly 1/N.
		if math.Abs(cand.Reach-1/n)/(1/n) > 1e-9 {
			t.Fatalf("reach = %g, want exactly 1/N = %g", cand.Reach, 1/n)
		}
		counts[cand.Tuple.ID]++
	}
	if cw.GenStats().Restarts != 0 {
		t.Errorf("restarts = %d, want 0 with exact counts", cw.GenStats().Restarts)
	}
	// Chi-square against uniform over 600 tuples with 3000 draws:
	// E=5 per cell; statistic should be near 599.
	chi := 0.0
	e := draws / n
	for id := 0; id < db.Size(); id++ {
		d := float64(counts[id]) - e
		chi += d * d / e
	}
	// df=599, sd=sqrt(2*599)=34.6; accept within 5 sigma.
	if chi > 599+5*34.6 {
		t.Errorf("chi-square = %g too large for uniformity (df=599)", chi)
	}
}

func TestCountWalkerUseParentCountSavesQueries(t *testing.T) {
	ds := datagen.ZipfCategorical([]int{5, 4, 4}, 800, 0.8, 13)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 100, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	plain, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	saver, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 14, UseParentCount: true})
	if err != nil {
		t.Fatal(err)
	}
	const draws = 300
	for i := 0; i < draws; i++ {
		if _, err := plain.Candidate(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := saver.Candidate(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if saver.GenStats().Queries >= plain.GenStats().Queries {
		t.Errorf("UseParentCount did not save queries: %d >= %d",
			saver.GenStats().Queries, plain.GenStats().Queries)
	}
	// Correctness preserved: all candidates still uniform reach 1/N.
	cand, err := saver.Candidate(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cand.Reach-1/float64(db.Size()))/(1/float64(db.Size())) > 1e-9 {
		t.Errorf("reach with UseParentCount = %g, want 1/N", cand.Reach)
	}
}

func TestCountWalkerNoCounts(t *testing.T) {
	ds := datagen.IIDBoolean(4, 50, 0.5, 15)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 5, CountMode: hiddendb.CountNone})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cw, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Candidate(ctx); !errors.Is(err, ErrNoCounts) {
		t.Fatalf("want ErrNoCounts, got %v", err)
	}
}

func TestCountWalkerApproxCountsWithCorrection(t *testing.T) {
	// With noisy counts the raw walk is skewed, but the reported proposal
	// reach plus rejection keeps the sample near-uniform.
	s := hiddendb.MustSchema("s", hiddendb.CatAttr("a", "0", "1", "2", "3"), hiddendb.BoolAttr("b"))
	var tuples []hiddendb.Tuple
	// Deliberately unbalanced: 40/20/10/10 split on attribute a.
	for i := 0; i < 80; i++ {
		v := 0
		switch {
		case i >= 40 && i < 60:
			v = 1
		case i >= 60 && i < 70:
			v = 2
		case i >= 70:
			v = 3
		}
		tuples = append(tuples, hiddendb.Tuple{Vals: []int{v, i % 2}})
	}
	// k = 25 exceeds the largest cell (20), so every tuple is visible.
	db, err := hiddendb.New(s, tuples, nil,
		hiddendb.Config{K: 25, CountMode: hiddendb.CountApprox, CountNoise: 0.4, NoiseSeed: 99})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cw, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	rej := NewRejector(1.0/(80*4), 18) // well below min reach: strong correction
	samples, _, err := Collect(ctx, cw, rej, 1500)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for _, tu := range samples {
		counts[tu.Vals[0]]++
	}
	want := []float64{0.5, 0.25, 0.125, 0.125}
	for v := range counts {
		got := float64(counts[v]) / float64(len(samples))
		if math.Abs(got-want[v]) > 0.05 {
			t.Errorf("value %d frequency %g, want %g", v, got, want[v])
		}
	}
}

func TestRejectorBehaviour(t *testing.T) {
	r := NewRejector(0.25, 19)
	if p := r.AcceptProb(0.5); p != 0.5 {
		t.Errorf("AcceptProb(0.5) = %g, want 0.5", p)
	}
	if p := r.AcceptProb(0.1); p != 1 {
		t.Errorf("AcceptProb(0.1) = %g, want 1 (reach below C)", p)
	}
	if p := r.AcceptProb(0); p != 0 {
		t.Errorf("AcceptProb(0) = %g, want 0", p)
	}
	var nilRej *Rejector
	if !nilRej.Accept(&Candidate{Reach: 0.9}) {
		t.Error("nil rejector must accept everything")
	}
	all := NewRejector(0, 20) // C<=0 accepts everything
	if !all.Accept(&Candidate{Reach: 1e-9}) {
		t.Error("C=0 should accept everything")
	}
	acc, rejd := all.Counts()
	if acc != 1 || rejd != 0 {
		t.Errorf("counts = %d,%d", acc, rejd)
	}
	// Empirical acceptance frequency matches AcceptProb.
	r2 := NewRejector(0.2, 21)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r2.Accept(&Candidate{Reach: 0.4}) {
			hits++
		}
	}
	if math.Abs(float64(hits)/10000-0.5) > 0.02 {
		t.Errorf("empirical acceptance %g, want 0.5", float64(hits)/10000)
	}
}

func TestSliderC(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"), hiddendb.BoolAttr("c"))
	k := 4
	cmin := SliderC(s, nil, k, 0)
	if math.Abs(cmin-1.0/(8*4)) > 1e-12 {
		t.Errorf("SliderC(0) = %g, want 1/32", cmin)
	}
	if got := SliderC(s, nil, k, 1); got != 1 {
		t.Errorf("SliderC(1) = %g, want 1", got)
	}
	prev := 0.0
	for _, pos := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := SliderC(s, nil, k, pos)
		if c <= prev {
			t.Errorf("SliderC not increasing at %g: %g <= %g", pos, c, prev)
		}
		prev = c
	}
	// Clamping.
	if SliderC(s, nil, k, -1) != cmin || SliderC(s, nil, k, 2) != 1 {
		t.Error("slider clamping broken")
	}
	// Scoped space is smaller.
	if SliderC(s, []int{0}, k, 0) <= cmin {
		t.Error("scoped Cmin should exceed full-space Cmin")
	}
}

func TestPipelineTargetAndProgress(t *testing.T) {
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(w, NewRejector(0.125, 23), PipelineConfig{Target: 50})
	var got []Sample
	for s := range p.Start(ctx) {
		got = append(got, s)
	}
	if len(got) != 50 {
		t.Fatalf("samples = %d, want 50", len(got))
	}
	if err := p.Err(); err != nil {
		t.Fatalf("pipeline error: %v", err)
	}
	pr := p.Progress()
	if !pr.Done || pr.Accepted < 50 || pr.Candidates < pr.Accepted || pr.Queries == 0 {
		t.Fatalf("progress = %+v", pr)
	}
	for _, s := range got {
		if s.Reach <= 0 || s.Tuple.Vals == nil {
			t.Fatal("malformed sample")
		}
	}
}

func TestPipelineElapsedFreezesAtCompletion(t *testing.T) {
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(w, nil, PipelineConfig{Target: 5})
	for range p.Start(ctx) {
	}
	first := p.Progress()
	if !first.Done {
		t.Fatalf("pipeline not done: %+v", first)
	}
	if first.Elapsed <= 0 {
		t.Fatalf("finished pipeline has elapsed %v", first.Elapsed)
	}
	time.Sleep(30 * time.Millisecond)
	second := p.Progress()
	if second.Elapsed != first.Elapsed {
		t.Fatalf("elapsed kept ticking after completion: %v then %v", first.Elapsed, second.Elapsed)
	}
}

func TestPipelineKillSwitch(t *testing.T) {
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(w, nil, PipelineConfig{}) // unbounded run
	ch := p.Start(ctx)
	// Read a few samples, then hit the kill switch.
	for i := 0; i < 5; i++ {
		if _, ok := <-ch; !ok {
			t.Fatal("channel closed early")
		}
	}
	p.Stop()
	for range ch {
	} // drain until close
	if !p.Progress().Done {
		t.Error("pipeline not marked done after Stop")
	}
	if err := p.Err(); err != nil {
		t.Errorf("kill switch should not surface an error, got %v", err)
	}
}

func TestPipelineSurfacesGeneratorError(t *testing.T) {
	ds := datagen.IIDBoolean(4, 50, 0.5, 25)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: 5, CountMode: hiddendb.CountNone})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cw, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(cw, nil, PipelineConfig{Target: 5})
	for range p.Start(ctx) {
	}
	if !errors.Is(p.Err(), ErrNoCounts) {
		t.Fatalf("want ErrNoCounts, got %v", p.Err())
	}
}

func TestCollectContextCancel(t *testing.T) {
	db := fig1DB(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, _, err := Collect(ctx, w, nil, 10); err == nil {
		t.Fatal("cancelled Collect should fail")
	}
}

func TestOrderString(t *testing.T) {
	if OrderFixed.String() != "fixed" || OrderShuffle.String() != "shuffle" {
		t.Error("order names wrong")
	}
}
