package core

import (
	"context"
	"math"
	"testing"

	"hdsampler/internal/formclient"
)

func TestAdaptiveRejectorCalibratesToUniform(t *testing.T) {
	// On the Figure 1 database the reach distribution is {1/4, 1/8, 1/8,
	// 1/2} with observation probabilities {1/4, 1/4, 1/2}: the bottom
	// quartile of observed reaches is 1/8 — exactly the uniformizing C.
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rej := NewAdaptiveRejector(0.25, 400, 32)
	if !rej.Calibrating() || rej.C() != 0 {
		t.Fatal("should start calibrating")
	}
	samples, stats, err := Collect(ctx, w, rej, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if rej.Calibrating() {
		t.Fatal("still calibrating after collection")
	}
	if math.Abs(rej.C()-0.125) > 1e-12 {
		t.Fatalf("frozen C = %g, want 0.125", rej.C())
	}
	counts := make(map[int]int)
	for _, tu := range samples {
		counts[tu.ID]++
	}
	for id := 0; id < 4; id++ {
		got := float64(counts[id]) / float64(len(samples))
		if math.Abs(got-0.25) > 0.04 {
			t.Errorf("tuple %d frequency %g, want 0.25", id, got)
		}
	}
	// Warmup candidates were all rejected.
	if stats.Rejected < 400 {
		t.Errorf("rejected = %d, want >= warmup 400", stats.Rejected)
	}
	acc, _ := rej.Counts()
	if acc != 1500 {
		t.Errorf("post-warmup accepted = %d, want 1500", acc)
	}
}

func TestAdaptiveRejectorDefaults(t *testing.T) {
	r := NewAdaptiveRejector(0, 0, 1)
	if r.Quantile != 0.25 || r.Warmup != 100 {
		t.Fatalf("defaults = %+v", r)
	}
	r2 := NewAdaptiveRejector(2, 0, 1)
	if r2.Quantile != 0.25 {
		t.Fatalf("out-of-range quantile not defaulted: %g", r2.Quantile)
	}
	var nilRej *AdaptiveRejector
	if !nilRej.Accept(&Candidate{Reach: 0.5}) {
		t.Error("nil adaptive rejector must accept")
	}
	if a, rj := nilRej.Counts(); a != 0 || rj != 0 {
		t.Error("nil counts should be zero")
	}
}

func TestAdaptiveRejectorQuantileOne(t *testing.T) {
	// Quantile 1 freezes C at the maximum observed reach: everything at or
	// below it is accepted.
	db := fig1DB(t, 1)
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	rej := NewAdaptiveRejector(1, 50, 34)
	if _, _, err := Collect(ctx, w, rej, 100); err != nil {
		t.Fatal(err)
	}
	if rej.C() != 0.5 {
		t.Fatalf("C = %g, want max reach 0.5", rej.C())
	}
	acc, rejd := rej.Counts()
	if rejd != 0 || acc != 100 {
		t.Fatalf("post-warmup accept/reject = %d/%d, want 100/0", acc, rejd)
	}
}
