package core

import (
	"context"
	"errors"
	"testing"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// failConn fails Schema, exercising every constructor's error path.
type failConn struct{}

func (failConn) Schema(context.Context) (*hiddendb.Schema, error) {
	return nil, errors.New("boom")
}
func (failConn) Execute(context.Context, hiddendb.Query) (*hiddendb.Result, error) {
	return nil, errors.New("boom")
}
func (failConn) Stats() formclient.Stats { return formclient.Stats{} }

func TestConstructorsPropagateSchemaError(t *testing.T) {
	ctx := context.Background()
	if _, err := NewWalker(ctx, failConn{}, WalkerConfig{}); err == nil {
		t.Error("NewWalker swallowed schema error")
	}
	if _, err := NewBruteForce(ctx, failConn{}, BruteForceConfig{}); err == nil {
		t.Error("NewBruteForce swallowed schema error")
	}
	if _, err := NewCountWalker(ctx, failConn{}, CountWalkerConfig{}); err == nil {
		t.Error("NewCountWalker swallowed schema error")
	}
	if _, err := NewCrawler(ctx, failConn{}, CrawlerConfig{}); err == nil {
		t.Error("NewCrawler swallowed schema error")
	}
}

func TestConstructorsRejectBadAttrs(t *testing.T) {
	db := fig1DB(t, 1)
	conn := formclient.NewLocal(db)
	ctx := context.Background()
	bad := []int{0, 0}
	if _, err := NewWalker(ctx, conn, WalkerConfig{Attrs: bad}); err == nil {
		t.Error("NewWalker accepted duplicate attrs")
	}
	if _, err := NewBruteForce(ctx, conn, BruteForceConfig{Attrs: bad}); err == nil {
		t.Error("NewBruteForce accepted duplicate attrs")
	}
	if _, err := NewCountWalker(ctx, conn, CountWalkerConfig{Attrs: bad}); err == nil {
		t.Error("NewCountWalker accepted duplicate attrs")
	}
	if _, err := NewCrawler(ctx, conn, CrawlerConfig{Attrs: []int{7}}); err == nil {
		t.Error("NewCrawler accepted out-of-range attrs")
	}
}

func TestWalkerSchemaAccessorAndExecuteError(t *testing.T) {
	// Exhaust a query budget mid-walk: the generator surfaces the error.
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	tuples := make([]hiddendb.Tuple, 20)
	for i := range tuples {
		tuples[i] = hiddendb.Tuple{Vals: []int{i % 2, (i / 2) % 2}}
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 2, QueryBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if !w.Schema().Equal(db.Schema()) {
		t.Error("Schema accessor wrong")
	}
	sawBudget := false
	for i := 0; i < 10 && !sawBudget; i++ {
		if _, err := w.Candidate(ctx); errors.Is(err, hiddendb.ErrBudgetExhausted) {
			sawBudget = true
		}
	}
	if !sawBudget {
		t.Error("budget exhaustion never surfaced")
	}
}

func TestCountWalkerExecuteErrorMidProbe(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.CatAttr("a", "0", "1", "2"), hiddendb.BoolAttr("b"))
	tuples := make([]hiddendb.Tuple, 30)
	for i := range tuples {
		tuples[i] = hiddendb.Tuple{Vals: []int{i % 3, i % 2}}
	}
	db, err := hiddendb.New(s, tuples, nil,
		hiddendb.Config{K: 2, CountMode: hiddendb.CountExact, QueryBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cw, err := NewCountWalker(ctx, formclient.NewLocal(db), CountWalkerConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Candidate(ctx); !errors.Is(err, hiddendb.ErrBudgetExhausted) {
		t.Fatalf("want budget error, got %v", err)
	}
}

func TestRejectorCountsAfterMix(t *testing.T) {
	r := NewRejector(0.5, 43)
	r.Accept(&Candidate{Reach: 0.1}) // below C: always accepted
	r.Accept(&Candidate{Reach: 1})   // accepted w.p. 0.5
	acc, rej := r.Counts()
	if acc+rej != 2 || acc < 1 {
		t.Fatalf("counts = %d,%d", acc, rej)
	}
}

func TestSliderCWithBadAttrsFallsBack(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"), hiddendb.BoolAttr("b"))
	// Invalid scope falls back to the full attribute set rather than
	// panicking (defensive: the slider is UI-driven).
	c := SliderC(s, []int{9, 9}, 10, 0)
	want := SliderC(s, nil, 10, 0)
	if c != want {
		t.Fatalf("fallback C = %g, want %g", c, want)
	}
	if SliderC(s, nil, 0, 0) != SliderC(s, nil, 1, 0) {
		t.Error("k<1 should clamp to 1")
	}
}
