// Package core implements the sampling algorithms HDSampler packages: the
// HIDDEN-DB-SAMPLER random drill-down (SIGMOD 2007), the provably-uniform
// BRUTE-FORCE-SAMPLER validation baseline, the count-weighted drill-down
// from the ICDE 2009 count-leveraging work, the acceptance/rejection
// processor realizing the demo's efficiency↔skew slider, and the
// incremental Generator → Processor → Output pipeline of the demo's
// architecture (Figure 2), complete with its kill switch.
//
// All samplers access the hidden database exclusively through a
// formclient.Conn — the conjunctive top-k interface — and never see
// anything a web client could not.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/telemetry"
)

// ErrNoCandidate is returned when a generator exhausts its restart budget
// without producing a candidate (e.g. an extremely sparse database).
var ErrNoCandidate = errors.New("core: restart budget exhausted without a candidate")

// ErrNoCounts is returned by the count-weighted sampler when the interface
// does not report counts.
var ErrNoCounts = errors.New("core: interface reports no counts")

// Candidate is one tuple pulled off the interface by a generator, before
// acceptance/rejection. Reach is the exact probability that the generating
// procedure produced this particular row on this attempt — the quantity
// the rejection step needs to undo the walk's skew.
type Candidate struct {
	Tuple hiddendb.Tuple
	// Reach is the probability the walk that produced this candidate chose
	// this row: the product of the per-level branch probabilities times
	// the uniform pick among the returned rows.
	Reach float64
	// Queries is the number of interface queries this draw consumed,
	// including restarted walks.
	Queries int
	// Depth is the number of predicates in the final query.
	Depth int
	// Restarts is the number of dead-end walks before this candidate.
	Restarts int
	// Trace is the walk's telemetry trace when this draw was sampled for
	// tracing (nil otherwise). The acceptance/rejection stage records its
	// decision on it and finishes it.
	Trace *telemetry.WalkTrace
}

// Generator produces candidate samples. Implementations are not safe for
// concurrent use; give each goroutine its own generator.
type Generator interface {
	// Candidate draws the next candidate, retrying dead-end walks
	// internally. It fails with ErrNoCandidate when the restart budget is
	// exhausted, or with the connector's error (rate limiting, budget,
	// cancelled context).
	Candidate(ctx context.Context) (*Candidate, error)
	// GenStats reports cumulative generator-side counters.
	GenStats() GenStats
}

// GenStats counts a generator's work.
type GenStats struct {
	// Walks is the number of drill-downs started, Restarts the subset that
	// dead-ended, Candidates the number of candidates produced.
	Walks      int64
	Restarts   int64
	Candidates int64
	// Queries is the number of interface queries issued by this generator
	// (as observed through its connector calls).
	Queries int64
}

// genCounters is the generators' internal counter set. Counters are
// atomic because live progress displays read them from other goroutines
// while a walk is underway.
type genCounters struct {
	walks, restarts, candidates, queries atomic.Int64
}

// snapshot materializes the counters as a GenStats value.
func (c *genCounters) snapshot() GenStats {
	return GenStats{
		Walks:      c.walks.Load(),
		Restarts:   c.restarts.Load(),
		Candidates: c.candidates.Load(),
		Queries:    c.queries.Load(),
	}
}

// resolveAttrs validates an optional attribute subset against the schema,
// defaulting to all attributes. The subset is the demo's Figure 3 scoping:
// the user may restrict sampling to the attributes of interest.
func resolveAttrs(schema *hiddendb.Schema, attrs []int) ([]int, error) {
	if len(attrs) == 0 {
		out := make([]int, schema.NumAttrs())
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	seen := make(map[int]bool, len(attrs))
	out := make([]int, 0, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= schema.NumAttrs() {
			return nil, fmt.Errorf("core: attribute %d out of range [0,%d)", a, schema.NumAttrs())
		}
		if seen[a] {
			return nil, fmt.Errorf("core: duplicate attribute %d in scope", a)
		}
		seen[a] = true
		out = append(out, a)
	}
	return out, nil
}

// subspaceSize returns the size of the cross-product space restricted to
// the given attributes.
func subspaceSize(schema *hiddendb.Schema, attrs []int) float64 {
	size := 1.0
	for _, a := range attrs {
		size *= float64(schema.DomainSize(a))
	}
	return size
}
