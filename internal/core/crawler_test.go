package core

import (
	"context"
	"errors"
	"sort"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

func TestCrawlerExtractsEverything(t *testing.T) {
	ds := datagen.IIDBoolean(8, 120, 0.5, 7)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := NewCrawler(ctx, formclient.NewLocal(db), CrawlerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// m=8, n=120, k=10: cells hold few duplicates, so everything with an
	// occupied count <= k at full depth is reachable. Verify exact set
	// equality by ID.
	var ids []int
	for _, tu := range tuples {
		ids = append(ids, tu.ID)
	}
	sort.Ints(ids)
	if len(ids) != db.Size() {
		t.Fatalf("crawled %d tuples, database has %d", len(ids), db.Size())
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("missing/duplicate tuple: ids[%d] = %d", i, id)
		}
	}
	if c.Queries() == 0 {
		t.Fatal("no queries counted")
	}
}

func TestCrawlerRespectsBudget(t *testing.T) {
	ds := datagen.IIDBoolean(10, 300, 0.5, 8)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := NewCrawler(ctx, formclient.NewLocal(db), CrawlerConfig{MaxQueries: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx); !errors.Is(err, ErrCrawlBudget) {
		t.Fatalf("want ErrCrawlBudget, got %v", err)
	}
	if c.Queries() > 20 {
		t.Fatalf("crawler issued %d queries past its budget", c.Queries())
	}
}

func TestCrawlerCostExceedsSampling(t *testing.T) {
	// The paper's argument: a crawl costs far more than the handful of
	// samples an aggregate needs. That holds when k is small relative to
	// n (the realistic regime — MSN Stock Screener used k = 25): crawl
	// cost grows like n/k · depth while sampling cost is independent of n.
	ds := datagen.Vehicles(20000, 9)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 25})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	crawler, err := NewCrawler(ctx, formclient.NewLocal(db), CrawlerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := crawler.Run(ctx); err != nil {
		t.Fatal(err)
	}

	w, err := NewWalker(ctx, formclient.NewLocal(db), WalkerConfig{Seed: 10, Order: OrderShuffle})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Collect(ctx, w, nil, 100); err != nil {
		t.Fatal(err)
	}
	if crawler.Queries() <= 3*w.GenStats().Queries {
		t.Fatalf("crawl (%d queries) should dwarf 100 samples (%d queries)",
			crawler.Queries(), w.GenStats().Queries)
	}
}

func TestCrawlerScoped(t *testing.T) {
	ds := datagen.Vehicles(300, 10)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Scoped to make+condition: 36 leaf queries at most.
	c, err := NewCrawler(ctx, formclient.NewLocal(db),
		CrawlerConfig{Attrs: []int{datagen.VehAttrMake, datagen.VehAttrCondition}})
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Only cells with <= k rows are fully extracted; with n=300 over 36
	// cells most hold <= 50, so coverage should be high but counted
	// honestly.
	if len(tuples) == 0 || len(tuples) > db.Size() {
		t.Fatalf("crawled %d of %d", len(tuples), db.Size())
	}
	seen := map[int]bool{}
	for _, tu := range tuples {
		if seen[tu.ID] {
			t.Fatalf("duplicate tuple %d in crawl output", tu.ID)
		}
		seen[tu.ID] = true
	}
}
