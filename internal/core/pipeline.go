package core

import (
	"context"
	"sync/atomic"
	"time"

	"hdsampler/internal/hiddendb"
)

// Sample is one accepted sample with its provenance.
type Sample struct {
	Tuple hiddendb.Tuple
	// Reach is the candidate's reach probability (before rejection).
	Reach float64
	// Queries is the number of interface queries the producing draw cost.
	Queries int
}

// Progress is a point-in-time snapshot of a running pipeline, the numbers
// the demo's front end displays while sampling is underway.
type Progress struct {
	Candidates int64
	Accepted   int64
	Rejected   int64
	// Queries is the interface query bill of every candidate the pipeline
	// has processed (accepted or rejected), attributed from each
	// candidate's own draw cost. Attribution makes the completed-run
	// figure a pure function of the candidate sequence: the generator
	// goroutine prefetches ahead of the consumer, so reading the
	// generator's raw counter would include a scheduling-dependent number
	// of walks past the target — and the scenario matrix gates on
	// reproducible costs.
	Queries int64
	Elapsed time.Duration
	// Done reports that the pipeline has stopped (target reached, error,
	// or kill switch).
	Done bool
	// Err is the terminal error, if any (nil on clean completion).
	Err error
}

// PipelineConfig tunes a pipeline run.
type PipelineConfig struct {
	// Target is the number of accepted samples to collect; 0 runs until
	// the kill switch (Stop) or context cancellation.
	Target int
	// Buffer is the output channel capacity; defaults to 16.
	Buffer int
}

// Pipeline wires a Generator to a Rejector and streams accepted samples —
// the demo's incremental Sample Generator → Sample Processor → Output
// Module loop (Figure 2). Consumers read from Samples; the kill switch is
// Stop or context cancellation. After Samples closes, Err reports the
// terminal error.
type Pipeline struct {
	gen Generator
	rej Acceptor
	cfg PipelineConfig

	samples chan Sample
	cancel  context.CancelFunc

	candidates atomic.Int64
	accepted   atomic.Int64
	rejected   atomic.Int64
	queries    atomic.Int64
	start      time.Time
	elapsed    atomic.Int64 // frozen run duration (ns), set before done
	done       atomic.Bool
	err        atomic.Value // error
}

// NewPipeline builds a pipeline; rej may be nil to accept every candidate.
func NewPipeline(gen Generator, rej Acceptor, cfg PipelineConfig) *Pipeline {
	if cfg.Buffer <= 0 {
		cfg.Buffer = 16
	}
	return &Pipeline{gen: gen, rej: rej, cfg: cfg}
}

// Start launches the pipeline and returns the sample stream. It may be
// called once.
func (p *Pipeline) Start(ctx context.Context) <-chan Sample {
	ctx, p.cancel = context.WithCancel(ctx)
	p.samples = make(chan Sample, p.cfg.Buffer)
	p.start = time.Now()

	// The generator is not concurrency-safe, so candidates are produced in
	// a single goroutine; the processor stage runs in a second goroutine,
	// mirroring the demo's module split.
	candidates := make(chan *Candidate, p.cfg.Buffer)
	go func() {
		defer close(candidates)
		for ctx.Err() == nil {
			cand, err := p.gen.Candidate(ctx)
			if err != nil {
				if ctx.Err() == nil {
					p.err.Store(err)
				}
				return
			}
			p.candidates.Add(1)
			select {
			case candidates <- cand:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		defer func() {
			// Freeze the run duration before publishing done, so Progress
			// never reports a finished pipeline with a still-ticking clock.
			p.elapsed.Store(int64(time.Since(p.start)))
			p.done.Store(true)
			p.cancel()
			close(p.samples)
		}()
		for cand := range candidates {
			p.queries.Add(int64(cand.Queries))
			if p.rej != nil && !p.rej.Accept(cand) {
				cand.Trace.Decide(false)
				p.rejected.Add(1)
				continue
			}
			cand.Trace.Decide(true)
			p.accepted.Add(1)
			s := Sample{Tuple: cand.Tuple, Reach: cand.Reach, Queries: cand.Queries}
			select {
			case p.samples <- s:
			case <-ctx.Done():
				return
			}
			if p.cfg.Target > 0 && p.accepted.Load() >= int64(p.cfg.Target) {
				return
			}
		}
	}()
	return p.samples
}

// Stop is the kill switch: it halts sampling; the Samples channel closes
// shortly after. Safe to call repeatedly and before Start completes a
// sample.
func (p *Pipeline) Stop() {
	if p.cancel != nil {
		p.cancel()
	}
}

// Err returns the terminal error after the sample stream closes, or nil.
func (p *Pipeline) Err() error {
	if e, ok := p.err.Load().(error); ok {
		return e
	}
	return nil
}

// Progress returns a live snapshot.
func (p *Pipeline) Progress() Progress {
	pr := Progress{
		Candidates: p.candidates.Load(),
		Accepted:   p.accepted.Load(),
		Rejected:   p.rejected.Load(),
		Queries:    p.queries.Load(),
		Done:       p.done.Load(),
		Err:        p.Err(),
	}
	switch {
	case pr.Done:
		// The run is over: elapsed stays frozen at the completion time
		// instead of growing forever under a status poller.
		pr.Elapsed = time.Duration(p.elapsed.Load())
	case !p.start.IsZero():
		pr.Elapsed = time.Since(p.start)
	}
	return pr
}

// CollectStats summarizes a synchronous Collect run.
type CollectStats struct {
	Candidates int64
	Accepted   int64
	Rejected   int64
	Queries    int64
	Elapsed    time.Duration
}

// Collect synchronously draws n accepted samples, a convenience wrapper
// over the pipeline for programmatic use.
func Collect(ctx context.Context, gen Generator, rej Acceptor, n int) ([]hiddendb.Tuple, CollectStats, error) {
	startQueries := gen.GenStats().Queries
	start := time.Now()
	var stats CollectStats
	out := make([]hiddendb.Tuple, 0, n)
	for len(out) < n {
		if err := ctx.Err(); err != nil {
			return out, stats, err
		}
		cand, err := gen.Candidate(ctx)
		if err != nil {
			stats.Queries = gen.GenStats().Queries - startQueries
			stats.Elapsed = time.Since(start)
			return out, stats, err
		}
		stats.Candidates++
		if rej != nil && !rej.Accept(cand) {
			cand.Trace.Decide(false)
			stats.Rejected++
			continue
		}
		cand.Trace.Decide(true)
		stats.Accepted++
		out = append(out, cand.Tuple)
	}
	stats.Queries = gen.GenStats().Queries - startQueries
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}
