package core

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"hdsampler/internal/hiddendb"
)

// Rejector is the Sample Processor of the demo's architecture: it applies
// acceptance/rejection to candidate samples so that every tuple's final
// selection probability is min(reach, C). C — the target reach
// probability — is the efficiency↔skew knob:
//
//   - C below every tuple's reach probability yields provably uniform
//     samples at the price of many rejections;
//   - C = 1 accepts every candidate, keeping the walk's raw skew but
//     wasting no queries.
//
// The demo exposes this choice as a slider (§3.1); SliderC maps the slider
// position onto C.
//
// A Rejector is safe for concurrent use: replica pools and shared
// pipelines may call Accept from many goroutines. C must not be mutated
// after construction.
type Rejector struct {
	// C is the target reach probability; treat as immutable once built.
	C float64

	mu  sync.Mutex // guards rng (math/rand.Rand is not concurrency-safe)
	rng *rand.Rand

	accepted atomic.Int64
	rejected atomic.Int64
}

// NewRejector builds a processor with the given target reach probability.
// C <= 0 or C >= 1 accepts everything.
func NewRejector(c float64, seed int64) *Rejector {
	return &Rejector{C: c, rng: rand.New(rand.NewSource(seed))}
}

// AcceptProb returns the probability with which a candidate of the given
// reach is accepted: min(1, C/reach).
func (r *Rejector) AcceptProb(reach float64) float64 {
	if r == nil || r.C <= 0 || r.C >= 1 {
		return 1
	}
	if reach <= 0 {
		return 0
	}
	return math.Min(1, r.C/reach)
}

// Accept decides one candidate's fate. A nil Rejector accepts everything
// (the brute-force path, whose candidates are already uniform). Safe to
// call from multiple goroutines sharing one acceptor.
func (r *Rejector) Accept(c *Candidate) bool {
	if r == nil {
		return true
	}
	p := r.AcceptProb(c.Reach)
	ok := p >= 1
	if !ok {
		r.mu.Lock()
		ok = r.rng.Float64() < p
		r.mu.Unlock()
	}
	if ok {
		r.accepted.Add(1)
	} else {
		r.rejected.Add(1)
	}
	return ok
}

// Counts returns how many candidates were accepted and rejected.
func (r *Rejector) Counts() (accepted, rejected int64) {
	if r == nil {
		return 0, 0
	}
	return r.accepted.Load(), r.rejected.Load()
}

// SliderC maps the demo's efficiency↔skew slider position s ∈ [0,1] onto a
// target reach probability, log-linearly between the conservative uniform
// bound 1/(|space|·k) (s = 0: lowest skew, most rejections) and 1 (s = 1:
// highest efficiency, no rejections). attrs may be nil for the full
// attribute set.
func SliderC(schema *hiddendb.Schema, attrs []int, k int, s float64) float64 {
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	scoped, err := resolveAttrs(schema, attrs)
	if err != nil {
		scoped = nil
		for i := 0; i < schema.NumAttrs(); i++ {
			scoped = append(scoped, i)
		}
	}
	if k < 1 {
		k = 1
	}
	space := subspaceSize(schema, scoped)
	logCmin := -math.Log(space * float64(k))
	return math.Exp(logCmin * (1 - s))
}
