package core

import (
	"context"
	"math/rand"
	"time"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/telemetry"
)

// Order selects how the random walk orders attributes.
type Order int

const (
	// OrderFixed walks attributes in schema order every time.
	OrderFixed Order = iota
	// OrderShuffle reshuffles the attribute order before every walk — the
	// SIGMOD 2007 paper's variance reducer: a tuple unlucky under one
	// order is reachable earlier under another, flattening the reach
	// distribution.
	OrderShuffle
)

// String names the order mode.
func (o Order) String() string {
	if o == OrderShuffle {
		return "shuffle"
	}
	return "fixed"
}

// WalkerConfig tunes the HIDDEN-DB-SAMPLER generator.
type WalkerConfig struct {
	// Seed drives all of the walker's randomness.
	Seed int64
	// Order selects fixed or per-walk shuffled attribute order.
	Order Order
	// Attrs optionally restricts the walk to an attribute subset
	// (sampling "the whole dataset or a specific selection of attributes",
	// demo §3.1). Empty means all attributes.
	Attrs []int
	// MaxRestarts bounds dead-end walks per candidate; 0 means 100000.
	MaxRestarts int
	// Obs observes candidate draws (latency histogram, walk tracing,
	// slow-walk log); nil disables observation.
	Obs *telemetry.WalkObserver
}

// Walker implements HIDDEN-DB-SAMPLER: a random drill-down from broad,
// overflowing queries toward the first non-overflowing (valid) query,
// picking one returned row uniformly. Candidates carry their exact reach
// probability for the downstream acceptance/rejection step.
type Walker struct {
	conn   formclient.Conn
	schema *hiddendb.Schema
	cfg    WalkerConfig
	attrs  []int
	rng    *rand.Rand
	stats  genCounters

	// orderBuf and predBuf are scratch reused across the up-to-MaxRestarts
	// (default 100k) walks of a single candidate draw: the shuffled
	// attribute order and the walk's predicates in canonical order. Both
	// are sized to the attribute count at construction, so walks never
	// grow them. A Walker is single-goroutine by contract (Generator), so
	// plain fields suffice.
	orderBuf []int
	predBuf  []hiddendb.Predicate
}

// NewWalker builds a walker over conn, fetching the schema eagerly.
func NewWalker(ctx context.Context, conn formclient.Conn, cfg WalkerConfig) (*Walker, error) {
	schema, err := conn.Schema(ctx)
	if err != nil {
		return nil, err
	}
	attrs, err := resolveAttrs(schema, cfg.Attrs)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 100000
	}
	return &Walker{
		conn:     conn,
		schema:   schema,
		cfg:      cfg,
		attrs:    attrs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		orderBuf: make([]int, len(attrs)),
		predBuf:  make([]hiddendb.Predicate, 0, len(attrs)),
	}, nil
}

// Schema returns the schema the walker operates over.
func (w *Walker) Schema() *hiddendb.Schema { return w.schema }

// GenStats implements Generator.
func (w *Walker) GenStats() GenStats { return w.stats.snapshot() }

// Candidate implements Generator: it repeats random walks until one yields
// a candidate.
func (w *Walker) Candidate(ctx context.Context) (*Candidate, error) {
	sp, ctx := w.cfg.Obs.Begin(ctx, "walk")
	restarts := 0
	queries := 0
	for restarts < w.cfg.MaxRestarts {
		cand, q, err := w.walkOnce(ctx, sp.Trace(), restarts)
		queries += q
		if err != nil {
			sp.End(queries, restarts, false, err)
			return nil, err
		}
		if cand != nil {
			cand.Queries = queries
			cand.Restarts = restarts
			w.stats.candidates.Add(1)
			cand.Trace = sp.End(queries, restarts, true, nil)
			return cand, nil
		}
		restarts++
		w.stats.restarts.Add(1)
	}
	sp.End(queries, restarts, false, ErrNoCandidate)
	return nil, ErrNoCandidate
}

// walkOnce performs one drill-down, recording per-level spans on tr when
// the draw is traced. It returns (nil, queries, nil) on a dead end.
//
//hdlint:hotpath
func (w *Walker) walkOnce(ctx context.Context, tr *telemetry.WalkTrace, walk int) (*Candidate, int, error) {
	w.stats.walks.Add(1)
	order := w.attrs
	if w.cfg.Order == OrderShuffle {
		copy(w.orderBuf, w.attrs)
		//hdlint:ignore hotpath the swap closure is passed to rand.Shuffle and never escapes; Go allocates it on the stack
		w.rng.Shuffle(len(w.orderBuf), func(i, j int) { w.orderBuf[i], w.orderBuf[j] = w.orderBuf[j], w.orderBuf[i] })
		order = w.orderBuf
	}
	preds := w.predBuf[:0]
	pathProb := 1.0
	queries := 0
	for depth, attr := range order {
		dom := w.schema.DomainSize(attr)
		v := w.rng.Intn(dom)
		preds = insertPred(preds, hiddendb.Predicate{Attr: attr, Value: v})
		q, err := hiddendb.QueryFromSorted(preds)
		if err != nil {
			return nil, queries, err
		}
		pathProb /= float64(dom)

		var res *hiddendb.Result
		if tr != nil {
			// Per-level timing runs only on traced walks; the untraced hot
			// path reads no clocks.
			tr.BeginLevel(walk, depth, attr, v)
			start := time.Now()
			res, err = w.conn.Execute(ctx, q)
			tr.EndLevel(levelOutcome(res, err), time.Since(start))
		} else {
			res, err = w.conn.Execute(ctx, q)
		}
		if err != nil {
			return nil, queries, err
		}
		queries++
		w.stats.queries.Add(1)

		switch {
		case res.Empty():
			return nil, queries, nil // dead end: restart
		case res.Valid():
			return w.pick(res, pathProb, depth+1), queries, nil
		case depth == len(order)-1:
			// Fully specified yet still overflowing: the matches are
			// duplicates beyond k. Only the top-k rows are visible through
			// the interface; pick uniformly among them. Reach stays exact:
			// it is the probability of emitting this visible row. A
			// row-less overflow page (some sites or caches omit rows)
			// leaves nothing to pick: restart.
			if len(res.Tuples) == 0 {
				return nil, queries, nil
			}
			return w.pick(res, pathProb, depth+1), queries, nil
		}
		// Overflow: extend the query with the next attribute.
	}
	return nil, queries, nil // unreachable: loop always returns
}

// insertPred inserts p into an attribute-sorted scratch slice, keeping it
// in canonical order; the walk adds attributes in (possibly shuffled)
// walk order, so the insertion point can be anywhere.
//
//hdlint:hotpath
func insertPred(preds []hiddendb.Predicate, p hiddendb.Predicate) []hiddendb.Predicate {
	preds = append(preds, p)
	i := len(preds) - 1
	for i > 0 && preds[i-1].Attr > p.Attr {
		preds[i] = preds[i-1]
		i--
	}
	preds[i] = p
	return preds
}

// pick selects one returned row uniformly and packages the candidate.
//
//hdlint:hotpath
func (w *Walker) pick(res *hiddendb.Result, pathProb float64, depth int) *Candidate {
	idx := w.rng.Intn(len(res.Tuples))
	//hdlint:ignore hotpath the candidate is the walk's product and outlives the draw; one &Candidate (plus its Clone) per successful walk is the documented budget
	return &Candidate{
		Tuple: res.Tuples[idx].Clone(),
		Reach: pathProb / float64(len(res.Tuples)),
		Depth: depth,
	}
}

// levelOutcome classifies a drill-down query's result for tracing.
func levelOutcome(res *hiddendb.Result, err error) telemetry.LevelOutcome {
	switch {
	case err != nil:
		return telemetry.LevelError
	case res.Empty():
		return telemetry.LevelEmpty
	case res.Valid():
		return telemetry.LevelValid
	default:
		return telemetry.LevelOverflow
	}
}

var _ Generator = (*Walker)(nil)
