package core

import (
	"context"
	"errors"
	"fmt"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// ErrCrawlBudget is returned when a crawl exceeds its query budget.
var ErrCrawlBudget = errors.New("core: crawl query budget exhausted")

// CrawlerConfig tunes a full-extraction crawl.
type CrawlerConfig struct {
	// Attrs optionally restricts the crawl to an attribute subset.
	Attrs []int
	// MaxQueries aborts the crawl beyond this many interface queries
	// (0 = unlimited) — real sites cap per-client queries, which is the
	// paper's argument against crawling.
	MaxQueries int64
}

// Crawler exhaustively extracts every reachable tuple by systematically
// expanding the query tree: the "expensive crawl of the entire database"
// the demo's introduction contrasts sampling against. It exists as a
// baseline so the experiments can price a crawl against a sample for the
// same analytical question.
type Crawler struct {
	conn   formclient.Conn
	schema *hiddendb.Schema
	cfg    CrawlerConfig
	attrs  []int
	stats  genCounters
}

// NewCrawler builds a crawler, fetching the schema eagerly.
func NewCrawler(ctx context.Context, conn formclient.Conn, cfg CrawlerConfig) (*Crawler, error) {
	schema, err := conn.Schema(ctx)
	if err != nil {
		return nil, err
	}
	attrs, err := resolveAttrs(schema, cfg.Attrs)
	if err != nil {
		return nil, err
	}
	return &Crawler{conn: conn, schema: schema, cfg: cfg, attrs: attrs}, nil
}

// Queries returns the number of interface queries issued so far.
func (c *Crawler) Queries() int64 { return c.stats.queries.Load() }

// Run extracts every tuple reachable through the interface, deduplicated
// by tuple identity. Tuples hidden beyond the top-k of every query that
// could return them cannot be extracted by any client; they are the same
// rows the samplers cannot reach.
func (c *Crawler) Run(ctx context.Context) ([]hiddendb.Tuple, error) {
	seen := make(map[int]hiddendb.Tuple)
	anon := 0 // rows without stable IDs are kept as distinct
	var anonRows []hiddendb.Tuple
	var crawl func(q hiddendb.Query, depth int) error
	crawl = func(q hiddendb.Query, depth int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c.cfg.MaxQueries > 0 && c.stats.queries.Load() >= c.cfg.MaxQueries {
			return fmt.Errorf("%w (budget %d)", ErrCrawlBudget, c.cfg.MaxQueries)
		}
		res, err := c.conn.Execute(ctx, q)
		if err != nil {
			return err
		}
		c.stats.queries.Add(1)
		collect := func() {
			for i := range res.Tuples {
				t := res.Tuples[i]
				if t.ID >= 0 {
					if _, ok := seen[t.ID]; !ok {
						seen[t.ID] = t.Clone()
					}
				} else {
					anonRows = append(anonRows, t.Clone())
					anon++
				}
			}
		}
		switch {
		case res.Empty():
			return nil
		case res.Valid():
			collect()
			return nil
		case depth == len(c.attrs):
			// Fully specified and still overflowing: collect the visible
			// top-k; the rest is unreachable.
			collect()
			return nil
		}
		attr := c.attrs[depth]
		for v := 0; v < c.schema.DomainSize(attr); v++ {
			if err := crawl(q.With(attr, v), depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := crawl(hiddendb.EmptyQuery(), 0); err != nil {
		return nil, err
	}
	out := make([]hiddendb.Tuple, 0, len(seen)+anon)
	for _, t := range seen {
		out = append(out, t)
	}
	out = append(out, anonRows...)
	return out, nil
}
