package core

import (
	"context"
	"math/rand"
	"time"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/telemetry"
)

// CountWalkerConfig tunes the count-weighted drill-down sampler.
type CountWalkerConfig struct {
	Seed  int64
	Attrs []int
	// Order selects fixed or per-walk shuffled attribute order; with exact
	// counts the output distribution is uniform under any order, so the
	// order only shifts query cost.
	Order Order
	// UseParentCount probes only |dom|-1 children per level and derives
	// the last child's weight from the parent's count (the ICDE 2009
	// saving). Enable only when counts are exact: with noisy counts the
	// derived weight can be wrong or negative (it is clamped at zero,
	// which can make rows unreachable).
	UseParentCount bool
	// MaxRestarts bounds dead-end walks per candidate; 0 means 1000. Dead
	// ends only occur when the interface's counts are inconsistent with
	// its rows.
	MaxRestarts int
	// Obs observes candidate draws (latency histogram, walk tracing,
	// slow-walk log); nil disables observation.
	Obs *telemetry.WalkObserver
}

// CountWalker drills down weighting each branch by the interface-reported
// count of its subtree, as proposed in "Leveraging count information in
// sampling hidden databases" (ICDE 2009). With exact counts every tuple's
// reach probability is exactly 1/N — uniform with zero rejection. With
// approximate counts the reach reported on each candidate is still the
// exact proposal probability (we know the weights we drew from), so the
// usual acceptance/rejection step restores near-uniformity.
type CountWalker struct {
	conn   formclient.Conn
	schema *hiddendb.Schema
	cfg    CountWalkerConfig
	attrs  []int
	rng    *rand.Rand
	stats  genCounters

	// Scratch reused across walks and levels (a Generator runs on one
	// goroutine): the shuffled attribute order, plus per-level weight and
	// result buffers sized to the widest domain on first use.
	orderBuf []int
	weights  []float64
	results  []*hiddendb.Result
}

// NewCountWalker builds the sampler, fetching the schema eagerly.
func NewCountWalker(ctx context.Context, conn formclient.Conn, cfg CountWalkerConfig) (*CountWalker, error) {
	schema, err := conn.Schema(ctx)
	if err != nil {
		return nil, err
	}
	attrs, err := resolveAttrs(schema, cfg.Attrs)
	if err != nil {
		return nil, err
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 1000
	}
	return &CountWalker{
		conn:     conn,
		schema:   schema,
		cfg:      cfg,
		attrs:    attrs,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		orderBuf: make([]int, len(attrs)),
	}, nil
}

// GenStats implements Generator.
func (c *CountWalker) GenStats() GenStats { return c.stats.snapshot() }

// Candidate implements Generator.
func (c *CountWalker) Candidate(ctx context.Context) (*Candidate, error) {
	sp, ctx := c.cfg.Obs.Begin(ctx, "weighted")
	restarts := 0
	queries := 0
	for restarts < c.cfg.MaxRestarts {
		cand, q, err := c.walkOnce(ctx, sp.Trace(), restarts)
		queries += q
		if err != nil {
			sp.End(queries, restarts, false, err)
			return nil, err
		}
		if cand != nil {
			cand.Queries = queries
			cand.Restarts = restarts
			c.stats.candidates.Add(1)
			cand.Trace = sp.End(queries, restarts, true, nil)
			return cand, nil
		}
		restarts++
		c.stats.restarts.Add(1)
	}
	sp.End(queries, restarts, false, ErrNoCandidate)
	return nil, ErrNoCandidate
}

// exec issues one query, tracking stats and — on traced walks — a level
// span identifying the probe (value is -1 for the root probe).
func (c *CountWalker) exec(ctx context.Context, tr *telemetry.WalkTrace, walk, depth, attr, value int, q hiddendb.Query) (*hiddendb.Result, error) {
	var res *hiddendb.Result
	var err error
	if tr != nil {
		tr.BeginLevel(walk, depth, attr, value)
		start := time.Now()
		res, err = c.conn.Execute(ctx, q)
		tr.EndLevel(levelOutcome(res, err), time.Since(start))
	} else {
		res, err = c.conn.Execute(ctx, q)
	}
	if err != nil {
		return nil, err
	}
	c.stats.queries.Add(1)
	return res, nil
}

func (c *CountWalker) walkOnce(ctx context.Context, tr *telemetry.WalkTrace, walk int) (*Candidate, int, error) {
	c.stats.walks.Add(1)
	startQueries := c.stats.queries.Load()

	order := c.attrs
	if c.cfg.Order == OrderShuffle {
		copy(c.orderBuf, c.attrs)
		c.rng.Shuffle(len(c.orderBuf), func(i, j int) { c.orderBuf[i], c.orderBuf[j] = c.orderBuf[j], c.orderBuf[i] })
		order = c.orderBuf
	}

	q := hiddendb.EmptyQuery()
	proposal := 1.0
	parentCount := -1

	if c.cfg.UseParentCount {
		root, err := c.exec(ctx, tr, walk, 0, -1, -1, q)
		if err != nil {
			return nil, c.walkCost(startQueries), err
		}
		if root.Count == hiddendb.CountAbsent {
			return nil, c.walkCost(startQueries), ErrNoCounts
		}
		if root.Valid() {
			// Whole database fits under k: sample directly.
			return c.pick(root, proposal, 0), c.walkCost(startQueries), nil
		}
		if root.Empty() {
			return nil, c.walkCost(startQueries), ErrNoCandidate
		}
		parentCount = root.Count
	}

	for depth, attr := range order {
		dom := c.schema.DomainSize(attr)
		if cap(c.weights) < dom {
			c.weights = make([]float64, dom)
			c.results = make([]*hiddendb.Result, dom)
		}
		weights := c.weights[:dom]
		results := c.results[:dom]
		for v := range dom {
			weights[v] = 0
			results[v] = nil
		}
		sum := 0.0
		for v := 0; v < dom; v++ {
			if c.cfg.UseParentCount && parentCount >= 0 && v == dom-1 {
				w := float64(parentCount) - sum
				if w < 0 {
					w = 0
				}
				weights[v] = w
				continue
			}
			res, err := c.exec(ctx, tr, walk, depth, attr, v, q.With(attr, v))
			if err != nil {
				return nil, c.walkCost(startQueries), err
			}
			if res.Count == hiddendb.CountAbsent {
				return nil, c.walkCost(startQueries), ErrNoCounts
			}
			w := float64(res.Count)
			if w < 0 {
				w = 0
			}
			weights[v] = w
			results[v] = res
			sum += w
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		if total <= 0 {
			return nil, c.walkCost(startQueries), nil // inconsistent counts: restart
		}
		v := drawWeighted(c.rng, weights, total)
		proposal *= weights[v] / total
		q = q.With(attr, v)
		res := results[v]
		if res == nil { // the inferred child: fetch it now that it is chosen
			var err error
			res, err = c.exec(ctx, tr, walk, depth, attr, v, q)
			if err != nil {
				return nil, c.walkCost(startQueries), err
			}
		}
		switch {
		case res.Empty():
			// Counts promised rows that are not there (a lying interface);
			// restart rather than loop forever.
			return nil, c.walkCost(startQueries), nil
		case res.Valid(), depth == len(order)-1:
			if len(res.Tuples) == 0 {
				return nil, c.walkCost(startQueries), nil // row-less page: restart
			}
			return c.pick(res, proposal, depth+1), c.walkCost(startQueries), nil
		}
		parentCount = res.Count
	}
	return nil, c.walkCost(startQueries), nil
}

// walkCost converts the stats delta into the per-walk query count.
func (c *CountWalker) walkCost(start int64) int {
	return int(c.stats.queries.Load() - start)
}

// pick selects one visible row uniformly.
func (c *CountWalker) pick(res *hiddendb.Result, proposal float64, depth int) *Candidate {
	idx := c.rng.Intn(len(res.Tuples))
	return &Candidate{
		Tuple: res.Tuples[idx].Clone(),
		Reach: proposal / float64(len(res.Tuples)),
		Depth: depth,
	}
}

// drawWeighted samples an index proportionally to weights (total is their
// sum, > 0).
func drawWeighted(rng *rand.Rand, weights []float64, total float64) int {
	u := rng.Float64() * total
	acc := 0.0
	last := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if u < acc {
			return i
		}
	}
	return last // FP drift guard: return the last positive-weight index
}

var _ Generator = (*CountWalker)(nil)
