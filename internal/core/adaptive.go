package core

import (
	"math/rand"
	"sort"
	"sync"
)

// Acceptor decides candidates' fates in the Sample Processor stage. A nil
// Acceptor accepts everything.
type Acceptor interface {
	// Accept returns whether the candidate joins the final sample.
	Accept(c *Candidate) bool
}

var _ Acceptor = (*Rejector)(nil)

// AdaptiveRejector removes the slider's guesswork: instead of a target
// reach probability C — which requires knowing the reach distribution —
// the caller states which quantile of candidate reaches should be fully
// accepted. A calibration phase observes (and discards) the first Warmup
// candidates' reaches, freezes C at the requested quantile, and from then
// on behaves exactly like a fixed Rejector. Freezing keeps the accepted
// stream's selection probabilities well-defined: adapting C while
// accepting would entangle earlier candidates' fates with later
// observations.
//
// An AdaptiveRejector is safe for concurrent use; Quantile and Warmup
// must not be mutated after construction.
type AdaptiveRejector struct {
	// Quantile in (0,1]: the fraction of the reach distribution to accept
	// outright; lower values reject more and flatten harder.
	Quantile float64
	// Warmup is the number of calibration candidates (all rejected);
	// defaults to 100 when <= 0 at first use.
	Warmup int

	mu       sync.Mutex // guards rng, observed and the frozen transition
	rng      *rand.Rand
	observed []float64
	frozen   *Rejector
}

// NewAdaptiveRejector builds an adaptive processor targeting the given
// reach quantile.
func NewAdaptiveRejector(quantile float64, warmup int, seed int64) *AdaptiveRejector {
	if quantile <= 0 || quantile > 1 {
		quantile = 0.25
	}
	if warmup <= 0 {
		warmup = 100
	}
	return &AdaptiveRejector{
		Quantile: quantile,
		Warmup:   warmup,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// C returns the frozen target reach, or 0 while still calibrating.
func (r *AdaptiveRejector) C() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.frozen == nil {
		return 0
	}
	return r.frozen.C
}

// Calibrating reports whether the warmup phase is still running.
func (r *AdaptiveRejector) Calibrating() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen == nil
}

// Accept implements Acceptor. Warmup candidates are rejected (they only
// feed calibration); afterwards acceptance is min(1, C/reach) with the
// frozen C. Safe to call from multiple goroutines sharing one acceptor.
func (r *AdaptiveRejector) Accept(c *Candidate) bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	if r.frozen == nil {
		r.observed = append(r.observed, c.Reach)
		if len(r.observed) >= r.Warmup {
			sort.Float64s(r.observed)
			idx := int(float64(len(r.observed)) * r.Quantile)
			if idx >= len(r.observed) {
				idx = len(r.observed) - 1
			}
			r.frozen = NewRejector(r.observed[idx], r.rng.Int63())
			r.observed = nil
		}
		r.mu.Unlock()
		return false
	}
	frozen := r.frozen
	r.mu.Unlock()
	return frozen.Accept(c)
}

// Counts returns post-warmup acceptance counters.
func (r *AdaptiveRejector) Counts() (accepted, rejected int64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	frozen := r.frozen
	r.mu.Unlock()
	if frozen == nil {
		return 0, 0
	}
	return frozen.Counts()
}
