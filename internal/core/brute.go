package core

import (
	"context"
	"math/rand"

	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
)

// BruteForceConfig tunes the BRUTE-FORCE-SAMPLER.
type BruteForceConfig struct {
	Seed  int64
	Attrs []int
	// MaxTries bounds fully-specified probes per candidate; 0 means 10^7.
	// Every try costs one interface query, so callers typically bound cost
	// through the connector or context instead.
	MaxTries int
}

// BruteForce implements BRUTE-FORCE-SAMPLER (SIGMOD 2007): draw a uniformly
// random cell of the cross-product domain space, issue the fully-specified
// query, and keep the row if the cell is occupied. Samples are provably
// uniform over the domain cells, which is why the demo uses a long run of
// this sampler as the validation ground truth (§3.4) — and its expected
// cost of |space|/n queries per sample is why it is unusable in practice.
type BruteForce struct {
	conn   formclient.Conn
	schema *hiddendb.Schema
	cfg    BruteForceConfig
	attrs  []int
	space  float64
	rng    *rand.Rand
	stats  genCounters
}

// NewBruteForce builds the sampler, fetching the schema eagerly.
func NewBruteForce(ctx context.Context, conn formclient.Conn, cfg BruteForceConfig) (*BruteForce, error) {
	schema, err := conn.Schema(ctx)
	if err != nil {
		return nil, err
	}
	attrs, err := resolveAttrs(schema, cfg.Attrs)
	if err != nil {
		return nil, err
	}
	if cfg.MaxTries <= 0 {
		cfg.MaxTries = 10000000
	}
	return &BruteForce{
		conn:   conn,
		schema: schema,
		cfg:    cfg,
		attrs:  attrs,
		space:  subspaceSize(schema, attrs),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// GenStats implements Generator.
func (b *BruteForce) GenStats() GenStats { return b.stats.snapshot() }

// Candidate implements Generator.
func (b *BruteForce) Candidate(ctx context.Context) (*Candidate, error) {
	queries := 0
	for try := 0; try < b.cfg.MaxTries; try++ {
		b.stats.walks.Add(1)
		q := hiddendb.EmptyQuery()
		for _, attr := range b.attrs {
			q = q.With(attr, b.rng.Intn(b.schema.DomainSize(attr)))
		}
		res, err := b.conn.Execute(ctx, q)
		if err != nil {
			return nil, err
		}
		queries++
		b.stats.queries.Add(1)
		if res.Empty() {
			b.stats.restarts.Add(1)
			continue
		}
		// Fully-specified queries only overflow when duplicates exceed k;
		// pick uniformly among the visible rows either way.
		idx := b.rng.Intn(len(res.Tuples))
		b.stats.candidates.Add(1)
		return &Candidate{
			Tuple:    res.Tuples[idx].Clone(),
			Reach:    1 / b.space / float64(len(res.Tuples)),
			Queries:  queries,
			Depth:    len(b.attrs),
			Restarts: try,
		}, nil
	}
	return nil, ErrNoCandidate
}

var _ Generator = (*BruteForce)(nil)
