package core

import (
	"sync"
	"testing"
)

// Shared-acceptor regression: DrawParallel/ReplicaSet give every replica
// its own seeded acceptor, but the jobsvc worker pools and any caller
// wiring one Acceptor into several pipelines must be able to share one
// safely. Run under -race, this test fails loudly if Accept's counters or
// rng lose their synchronization again.
func TestRejectorSharedAcrossGoroutines(t *testing.T) {
	r := NewRejector(0.5, 1)
	const (
		workers = 8
		each    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// Alternate certain accepts (reach below C) with coin
				// flips (reach above C) so both paths interleave.
				reach := 0.25
				if i%2 == 1 {
					reach = 0.9
				}
				r.Accept(&Candidate{Reach: reach})
			}
		}(w)
	}
	wg.Wait()
	acc, rej := r.Counts()
	if acc+rej != workers*each {
		t.Fatalf("accepted %d + rejected %d = %d, want %d (lost updates)",
			acc, rej, acc+rej, workers*each)
	}
	// Half the candidates were certain accepts; the coin-flip half
	// accepts with probability 5/9 ≈ 0.56, so rejections must exist but
	// stay well under half of the total.
	if rej == 0 || rej >= workers*each/2 {
		t.Fatalf("rejected %d of %d: acceptance logic drifted under concurrency", rej, workers*each)
	}
}

// Same contract for the adaptive variant: calibration and the frozen
// phase both run concurrently.
func TestAdaptiveRejectorSharedAcrossGoroutines(t *testing.T) {
	r := NewAdaptiveRejector(0.5, 64, 2)
	const (
		workers = 8
		each    = 1000
	)
	var accepted, rejected int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var acc, rej int64
			for i := 0; i < each; i++ {
				reach := float64(i%100+1) / 100
				if r.Accept(&Candidate{Reach: reach}) {
					acc++
				} else {
					rej++
				}
			}
			mu.Lock()
			accepted += acc
			rejected += rej
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if accepted+rejected != workers*each {
		t.Fatalf("accounted %d candidates, want %d", accepted+rejected, workers*each)
	}
	if r.Calibrating() {
		t.Fatal("warmup of 64 never completed over 8000 candidates")
	}
	if c := r.C(); c <= 0 || c > 1 {
		t.Fatalf("frozen C = %g out of range", c)
	}
	if accepted == 0 {
		t.Fatal("no candidate accepted after calibration")
	}
}
