package lint

// Analyzers is the full hdlint suite, in the order findings are
// documented in doc.go.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ResultImmutAnalyzer,
		NilSafeAnalyzer,
		HotPathAnalyzer,
		AtomicMixAnalyzer,
		ErrTransientAnalyzer,
		LockOrderAnalyzer,
		GoLeakAnalyzer,
		CtxFlowAnalyzer,
		ZeroCostAnalyzer,
	}
}
