package lint

import (
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix opens a suppression directive:
//
//	//hdlint:ignore <analyzer>[,<analyzer>] <reason>
//
// The directive silences the named analyzers' findings on its own line
// and on the line directly below it (so it works both as a trailing
// comment and as a comment above the offending statement). The reason is
// mandatory: a suppression that cannot say why it exists is itself a
// finding.
const ignorePrefix = "//hdlint:ignore"

type ignoreDirective struct {
	analyzers map[string]bool
	line      int // the directive's own line
	file      string
}

func (d ignoreDirective) covers(diag Diagnostic) bool {
	return d.file == diag.Pos.Filename &&
		(d.line == diag.Pos.Line || d.line == diag.Pos.Line-1) &&
		d.analyzers[diag.Analyzer]
}

// collectIgnores extracts every suppression directive in units. Malformed
// directives (no analyzer, unknown analyzer, or a missing reason) are
// returned as diagnostics under the pseudo-analyzer "hdlint" so a typo
// cannot silently disable a check.
func collectIgnores(units []*Package, fset *token.FileSet, known map[string]bool) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	seen := make(map[string]bool)
	malformed := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: "hdlint",
			Pos:      fset.Position(pos),
			Message:  msg,
		})
	}
	for _, u := range units {
		for _, f := range u.Files {
			fname := fset.Position(f.Pos()).Filename
			if seen[fname] {
				continue
			}
			seen[fname] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						malformed(c.Pos(), "malformed directive: want //hdlint:ignore <analyzer> <reason>")
						continue
					}
					if len(fields) < 2 {
						malformed(c.Pos(), "hdlint:ignore needs a reason: //hdlint:ignore "+fields[0]+" <why this finding is acceptable>")
						continue
					}
					names := make(map[string]bool)
					ok := true
					for _, name := range strings.Split(fields[0], ",") {
						if !known[name] {
							malformed(c.Pos(), "hdlint:ignore names unknown analyzer "+name)
							ok = false
							break
						}
						names[name] = true
					}
					if !ok {
						continue
					}
					dirs = append(dirs, ignoreDirective{
						analyzers: names,
						line:      fset.Position(c.Pos()).Line,
						file:      fname,
					})
				}
			}
		}
	}
	return dirs, bad
}

// Run executes every analyzer over every unit in dependency order (so
// facts exported for a package are visible to the units importing it),
// runs each analyzer's Finish phase, applies //hdlint:ignore suppression,
// drops findings positioned in facts-only dependency units, and returns
// the survivors sorted by position.
func Run(units []*Package, fset *token.FileSet, analyzers []*Analyzer) []Diagnostic {
	units = topoUnits(units)
	run := &RunInfo{
		Units:  units,
		Fset:   fset,
		Graph:  BuildCallGraph(units),
		facts:  newFactStore(),
		states: make(map[string]any),
	}
	var raw []Diagnostic
	report := func(d Diagnostic) { raw = append(raw, d) }
	for _, u := range units {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				Unit:     u,
				run:      run,
				report:   report,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(&Finish{Analyzer: a, Run: run, report: report})
		}
	}

	// Findings are only reported in the packages the caller asked for;
	// units loaded solely to supply facts stay silent.
	reportable := make(map[string]bool)
	factsOnly := false
	for _, u := range units {
		if u.FactsOnly {
			factsOnly = true
			continue
		}
		for _, f := range u.Files {
			reportable[fset.Position(f.Pos()).Filename] = true
		}
	}
	if factsOnly {
		kept := raw[:0]
		for _, d := range raw {
			if reportable[d.Pos.Filename] {
				kept = append(kept, d)
			}
		}
		raw = kept
	}

	// Directive names are validated against the full registry, not the
	// subset being run: an //hdlint:ignore naming an analyzer that is
	// merely switched off this invocation is well-formed, just inert.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores, bad := collectIgnores(units, fset, known)
	kept := raw[:0]
	for _, d := range raw {
		suppressed := false
		for _, ig := range ignores {
			if ig.covers(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return sortDiagnostics(append(kept, bad...))
}

// topoUnits orders units so that every unit follows the units it imports
// — the precondition for fact flow. Ties and cycles (possible only
// through test files) fall back to path order.
func topoUnits(units []*Package) []*Package {
	byPath := make(map[string]*Package, len(units))
	for _, u := range units {
		byPath[u.Path] = u
	}
	indeg := make(map[*Package]int, len(units))
	dependents := make(map[*Package][]*Package, len(units))
	for _, u := range units {
		indeg[u] += 0
		for _, imp := range u.Pkg.Imports() {
			if dep, ok := byPath[imp.Path()]; ok && dep != u {
				dependents[dep] = append(dependents[dep], u)
				indeg[u]++
			}
		}
	}
	// Kahn's algorithm with a sorted frontier for determinism.
	var frontier []*Package
	for _, u := range units {
		if indeg[u] == 0 {
			frontier = append(frontier, u)
		}
	}
	sortUnits(frontier)
	out := make([]*Package, 0, len(units))
	for len(frontier) > 0 {
		u := frontier[0]
		frontier = frontier[1:]
		out = append(out, u)
		var freed []*Package
		for _, d := range dependents[u] {
			indeg[d]--
			if indeg[d] == 0 {
				freed = append(freed, d)
			}
		}
		sortUnits(freed)
		frontier = append(frontier, freed...)
	}
	if len(out) < len(units) {
		// Cycle: append the stragglers in path order and analyze anyway —
		// facts inside the cycle may be incomplete, which the analyzers
		// treat conservatively.
		var rest []*Package
		for _, u := range units {
			if indeg[u] > 0 {
				rest = append(rest, u)
			}
		}
		sortUnits(rest)
		out = append(out, rest...)
	}
	return out
}

func sortUnits(us []*Package) {
	sort.Slice(us, func(i, j int) bool { return us[i].Path < us[j].Path })
}
