package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix opens a suppression directive:
//
//	//hdlint:ignore <analyzer>[,<analyzer>] <reason>
//
// The directive silences the named analyzers' findings on its own line
// and on the line directly below it (so it works both as a trailing
// comment and as a comment above the offending statement). The reason is
// mandatory: a suppression that cannot say why it exists is itself a
// finding.
const ignorePrefix = "//hdlint:ignore"

type ignoreDirective struct {
	analyzers map[string]bool
	line      int // the directive's own line
	file      string
}

func (d ignoreDirective) covers(diag Diagnostic) bool {
	return d.file == diag.Pos.Filename &&
		(d.line == diag.Pos.Line || d.line == diag.Pos.Line-1) &&
		d.analyzers[diag.Analyzer]
}

// collectIgnores extracts every suppression directive in units. Malformed
// directives (no analyzer, unknown analyzer, or a missing reason) are
// returned as diagnostics under the pseudo-analyzer "hdlint" so a typo
// cannot silently disable a check.
func collectIgnores(units []*Package, fset *token.FileSet, known map[string]bool) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	seen := make(map[string]bool)
	malformed := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: "hdlint",
			Pos:      fset.Position(pos),
			Message:  msg,
		})
	}
	for _, u := range units {
		for _, f := range u.Files {
			fname := fset.Position(f.Pos()).Filename
			if seen[fname] {
				continue
			}
			seen[fname] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						malformed(c.Pos(), "malformed directive: want //hdlint:ignore <analyzer> <reason>")
						continue
					}
					if len(fields) < 2 {
						malformed(c.Pos(), "hdlint:ignore needs a reason: //hdlint:ignore "+fields[0]+" <why this finding is acceptable>")
						continue
					}
					names := make(map[string]bool)
					ok := true
					for _, name := range strings.Split(fields[0], ",") {
						if !known[name] {
							malformed(c.Pos(), "hdlint:ignore names unknown analyzer "+name)
							ok = false
							break
						}
						names[name] = true
					}
					if !ok {
						continue
					}
					dirs = append(dirs, ignoreDirective{
						analyzers: names,
						line:      fset.Position(c.Pos()).Line,
						file:      fname,
					})
				}
			}
		}
	}
	return dirs, bad
}

// Run executes every analyzer over every unit, applies //hdlint:ignore
// suppression, and returns the surviving findings sorted by position.
func Run(units []*Package, fset *token.FileSet, analyzers []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
	}
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	ignores, bad := collectIgnores(units, fset, known)
	kept := raw[:0]
	for _, d := range raw {
		suppressed := false
		for _, ig := range ignores {
			if ig.covers(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return sortDiagnostics(append(kept, bad...))
}
