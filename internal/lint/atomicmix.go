package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMixAnalyzer flags struct fields that are accessed through
// sync/atomic in one place and by plain load or store in another — the
// exact race class the history cache's stats fields were once bitten by:
// an atomic.AddInt64 on one goroutine publishes nothing to a plain read
// on another, and the race detector only notices when both paths happen
// to run in the same test.
//
// Fields wrapped in the typed atomics (atomic.Int64 & friends) cannot be
// mixed by construction; this analyzer covers the raw-integer style,
// which new code should avoid but which creeps in with copied snippets.
var AtomicMixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields accessed both via sync/atomic and by plain load/store; " +
		"use the typed atomics or make every access atomic",
	Run: runAtomicMix,
}

// atomicFns are the sync/atomic functions whose first argument is the
// address of the guarded word.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

// atomicArgField resolves the field behind an atomic call argument of the
// form &s.f or &s.f[i], returning the field object and the selector node.
func atomicArgField(info *types.Info, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	un, ok := arg.(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	inner := un.X
	if ix, ok := inner.(*ast.IndexExpr); ok {
		inner = ix.X
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || !f.IsField() {
		return nil, nil
	}
	return f, sel
}

// isAtomicCall reports whether call is sync/atomic.<fn> for a guarded fn.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !atomicFns[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

func runAtomicMix(pass *Pass) {
	// Pass 1: which fields does this package touch atomically, and which
	// selector nodes are those atomic touch points?
	atomicField := make(map[*types.Var]token.Pos)
	atomicNode := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass.Info, call) || len(call.Args) == 0 {
				return true
			}
			if fld, sel := atomicArgField(pass.Info, call.Args[0]); fld != nil {
				if _, seen := atomicField[fld]; !seen {
					atomicField[fld] = sel.Pos()
				}
				atomicNode[sel] = true
			}
			return true
		})
	}
	if len(atomicField) == 0 {
		return
	}
	// Pass 2: every other selector of those fields is a plain access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicNode[sel] {
				return true
			}
			s, ok := pass.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			fld, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			if first, isAtomic := atomicField[fld]; isAtomic {
				pass.Reportf(sel.Sel.Pos(),
					"field %s is accessed atomically (e.g. %s) but plainly here; mixing is a data race — use sync/atomic everywhere or a typed atomic",
					fieldDesc(fld), pass.Fset.Position(first))
			}
			return true
		})
	}
}

// fieldDesc names a field with its owning struct type when known.
func fieldDesc(f *types.Var) string {
	name := f.Name()
	if f.Pkg() != nil {
		// Search the package scope for the named type owning this field,
		// purely to make the message readable.
		scope := f.Pkg().Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == f {
					return obj.Name() + "." + name
				}
			}
		}
	}
	return name
}
