package lint

import (
	"go/ast"
	"go/types"
)

// A Block is one straight-line run of statements in a function's
// control-flow graph. Control statements (if/for/switch/select) appear as
// the last entry of the block that evaluates their condition; their
// bodies live in successor blocks.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// A LoopInfo locates a loop's body entry and its fall-through block in
// the CFG, for reachability queries.
type LoopInfo struct {
	Body  *Block
	After *Block
}

// A CFG is a lightweight intra-function control-flow graph at statement
// granularity. It models if/for/range/switch/select/branch/return flow,
// treats `select {}` and calls that never return (panic, os.Exit,
// runtime.Goexit, log.Fatal*) as terminators, and gives infinite `for`
// loops no fall-through edge — so "can control leave this loop" is a
// plain reachability question. Function literals are opaque: their
// bodies get their own CFGs and never leak edges into the enclosing one.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Loops maps each for/range statement to its body and after blocks.
	Loops map[ast.Stmt]*LoopInfo
}

type cfgBuilder struct {
	cfg  *CFG
	info *types.Info
	cur  *Block // nil when the current point is unreachable

	// blocking, when set, marks statement-level calls that never return
	// AND never terminate (a call into a known-forever-blocking function):
	// the path is cut without an edge to Exit, unlike panic/os.Exit which
	// do end the goroutine.
	blocking func(*ast.CallExpr) bool

	breakTargets    []*Block
	continueTargets []*Block
	labelBreak      map[string]*Block
	labelContinue   map[string]*Block
	pendingLabel    string
}

// BuildCFG constructs the CFG of one function body. info may be nil; it
// is used only to sharpen never-returns call detection.
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	return buildCFGBlocking(body, info, nil)
}

// buildCFGBlocking is BuildCFG with an extra predicate marking calls that
// block forever — the goleak propagation step rebuilds CFGs with the
// current known-blocking set to decide whether callers block too.
func buildCFGBlocking(body *ast.BlockStmt, info *types.Info, blocking func(*ast.CallExpr) bool) *CFG {
	cfg := &CFG{Loops: make(map[ast.Stmt]*LoopInfo)}
	b := &cfgBuilder{
		cfg:           cfg,
		info:          info,
		blocking:      blocking,
		labelBreak:    make(map[string]*Block),
		labelContinue: make(map[string]*Block),
	}
	cfg.Entry = b.newBlock()
	cfg.Exit = &Block{Index: -1}
	b.cur = cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, cfg.Exit)
	return cfg
}

// Escapes reports whether control can leave the given loop: its after
// block or the function exit is reachable from the loop body. A `for`
// with no condition and no reachable break/return/goto/terminating call
// does not escape — the goleak signal.
func (c *CFG) Escapes(loop ast.Stmt) bool {
	li := c.Loops[loop]
	if li == nil {
		return true // not a loop we modeled; stay conservative
	}
	seen := make(map[*Block]bool)
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == li.After || b == c.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(li.Body)
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) add(s ast.Stmt) {
	if b.cur != nil {
		b.cur.Stmts = append(b.cur.Stmts, s)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Stmts = append(head.Stmts, s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		if s.Cond != nil {
			// A conditional loop can fall through; `for {}` cannot.
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			post := b.newBlock()
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.cfg.Loops[s] = &LoopInfo{Body: body, After: after}
		b.pushLoop(after, cont, label)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, cont)
		b.popLoop(label)
		b.cur = after

	case *ast.RangeStmt:
		label := b.pendingLabel
		b.pendingLabel = ""
		head := b.newBlock()
		b.edge(b.cur, head)
		head.Stmts = append(head.Stmts, s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body)
		// Ranges terminate: collections are finite, channel ranges end at
		// close. The close discipline itself is the spawner's contract.
		b.edge(head, after)
		b.cfg.Loops[s] = &LoopInfo{Body: body, After: after}
		b.pushLoop(after, head, label)
		b.cur = body
		b.stmt(s.Body)
		b.edge(b.cur, head)
		b.popLoop(label)
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)

	case *ast.SelectStmt:
		b.add(s)
		if len(s.Body.List) == 0 {
			// select {} blocks forever.
			b.cur = nil
			return
		}
		cond := b.cur
		after := b.newBlock()
		b.breakTargets = append(b.breakTargets, after)
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			caseB := b.newBlock()
			if comm.Comm != nil {
				caseB.Stmts = append(caseB.Stmts, comm.Comm)
			}
			b.edge(cond, caseB)
			b.cur = caseB
			b.stmtList(comm.Body)
			b.edge(b.cur, after)
		}
		b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
		b.cur = after

	case *ast.GoStmt, *ast.DeferStmt, *ast.DeclStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if b.neverReturns(call) {
				b.edge(b.cur, b.cfg.Exit)
				b.cur = nil
			} else if b.blocking != nil && b.blocking(call) {
				// The call neither returns nor terminates; no Exit edge.
				b.cur = nil
			}
		}

	default:
		b.add(s)
	}
}

func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	var init ast.Stmt
	var clauses []ast.Stmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		init = x.Init
		clauses = x.Body.List
	case *ast.TypeSwitchStmt:
		init = x.Init
		clauses = x.Body.List
	}
	if init != nil {
		b.stmt(init)
	}
	b.add(s)
	cond := b.cur
	after := b.newBlock()
	if label != "" {
		b.labelBreak[label] = after
		defer delete(b.labelBreak, label)
	}
	b.breakTargets = append(b.breakTargets, after)
	// Build case entry blocks first so fallthrough can target the next.
	caseBlocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(cond, caseBlocks[i])
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	for i, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = caseBlocks[i]
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				if i+1 < len(caseBlocks) {
					b.edge(b.cur, caseBlocks[i+1])
				}
				b.cur = nil
				continue
			}
			b.stmt(st)
		}
		b.edge(b.cur, after)
	}
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.cur = after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block, label string) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelContinue, label)
	}
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		var t *Block
		if s.Label != nil {
			t = b.labelBreak[s.Label.Name]
		} else if n := len(b.breakTargets); n > 0 {
			t = b.breakTargets[n-1]
		}
		b.edge(b.cur, t)
	case "continue":
		var t *Block
		if s.Label != nil {
			t = b.labelContinue[s.Label.Name]
		} else if n := len(b.continueTargets); n > 0 {
			t = b.continueTargets[n-1]
		}
		b.edge(b.cur, t)
	case "goto":
		// Rare enough not to model; count it as leaving the current
		// region so goto-based loop exits never produce false leaks.
		b.edge(b.cur, b.cfg.Exit)
	}
	b.cur = nil
}

// neverReturns recognizes calls that terminate the goroutine or process:
// panic, os.Exit, runtime.Goexit, and the log.Fatal family.
func (b *cfgBuilder) neverReturns(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if b.info == nil {
				return true
			}
			_, isBuiltin := b.info.Uses[fun].(*types.Builtin)
			return isBuiltin
		}
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkg := id.Name
		if b.info != nil {
			pn, ok := b.info.Uses[id].(*types.PkgName)
			if !ok {
				return false
			}
			pkg = pn.Imported().Path()
		}
		name := fun.Sel.Name
		switch pkg {
		case "os":
			return name == "Exit"
		case "runtime":
			return name == "Goexit"
		case "log":
			return name == "Fatal" || name == "Fatalf" || name == "Fatalln"
		}
	}
	return false
}
