package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakAnalyzer demands a provable termination path for every goroutine:
// a `go` statement may only start work that can reach its return —
// through a select case on ctx.Done or a closed channel, a
// range-over-channel (which ends at close), a bounded loop, or a plain
// fall-through. Per function it asks the CFG whether the exit is
// reachable at all (infinite `for` loops without a reachable break and
// `select {}` cut the path); functions whose exit is unreachable export a
// fact, and the Finish phase closes the property over synchronous static
// calls — a wrapper whose body ends in a call to a never-terminating
// function never terminates either, across package boundaries. Each `go`
// site is then judged against the final set: named callees by their
// facts, function literals by their own CFG with known-blocking calls
// treated as path cuts.
//
// Long-running workers are not exempt: a worker loop with no ctx.Done (or
// equivalent) case is exactly the leak this catches — shutdown can never
// collect it. A deliberately immortal goroutine takes an //hdlint:ignore
// goleak with the reason it may outlive everything.
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc: "every go statement needs a provable termination path (ctx.Done select, " +
		"closed-channel range, bounded loop); never-terminating callees propagate via facts",
	Run:    runGoLeak,
	Finish: finishGoLeak,
}

// GoleakBlocksFact marks a function whose body can never reach its exit.
type GoleakBlocksFact struct {
	Reason string
	Pos    token.Position
}

// AFact marks GoleakBlocksFact as a fact.
func (*GoleakBlocksFact) AFact() {}

type goleakSite struct {
	unit *Package
	call *ast.CallExpr
	pos  token.Position
}

type goleakState struct {
	sites []goleakSite
}

func runGoLeak(pass *Pass) {
	st := pass.State(func() any { return &goleakState{} }).(*goleakState)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj != nil {
				cfg := BuildCFG(fd.Body, pass.Info)
				if !exitReachable(cfg) {
					pass.ExportObjectFact(obj, &GoleakBlocksFact{
						Reason: blockReason(cfg, fd.Body),
						Pos:    pass.Fset.Position(fd.Pos()),
					})
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					st.sites = append(st.sites, goleakSite{
						unit: pass.Unit,
						call: g.Call,
						pos:  pass.Fset.Position(g.Pos()),
					})
				}
				return true
			})
		}
	}
}

// exitReachable reports whether any path from Entry reaches Exit.
func exitReachable(cfg *CFG) bool {
	seen := make(map[*Block]bool)
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == cfg.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(cfg.Entry)
}

// blockReason names the construct that traps control, for the report.
func blockReason(cfg *CFG, body *ast.BlockStmt) string {
	reason := "a body that cannot reach return"
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !cfg.Escapes(x) {
				reason = "an infinite for-loop with no reachable exit"
				return false
			}
		case *ast.SelectStmt:
			if len(x.Body.List) == 0 {
				reason = "an empty select"
				return false
			}
		}
		return true
	})
	return reason
}

func finishGoLeak(fin *Finish) {
	st := fin.State(func() any { return &goleakState{} }).(*goleakState)
	g := fin.Run.Graph

	// The blocking set, seeded from per-function facts.
	blocks := make(map[string]*GoleakBlocksFact)
	for _, of := range fin.AllObjectFacts(&GoleakBlocksFact{}) {
		blocks[of.Key] = of.Fact.(*GoleakBlocksFact)
	}

	// blockingCall reports statement-level calls into the current blocking
	// set; go/defer operands are never statement-level ExprStmt calls here
	// because buildCFGBlocking only consults ExprStmt.
	blockingCall := func(info *types.Info) func(*ast.CallExpr) bool {
		return func(call *ast.CallExpr) bool {
			site, ok := g.classify(info, call)
			if !ok {
				return false
			}
			callees := g.Callees(site)
			if len(callees) == 0 {
				return false
			}
			for _, c := range callees {
				if blocks[c] == nil {
					return false
				}
			}
			return true
		}
	}

	// Close over synchronous calls: a function whose every path runs into
	// a blocking callee blocks too.
	for changed := true; changed; {
		changed = false
		for key, node := range g.Nodes {
			if blocks[key] != nil || node.Decl.Body == nil {
				continue
			}
			cfg := buildCFGBlocking(node.Decl.Body, node.Unit.Info, blockingCall(node.Unit.Info))
			if !exitReachable(cfg) {
				blocks[key] = &GoleakBlocksFact{
					Reason: "a call chain that never terminates on any path",
					Pos:    fin.Run.Fset.Position(node.Decl.Pos()),
				}
				changed = true
			}
		}
	}

	for _, site := range st.sites {
		if lit, ok := unparen(site.call.Fun).(*ast.FuncLit); ok {
			cfg := buildCFGBlocking(lit.Body, site.unit.Info, blockingCall(site.unit.Info))
			if !exitReachable(cfg) {
				fin.ReportAt(site.pos,
					"goroutine never terminates: %s — give it an exit path (ctx.Done() select case, closed-channel range, or bounded loop)",
					blockReason(cfg, lit.Body))
			}
			continue
		}
		cs, ok := g.classify(site.unit.Info, site.call)
		if !ok {
			continue
		}
		callees := g.Callees(cs)
		if len(callees) == 0 {
			continue
		}
		all := true
		for _, c := range callees {
			if blocks[c] == nil {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		first := blocks[callees[0]]
		fin.ReportAt(site.pos,
			"goroutine never terminates: %s contains %s (declared at %s) — give it an exit path (ctx.Done() select case, closed-channel range, or bounded loop)",
			shortLock(callees[0]), first.Reason, first.Pos)
	}
}
