// Package lint implements hdlint, the repository's custom static-analysis
// suite: nine analyzers that turn invariants the codebase otherwise states
// only in comments into build failures. Run it with
//
//	go run ./cmd/hdlint ./...
//
// (CI runs exactly that as a blocking job). The framework mirrors the
// shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic,
// typed facts — but is built purely on the standard library (go/ast,
// go/types, go/build, go/importer's source importer), preserving the
// module's zero-dependency, fully-offline build.
//
// # The interprocedural engine
//
// Four of the analyzers reason across function and package boundaries.
// Three pieces make that possible:
//
// Facts. An analyzer attaches typed facts to functions and package-level
// objects (ExportObjectFact / ImportObjectFact, mirroring go/analysis).
// Fact keys are stable across packages — a method's key is the same
// whether its package is being analyzed directly or was loaded as a
// dependency — so a property proved about queryexec.Executor.execute is
// visible when analyzing cmd/hdbench. The loader pulls in-module
// dependencies of the requested packages as silent "facts-only" units:
// their facts flow, their findings are dropped, and each package is
// analyzed exactly once no matter how many ways it is reached.
//
// Call graph. BuildCallGraph records every call site in every unit,
// classified as static (direct call or concrete method), interface
// (virtual call, resolved to all implementing methods via class-hierarchy
// analysis over the loaded types), or dynamic (through a function value,
// resolved to address-taken functions of matching signature). Sites
// launched by go or defer carry flags so analyzers can treat them
// specially.
//
// CFG. BuildCFG builds a statement-level control-flow graph of one
// function body — enough to answer reachability questions: can this loop
// be escaped, can the function's exit be reached, does this path
// terminate. Calls known to never return (panic, os.Exit,
// runtime.Goexit, log.Fatal*) cut edges to the exit; an analyzer can
// also supply its own "this call blocks forever" predicate and re-ask
// the reachability question, which is how goleak propagates
// non-termination through call chains.
//
// # The analyzers
//
// resultimmut — hiddendb.Result and hiddendb.Tuple may alias storage
// shared with the database's immutable table, the history cache's
// entries, and every coalesced follower of a single-flight call. Writes
// through them are legal only on values the function owns: ones built
// locally (composite literal, new, zero value) or obtained from Clone.
// Ownership is tracked per local, with Clone granting deep ownership
// (element arrays included) and local construction only shallow ownership
// (a fresh Result still shares its tuples' backing arrays).
//
// nilsafe — types marked //hdlint:nilsafe (the telemetry instruments:
// Counter, Histogram, Tracer, WalkTrace, ...) promise that a nil receiver
// accepts every exported method call as a no-op, so instrumented code
// never branches on "is telemetry configured". The analyzer requires each
// exported pointer-receiver method to begin with a nil-receiver guard:
// an "if recv == nil" early return (possibly first in an || chain) or an
// "if recv != nil" wrapped body (possibly first in an && chain).
//
// hotpath — functions annotated //hdlint:hotpath (the walker's drill-down,
// the history cache's lookup path, the single-flight executor, the
// database's Execute) must not introduce allocations. Flagged constructs:
// calls into package fmt, non-constant string concatenation, &composite
// literals, slice and map literals, capturing closures, and interface
// boxing of non-pointer-shaped values. The AllocsPerRun ceilings in the
// benchmark suite catch a regression after the fact as a number; this
// names the offending line at build time.
//
// atomicmix — a struct field accessed through sync/atomic in one place
// and by plain load or store in another is a data race regardless of
// what the race detector happens to observe. Fields wrapped in typed
// atomics are immune by construction; this covers the raw-integer style.
//
// errtransient — sentinel errors (package-level Err* variables, EOF)
// compared with == or != (or matched in a switch) silently stop matching
// the moment any layer wraps them; the tree wraps its sentinels
// routinely, so the only correct comparison is errors.Is.
//
// lockorder — builds the global lock-acquisition graph: each function
// exports which locks it acquires, which locks it acquires while holding
// others, and which calls it makes under a held lock. Locks are
// identified structurally ("pkg.Type.field" for a mutex field, "pkg.var"
// for a package-level mutex), collapsing instances — two *Store values
// share an identity, which is exactly the granularity at which a
// consistent acquisition order must hold. After all packages run, held
// sets propagate through the call graph (static and interface edges;
// go/defer launches start fresh) and any cycle in the resulting
// order-graph — including the self-loop of reacquiring a lock already
// held — is reported at the edge that closes it.
//
// goleak — every go statement must start a goroutine that can terminate.
// A function whose CFG cannot reach its exit (for {} without break,
// select{}, an unconditional path into such a call) exports a
// never-terminates fact; the check then treats calls to such functions
// as blocking and recomputes, so the property propagates through
// wrappers. Goroutines that wait on ctx.Done(), range over a channel
// someone closes, or loop a bounded number of times all pass; the pump
// that deliberately lives for the process lifetime documents itself with
// an ignore.
//
// ctxflow — context.Background() and context.TODO() are banned outside
// package main, init functions, and test files: everywhere else the
// context must be accepted from the caller, so cancellation and
// deadlines reach the wire. Functions that return a fresh root context
// export a fact, so laundering Background() through a helper moves the
// finding to the helper's callers instead of hiding it. Holding a ctx
// parameter and minting a fresh root anyway is flagged at any depth.
// Detachment points that are correct by design (a job outliving its
// submitting request) say so with an ignore and a reason.
//
// zerocost — telemetry in //hdlint:hotpath code is only free when off if
// the call itself is skipped: the contract is "if tr != nil {
// tr.Mark...(...) }", not a nil-safe no-op call (the call, its argument
// evaluation, and its inlining cost remain). The analyzer tracks which
// expressions are nil-guarded (wrapped body, early return, guarded
// redeclaration, && conjunctions) and flags unguarded instrument calls in
// hot paths. Helpers that call telemetry on a parameter unguarded export
// a fact naming the parameter, so passing a trace to such a helper from
// a hot path is flagged at the call site — transitively.
//
// # Annotations
//
// Two markers opt code in:
//
//	//hdlint:hotpath   on a function's doc comment: no allocating constructs
//	//hdlint:nilsafe   on a type's doc comment: exported methods need nil guards
//
// One directive opts a line out:
//
//	//hdlint:ignore <analyzer>[,<analyzer>] <reason>
//
// which suppresses the named analyzers' findings on its own line and the
// line directly below. The reason is mandatory, and malformed directives
// (missing analyzer, unknown analyzer, missing reason) are themselves
// reported — a typo cannot silently disable a check. Directive names are
// checked against the full analyzer registry, so an ignore for an
// analyzer not selected by -only stays valid. Suppressions double as
// documentation: every intentional allocation on a hot path states its
// budget at the allocation site, and every deliberate context detachment
// states why the new root is sound.
//
// # Testing
//
// Each analyzer has a corpus under testdata/src/<name> with flagging,
// non-flagging and suppressed cases, checked by the linttest harness
// against analysistest-style "// want" comments. The interprocedural
// analyzers' corpora span multiple packages (e.g. lockorder's lockdep,
// ctxflow's ctxroot) so fact export and import cross a real package
// boundary in tests. Corpora are loaded GOPATH-style, so the resultimmut
// corpus imports a miniature stub "hiddendb" package rather than the
// real one, and zerocost matches instruments against a stub "telemetry".
package lint
