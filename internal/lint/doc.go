// Package lint implements hdlint, the repository's custom static-analysis
// suite: five analyzers that turn invariants the codebase otherwise states
// only in comments into build failures. Run it with
//
//	go run ./cmd/hdlint ./...
//
// (CI runs exactly that as a blocking job). The framework mirrors the
// shape of golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic —
// but is built purely on the standard library (go/ast, go/types, go/build,
// go/importer's source importer), preserving the module's zero-dependency,
// fully-offline build.
//
// # The analyzers
//
// resultimmut — hiddendb.Result and hiddendb.Tuple may alias storage
// shared with the database's immutable table, the history cache's
// entries, and every coalesced follower of a single-flight call. Writes
// through them are legal only on values the function owns: ones built
// locally (composite literal, new, zero value) or obtained from Clone.
// Ownership is tracked per local, with Clone granting deep ownership
// (element arrays included) and local construction only shallow ownership
// (a fresh Result still shares its tuples' backing arrays).
//
// nilsafe — types marked //hdlint:nilsafe (the telemetry instruments:
// Counter, Histogram, Tracer, WalkTrace, ...) promise that a nil receiver
// accepts every exported method call as a no-op, so instrumented code
// never branches on "is telemetry configured". The analyzer requires each
// exported pointer-receiver method to begin with a nil-receiver guard:
// an "if recv == nil" early return (possibly first in an || chain) or an
// "if recv != nil" wrapped body (possibly first in an && chain).
//
// hotpath — functions annotated //hdlint:hotpath (the walker's drill-down,
// the history cache's lookup path, the single-flight executor, the
// database's Execute) must not introduce allocations. Flagged constructs:
// calls into package fmt, non-constant string concatenation, &composite
// literals, slice and map literals, capturing closures, and interface
// boxing of non-pointer-shaped values. The AllocsPerRun ceilings in the
// benchmark suite catch a regression after the fact as a number; this
// names the offending line at build time.
//
// atomicmix — a struct field accessed through sync/atomic in one place
// and by plain load or store in another is a data race regardless of
// what the race detector happens to observe. Fields wrapped in typed
// atomics are immune by construction; this covers the raw-integer style.
//
// errtransient — sentinel errors (package-level Err* variables, EOF)
// compared with == or != (or matched in a switch) silently stop matching
// the moment any layer wraps them; the tree wraps its sentinels
// routinely, so the only correct comparison is errors.Is.
//
// # Annotations
//
// Two markers opt code in:
//
//	//hdlint:hotpath   on a function's doc comment: no allocating constructs
//	//hdlint:nilsafe   on a type's doc comment: exported methods need nil guards
//
// One directive opts a line out:
//
//	//hdlint:ignore <analyzer>[,<analyzer>] <reason>
//
// which suppresses the named analyzers' findings on its own line and the
// line directly below. The reason is mandatory, and malformed directives
// (missing analyzer, unknown analyzer, missing reason) are themselves
// reported — a typo cannot silently disable a check. Suppressions double
// as documentation: every intentional allocation on a hot path states its
// budget at the allocation site.
//
// # Testing
//
// Each analyzer has a corpus under testdata/src/<name> with flagging,
// non-flagging and suppressed cases, checked by the linttest harness
// against analysistest-style "// want" comments. Corpora are loaded
// GOPATH-style, so the resultimmut corpus imports a miniature stub
// "hiddendb" package rather than the real one.
package lint
