package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestNilSafe(t *testing.T) {
	linttest.Run(t, lint.NilSafeAnalyzer, "nilsafe")
}
