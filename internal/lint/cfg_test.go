package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"hdsampler/internal/lint"
)

// buildFunc parses one function body and returns its CFG plus the first
// for/range loop statement, if any.
func buildFunc(t *testing.T, body string) (*lint.CFG, ast.Stmt) {
	t.Helper()
	src := "package p\nfunc f(x bool, n int, ch chan int) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	cfg := lint.BuildCFG(fd.Body, nil)
	var loop ast.Stmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loop = n.(ast.Stmt)
			return false
		}
		return true
	})
	return cfg, loop
}

func reachesExit(cfg *lint.CFG) bool {
	seen := make(map[*lint.Block]bool)
	var dfs func(*lint.Block) bool
	dfs = func(b *lint.Block) bool {
		if b == cfg.Exit {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(cfg.Entry)
}

func TestCFGEscapes(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		escapes bool
	}{
		{"infinite", "for {\n}", false},
		{"conditional", "for x {\n}", true},
		{"bounded", "for i := 0; i < n; i++ {\n}", true},
		{"break", "for {\nif x {\nbreak\n}\n}", true},
		{"return", "for {\nif x {\nreturn\n}\n}", true},
		{"continueOnly", "for {\nif x {\ncontinue\n}\n}", false},
		{"range", "for v := range ch {\n_ = v\n}", true},
		{"labeledBreak", "outer:\nfor {\nfor {\nbreak outer\n}\n}", true},
		{"goto", "for {\nif x {\ngoto out\n}\n}\nout:\nreturn", true},
		{"panicExit", "for {\nif x {\npanic(1)\n}\n}", true},
		{"selectDone", "for {\nselect {\ncase <-ch:\nreturn\n}\n}", true},
		{"selectNoExit", "for {\nselect {\ncase v := <-ch:\n_ = v\n}\n}", false},
		{"breakInSwitch", "for {\nswitch {\ncase x:\nbreak\n}\n}", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, loop := buildFunc(t, tc.body)
			if loop == nil {
				t.Fatal("no loop found")
			}
			if got := cfg.Escapes(loop); got != tc.escapes {
				t.Errorf("Escapes = %v, want %v", got, tc.escapes)
			}
		})
	}
}

func TestCFGExitReachability(t *testing.T) {
	cases := []struct {
		name    string
		body    string
		reaches bool
	}{
		{"plain", "_ = x", true},
		{"emptySelect", "select {}", false},
		{"infiniteLoop", "for {\n}", false},
		{"panicOnly", "panic(1)", true}, // the goroutine dies: that is termination
		{"osExitLike", "for {\nif x {\npanic(1)\n}\n}", true},
		{"loopThenCode", "for {\n}\n_ = x", false},
		{"switchDefaultless", "switch {\ncase x:\n_ = x\n}", true},
		{"fallthroughCase", "switch {\ncase x:\nfallthrough\ndefault:\n_ = x\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, _ := buildFunc(t, tc.body)
			if got := reachesExit(cfg); got != tc.reaches {
				t.Errorf("exit reachable = %v, want %v", got, tc.reaches)
			}
		})
	}
}
