package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrderAnalyzer builds the program's global lock-acquisition graph
// and flags cycles — the cross-package deadlock class. Per function it
// runs a CFG-based dataflow computing which mutexes are held at each
// point (a mutex is identified by its declaration site: owning type plus
// field, or package-level variable, so every instance of shard.mu is one
// node); it records direct nested acquisitions and every call made with
// locks held, exporting both as facts. The Finish phase closes "may
// acquire" over the static call graph (interface calls resolve to every
// implementation) and reports each acquisition edge that participates in
// a cycle.
//
// Approximations, chosen to stay conservative for deadlock detection:
// held-sets merge by union at control-flow joins; TryLock counts as an
// acquisition; function literals' bodies are not tracked (their calls
// still contribute to "may acquire" through the call graph); calls under
// go and defer are excluded from held-at-call edges because they do not
// run synchronously under the caller's locks. A reacquisition of the
// same lock identity is a self-cycle: either a real self-deadlock or two
// instances (shards) whose ordering discipline must be stated with an
// //hdlint:ignore reason.
var LockOrderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc: "builds the global sync.Mutex/RWMutex acquisition graph across packages " +
		"(via facts) and flags lock-order cycles, the static deadlock class",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// A LockSite is one acquisition of a lock identity.
type LockSite struct {
	Lock string
	Pos  token.Position
}

// A LockEdge is a "held before" pair observed directly in one function.
type LockEdge struct {
	From, To string
	Pos      token.Position
}

// A LockCallHold is a call made while locks are held; Callees are the
// resolved static/interface callee keys.
type LockCallHold struct {
	Callees []string
	Held    []string
	Pos     token.Position
}

// LockOrderFact is the per-function summary exported for cross-package
// assembly: what the function acquires, which acquisitions nest
// directly, and which callees run under held locks.
type LockOrderFact struct {
	Acquires []LockSite
	Nested   []LockEdge
	Calls    []LockCallHold
}

// AFact marks LockOrderFact as a fact.
func (*LockOrderFact) AFact() {}

func runLockOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fact := lockScanFunc(pass, fd)
			if fact != nil {
				pass.ExportObjectFact(obj, fact)
			}
		}
	}
}

// lockScanFunc runs the held-set dataflow over one function and returns
// its fact, or nil when the function touches no locks and makes no calls
// under them.
func lockScanFunc(pass *Pass, fd *ast.FuncDecl) *LockOrderFact {
	// Cheap pre-check: any mutex method call at all?
	touches := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if touches {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, _, ok := lockOp(pass.Info, call); ok && op != lockNone {
				touches = true
			}
		}
		return true
	})
	if !touches {
		return nil
	}

	cfg := BuildCFG(fd.Body, pass.Info)
	// Iterate to fixpoint: in[b] = union of predecessors' out.
	in := make(map[*Block]map[string]bool)
	out := make(map[*Block]map[string]bool)
	preds := make(map[*Block][]*Block)
	for _, b := range cfg.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			ib := make(map[string]bool)
			for _, p := range preds[b] {
				for l := range out[p] {
					ib[l] = true
				}
			}
			ob := replayBlock(pass, b, ib, nil)
			if !sameSet(in[b], ib) || !sameSet(out[b], ob) {
				in[b], out[b] = ib, ob
				changed = true
			}
		}
	}
	fact := &LockOrderFact{}
	for _, b := range cfg.Blocks {
		replayBlock(pass, b, in[b], fact)
	}
	if len(fact.Acquires) == 0 && len(fact.Nested) == 0 && len(fact.Calls) == 0 {
		return nil
	}
	return fact
}

// replayBlock applies a block's lock events to held, optionally
// recording acquisition sites, nesting edges and calls-under-locks into
// fact. It returns the block's exit held-set.
func replayBlock(pass *Pass, b *Block, held map[string]bool, fact *LockOrderFact) map[string]bool {
	cur := make(map[string]bool, len(held))
	for l := range held {
		cur[l] = true
	}
	for _, s := range b.Stmts {
		for _, n := range stmtEventNodes(s) {
			lockWalk(n, func(call *ast.CallExpr) {
				op, lock, ok := lockOp(pass.Info, call)
				if ok && lock == "" {
					return // a mutex without a stable identity (local)
				}
				switch {
				case ok && (op == lockAcquire):
					if fact != nil {
						pos := pass.Fset.Position(call.Pos())
						fact.Acquires = append(fact.Acquires, LockSite{Lock: lock, Pos: pos})
						for h := range cur {
							fact.Nested = append(fact.Nested, LockEdge{From: h, To: lock, Pos: pos})
						}
					}
					cur[lock] = true
				case ok && op == lockRelease:
					delete(cur, lock)
				default:
					if fact == nil || len(cur) == 0 {
						return
					}
					site, okc := pass.Graph().classify(pass.Info, call)
					if !okc || site.Kind == CallDynamic {
						return
					}
					callees := pass.Graph().Callees(site)
					if len(callees) == 0 {
						return
					}
					heldList := make([]string, 0, len(cur))
					for h := range cur {
						heldList = append(heldList, h)
					}
					sort.Strings(heldList)
					fact.Calls = append(fact.Calls, LockCallHold{
						Callees: callees,
						Held:    heldList,
						Pos:     pass.Fset.Position(call.Pos()),
					})
				}
			})
		}
	}
	return cur
}

// stmtEventNodes returns the parts of a CFG block statement whose
// expressions execute in that block: control statements contribute only
// their condition, plain statements contribute themselves. go statements
// contribute nothing (their call runs on another goroutine, outside the
// caller's locks); defer statements contribute nothing (a deferred
// Unlock is modeled by never releasing — the lock is held to the end).
func stmtEventNodes(s ast.Stmt) []ast.Node {
	switch x := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{x.Cond}
	case *ast.ForStmt:
		if x.Cond != nil {
			return []ast.Node{x.Cond}
		}
		return nil
	case *ast.RangeStmt:
		return []ast.Node{x.X}
	case *ast.SwitchStmt:
		if x.Tag != nil {
			return []ast.Node{x.Tag}
		}
		return nil
	case *ast.TypeSwitchStmt:
		return []ast.Node{x.Assign}
	case *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

// lockWalk visits every call expression under n, skipping function
// literal bodies (they execute elsewhere).
func lockWalk(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(x)
		}
		return true
	})
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
)

// lockOp recognizes E.Lock/RLock/TryLock/TryRLock/Unlock/RUnlock where E
// is a sync.Mutex or sync.RWMutex, returning the operation and the
// lock's stable identity ("" when E has none — a local variable).
func lockOp(info *types.Info, call *ast.CallExpr) (lockOpKind, string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockNone, "", false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return lockNone, "", false
	}
	recv := sel.X
	tv, ok := info.Types[recv]
	if !ok || !isMutexType(tv.Type) {
		return lockNone, "", false
	}
	return op, lockIdentity(info, recv), true
}

// isMutexType reports sync.Mutex / sync.RWMutex, possibly behind one
// pointer.
func isMutexType(t types.Type) bool {
	return isPkgType(t, "sync", "Mutex") || isPkgType(t, "sync", "RWMutex")
}

// lockIdentity names a mutex by its declaration: "pkg.Type.field" for
// struct fields (every instance of the field is one lock-order node —
// the per-instance order of sharded locks is exactly what the analyzer
// cannot see, and what an //hdlint:ignore must document), "pkg.var" for
// package-level variables, "" for anything else.
func lockIdentity(info *types.Info, e ast.Expr) string {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if n := derefNamed(s.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
			return ""
		}
		// Package-qualified var: pkg.Mu.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			if key, ok := objectKey(v); ok {
				return key
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			if key, ok := objectKey(v); ok {
				return key
			}
		}
	}
	return ""
}

// finishLockOrder assembles the global graph and reports cyclic edges.
func finishLockOrder(fin *Finish) {
	facts := fin.AllObjectFacts(&LockOrderFact{})

	// mayAcquire: lock identities each function can take, transitively.
	may := make(map[string]map[string]bool)
	factOf := make(map[string]*LockOrderFact, len(facts))
	for _, of := range facts {
		lf := of.Fact.(*LockOrderFact)
		factOf[of.Key] = lf
		set := make(map[string]bool)
		for _, a := range lf.Acquires {
			set[a.Lock] = true
		}
		may[of.Key] = set
	}
	// Propagate callee acquisition sets to callers over the call graph
	// (static and interface edges; go/defer excluded — not synchronous).
	g := fin.Run.Graph
	for changed := true; changed; {
		changed = false
		for key, node := range g.Nodes {
			for _, site := range node.Calls {
				if site.Go || site.Defer || site.Kind == CallDynamic {
					continue
				}
				for _, callee := range g.Callees(site) {
					for l := range may[callee] {
						if may[key] == nil {
							may[key] = make(map[string]bool)
						}
						if !may[key][l] {
							may[key][l] = true
							changed = true
						}
					}
				}
			}
		}
	}

	// The lock graph: direct nesting edges plus held-at-call × callee
	// may-acquire edges. First position wins per (from,to) pair.
	edges := make(map[string]map[string]edgeInfo)
	addEdge := func(from, to string, info edgeInfo) {
		if edges[from] == nil {
			edges[from] = make(map[string]edgeInfo)
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = info
		}
	}
	var keys []string
	for k := range factOf {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		lf := factOf[k]
		for _, e := range lf.Nested {
			addEdge(e.From, e.To, edgeInfo{pos: e.Pos})
		}
		for _, c := range lf.Calls {
			for _, callee := range c.Callees {
				var acq []string
				for l := range may[callee] {
					acq = append(acq, l)
				}
				sort.Strings(acq)
				for _, to := range acq {
					for _, from := range c.Held {
						addEdge(from, to, edgeInfo{pos: c.Pos, via: callee})
					}
				}
			}
		}
	}

	// Strongly connected components over lock nodes; an edge inside an
	// SCC (or a self-loop) participates in a cycle.
	scc := tarjanSCC(edges)
	var froms []string
	for f := range edges {
		froms = append(froms, f)
	}
	sort.Strings(froms)
	for _, from := range froms {
		var tos []string
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			info := edges[from][to]
			switch {
			case from == to:
				fin.ReportAt(info.pos,
					"lock order: %s acquired while already held%s — self-deadlock, or two instances whose ordering discipline needs an //hdlint:ignore reason",
					shortLock(from), viaClause(info.via))
			case scc[from] != 0 && scc[from] == scc[to]:
				fin.ReportAt(info.pos,
					"lock order cycle: %s is held when %s is acquired%s, but elsewhere the order reverses — a consistent global acquisition order is required",
					shortLock(from), shortLock(to), viaClause(info.via))
			}
		}
	}
}

// edgeInfo annotates one lock-graph edge with where it was observed and,
// for held-at-call edges, which callee completes it.
type edgeInfo struct {
	pos token.Position
	via string
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func viaClause(via string) string {
	if via == "" {
		return ""
	}
	return " (via call to " + via + ")"
}

// shortLock trims the module prefix for readability.
func shortLock(l string) string {
	if i := strings.LastIndex(l, "/"); i >= 0 {
		return l[i+1:]
	}
	return l
}

// tarjanSCC returns a component id per node; only components with more
// than one node get a non-zero id (self-loops are handled separately).
func tarjanSCC(edges map[string]map[string]edgeInfo) map[string]int {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 1

	var nodes []string
	seen := make(map[string]bool)
	for f, tos := range edges {
		if !seen[f] {
			seen[f] = true
			nodes = append(nodes, f)
		}
		for t := range tos {
			if !seen[t] {
				seen[t] = true
				nodes = append(nodes, t)
			}
		}
	}
	sort.Strings(nodes)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for t := range edges[v] {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				for _, m := range members {
					comp[m] = compID
				}
				compID++
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return comp
}
