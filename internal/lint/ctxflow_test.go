package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, lint.CtxFlowAnalyzer, "ctxroot", "ctxflow", "ctxflowmain")
}
