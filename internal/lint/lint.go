package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer checks one invariant over a single package, optionally
// finishing with a whole-program phase once every package has been seen.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hdlint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// Interprocedural analyzers also export facts here for later units
	// (units are visited in dependency order) and for Finish.
	Run func(*Pass)
	// Finish, when non-nil, runs once after every unit's Run — the place
	// to assemble per-function facts into whole-program structures (the
	// global lock graph, goroutine-termination closure) and report.
	Finish func(*Finish)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Unit is the analysis unit behind this pass.
	Unit *Package

	run    *RunInfo
	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Graph returns the run's conservative static call graph.
func (p *Pass) Graph() *CallGraph { return p.run.Graph }

// State returns this analyzer's run-wide scratch state, creating it with
// init on first use — how Run passes hand partial work (pending go
// sites, recorded call-with-lock-held sites) to Finish without globals.
func (p *Pass) State(init func() any) any { return p.run.state(p.Analyzer.Name, init) }

// A RunInfo is the shared context of one whole Run invocation: every
// unit, the call graph over them, and the fact store.
type RunInfo struct {
	Units []*Package
	Fset  *token.FileSet
	Graph *CallGraph

	facts  *factStore
	states map[string]any
}

func (r *RunInfo) state(analyzer string, init func() any) any {
	s, ok := r.states[analyzer]
	if !ok {
		s = init()
		r.states[analyzer] = s
	}
	return s
}

// A Finish is an analyzer's whole-program phase, run once after every
// unit. It reads facts and run state; its diagnostics carry positions
// recorded earlier (facts store token.Position, not token.Pos, precisely
// so Finish can report without syntax trees in hand).
type Finish struct {
	Analyzer *Analyzer
	Run      *RunInfo

	report func(Diagnostic)
}

// ReportAt records one finding at an already-resolved position.
func (f *Finish) ReportAt(pos token.Position, format string, args ...any) {
	f.report(Diagnostic{
		Analyzer: f.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// State returns the analyzer's run-wide scratch state (see Pass.State).
func (f *Finish) State(init func() any) any { return f.Run.state(f.Analyzer.Name, init) }

// ImportObjectFact copies the fact stored under key into *ptr.
func (f *Finish) ImportObjectFact(key string, ptr Fact) bool {
	return f.Run.importObjectFact(f.Analyzer.Name, key, ptr)
}

// AllObjectFacts lists every fact of example's type this analyzer
// exported during the run, sorted by object key.
func (f *Finish) AllObjectFacts(example Fact) []ObjectFact {
	return f.Run.allObjectFacts(f.Analyzer.Name, example)
}

// A Diagnostic is one reported finding, in file-position form so drivers
// can sort, dedupe and filter without holding on to syntax trees.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer and
// drops exact duplicates (a file shared by a package and its test unit is
// analyzed in both; the same finding must print once).
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// derefNamed unwraps pointers and returns t's named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isPkgType reports whether t (possibly behind one pointer) is the named
// type typeName declared in a package *named* pkgName. Matching by
// package name rather than full import path keeps the analyzers testable
// against self-contained corpus packages while still pinning the real
// hiddendb/formclient/telemetry types in the live tree.
func isPkgType(t types.Type, pkgName, typeName string) bool {
	n := derefNamed(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}
