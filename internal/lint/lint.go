package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer checks one invariant over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hdlint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported finding, in file-position form so drivers
// can sort, dedupe and filter without holding on to syntax trees.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// sortDiagnostics orders findings by file, line, column, analyzer and
// drops exact duplicates (a file shared by a package and its test unit is
// analyzed in both; the same finding must print once).
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// derefNamed unwraps pointers and returns t's named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isPkgType reports whether t (possibly behind one pointer) is the named
// type typeName declared in a package *named* pkgName. Matching by
// package name rather than full import path keeps the analyzers testable
// against self-contained corpus packages while still pinning the real
// hiddendb/formclient/telemetry types in the live tree.
func isPkgType(t types.Type, pkgName, typeName string) bool {
	n := derefNamed(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}
