package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestGoLeak(t *testing.T) {
	linttest.Run(t, lint.GoLeakAnalyzer, "goleakdep", "goleak")
}
