package lint

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a typed datum an analyzer attaches to an object or a package
// during one unit's pass and reads back while analyzing a later unit —
// the cross-package channel that makes interprocedural checks possible.
// Facts follow the shape of golang.org/x/tools/go/analysis facts, but
// because every package in a run is loaded in-process by the same
// source-importer loader, "export" is a write into the run's shared store
// rather than a serialization step.
//
// A fact type must be a pointer to a struct and is identified by its
// dynamic type: one analyzer may attach at most one fact of each type to
// each object.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// An ObjectFact pairs an exported fact with the stable key of the object
// carrying it, for AllObjectFacts enumeration.
type ObjectFact struct {
	// Key is the object's stable identity (see objectKey).
	Key  string
	Fact Fact
}

// factStore is the run-wide fact table, shared by every Pass of a run.
// Keys combine the analyzer, the object's stable identity, and the fact's
// dynamic type, so analyzers cannot observe each other's facts.
type factStore struct {
	objects  map[factKey]Fact
	packages map[factKey]Fact
}

type factKey struct {
	analyzer string
	key      string // object stable key, or package path
	typ      reflect.Type
}

func newFactStore() *factStore {
	return &factStore{
		objects:  make(map[factKey]Fact),
		packages: make(map[factKey]Fact),
	}
}

// objectKey derives a stable identity for obj that survives the same
// package being type-checked more than once (a package is re-checked when
// it is both an analysis unit and an import of another unit, and the two
// checks produce distinct types.Object instances). Functions use
// types.Func.FullName with the pointer stripped from the receiver, so
// (*T).M and (T).M from different check instances collapse to one key;
// package-level vars, types and consts use path.Name.
//
// Objects without a package (builtins, the universe scope) and locals
// have no stable identity; objectKey returns ok=false for them.
func objectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		// FullName yields "path.F" for functions and "(path.T).M" or
		// "(*path.T).M" for methods; canonicalize the receiver's pointer.
		name := o.FullName()
		name = strings.ReplaceAll(name, "(*", "(")
		return name, true
	case *types.TypeName, *types.Const:
		return obj.Pkg().Path() + "." + obj.Name(), true
	case *types.Var:
		if o.IsField() {
			// A field's owner is not recoverable from the object alone;
			// analyzers key fields through their owning named type
			// explicitly (see lockKey in lockorder.go).
			return "", false
		}
		// Package-level var only; locals have no stable identity.
		if o.Parent() != obj.Pkg().Scope() {
			return "", false
		}
		return obj.Pkg().Path() + "." + obj.Name(), true
	}
	return "", false
}

func factType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Ptr {
		panic(fmt.Sprintf("lint: fact %T must be a pointer to a struct", f))
	}
	return t
}

// ExportObjectFact attaches fact to obj for later units of this run.
// Objects without a stable identity (locals, builtins) are silently
// skipped: no later unit could name them anyway.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	key, ok := objectKey(obj)
	if !ok {
		return
	}
	p.run.facts.objects[factKey{p.Analyzer.Name, key, factType(fact)}] = fact
}

// ImportObjectFact copies the fact of ptr's type previously exported for
// obj (possibly by a pass over another package) into *ptr, reporting
// whether one was found. ptr must be a pointer to a struct fact type.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	key, ok := objectKey(obj)
	if !ok {
		return false
	}
	return p.run.importObjectFact(p.Analyzer.Name, key, ptr)
}

// ImportObjectFactByKey is ImportObjectFact for callers holding a stable
// key rather than a live types.Object — the Finish phase works on keys.
func (p *Pass) ImportObjectFactByKey(key string, ptr Fact) bool {
	return p.run.importObjectFact(p.Analyzer.Name, key, ptr)
}

// ExportPackageFact attaches fact to the unit's package.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.run.facts.packages[factKey{p.Analyzer.Name, p.Pkg.Path(), factType(fact)}] = fact
}

// ImportPackageFact copies the fact of ptr's type exported for the
// package with the given import path into *ptr.
func (p *Pass) ImportPackageFact(path string, ptr Fact) bool {
	f, ok := p.run.facts.packages[factKey{p.Analyzer.Name, path, factType(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// AllObjectFacts returns every object fact this analyzer has exported so
// far, sorted by object key — the Finish phase's view of the whole run.
func (p *Pass) AllObjectFacts(example Fact) []ObjectFact {
	return p.run.allObjectFacts(p.Analyzer.Name, example)
}

func (r *RunInfo) importObjectFact(analyzer, key string, ptr Fact) bool {
	f, ok := r.facts.objects[factKey{analyzer, key, factType(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

func (r *RunInfo) allObjectFacts(analyzer string, example Fact) []ObjectFact {
	typ := factType(example)
	var out []ObjectFact
	for k, f := range r.facts.objects {
		if k.analyzer == analyzer && k.typ == typ {
			out = append(out, ObjectFact{Key: k.key, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
