package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallKind classifies a call site by how its callee is bound.
type CallKind int

const (
	// CallStatic is a direct call of a declared function or a method on a
	// concrete receiver — the callee is known exactly.
	CallStatic CallKind = iota
	// CallInterface is a method call through an interface value; the
	// callee is any implementation of the method among loaded packages.
	CallInterface
	// CallDynamic is a call through a function value (a func-typed
	// variable, field, or method value); the callee is any address-taken
	// function with an identical signature.
	CallDynamic
)

// A CallSite is one call expression inside a node's body, classified and
// annotated with whether it runs under a go or defer statement.
type CallSite struct {
	Kind CallKind
	// Callee is the stable key of the exact callee for CallStatic, and of
	// the interface method for CallInterface; empty for CallDynamic.
	Callee string
	// Method is the callee's object for CallInterface (needed to resolve
	// implementations); nil otherwise.
	Method *types.Func
	// Sig is the call's signature for CallDynamic resolution.
	Sig *types.Signature
	Pos token.Pos
	// Go and Defer mark call sites that are the operand of a go or defer
	// statement; the goleak analyzer keys off Go sites.
	Go    bool
	Defer bool
}

// A CallNode is one declared function or method, with every call site in
// its body. Calls made inside func literals declared in the body are
// attributed to the enclosing declaration — a conservative flattening
// that over-approximates "may call".
type CallNode struct {
	Key  string
	Func *types.Func
	Decl *ast.FuncDecl
	Unit *Package
	// Calls lists the node's call sites in source order.
	Calls []CallSite
}

// A CallGraph is the conservative static call graph over every analysis
// unit of a run: exact edges for static calls, class-hierarchy edges for
// interface dispatch, and signature-match edges for calls through
// function values.
type CallGraph struct {
	// Nodes maps stable function keys to their nodes.
	Nodes map[string]*CallNode

	// addrTaken lists functions whose value escapes (assigned, passed, or
	// returned rather than called) — the candidate callees of dynamic
	// calls.
	addrTaken map[string]*types.Func

	// namedTypes is every named type declared across the units, the
	// candidate receiver set for interface dispatch.
	namedTypes []*types.Named

	implCache map[implKey][]string
}

type implKey struct {
	iface  *types.Interface
	method string
}

// BuildCallGraph walks every unit once and assembles the graph.
func BuildCallGraph(units []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:     make(map[string]*CallNode),
		addrTaken: make(map[string]*types.Func),
		implCache: make(map[implKey][]string),
	}
	for _, u := range units {
		g.collectNamedTypes(u)
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g.addNode(u, fd)
			}
		}
	}
	return g
}

func (g *CallGraph) collectNamedTypes(u *Package) {
	scope := u.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if n, ok := tn.Type().(*types.Named); ok {
			g.namedTypes = append(g.namedTypes, n)
		}
	}
}

// NodeFor returns the node of a declared function, or nil when fn was not
// declared in any unit (stdlib, interface methods, locals).
func (g *CallGraph) NodeFor(fn *types.Func) *CallNode {
	key, ok := objectKey(fn)
	if !ok {
		return nil
	}
	return g.Nodes[key]
}

func (g *CallGraph) addNode(u *Package, fd *ast.FuncDecl) {
	obj, _ := u.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	key, ok := objectKey(obj)
	if !ok {
		return
	}
	node := &CallNode{Key: key, Func: obj, Decl: fd, Unit: u}

	// Which call expressions sit directly under go/defer statements.
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	// Function positions that are call operands (not value uses).
	callFun := make(map[ast.Expr]bool)
	// Selector Sel idents are handled through their SelectorExpr; seeing
	// them again as bare idents must not count as a value use.
	selSel := make(map[*ast.Ident]bool)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			goCalls[x.Call] = true
		case *ast.DeferStmt:
			deferCalls[x.Call] = true
		case *ast.CallExpr:
			callFun[unparen(x.Fun)] = true
		case *ast.SelectorExpr:
			selSel[x.Sel] = true
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if site, ok := g.classify(u.Info, x); ok {
				site.Go = goCalls[x]
				site.Defer = deferCalls[x]
				node.Calls = append(node.Calls, site)
			}
		case *ast.Ident:
			// A function named outside call position escapes as a value.
			if callFun[x] || selSel[x] {
				return true
			}
			if fn, ok := u.Info.Uses[x].(*types.Func); ok {
				g.markAddrTaken(fn)
			}
		case *ast.SelectorExpr:
			if callFun[x] {
				return true
			}
			if sel, ok := u.Info.Selections[x]; ok {
				if sel.Kind() == types.MethodVal {
					// A method value: x.M escapes; if the receiver is an
					// interface, every implementation escapes with it.
					m := sel.Obj().(*types.Func)
					if types.IsInterface(sel.Recv()) {
						for _, impl := range g.Implementations(m) {
							if fn := g.addrCandidate(impl); fn != nil {
								g.markAddrTaken(fn)
							}
						}
					}
					g.markAddrTaken(m)
				}
			} else if fn, ok := u.Info.Uses[x.Sel].(*types.Func); ok {
				// Package-qualified function value: pkg.F escapes.
				g.markAddrTaken(fn)
			}
		}
		return true
	})
	g.Nodes[key] = node
}

func (g *CallGraph) markAddrTaken(fn *types.Func) {
	if key, ok := objectKey(fn); ok {
		g.addrTaken[key] = fn
	}
}

func (g *CallGraph) addrCandidate(key string) *types.Func {
	if n := g.Nodes[key]; n != nil {
		return n.Func
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

// classify resolves one call expression into a CallSite, or reports
// ok=false for non-calls (conversions, builtins) and immediately-invoked
// function literals (whose bodies are already attributed to the node).
func (g *CallGraph) classify(info *types.Info, call *ast.CallExpr) (CallSite, bool) {
	fun := unparen(call.Fun)
	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[x].(type) {
		case *types.Func:
			if key, ok := objectKey(obj); ok {
				return CallSite{Kind: CallStatic, Callee: key, Pos: call.Pos()}, true
			}
		case *types.Var:
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				return CallSite{Kind: CallDynamic, Sig: sig, Pos: call.Pos()}, true
			}
		}
		return CallSite{}, false
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					key, _ := objectKey(m)
					return CallSite{Kind: CallInterface, Callee: key, Method: m, Pos: call.Pos()}, true
				}
				if key, ok := objectKey(m); ok {
					return CallSite{Kind: CallStatic, Callee: key, Pos: call.Pos()}, true
				}
			case types.FieldVal:
				if sig, ok := sel.Type().Underlying().(*types.Signature); ok {
					return CallSite{Kind: CallDynamic, Sig: sig, Pos: call.Pos()}, true
				}
			}
			return CallSite{}, false
		}
		// Package-qualified pkg.F.
		switch obj := info.Uses[x.Sel].(type) {
		case *types.Func:
			if key, ok := objectKey(obj); ok {
				return CallSite{Kind: CallStatic, Callee: key, Pos: call.Pos()}, true
			}
		case *types.Var:
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok {
				return CallSite{Kind: CallDynamic, Sig: sig, Pos: call.Pos()}, true
			}
		}
	}
	return CallSite{}, false
}

// Implementations resolves an interface method to the stable keys of
// every method among the loaded named types whose type implements the
// interface — class-hierarchy analysis over the units.
func (g *CallGraph) Implementations(m *types.Func) []string {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	ck := implKey{iface, m.Name()}
	if impls, ok := g.implCache[ck]; ok {
		return impls
	}
	var impls []string
	for _, n := range g.namedTypes {
		if types.IsInterface(n) {
			continue
		}
		var recv types.Type = n
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(n)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			if key, ok := objectKey(fn); ok {
				impls = append(impls, key)
			}
		}
	}
	sort.Strings(impls)
	g.implCache[ck] = impls
	return impls
}

// DynamicCallees resolves a dynamic call site to every address-taken
// function with an identical signature.
func (g *CallGraph) DynamicCallees(sig *types.Signature) []string {
	var out []string
	for key, fn := range g.addrTaken {
		fsig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		// Compare parameter/result shapes; receivers are not part of the
		// value's type once the method is bound.
		if types.Identical(types.NewSignatureType(nil, nil, nil, fsig.Params(), fsig.Results(), fsig.Variadic()),
			types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())) {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// staticCallee resolves a call expression to the declared function or
// concrete method it invokes, or nil for dynamic and interface calls —
// the resolution analyzers use to look up a callee's facts.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch x := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if sel.Kind() != types.MethodVal || types.IsInterface(sel.Recv()) {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Callees resolves a site to the stable keys of its possible callees.
func (g *CallGraph) Callees(site CallSite) []string {
	switch site.Kind {
	case CallStatic:
		return []string{site.Callee}
	case CallInterface:
		return g.Implementations(site.Method)
	case CallDynamic:
		return g.DynamicCallees(site.Sig)
	}
	return nil
}
