package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// NilSafeAnalyzer enforces the telemetry instrument contract: every
// exported method with a pointer receiver on a type marked
// //hdlint:nilsafe must begin with a nil-receiver guard, so a nil
// *Counter / *Histogram / *Tracer accepts every call as a no-op and
// instrumented code never branches on "is telemetry configured".
//
// Accepted guard shapes, as the first statement of the body:
//
//	if c == nil { ... }            // early return
//	if c == nil || c.x == nil ...  // nil check first in an || chain
//	if c != nil { ... }            // whole body wrapped
//
// Methods with an unnamed (or _) receiver cannot dereference it and are
// accepted as trivially nil-safe.
var NilSafeAnalyzer = &Analyzer{
	Name: "nilsafe",
	Doc: "exported pointer-receiver methods on //hdlint:nilsafe types must begin with " +
		"a nil-receiver guard",
	Run: runNilSafe,
}

const nilsafeMarker = "//hdlint:nilsafe"

// nilsafeTypes collects the names of types in this package whose
// declaration carries the //hdlint:nilsafe marker (in the type's doc
// comment or the grouped declaration's).
func nilsafeTypes(files []*ast.File) map[string]bool {
	marked := make(map[string]bool)
	hasMarker := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				text := strings.TrimSpace(c.Text)
				if text == nilsafeMarker || strings.HasPrefix(text, nilsafeMarker+" ") {
					return true
				}
			}
		}
		return false
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc, ts.Doc, ts.Comment) {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	return marked
}

// receiverTypeName returns the name of a method's receiver base type and
// whether the receiver is a pointer.
func receiverTypeName(fd *ast.FuncDecl) (name string, pointer bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		pointer = true
		t = st.X
	}
	// Generic receivers (T[P]) do not occur in this tree; handle the
	// plain identifier form.
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, pointer
	}
	return "", false
}

// beginsWithNilGuard reports whether the body's first statement guards
// the named receiver against nil.
func beginsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	// Walk to the leftmost term of the condition's logical chain:
	// short-circuit evaluation makes "recv == nil || recv.f == x" and
	// "recv != nil && recv.f == x" safe only when the nil check comes
	// first. The outermost operator decides which comparison guards:
	// "== nil" needs an || chain (early return), "!= nil" an && chain
	// (wrapped body); mixing them lets a nil receiver slip through.
	cond := ifStmt.Cond
	outer := token.ILLEGAL
	for {
		b, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if b.Op == token.LOR || b.Op == token.LAND {
			if outer == token.ILLEGAL {
				outer = b.Op
			}
			cond = b.X
			continue
		}
		switch b.Op {
		case token.EQL:
			return outer != token.LAND && isNilCompare(b, recv)
		case token.NEQ:
			return outer != token.LOR && isNilCompare(b, recv)
		}
		return false
	}
}

func isNilCompare(b *ast.BinaryExpr, recv string) bool {
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isRecv(b.X) && isNil(b.Y)) || (isNil(b.X) && isRecv(b.Y))
}

func runNilSafe(pass *Pass) {
	marked := nilsafeTypes(pass.Files)
	if len(marked) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			tname, pointer := receiverTypeName(fd)
			if !pointer || !marked[tname] {
				continue
			}
			names := fd.Recv.List[0].Names
			if len(names) == 0 || names[0].Name == "_" {
				continue // unnamed receiver: cannot be dereferenced
			}
			if fd.Body == nil {
				continue
			}
			if !beginsWithNilGuard(fd.Body, names[0].Name) {
				pass.Reportf(fd.Name.Pos(),
					"exported method (*%s).%s must begin with a nil-receiver guard (%s is marked %s)",
					tname, fd.Name.Name, tname, nilsafeMarker)
			}
		}
	}
}
