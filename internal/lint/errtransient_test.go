package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestErrTransient(t *testing.T) {
	linttest.Run(t, lint.ErrTransientAnalyzer, "errtransient")
}
