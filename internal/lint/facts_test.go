package lint_test

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"

	"hdsampler/internal/lint"
)

// nameFact records the declared name of a function.
type nameFact struct{ Name string }

func (*nameFact) AFact() {}

// pkgFact records which package exported it.
type pkgFact struct{ From string }

func (*pkgFact) AFact() {}

func loadCorpus(t *testing.T, pkgs ...string) ([]*lint.Package, *lint.Loader) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(lint.Root{Prefix: "", Dir: srcRoot})
	var units []*lint.Package
	for _, pkg := range pkgs {
		us, err := loader.LoadDir(pkg, filepath.Join(srcRoot, pkg))
		if err != nil {
			t.Fatalf("load corpus %s: %v", pkg, err)
		}
		units = append(units, us...)
	}
	return units, loader
}

// TestFactRoundTrip exports per-function facts while analyzing factdep
// and imports them while analyzing factuse — whose view of factdep's
// objects comes from a separate type-check, so the round trip proves the
// stable-key scheme, including (*T).M / (T).M receiver normalization.
func TestFactRoundTrip(t *testing.T) {
	units, loader := loadCorpus(t, "factdep", "factuse")

	imported := make(map[string]string) // callee name -> fact payload
	var allKeys []string
	havePkgFact := false

	a := &lint.Analyzer{
		Name: "facttest",
		Run: func(p *lint.Pass) {
			for _, f := range p.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
						p.ExportObjectFact(obj, &nameFact{Name: fd.Name.Name})
					}
				}
			}
			if p.Pkg.Name() == "factdep" {
				p.ExportPackageFact(&pkgFact{From: "factdep"})
			}
			if p.Pkg.Name() != "factuse" {
				return
			}
			var pf pkgFact
			havePkgFact = p.ImportPackageFact("factdep", &pf) && pf.From == "factdep"
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					var obj types.Object
					switch fun := call.Fun.(type) {
					case *ast.SelectorExpr:
						if sel, ok := p.Info.Selections[fun]; ok {
							obj = sel.Obj()
						} else {
							obj = p.Info.Uses[fun.Sel]
						}
					case *ast.Ident:
						obj = p.Info.Uses[fun]
					}
					if obj == nil {
						return true
					}
					var got nameFact
					if p.ImportObjectFact(obj, &got) {
						imported[obj.Name()] = got.Name
						// The import must be a copy: mutating it must not
						// poison the store for the next importer.
						got.Name = "mutated"
						var again nameFact
						p.ImportObjectFact(obj, &again)
						imported[obj.Name()+"-again"] = again.Name
					}
					return true
				})
			}
		},
		Finish: func(fin *lint.Finish) {
			for _, of := range fin.AllObjectFacts(&nameFact{}) {
				allKeys = append(allKeys, of.Key)
			}
		},
	}

	diags := lint.Run(units, loader.Fset, []*lint.Analyzer{a})
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	if imported["Alpha"] != "Alpha" {
		t.Errorf("cross-package function fact: got %q, want Alpha", imported["Alpha"])
	}
	if imported["Method"] != "Method" {
		t.Errorf("cross-package method fact (pointer-receiver key): got %q, want Method", imported["Method"])
	}
	if !havePkgFact {
		t.Error("package fact did not round-trip from factdep to factuse")
	}
	want := map[string]bool{
		"factdep.Alpha":      true,
		"factdep.Beta":       true,
		"(factdep.T).Method": true,
		"factuse.Caller":     true,
	}
	for _, k := range allKeys {
		delete(want, k)
	}
	for k := range want {
		t.Errorf("AllObjectFacts missing key %s (got %v)", k, allKeys)
	}
	if imported["Alpha-again"] != "Alpha" {
		t.Errorf("imported fact aliases the stored fact: re-import saw %q", imported["Alpha-again"])
	}
}
