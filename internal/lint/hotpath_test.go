package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestHotPath(t *testing.T) {
	linttest.Run(t, lint.HotPathAnalyzer, "hotpath")
}
