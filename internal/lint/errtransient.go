package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrTransientAnalyzer flags sentinel errors compared with == or != (or
// matched in a switch) instead of errors.Is. The tree wraps its sentinels
// — formclient.ErrTransient, ErrRateLimited, ErrPageFormat all travel
// inside fmt.Errorf("%w: ...") chains — so an equality comparison is not
// merely unidiomatic, it is wrong: it can only ever see the naked
// sentinel, never a wrapped one, and silently stops matching the moment a
// layer adds context.
var ErrTransientAnalyzer = &Analyzer{
	Name: "errtransient",
	Doc: "flags ==/!= comparisons (and switch cases) against sentinel error variables; " +
		"wrapped sentinels only match through errors.Is",
	Run: runErrTransient,
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// sentinelError returns the package-level error variable e denotes, or
// nil. A sentinel is a package-scope var of error type whose name (after
// any package qualifier) starts with "Err" — formclient.ErrTransient,
// hiddendb.ErrBudgetExhausted, io.EOF-style names are matched via the
// conventional Err prefix plus the stdlib's EOF.
func sentinelError(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if name := v.Name(); len(name) < 3 || name[:3] != "Err" {
		if name != "EOF" {
			return nil
		}
	}
	// Not error-typed at all (e.g. an ErrCount int): not a sentinel.
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) &&
		!types.Implements(v.Type(), errorType) {
		return nil
	}
	return v
}

func runErrTransient(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{x.X, x.Y} {
					if v := sentinelError(pass.Info, side); v != nil {
						pass.Reportf(x.Pos(),
							"sentinel error %s compared with %s; wrapped errors never match — use errors.Is(err, %s)",
							v.Name(), x.Op, v.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				if x.Tag == nil {
					return true
				}
				tt := pass.Info.Types[x.Tag].Type
				if tt == nil || !types.Identical(tt.Underlying(), errorType) {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if v := sentinelError(pass.Info, e); v != nil {
							pass.Reportf(e.Pos(),
								"sentinel error %s matched in a switch case; wrapped errors never match — use errors.Is(err, %s)",
								v.Name(), v.Name())
						}
					}
				}
			}
			return true
		})
	}
}
