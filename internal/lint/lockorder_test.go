package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, lint.LockOrderAnalyzer, "lockdep", "lockorder")
}
