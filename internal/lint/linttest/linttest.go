// Package linttest runs a lint.Analyzer over a corpus package and checks
// its findings against expectations written in the corpus source, in the
// style of golang.org/x/tools/go/analysis/analysistest:
//
//	r.Overflow = true // want `write to field Overflow`
//
// A want comment names one or more regular expressions (backquoted or
// double-quoted); each must match the message of a distinct diagnostic
// reported on the comment's line. The variant "want-1" expects the
// diagnostic on the line above — needed when the flagged line is itself a
// comment (a malformed //hdlint:ignore directive) and cannot carry a
// second comment.
//
// Corpora live under testdata/src/<pkg> and are loaded GOPATH-style, so a
// corpus file may import a sibling corpus package by its bare name (the
// resultimmut corpus imports a miniature "hiddendb"). Suppression via
// //hdlint:ignore is live in corpora: a suppressed line simply carries no
// want comment.
package linttest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hdsampler/internal/lint"
)

// expectation is one want clause: a diagnostic on file:line whose message
// matches re.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

// Run loads testdata/src/<pkg> for each named corpus package, runs the
// analyzer (with //hdlint:ignore processing, exactly as cmd/hdlint does),
// and reports any mismatch between findings and want comments as test
// errors.
func Run(t *testing.T, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader := lint.NewLoader(lint.Root{Prefix: "", Dir: srcRoot})
	var units []*lint.Package
	for _, pkg := range pkgs {
		us, err := loader.LoadDir(pkg, filepath.Join(srcRoot, pkg))
		if err != nil {
			t.Fatalf("load corpus %s: %v", pkg, err)
		}
		if len(us) == 0 {
			t.Fatalf("corpus %s has no buildable Go files", pkg)
		}
		units = append(units, us...)
	}

	wants := collectWants(t, loader, units)
	diags := lint.Run(units, loader.Fset, []*lint.Analyzer{a})

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claim pairs a diagnostic with the first unused matching expectation.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.used && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.used = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment in the units' files, deduping
// files shared between a package and its test unit.
func collectWants(t *testing.T, loader *lint.Loader, units []*lint.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	seen := make(map[string]bool)
	for _, u := range units {
		for _, f := range u.Files {
			fname := loader.Fset.Position(f.Pos()).Filename
			if seen[fname] {
				continue
			}
			seen[fname] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//") {
						continue
					}
					body := strings.TrimSpace(c.Text[2:])
					offset := 0
					switch {
					case strings.HasPrefix(body, "want-1"):
						offset = -1
						body = body[len("want-1"):]
					case strings.HasPrefix(body, "want"):
						body = body[len("want"):]
					default:
						continue
					}
					line := loader.Fset.Position(c.Pos()).Line + offset
					for _, raw := range splitWantClauses(t, fname, line, body) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", fname, line, raw, err)
						}
						wants = append(wants, &expectation{file: fname, line: line, re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}

// splitWantClauses parses the quoted regexps following a want keyword.
func splitWantClauses(t *testing.T, fname string, line int, body string) []string {
	t.Helper()
	var out []string
	for {
		body = strings.TrimSpace(body)
		if body == "" {
			return out
		}
		switch body[0] {
		case '`':
			end := strings.IndexByte(body[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated backquoted want clause", fname, line)
			}
			out = append(out, body[1:1+end])
			body = body[end+2:]
		case '"':
			q, err := strconv.QuotedPrefix(body)
			if err != nil {
				t.Fatalf("%s:%d: malformed quoted want clause: %v", fname, line, err)
			}
			s, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s:%d: malformed quoted want clause: %v", fname, line, err)
			}
			out = append(out, s)
			body = body[len(q):]
		default:
			t.Fatalf("%s:%d: want clause must be a quoted or backquoted regexp, got %q", fname, line, body)
		}
	}
}
