package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMixAnalyzer, "atomicmix")
}
