package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ZeroCostAnalyzer machine-checks the zero-cost-when-off telemetry
// contract on hot paths: when tracing is disabled the instruments are
// nil, and //hdlint:hotpath code may only touch them behind the
// documented guard form `if tr != nil { ... }` — an unguarded instrument
// call is either a nil-dereference-in-waiting or a hidden per-operation
// cost. The check is flow-aware for the guard shapes the tree actually
// uses: `if tr != nil { ... }`, `if tr == nil { return }` early exits,
// and `if tr := x.T(); tr != nil { ... }` initializers.
//
// Helpers make it interprocedural: a function that calls telemetry
// methods on one of its parameters without guarding exports a fact
// naming the parameter indices, and a hotpath caller must then guard the
// argument it passes at those positions (or pass literal nil). The fact
// is transitive — a helper forwarding its parameter to another unguarded
// helper inherits the obligation — and crosses package boundaries.
// Package telemetry itself and _test.go files are exempt; receivers
// (as opposed to parameters) are not tracked.
var ZeroCostAnalyzer = &Analyzer{
	Name: "zerocost",
	Doc: "//hdlint:hotpath code may call telemetry instruments only behind the nil " +
		"guard `if tr != nil { ... }`; unguarded helper parameters propagate via facts",
	Run: runZeroCost,
}

// TelemetryUnguardedFact lists the parameter indices a function calls
// telemetry methods on without a nil guard.
type TelemetryUnguardedFact struct {
	Params []int
	Pos    token.Position
}

// AFact marks TelemetryUnguardedFact as a fact.
func (*TelemetryUnguardedFact) AFact() {}

func runZeroCost(pass *Pass) {
	if pass.Pkg.Name() == "telemetry" {
		return
	}
	decls := zeroCostDecls(pass)
	// Fact sub-pass, iterated to a fixpoint so same-package helper chains
	// resolve regardless of declaration order.
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if exportUnguarded(pass, fd) {
				changed = true
			}
		}
	}
	for _, fd := range decls {
		if hasHotPathMarker(fd.Doc) {
			z := &zcScan{pass: pass, report: true}
			z.stmts(fd.Body.List, nil)
		}
	}
}

func zeroCostDecls(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// exportUnguarded scans fd for unguarded telemetry use of its parameters
// and exports/extends its fact; it reports whether the fact grew.
func exportUnguarded(pass *Pass, fd *ast.FuncDecl) bool {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return false
	}
	z := &zcScan{pass: pass, paramIdx: paramIndices(pass, fd), unguarded: make(map[int]bool)}
	z.stmts(fd.Body.List, nil)
	if len(z.unguarded) == 0 {
		return false
	}
	var params []int
	for i := range z.unguarded {
		params = append(params, i)
	}
	sort.Ints(params)
	var prev TelemetryUnguardedFact
	if pass.ImportObjectFact(obj, &prev) && len(prev.Params) == len(params) {
		same := true
		for i := range params {
			if prev.Params[i] != params[i] {
				same = false
				break
			}
		}
		if same {
			return false
		}
	}
	pass.ExportObjectFact(obj, &TelemetryUnguardedFact{
		Params: params,
		Pos:    pass.Fset.Position(fd.Pos()),
	})
	return true
}

func paramIndices(pass *Pass, fd *ast.FuncDecl) map[types.Object]int {
	idx := make(map[types.Object]int)
	i := 0
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				idx[obj] = i
			}
			i++
		}
		if len(fld.Names) == 0 {
			i++
		}
	}
	return idx
}

// zcScan walks one function's statements tracking the set of expressions
// currently known non-nil (by their printed form), reporting violations
// (hotpath mode) or collecting unguarded parameter indices (fact mode).
type zcScan struct {
	pass      *Pass
	paramIdx  map[types.Object]int
	report    bool
	unguarded map[int]bool
}

func (z *zcScan) stmts(list []ast.Stmt, g map[string]bool) {
	for _, s := range list {
		g = z.stmt(s, g)
	}
}

// stmt processes one statement under guard set g and returns the guard
// set for the statements that follow it (extended by early-return nil
// checks).
func (z *zcScan) stmt(s ast.Stmt, g map[string]bool) map[string]bool {
	switch x := s.(type) {
	case *ast.IfStmt:
		if x.Init != nil {
			z.exprScan(x.Init, g)
		}
		z.exprScan(x.Cond, g)
		neq, eq := nilChecks(x.Cond)
		z.stmts(x.Body.List, guardUnion(g, neq))
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			z.stmts(e.List, guardUnion(g, eq))
		case *ast.IfStmt:
			z.stmt(e, guardUnion(g, eq))
		}
		if len(eq) > 0 && blockTerminates(z.pass.Info, x.Body) {
			return guardUnion(g, eq)
		}
		return g
	case *ast.BlockStmt:
		z.stmts(x.List, g)
	case *ast.LabeledStmt:
		return z.stmt(x.Stmt, g)
	case *ast.ForStmt:
		if x.Init != nil {
			z.exprScan(x.Init, g)
		}
		if x.Cond != nil {
			z.exprScan(x.Cond, g)
		}
		if x.Post != nil {
			z.exprScan(x.Post, g)
		}
		z.stmts(x.Body.List, g)
	case *ast.RangeStmt:
		z.exprScan(x.X, g)
		z.stmts(x.Body.List, g)
	case *ast.SwitchStmt:
		if x.Init != nil {
			z.exprScan(x.Init, g)
		}
		if x.Tag != nil {
			z.exprScan(x.Tag, g)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					z.exprScan(e, g)
				}
				z.stmts(cc.Body, g)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			z.exprScan(x.Init, g)
		}
		z.exprScan(x.Assign, g)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				z.stmts(cc.Body, g)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				if cc.Comm != nil {
					z.exprScan(cc.Comm, g)
				}
				z.stmts(cc.Body, g)
			}
		}
	case *ast.GoStmt:
		z.exprScan(x.Call, g)
	case *ast.DeferStmt:
		z.exprScan(x.Call, g)
	default:
		z.exprScan(s, g)
	}
	return g
}

// exprScan finds telemetry calls and fact-carrying callees under n;
// function literal bodies re-enter the statement walker with the current
// guard set (captures keep their known nil-ness).
func (z *zcScan) exprScan(n ast.Node, g map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			z.stmts(x.Body.List, g)
			return false
		case *ast.CallExpr:
			z.call(x, g)
		}
		return true
	})
}

func (z *zcScan) call(call *ast.CallExpr, g map[string]bool) {
	info := z.pass.Info
	// Direct instrument call: a method on a type from package telemetry.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if n := derefNamed(s.Recv()); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "telemetry" {
				recv := types.ExprString(sel.X)
				if !g[recv] {
					z.flag(call.Pos(), sel.X,
						"hotpath: unguarded telemetry call %s.%s — the zero-cost-when-off contract requires `if %s != nil { %s.%s(...) }`",
						recv, sel.Sel.Name, recv, recv, sel.Sel.Name)
				}
				return
			}
		}
	}
	// A call into a helper that uses some parameters unguarded.
	fn := staticCallee(info, call)
	if fn == nil {
		return
	}
	var fact TelemetryUnguardedFact
	if !z.pass.ImportObjectFact(fn, &fact) {
		return
	}
	for _, i := range fact.Params {
		if i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue // literal nil is the off state; the helper's calls never run hot
		}
		as := types.ExprString(arg)
		if g[as] {
			continue
		}
		z.flag(arg.Pos(), arg,
			"hotpath: %s is passed to %s, which calls telemetry on it unguarded (declared at %s) — wrap the call in `if %s != nil { ... }`",
			as, fn.Name(), fact.Pos, as)
	}
}

// flag reports in hotpath mode and records unguarded parameter use in
// fact mode.
func (z *zcScan) flag(pos token.Pos, recv ast.Expr, format string, args ...any) {
	if z.report {
		z.pass.Reportf(pos, format, args...)
		return
	}
	if id, ok := unparen(recv).(*ast.Ident); ok {
		if obj, ok := z.pass.Info.Uses[id].(*types.Var); ok {
			if i, ok := z.paramIdx[obj]; ok {
				z.unguarded[i] = true
			}
		}
	}
}

// guardUnion returns g extended with the printed forms in add, copying
// only when needed.
func guardUnion(g map[string]bool, add []string) map[string]bool {
	if len(add) == 0 {
		return g
	}
	out := make(map[string]bool, len(g)+len(add))
	for k := range g {
		out[k] = true
	}
	for _, a := range add {
		out[a] = true
	}
	return out
}

// nilChecks splits a condition into the expressions it proves non-nil
// (neq, from `x != nil`) and nil (eq, from `x == nil`), looking through
// parentheses, negation, and &&/|| conjunctions. Treating || arms as
// proofs over-accepts slightly (`a != nil || b != nil` guards neither
// arm alone); the guard forms in the tree are plain conjunctions, and
// the cost of the approximation is a missed finding, never a false one.
func nilChecks(e ast.Expr) (neq, eq []string) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return nilChecks(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			n, q := nilChecks(x.X)
			return q, n
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR:
			n1, q1 := nilChecks(x.X)
			n2, q2 := nilChecks(x.Y)
			return append(n1, n2...), append(q1, q2...)
		case token.NEQ, token.EQL:
			var other ast.Expr
			if isNilIdent(x.X) {
				other = x.Y
			} else if isNilIdent(x.Y) {
				other = x.X
			}
			if other != nil {
				if x.Op == token.NEQ {
					return []string{types.ExprString(other)}, nil
				}
				return nil, []string{types.ExprString(other)}
			}
		}
	}
	return nil, nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// blockTerminates reports whether a block's last statement leaves the
// enclosing statement list: return, branch, or a never-returning call.
func blockTerminates(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch x := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			return (&cfgBuilder{info: info}).neverReturns(call)
		}
	}
	return false
}
