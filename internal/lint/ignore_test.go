package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

// TestMalformedIgnores checks that broken //hdlint:ignore directives —
// missing analyzer, missing reason, unknown analyzer — surface as
// findings instead of silently disabling a check. The analyzer choice is
// arbitrary; the directive diagnostics are produced by the driver.
func TestMalformedIgnores(t *testing.T) {
	linttest.Run(t, lint.ResultImmutAnalyzer, "badignore")
}
