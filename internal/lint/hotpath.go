package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathAnalyzer statically rejects allocation-introducing constructs in
// functions annotated //hdlint:hotpath. The AllocsPerRun ceilings in the
// alloc tests catch a regression after the fact, as a number; this check
// names the offending line at build time. Flagged constructs:
//
//   - calls into package fmt (Sprintf and friends format through
//     reflection and allocate their result);
//   - non-constant string concatenation (a fresh backing array per +);
//   - heap-bound composite literals: &T{...}, slice literals and map
//     literals (plain value struct literals stay legal — they live in
//     registers or on the stack);
//   - capturing closures (a func literal that closes over variables
//     usually escapes to the heap along with its captures);
//   - interface boxing: passing, assigning, returning or converting a
//     concrete non-pointer-shaped value into an interface slot
//     (runtime.convT allocates; pointers, maps, chans and funcs ride in
//     the interface word for free and are not flagged).
//
// Intentional allocations — a constructor's one documented &Result{} —
// are suppressed in place with //hdlint:ignore hotpath <reason>, which
// doubles as documentation of the function's allocation budget.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //hdlint:hotpath must avoid allocation-introducing " +
		"constructs (fmt, string +, heap literals, capturing closures, interface boxing)",
	Run: runHotPath,
}

const hotpathMarker = "//hdlint:hotpath"

// hasHotPathMarker reports whether a function's doc comment carries the
// annotation.
func hasHotPathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathMarker || strings.HasPrefix(text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

func runHotPath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasHotPathMarker(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Info
	// Composite literals directly under a & are reported as one heap
	// allocation at the &, not twice.
	addrLit := make(map[*ast.CompositeLit]bool)

	// Result types of the annotated function, for return-statement boxing.
	var results []types.Type
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			t := info.Types[fld.Type].Type
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				results = append(results, t)
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(info, x) {
				pass.Reportf(x.OpPos, "string concatenation allocates on the hot path; use a pooled []byte or precomputed key")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				pass.Reportf(x.TokPos, "string += allocates on the hot path; use a pooled []byte")
			}
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					checkBoxing(pass, info.Types[x.Lhs[i]].Type, x.Rhs[i], "assignment")
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := x.X.(*ast.CompositeLit); ok {
					addrLit[lit] = true
					pass.Reportf(x.Pos(), "&composite literal escapes to the heap on the hot path; hoist it to a pooled or reused value")
				}
			}
		case *ast.CompositeLit:
			if addrLit[x] {
				return true
			}
			t := info.Types[x].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates its backing array on the hot path; hoist it to a package-level or scratch slice")
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates on the hot path; hoist it to a package-level map")
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, x); capt != "" {
				pass.Reportf(x.Pos(), "closure captures %s and may escape (allocating the closure and its captures); hoist it or pass state explicitly", capt)
			}
			// The literal's own body is still scanned by this Inspect.
		case *ast.ReturnStmt:
			if len(x.Results) == len(results) {
				for i, r := range x.Results {
					checkBoxing(pass, results[i], r, "return")
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil && len(x.Values) > 0 {
				t := info.Types[x.Type].Type
				for _, v := range x.Values {
					checkBoxing(pass, t, v, "assignment")
				}
			}
		}
		return true
	})
}

// checkCall flags fmt calls, interface-boxing arguments, and boxing
// conversions.
func checkCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Info
	// fmt.* on a hot path is always wrong: formatting reflects and
	// allocates regardless of the verb.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "fmt.%s allocates on the hot path; build the value without formatting or move it off the hot path", sel.Sel.Name)
				return
			}
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion T(x): boxing when T is an interface.
		if len(call.Args) == 1 {
			checkBoxing(pass, tv.Type, call.Args[0], "conversion")
		}
		return
	}
	if tv.IsBuiltin() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBoxing(pass, pt, arg, "argument")
	}
}

// checkBoxing reports a concrete, non-pointer-shaped value landing in an
// interface-typed slot.
func checkBoxing(pass *Pass, dst types.Type, src ast.Expr, what string) {
	if dst == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := pass.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return // untyped nil and constants (interned by the runtime)
	}
	st := tv.Type
	if _, ok := st.Underlying().(*types.Interface); ok {
		return
	}
	if pointerShaped(st) {
		return
	}
	pass.Reportf(src.Pos(), "%s boxes %s into %s on the hot path (runtime.convT allocates); pass a pointer or restructure", what, types.TypeString(st, types.RelativeTo(pass.Pkg)), types.TypeString(dst, types.RelativeTo(pass.Pkg)))
}

// pointerShaped reports types whose interface representation is the value
// itself (no allocation on conversion).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isNonConstString reports a + whose result is a non-constant string.
func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of one variable the func literal captures
// from its enclosing function, or "" when it captures nothing (a static
// closure needs no allocation).
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	capt := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capt != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level vars are not captures; anything declared outside
		// the literal but in a surrounding local scope is.
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			capt = v.Name()
		}
		return true
	})
	return capt
}
