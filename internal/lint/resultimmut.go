package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ResultImmutAnalyzer makes hiddendb's read-only-by-convention rule a
// build error. Results (and the tuples they carry) may alias storage
// shared with the hidden database, the history cache's immutable entries,
// and every coalesced follower of a single-flight call — so code may only
// write through a Result or Tuple it *owns*: one it built itself (a
// composite literal, new, or the zero value) or obtained from Clone.
//
// Concretely, for values of type hiddendb.Result / hiddendb.Tuple:
//
//   - field writes (res.Overflow = ..., res.Tuples[i] = ..., t.ID = ...)
//     are flagged unless the value is rooted at a locally owned variable;
//   - writes into a tuple's Vals/Nums element storage are flagged unless
//     the *tuple itself* is an owned local — even a freshly built Result
//     routinely shares its tuples' backing arrays (db.Execute copies
//     tuple structs out of the DB's immutable table), so owning the
//     Result does not confer ownership of element storage. Clone the
//     tuple.
//
// A local counts as owned when every value ever assigned to it in the
// function is an owning expression: a (possibly &-prefixed) composite
// literal, new(T), or a call to a method or function named Clone.
// Parameters, receivers, range variables and call results are never
// owned. Writes through aliased slices (vals := t.Vals; vals[0] = ...)
// are beyond a per-function syntactic check and stay covered by the
// -race suite.
var ResultImmutAnalyzer = &Analyzer{
	Name: "resultimmut",
	Doc: "flags writes through shared hiddendb.Result/Tuple storage; mutate only values " +
		"you constructed or Cloned",
	Run: runResultImmut,
}

func isResult(info *types.Info, e ast.Expr) bool { return exprIsPkgType(info, e, "Result") }
func isTuple(info *types.Info, e ast.Expr) bool  { return exprIsPkgType(info, e, "Tuple") }

func exprIsPkgType(info *types.Info, e ast.Expr, name string) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isPkgType(tv.Type, "hiddendb", name)
}

// ownKind classifies how a local came to own its storage.
type ownKind uint8

const (
	notOwned ownKind = iota
	// ownShallow: built from a composite literal, new or the zero value —
	// the value's immediate fields are owned, but slices assigned into it
	// may still alias shared backing arrays.
	ownShallow
	// ownDeep: obtained from Clone, whose contract is a deep copy — every
	// reachable element array is fresh.
	ownDeep
)

// ownedVars computes the function's owned locals and how deeply each one
// owns its storage.
func ownedVars(info *types.Info, body *ast.BlockStmt) map[types.Object]ownKind {
	owned := make(map[types.Object]ownKind)
	poisoned := make(map[types.Object]bool)
	mark := func(id *ast.Ident, kind ownKind) {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if kind != notOwned && !poisoned[obj] {
			// Repeated owning assignments keep the weakest kind.
			if prev, ok := owned[obj]; !ok || kind < prev {
				owned[obj] = kind
			}
		} else {
			poisoned[obj] = true
			delete(owned, obj)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						mark(id, owningExpr(x.Rhs[i]))
					}
				}
			} else {
				// Multi-value from a call: nothing on the left is owned.
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						mark(id, notOwned)
					}
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == 0 {
				// var t Tuple: the zero value is owned storage.
				for _, id := range x.Names {
					mark(id, ownShallow)
				}
			} else if len(x.Values) == len(x.Names) {
				for i, id := range x.Names {
					mark(id, owningExpr(x.Values[i]))
				}
			} else {
				for _, id := range x.Names {
					mark(id, notOwned)
				}
			}
		case *ast.RangeStmt:
			// Range copies still alias element backing storage.
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					mark(id, notOwned)
				}
			}
		}
		return true
	})
	return owned
}

// owningExpr classifies whether e yields freshly constructed storage.
func owningExpr(e ast.Expr) ownKind {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return owningExpr(x.X)
	case *ast.CompositeLit:
		return ownShallow
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if _, lit := x.X.(*ast.CompositeLit); lit {
				return ownShallow
			}
		}
	case *ast.CallExpr:
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			if fn.Name == "new" {
				return ownShallow
			}
		case *ast.SelectorExpr:
			if fn.Sel.Name == "Clone" {
				return ownDeep
			}
		}
	}
	return notOwned
}

// rootIdent strips selectors, indexes, derefs and parens down to the
// chain's base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func runResultImmut(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			owned := ownedVars(pass.Info, fd.Body)
			rootKind := func(e ast.Expr) (ownKind, types.Object) {
				id := rootIdent(e)
				if id == nil {
					return notOwned, nil
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				if obj == nil {
					return notOwned, nil
				}
				return owned[obj], obj
			}
			rootOwned := func(e ast.Expr) bool {
				k, _ := rootKind(e)
				return k != notOwned
			}
			checkLValue := func(lhs ast.Expr) {
				switch x := lhs.(type) {
				case *ast.SelectorExpr:
					// X.Field = ...
					if isResult(pass.Info, x.X) || isTuple(pass.Info, x.X) {
						if !rootOwned(x.X) {
							pass.Reportf(x.Sel.Pos(),
								"write to field %s of a shared hiddendb value; Results and Tuples are immutable by convention — Clone before mutating",
								x.Sel.Name)
						}
					}
				case *ast.IndexExpr:
					// X[i] = ...: writes into Vals/Nums element storage need
					// tuple-level ownership; writes into a Result's Tuples
					// need result-level ownership.
					sel, ok := x.X.(*ast.SelectorExpr)
					if !ok {
						return
					}
					switch sel.Sel.Name {
					case "Vals", "Nums":
						if !isTuple(pass.Info, sel.X) {
							return
						}
						kind, obj := rootKind(sel.X)
						ok := false
						switch {
						case kind == ownDeep:
							// Clone is a deep copy: element arrays are fresh
							// however deep the chain.
							ok = true
						case kind == ownShallow:
							// A shallowly built Result routinely shares its
							// tuples' backing arrays (db.Execute copies tuple
							// structs out of the immutable table); only a
							// Tuple built locally owns its own arrays.
							v, isVar := obj.(*types.Var)
							ok = isVar && isPkgType(v.Type(), "hiddendb", "Tuple")
						}
						if !ok {
							pass.Reportf(x.Pos(),
								"write into %s element storage of a tuple that may be shared; Clone the tuple first",
								sel.Sel.Name)
						}
					case "Tuples":
						if isResult(pass.Info, sel.X) && !rootOwned(sel.X) {
							pass.Reportf(x.Pos(),
								"write into Tuples storage of a shared hiddendb.Result; Clone the result first")
						}
					}
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						checkLValue(lhs)
					}
				case *ast.IncDecStmt:
					checkLValue(x.X)
				}
				return true
			})
		}
	}
}
