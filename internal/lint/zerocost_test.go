package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestZeroCost(t *testing.T) {
	linttest.Run(t, lint.ZeroCostAnalyzer, "telemetry", "zchelper", "zerocost")
}
