package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer enforces the context-threading discipline: cancellation
// must flow from the edges of the program inward, never be invented
// mid-stack.
//
// Two rules. First, context.Background() and context.TODO() are banned
// outside package main, init functions, and _test.go files — library code
// that conjures a root context detaches itself from caller cancellation
// and deadlines. A deliberate root (a connection that outlives the
// request, a job tree's anchor) takes an //hdlint:ignore ctxflow with the
// reason. Second, a function already holding a context.Context parameter
// may not launder the ban through a wrapper: functions returning a fresh
// root context are marked with a fact (the direct Background call inside
// them is where the reasoned ignore lives), and a ctx-holding caller that
// invokes one is flagged — it has a context and is discarding it, which
// no local reason can justify.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Background/TODO banned outside main/init/tests; functions holding " +
		"a ctx must not call root-context wrappers (tracked via facts) — thread the ctx",
	Run: runCtxFlow,
}

// CtxRootFact marks a function that returns a fresh root context
// (context.Background/TODO, directly or through another marked wrapper).
type CtxRootFact struct {
	Pos token.Position
}

// AFact marks CtxRootFact as a fact.
func (*CtxRootFact) AFact() {}

func runCtxFlow(pass *Pass) {
	// First sub-pass: export root-wrapper facts for the whole unit, so
	// same-package callers (declared in any order) see them in the second.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exportCtxRoot(pass, fd)
		}
	}
	for _, f := range pass.Files {
		testFile := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlow(pass, fd, testFile)
		}
	}
}

func isCtxType(t types.Type) bool { return isPkgType(t, "context", "Context") }

// ctxRootCall recognizes context.Background() / context.TODO(),
// returning the function's name.
func ctxRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Name() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// exportCtxRoot marks fd with CtxRootFact when it returns context.Context
// and its body creates a root context — directly or via an already-marked
// wrapper (cross-package wrappers are marked by the time this unit runs;
// same-package chains resolve one level per declaration pass, which
// covers the direct-wrapper shape).
func exportCtxRoot(pass *Pass, fd *ast.FuncDecl) {
	if fd.Type.Results == nil {
		return
	}
	returnsCtx := false
	for _, fld := range fd.Type.Results.List {
		if t := pass.Info.Types[fld.Type].Type; t != nil && isCtxType(t) {
			returnsCtx = true
		}
	}
	if !returnsCtx {
		return
	}
	var rootPos token.Pos = token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rootPos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := ctxRootCall(pass.Info, call); ok {
			rootPos = call.Pos()
			return false
		}
		if fn := staticCallee(pass.Info, call); fn != nil {
			var fact CtxRootFact
			if pass.ImportObjectFact(fn, &fact) {
				rootPos = call.Pos()
				return false
			}
		}
		return true
	})
	if rootPos.IsValid() {
		obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if obj != nil {
			pass.ExportObjectFact(obj, &CtxRootFact{Pos: pass.Fset.Position(rootPos)})
		}
	}
}

// ctxParamName returns the name of fd's context.Context parameter, if
// any.
func ctxParamName(pass *Pass, fd *ast.FuncDecl) (string, bool) {
	for _, fld := range fd.Type.Params.List {
		t := pass.Info.Types[fld.Type].Type
		if t == nil || !isCtxType(t) {
			continue
		}
		if len(fld.Names) > 0 {
			return fld.Names[0].Name, true
		}
		return "_", true
	}
	return "", false
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl, testFile bool) {
	if testFile {
		// Tests stand at the edge of the program: fresh roots are their
		// job, and test helpers are not part of the cancellation tree.
		return
	}
	rootAllowed := pass.Pkg.Name() == "main" || fd.Name.Name == "init"
	ctxName, holdsCtx := ctxParamName(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := ctxRootCall(pass.Info, call); ok {
			switch {
			case holdsCtx:
				pass.Reportf(call.Pos(),
					"context.%s() discards the in-scope context %q; derive from it (or document the detachment: //hdlint:ignore ctxflow <reason>)",
					name, ctxName)
			case !rootAllowed:
				pass.Reportf(call.Pos(),
					"context.%s() outside main, init, or tests: accept a caller's context, or document the fresh root with //hdlint:ignore ctxflow <reason>",
					name)
			}
			return true
		}
		if !holdsCtx {
			return true
		}
		if fn := staticCallee(pass.Info, call); fn != nil {
			var fact CtxRootFact
			if pass.ImportObjectFact(fn, &fact) {
				pass.Reportf(call.Pos(),
					"call to %s discards the in-scope context %q: it returns a fresh root context (created at %s); derive from %q instead",
					fn.Name(), ctxName, fact.Pos, ctxName)
			}
		}
		return true
	})
}
