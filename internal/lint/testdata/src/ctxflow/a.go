// Package ctxflow is the corpus for the ctxflow analyzer.
package ctxflow

import (
	"context"

	"ctxroot"
)

func fresh() {
	_ = context.Background() // want `outside main, init, or tests`
}

func todo() {
	_ = context.TODO() // want `outside main, init, or tests`
}

func init() {
	_ = context.Background() // init may anchor process-lifetime state
}

func use(ctx context.Context) { _ = ctx }

// threaded does what the analyzer wants: the context flows through.
func threaded(ctx context.Context) {
	use(ctx)
}

func derived(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	use(sub)
}

// launder holds a context and swaps in a wrapper's fresh root — flagged
// through ctxroot.NewRoot's exported fact.
func launder(ctx context.Context) {
	use(ctxroot.NewRoot()) // want `discards the in-scope context "ctx"`
}

func dropsDirect(ctx context.Context) {
	_ = context.Background() // want `discards the in-scope context "ctx"`
}

// freshOK: without a context in scope, the sanctioned wrapper is the
// right way to make one.
func freshOK() {
	_ = ctxroot.NewRoot()
}

// localWrap re-wraps the dep root; the fact propagates to it.
func localWrap() context.Context {
	return ctxroot.NewRoot()
}

func launderTwice(ctx context.Context) {
	use(localWrap()) // want `discards the in-scope context`
}

func suppressed(ctx context.Context) {
	//hdlint:ignore ctxflow the audit trail must survive request cancellation
	_ = context.Background()
}
