// Package badignore exercises the malformed-directive diagnostics: a
// typo in a suppression must itself surface as a finding, never silently
// disable a check. The want-1 form is used because the flagged line is a
// comment and cannot carry a second comment.
package badignore

//hdlint:ignore
// want-1 `malformed directive`

//hdlint:ignore resultimmut
// want-1 `needs a reason`

//hdlint:ignore nosuchanalyzer because reasons
// want-1 `unknown analyzer nosuchanalyzer`
