// Package errtransient is the corpus for the errtransient analyzer.
package errtransient

import "errors"

// ErrBudget is a conventional package-level sentinel.
var ErrBudget = errors.New("budget exhausted")

// ErrCount is error-named but not error-typed: not a sentinel.
var ErrCount = 3

func compare(err error) bool {
	if err == ErrBudget { // want `sentinel error ErrBudget compared with ==`
		return true
	}
	if ErrBudget != err { // want `sentinel error ErrBudget compared with !=`
		return false
	}
	return errors.Is(err, ErrBudget)
}

func switched(err error) string {
	switch err {
	case ErrBudget: // want `sentinel error ErrBudget matched in a switch case`
		return "budget"
	case nil:
		return ""
	}
	return "other"
}

func notSentinel(err error) bool {
	errLocal := errors.New("local")
	if err == errLocal { // function-scoped: not a sentinel
		return true
	}
	return ErrCount == 3 // error-named int: not a sentinel
}

func suppressed(err error) bool {
	//hdlint:ignore errtransient corpus exercises the suppression path
	return err == ErrBudget
}
