// Package callgraph is the corpus for call-graph construction tests:
// static calls, interface dispatch, method values, dynamic calls, and
// go/defer sites.
package callgraph

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{ name string }

func (c *Cat) Speak() string { return "meow " + c.name }

func helper() {}

func direct() { helper() }

func viaInterface(s Speaker) string { return s.Speak() }

// methodValue makes Dog.Speak escape as a value — the only address-taken
// func() string in the package.
func methodValue() func() string {
	var d Dog
	return d.Speak
}

func dynamic(f func() string) { f() }

func spawn() {
	go helper()
	defer helper()
}

// literals: the func literal's body is attributed to this declaration;
// calling fn is a dynamic site.
func literals() {
	fn := func() { helper() }
	fn()
}
