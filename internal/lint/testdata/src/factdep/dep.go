// Package factdep is the exporting side of the fact round-trip test.
package factdep

// Alpha and Beta are plain functions; T.Method exercises the pointer
// receiver key normalization ((*T).M and (T).M must collapse).
func Alpha() {}

func Beta() {}

type T struct{ n int }

func (t *T) Method() { t.n++ }
