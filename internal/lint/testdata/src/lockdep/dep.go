// Package lockdep supplies locks for the cross-package lockorder cases:
// its acquisition summaries travel to the importing corpus as facts.
package lockdep

import "sync"

// Mu is the package-level lock the main corpus orders against.
var Mu sync.Mutex

// Store carries a field lock acquired before Mu.
type Store struct {
	mu sync.Mutex
}

// Touch acquires the package lock; a caller holding its own lock creates
// a cross-package edge through this function's fact.
func Touch() {
	Mu.Lock()
	defer Mu.Unlock()
}

// Fill orders Store.mu before Mu — an edge that stays acyclic.
func (s *Store) Fill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	Mu.Lock()
	Mu.Unlock()
}
