// Package main exercises the ctxflow main-package exemption.
package main

import "context"

func main() {
	run(context.Background()) // main is the root of the context tree
}

func run(ctx context.Context) {
	_ = ctx
}

// helper shows the exemption is per-rule, not per-package: even in main,
// a function already holding a context may not discard it.
func helper(ctx context.Context) {
	_ = context.TODO() // want `discards the in-scope context`
}
