// Package atomicmix is the corpus for the atomicmix analyzer.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	clean  int64
}

func (s *stats) record() {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.misses, 1)
}

// A plain read of an atomically written field is the race.
func (s *stats) mixedRead() int64 {
	return s.hits // want `field stats\.hits is accessed atomically`
}

// A plain write is the same race from the other side.
func (s *stats) mixedWrite() {
	s.misses = 0 // want `field stats\.misses is accessed atomically`
}

// Consistently atomic access is the contract.
func (s *stats) atomicRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

// A field never touched atomically may be accessed plainly.
func (s *stats) plainOnly() int64 {
	s.clean++
	return s.clean
}

// Suppression covers the documented single-goroutine window.
func (s *stats) suppressedRead() int64 {
	//hdlint:ignore atomicmix constructor-only read before the struct is published
	return s.hits
}
