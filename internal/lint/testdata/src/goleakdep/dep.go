// Package goleakdep supplies callees for the cross-package goleak cases;
// the never-terminates property travels to importers as a fact.
package goleakdep

// Forever spins with no exit path. Declaring it is legal — only a go
// statement starting it is a leak.
func Forever() {
	for {
	}
}

// Bounded terminates.
func Bounded() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}
