// Package zchelper holds telemetry helpers for the cross-package
// zerocost fact case: Note's unguarded parameter obligation travels to
// importing hot paths.
package zchelper

import "telemetry"

// Note records through tr without guarding; callers own the nil check.
func Note(tr *telemetry.Trace) {
	tr.Mark()
}

// SafeNote guards internally; callers owe nothing.
func SafeNote(tr *telemetry.Trace) {
	if tr != nil {
		tr.Mark()
	}
}
