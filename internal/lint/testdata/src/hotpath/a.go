// Package hotpath is the corpus for the hotpath analyzer.
package hotpath

import "fmt"

// S is a plain value struct; boxing it into an interface allocates.
type S struct{ a, b int }

func sink(v interface{})    {}
func sinkPtr(p interface{}) {}

// Every allocation-introducing construct in one annotated function.
//
//hdlint:hotpath
func flagged(name string, xs []int, v S) string {
	s := fmt.Sprintf("%d", len(xs)) // want `fmt\.Sprintf allocates`
	s = s + name                    // want `string concatenation allocates`
	s += name                       // want `string \+= allocates`
	p := &S{a: 1}                   // want `&composite literal escapes`
	ys := []int{1, 2}               // want `slice literal allocates`
	m := map[int]int{}              // want `map literal allocates`
	n := len(ys) + m[0] + p.a
	f := func() { n++ } // want `closure captures n`
	f()
	var boxed interface{} = v // want `assignment boxes S`
	_ = boxed
	sink(v) // want `argument boxes S`
	return s
}

// The legal repertoire: value struct literals, make, appends into passed
// slices, pointer-shaped values crossing interface boundaries, constants.
//
//hdlint:hotpath
func clean(xs []int, p *S) int {
	v := S{a: 1}
	total := 0
	for _, x := range xs {
		total += x
	}
	sinkPtr(p)
	var c interface{} = 3
	_ = c
	return total + v.a
}

// Unannotated functions may allocate freely.
func unannotated() *S {
	return &S{a: 2}
}

// A documented allocation budget is suppressed in place.
//
//hdlint:hotpath
func suppressed() *S {
	//hdlint:ignore hotpath the constructor's one documented allocation
	return &S{a: 3}
}
