// Package zerocost is the corpus for the zerocost analyzer.
package zerocost

import (
	"telemetry"

	"zchelper"
)

//hdlint:hotpath
func hotDirect(tr *telemetry.Trace) {
	tr.Mark() // want `unguarded telemetry call tr.Mark`
}

//hdlint:hotpath
func hotGuarded(tr *telemetry.Trace) {
	if tr != nil {
		tr.Mark()
		tr.MarkN(2)
	}
}

//hdlint:hotpath
func hotEarlyReturn(tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	tr.Mark()
}

//hdlint:hotpath
func hotElse(tr *telemetry.Trace, n int) {
	if tr == nil {
		_ = n
	} else {
		tr.MarkN(n)
	}
}

//hdlint:hotpath
func hotConjunction(tr *telemetry.Trace, on bool) {
	if on && tr != nil {
		tr.Mark()
	}
}

//hdlint:hotpath
func hotLeaksScope(tr *telemetry.Trace) {
	if tr != nil {
		tr.Mark()
	}
	tr.Mark() // want `unguarded telemetry call tr.Mark`
}

//hdlint:hotpath
func hotHelper(tr *telemetry.Trace) {
	zchelper.Note(tr) // want `tr is passed to Note`
}

//hdlint:hotpath
func hotHelperGuarded(tr *telemetry.Trace) {
	if tr != nil {
		zchelper.Note(tr)
	}
}

//hdlint:hotpath
func hotHelperNil() {
	zchelper.Note(nil) // literal nil is the off state: never runs hot
}

//hdlint:hotpath
func hotSafeHelper(tr *telemetry.Trace) {
	zchelper.SafeNote(tr) // the helper guards internally
}

// forward inherits Note's obligation transitively: it hands its own
// unguarded parameter down.
func forward(tr *telemetry.Trace) {
	zchelper.Note(tr)
}

//hdlint:hotpath
func hotTransitive(tr *telemetry.Trace) {
	forward(tr) // want `tr is passed to forward`
}

// coldUnguarded is legal: the zero-cost contract binds hot paths only.
func coldUnguarded(tr *telemetry.Trace) {
	tr.MarkN(3)
}

//hdlint:hotpath
func hotSuppressed(tr *telemetry.Trace) {
	//hdlint:ignore zerocost startup-only branch, measured free of per-op cost
	tr.Mark()
}

type holder struct{ tr *telemetry.Trace }

//hdlint:hotpath
func hotInit(x *holder) {
	if tr := x.tr; tr != nil {
		tr.Mark()
	}
}
