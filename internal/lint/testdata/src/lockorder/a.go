// Package lockorder is the corpus for the lockorder analyzer.
package lockorder

import (
	"sync"

	"lockdep"
)

type A struct{ mu sync.Mutex }
type B struct{ mu sync.RWMutex }

var a A
var b B

// abOrder takes A.mu before B.mu; with baOrder below that is the classic
// AB-BA deadlock, reported once at each edge.
func abOrder() {
	a.mu.Lock()
	b.mu.Lock() // want `lock order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func baOrder() {
	b.mu.RLock()
	a.mu.Lock() // want `lock order cycle`
	a.mu.Unlock()
	b.mu.RUnlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var c C
var d D

// cdOne and cdTwo agree on C before D: a consistent order is silent.
func cdOne() {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cdTwo() {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// sequential releases D before taking C: no held-before edge, no cycle.
func sequential() {
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }

var e E

func reenter() {
	e.mu.Lock()
	e.mu.Lock() // want `acquired while already held`
	e.mu.Unlock()
	e.mu.Unlock()
}

type F struct{ mu sync.Mutex }
type G struct{ mu sync.Mutex }

var fv F
var gv G

func lockG() {
	gv.mu.Lock()
	gv.mu.Unlock()
}

// callHolding reaches G.mu through lockG while holding F.mu; reverseHold
// closes the cycle directly.
func callHolding() {
	fv.mu.Lock()
	lockG() // want `lock order cycle`
	fv.mu.Unlock()
}

func reverseHold() {
	gv.mu.Lock()
	fv.mu.Lock() // want `lock order cycle`
	fv.mu.Unlock()
	gv.mu.Unlock()
}

type H struct{ mu sync.Mutex }

var h H

// depFirst and depSecond disagree about H.mu versus lockdep.Mu; the
// closing edge lives behind lockdep.Touch's exported fact.
func depFirst() {
	h.mu.Lock()
	lockdep.Touch() // want `lock order cycle`
	h.mu.Unlock()
}

func depSecond() {
	lockdep.Mu.Lock()
	h.mu.Lock() // want `lock order cycle`
	h.mu.Unlock()
	lockdep.Mu.Unlock()
}

type S struct{ mu sync.Mutex }

var s1, s2 S

// shardPair reacquires the same lock identity on purpose: two shards,
// always locked in index order — the documented suppression.
func shardPair() {
	s1.mu.Lock()
	//hdlint:ignore lockorder shards are locked in ascending index order by construction
	s2.mu.Lock()
	s2.mu.Unlock()
	s1.mu.Unlock()
}

// local mutexes have no stable identity and stay out of the graph.
func local() {
	var mu sync.Mutex
	mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	mu.Unlock()
}
