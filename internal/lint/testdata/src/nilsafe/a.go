// Package nilsafe is the corpus for the nilsafe analyzer.
package nilsafe

// Counter is a marked instrument: every exported pointer-receiver method
// must open with a nil-receiver guard.
//
//hdlint:nilsafe
type Counter struct {
	n   int64
	aux *Counter
}

func (c *Counter) Inc() { // want `\(\*Counter\)\.Inc must begin with a nil-receiver guard`
	c.n++
}

// The early-return form.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n += n
}

// The wrapped-body form.
func (c *Counter) Value() int64 {
	if c != nil {
		return c.n
	}
	return 0
}

// An || chain guards when the nil check is its first term.
func (c *Counter) First() int64 {
	if c == nil || c.aux == nil {
		return 0
	}
	return c.aux.n
}

// An && chain guards with != nil: the body only runs non-nil.
func (c *Counter) Wrapped(n int64) {
	if c != nil && n > 0 {
		c.n += n
	}
}

// == nil inside an && chain does NOT guard: a nil receiver skips the if
// and falls through to the dereference below.
func (c *Counter) Mixed(n int64) { // want `\(\*Counter\)\.Mixed must begin with a nil-receiver guard`
	if c == nil && n > 0 {
		return
	}
	c.n += n
}

// The guard must test the receiver, not some other variable.
func (c *Counter) Other(d *Counter) { // want `\(\*Counter\)\.Other must begin with a nil-receiver guard`
	if d == nil {
		return
	}
	c.n++
}

// A leading statement before the guard defeats the contract.
func (c *Counter) Late() int64 { // want `\(\*Counter\)\.Late must begin with a nil-receiver guard`
	v := int64(1)
	if c == nil {
		return v
	}
	return c.n
}

// Unexported methods are not part of the exported contract.
func (c *Counter) inc() { c.n++ }

// Value receivers cannot be nil.
func (c Counter) Snapshot() int64 { return c.n }

// An unnamed receiver cannot be dereferenced: trivially nil-safe.
func (*Counter) Doc() string { return "counter" }

// Unmarked types are not checked.
type Plain struct{ n int64 }

func (p *Plain) Inc() { p.n++ }

// Suppression applies here as everywhere.
//
//hdlint:ignore nilsafe corpus exercises the suppression path
func (c *Counter) Reset() { c.n = 0 }
