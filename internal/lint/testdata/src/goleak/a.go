// Package goleak is the corpus for the goleak analyzer.
package goleak

import (
	"context"
	"sync"

	"goleakdep"
)

// spinForever is only a problem when started as a goroutine.
func spinForever() {
	for {
	}
}

func spawnLit() {
	go func() { // want `goroutine never terminates`
		for {
		}
	}()
}

func spawnEmptySelect() {
	go func() { // want `empty select`
		select {}
	}()
}

func spawnNamed() {
	go spinForever() // want `goroutine never terminates`
}

func spawnDep() {
	go goleakdep.Forever() // want `goroutine never terminates`
}

// wrapper never terminates because every path runs into Forever; the
// property propagates one call level (and across the package boundary).
func wrapper() {
	goleakdep.Forever()
}

func spawnWrapper() {
	go wrapper() // want `never terminates`
}

// litCallsBlocking: the literal itself loops nowhere, but its body runs
// into a never-terminating callee.
func litCallsBlocking() {
	go func() { // want `goroutine never terminates`
		goleakdep.Forever()
	}()
}

func okCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func okRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func okBounded(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		goleakdep.Bounded()
	}()
}

func okBreak(ch chan int) {
	go func() {
		for {
			if _, open := <-ch; !open {
				break
			}
		}
	}()
}

func immortal() {
	//hdlint:ignore goleak metrics pump deliberately lives for the process lifetime
	go func() {
		for {
		}
	}()
}
