// Package hiddendb is a miniature stand-in for the module's real
// hiddendb package. The resultimmut analyzer matches by package *name*
// plus type name, so the corpus only needs the shapes — Result and Tuple
// with their conventional fields and Clone methods — not the behavior.
package hiddendb

// Tuple mirrors the real Tuple's shape.
type Tuple struct {
	ID   int
	Vals []int
	Nums []float64
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := t
	c.Vals = append([]int(nil), t.Vals...)
	c.Nums = append([]float64(nil), t.Nums...)
	return c
}

// Result mirrors the real Result's shape.
type Result struct {
	Overflow bool
	Count    int
	Tuples   []Tuple
}

// Clone returns a deep copy of the result.
func (r *Result) Clone() *Result {
	c := &Result{Overflow: r.Overflow, Count: r.Count, Tuples: make([]Tuple, len(r.Tuples))}
	for i, t := range r.Tuples {
		c.Tuples[i] = t.Clone()
	}
	return c
}
