// Package resultimmut is the corpus for the resultimmut analyzer.
package resultimmut

import "hiddendb"

// Values arriving from outside are shared; writes through them are the
// exact bug class the analyzer exists for.
func flagged(r *hiddendb.Result, t hiddendb.Tuple) {
	r.Overflow = true              // want `write to field Overflow`
	r.Count++                      // want `write to field Count`
	r.Tuples[0] = hiddendb.Tuple{} // want `write into Tuples storage`
	r.Tuples[0].ID = 7             // want `write to field ID`
	t.Vals[0] = 1                  // want `write into Vals element storage`
	t.Nums[0] = 2.5                // want `write into Nums element storage`
}

// Locally constructed values are owned and freely mutable.
func constructed() hiddendb.Result {
	r := &hiddendb.Result{}
	r.Overflow = true
	r.Tuples = make([]hiddendb.Tuple, 1)
	r.Tuples[0] = hiddendb.Tuple{}
	var t hiddendb.Tuple
	t.ID = 3
	t.Vals = []int{1}
	t.Vals[0] = 2
	q := new(hiddendb.Result)
	q.Count = 4
	return *r
}

// Clone grants deep ownership: even element storage is fresh.
func cloned(r *hiddendb.Result) {
	c := r.Clone()
	c.Tuples[0].Vals[0] = 1
	tu := r.Tuples[0].Clone()
	tu.Vals[0] = 2
	tu.Nums[0] = 3.5
}

// A shallowly built Result still shares its tuples' backing arrays: the
// header is owned, the element storage is not.
func shallowSharing(r *hiddendb.Result) {
	c := &hiddendb.Result{Tuples: r.Tuples}
	c.Count = 1
	c.Tuples[0].Vals[0] = 3 // want `write into Vals element storage`
}

// Reassignment from a shared value poisons earlier ownership.
func poisoned(r *hiddendb.Result) {
	c := &hiddendb.Result{}
	c = r
	c.Overflow = true // want `write to field Overflow`
}

// Range variables copy the struct but alias its element storage.
func ranged(r *hiddendb.Result) {
	for _, t := range r.Tuples {
		t.Vals[0] = 4 // want `write into Vals element storage`
	}
}

// Suppression: the write is acknowledged in place, with a reason.
func suppressed(r *hiddendb.Result) {
	//hdlint:ignore resultimmut corpus exercises the suppression path
	r.Count = 9
}
