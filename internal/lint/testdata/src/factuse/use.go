// Package factuse is the importing side of the fact round-trip test:
// the objects it resolves for factdep's functions come from a different
// type-check of that package than the one the facts were exported under.
package factuse

import "factdep"

func Caller() {
	factdep.Alpha()
	var t factdep.T
	t.Method()
}
