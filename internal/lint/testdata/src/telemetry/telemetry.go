// Package telemetry is a miniature stand-in for the real instrument set;
// the zerocost analyzer matches instrument types by this package name,
// and exempts the package's own internals.
package telemetry

// Trace is a nil-when-off instrument handle: a nil *Trace means tracing
// is disabled and no instrument method may be reached.
type Trace struct{ n int }

// Mark records one event.
func (t *Trace) Mark() { t.n++ }

// MarkN records n events.
func (t *Trace) MarkN(n int) { t.n += n }
