// Package ctxroot supplies a sanctioned root-context wrapper; the
// root-ness travels to importers as a fact so a ctx-holding caller
// cannot launder the context.Background ban through it.
package ctxroot

import "context"

// NewRoot anchors a fresh context tree for detached work.
func NewRoot() context.Context {
	//hdlint:ignore ctxflow job trees outlive their submitting request by design
	return context.Background()
}
