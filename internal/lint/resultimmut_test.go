package lint_test

import (
	"testing"

	"hdsampler/internal/lint"
	"hdsampler/internal/lint/linttest"
)

func TestResultImmut(t *testing.T) {
	linttest.Run(t, lint.ResultImmutAnalyzer, "resultimmut")
}
