package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// A Root maps an import-path prefix onto a directory tree of Go source.
// The loader resolves an import "Prefix/sub/pkg" to Dir/sub/pkg. An empty
// Prefix maps every single-segment-rooted path under Dir, GOPATH-style —
// that is how analyzer test corpora under testdata/src import each other.
type Root struct {
	Prefix string
	Dir    string
}

// A Package is one type-checked analysis unit: a package's compiled
// files, or those plus its in-package _test.go files, or its external
// test package.
type Package struct {
	// Path is the unit's import path ("_test"-suffixed for external test
	// packages).
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// FactsOnly marks a unit loaded only because a requested package
	// depends on it: it is analyzed so interprocedural facts (lock
	// acquisition sets, goroutine termination, telemetry touches) exist
	// for its functions, but its own findings are not reported.
	FactsOnly bool
}

// A Loader parses and type-checks packages without cmd/go: module (and
// corpus) packages load from source via Roots, standard-library imports
// resolve through go/importer's source importer. Everything is memoized,
// so a whole-tree run typechecks each stdlib package at most once.
//
// A Loader is single-goroutine; create one per run.
type Loader struct {
	Fset  *token.FileSet
	roots []Root

	std    types.ImporterFrom
	parsed map[string]*ast.File
	// imports memoizes the import view (compiled files only, no tests) of
	// root-resolved packages; inflight guards against import cycles.
	imports  map[string]*types.Package
	inflight map[string]bool
}

// NewLoader builds a loader over the given roots. Cgo is disabled
// globally: the source importer must see the pure-Go variant of packages
// like net, and this module compiles without cgo everywhere.
func NewLoader(roots ...Root) *Loader {
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		roots:    roots,
		std:      importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		parsed:   make(map[string]*ast.File),
		imports:  make(map[string]*types.Package),
		inflight: make(map[string]bool),
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: root-mapped paths load from
// their mapped directory, everything else is delegated to the standard
// library's source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.resolve(path); ok {
		return l.importDir(path, dir)
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// resolve maps an import path onto a directory via the loader's roots.
func (l *Loader) resolve(path string) (string, bool) {
	for _, r := range l.roots {
		switch {
		case r.Prefix == "":
			dir := filepath.Join(r.Dir, filepath.FromSlash(path))
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				return dir, true
			}
		case path == r.Prefix:
			return r.Dir, true
		case strings.HasPrefix(path, r.Prefix+"/"):
			return filepath.Join(r.Dir, filepath.FromSlash(strings.TrimPrefix(path, r.Prefix+"/"))), true
		}
	}
	return "", false
}

// importDir typechecks a root-resolved package's compiled (non-test)
// files for use as an import, memoized.
func (l *Loader) importDir(path, dir string) (*types.Package, error) {
	if pkg, ok := l.imports[path]; ok {
		return pkg, nil
	}
	if l.inflight[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.inflight[path] = true
	defer delete(l.inflight, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, err := l.check(path, files, nil)
	if err != nil {
		return nil, err
	}
	l.imports[path] = pkg
	return pkg, nil
}

// check runs the typechecker over files, collecting every error.
func (l *Loader) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("typecheck %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	return pkg, nil
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		fn := filepath.Join(dir, name)
		if f, ok := l.parsed[fn]; ok {
			files = append(files, f)
			continue
		}
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		l.parsed[fn] = f
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// LoadDir typechecks the package in dir as analysis units: the package
// with its in-package test files, plus (when present) its external test
// package. A directory with no buildable Go files yields no units and no
// error.
func (l *Loader) LoadDir(path, dir string) ([]*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	var units []*Package
	names := append(append([]string(nil), bp.GoFiles...), bp.TestGoFiles...)
	if len(names) > 0 {
		files, err := l.parseFiles(dir, names)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		pkg, err := l.check(path, files, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{Path: path, Files: files, Pkg: pkg, Info: info})
	}
	if len(bp.XTestGoFiles) > 0 {
		files, err := l.parseFiles(dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		pkg, err := l.check(path+"_test", files, info)
		if err != nil {
			return nil, err
		}
		units = append(units, &Package{Path: path + "_test", Files: files, Pkg: pkg, Info: info})
	}
	return units, nil
}

// LoadPatterns expands cmd/go-style package patterns ("./...",
// "./internal/lint", "./cmd/...") against the module rooted at the
// loader's first root and loads every match as analysis units.
// Directories named testdata, hidden directories, and nested modules
// (a go.mod below the root) are skipped, as cmd/go would.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(l.roots) == 0 || l.roots[0].Prefix == "" {
		return nil, fmt.Errorf("LoadPatterns needs a module root with an import-path prefix")
	}
	root := l.roots[0]
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		rec := false
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			rec = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		pat = strings.TrimPrefix(pat, "./")
		start := filepath.Join(root.Dir, filepath.FromSlash(pat))
		if !rec {
			dirs[start] = true
			continue
		}
		err := filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if p != root.Dir {
				if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
					return filepath.SkipDir // nested module
				}
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var units []*Package
	for _, dir := range sorted {
		rel, err := filepath.Rel(root.Dir, dir)
		if err != nil {
			return nil, err
		}
		path := root.Prefix
		if rel != "." {
			path = root.Prefix + "/" + filepath.ToSlash(rel)
		}
		us, err := l.LoadDir(path, dir)
		if err != nil {
			return nil, err
		}
		units = append(units, us...)
	}
	return units, nil
}

// LoadPatternsWithDeps loads the pattern units plus, as facts-only
// units, every root-resolvable package they transitively import that no
// pattern matched. Interprocedural analyzers need their callees' facts
// even when the caller's package alone was requested; diagnostics in the
// extra units are suppressed by Run. Each package becomes exactly one
// unit no matter how many patterns or import edges reach it — the
// double-report class of bug is structurally excluded here.
func (l *Loader) LoadPatternsWithDeps(patterns ...string) ([]*Package, error) {
	units, err := l.LoadPatterns(patterns...)
	if err != nil {
		return nil, err
	}
	have := make(map[string]bool, len(units))
	var queue []string
	for _, u := range units {
		have[u.Path] = true
	}
	for _, u := range units {
		for _, imp := range u.Pkg.Imports() {
			queue = append(queue, imp.Path())
		}
	}
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if have[path] {
			continue
		}
		have[path] = true
		dir, ok := l.resolve(path)
		if !ok {
			continue // standard library: no facts needed, none computable
		}
		u, err := l.loadFactUnit(path, dir)
		if err != nil {
			return nil, err
		}
		if u == nil {
			continue
		}
		units = append(units, u)
		for _, imp := range u.Pkg.Imports() {
			queue = append(queue, imp.Path())
		}
	}
	return units, nil
}

// loadFactUnit typechecks a dependency's compiled files (no tests) as a
// facts-only analysis unit.
func (l *Loader) loadFactUnit(path, dir string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, err
	}
	files, err := l.parseFiles(dir, bp.GoFiles)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	pkg, err := l.check(path, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info, FactsOnly: true}, nil
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// ModuleRoot walks up from dir to the enclosing go.mod and returns the
// module's path and root directory.
func ModuleRoot(dir string) (modPath, rootDir string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			m := moduleRe.FindSubmatch(data)
			if m == nil {
				return "", "", fmt.Errorf("%s/go.mod has no module directive", dir)
			}
			return string(m[1]), dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
