package lint_test

import (
	"sort"
	"testing"

	"hdsampler/internal/lint"
)

func siteTo(node *lint.CallNode, callee string) []lint.CallSite {
	var out []lint.CallSite
	for _, s := range node.Calls {
		if s.Callee == callee {
			out = append(out, s)
		}
	}
	return out
}

func TestCallGraph(t *testing.T) {
	units, _ := loadCorpus(t, "callgraph")
	g := lint.BuildCallGraph(units)

	node := func(key string) *lint.CallNode {
		t.Helper()
		n := g.Nodes[key]
		if n == nil {
			var have []string
			for k := range g.Nodes {
				have = append(have, k)
			}
			sort.Strings(have)
			t.Fatalf("no node %s; have %v", key, have)
		}
		return n
	}

	// Static call.
	direct := node("callgraph.direct")
	if len(siteTo(direct, "callgraph.helper")) != 1 {
		t.Errorf("direct: want one static call to helper, got %+v", direct.Calls)
	}

	// Interface dispatch resolves to both implementations, value and
	// pointer receiver alike.
	vi := node("callgraph.viaInterface")
	var ifaceSite *lint.CallSite
	for i := range vi.Calls {
		if vi.Calls[i].Kind == lint.CallInterface {
			ifaceSite = &vi.Calls[i]
		}
	}
	if ifaceSite == nil {
		t.Fatalf("viaInterface: no interface call site in %+v", vi.Calls)
	}
	callees := g.Callees(*ifaceSite)
	want := []string{"(callgraph.Cat).Speak", "(callgraph.Dog).Speak"}
	if len(callees) != 2 || callees[0] != want[0] || callees[1] != want[1] {
		t.Errorf("interface callees = %v, want %v", callees, want)
	}

	// go and defer sites are marked.
	spawn := node("callgraph.spawn")
	sites := siteTo(spawn, "callgraph.helper")
	if len(sites) != 2 {
		t.Fatalf("spawn: want 2 sites to helper, got %+v", spawn.Calls)
	}
	goSeen, deferSeen := false, false
	for _, s := range sites {
		if s.Go {
			goSeen = true
		}
		if s.Defer {
			deferSeen = true
		}
	}
	if !goSeen || !deferSeen {
		t.Errorf("spawn: go=%v defer=%v, want both true", goSeen, deferSeen)
	}

	// The method value in methodValue makes Dog.Speak address-taken, so
	// the dynamic call in dynamic() resolves to exactly it (Cat.Speak
	// never escapes as a value).
	dyn := node("callgraph.dynamic")
	var dynSite *lint.CallSite
	for i := range dyn.Calls {
		if dyn.Calls[i].Kind == lint.CallDynamic {
			dynSite = &dyn.Calls[i]
		}
	}
	if dynSite == nil {
		t.Fatalf("dynamic: no dynamic call site in %+v", dyn.Calls)
	}
	dc := g.Callees(*dynSite)
	if len(dc) != 1 || dc[0] != "(callgraph.Dog).Speak" {
		t.Errorf("dynamic callees = %v, want [(callgraph.Dog).Speak]", dc)
	}

	// Func-literal bodies are flattened into the enclosing declaration.
	lits := node("callgraph.literals")
	if len(siteTo(lits, "callgraph.helper")) != 1 {
		t.Errorf("literals: want the literal's helper call attributed to literals, got %+v", lits.Calls)
	}
}
