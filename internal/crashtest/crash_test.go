package crashtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/exact"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/jobsvc"
	"hdsampler/internal/metrics"
	"hdsampler/internal/store"
	"hdsampler/internal/webform"
)

// binPath is the hdsamplerd binary built once in TestMain.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "crashtest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashtest:", err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "hdsamplerd")
	build := exec.Command("go", "build", "-o", binPath, "hdsampler/cmd/hdsamplerd")
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: build hdsamplerd: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// envInt reads an integer knob with a default.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// daemon is one hdsamplerd subprocess generation.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://addr
}

// startDaemon launches hdsamplerd over the given state directories and
// blocks until /healthz answers. Daemon output is appended to logW so
// every generation's logs land in one artifact file.
func startDaemon(t *testing.T, addr string, logW io.Writer, dirs [3]string) *daemon {
	t.Helper()
	cmd := exec.Command(binPath,
		"-addr", addr,
		"-journal-dir", dirs[0],
		"-data", dirs[1],
		"-history-dir", dirs[2],
		"-checkpoint-every", "20ms",
		"-journal-compact-every", "16",
		"-max-jobs", "2",
		"-host-rate", "250",
		"-host-burst", "20",
		"-log-level", "info",
	)
	cmd.Stdout = logW
	cmd.Stderr = logW
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hdsamplerd: %v", err)
	}
	d := &daemon{cmd: cmd, base: "http://" + addr}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(d.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return d
			}
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			d.kill()
			t.Fatalf("hdsamplerd did not become healthy on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon — no drain, no fsync, the crash under test.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_, _ = d.cmd.Process.Wait()
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func submit(t *testing.T, base string, spec jobsvc.Spec) jobsvc.View {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, out)
	}
	var v jobsvc.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func job(t *testing.T, base, id string) jobsvc.View {
	t.Helper()
	var v jobsvc.View
	getJSON(t, base+"/jobs/"+id, &v)
	return v
}

func samples(t *testing.T, base, id string) *store.SampleSet {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/samples")
	if err != nil {
		t.Fatalf("samples %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("samples %s: %d: %s", id, resp.StatusCode, out)
	}
	set, err := store.Read(resp.Body)
	if err != nil {
		t.Fatalf("samples %s: %v", id, err)
	}
	return set
}

func validState(s jobsvc.State) bool {
	switch s {
	case jobsvc.StateQueued, jobsvc.StateRunning, jobsvc.StateCompleted,
		jobsvc.StateFailed, jobsvc.StateCanceled:
		return true
	}
	return false
}

// TestKill9Recovery is the harness: a real hdsamplerd subprocess against
// a live webform target, SIGKILLed at randomized points mid-job over and
// over, restarted over the same journal. See the package comment for the
// contract each cycle asserts.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() && os.Getenv("CRASH_CYCLES") == "" {
		t.Skip("crash harness skipped in -short mode without CRASH_CYCLES")
	}
	cycles := envInt("CRASH_CYCLES", 20)
	seed := int64(envInt("CRASH_SEED", 1))
	rng := rand.New(rand.NewSource(seed))

	// Artifact directory: journal + data + history + daemon logs. With
	// CRASH_DIR set (CI), it outlives the run for upload on failure.
	root := os.Getenv("CRASH_DIR")
	if root == "" {
		root = t.TempDir()
	} else if err := os.MkdirAll(root, 0o755); err != nil {
		t.Fatal(err)
	}
	dirs := [3]string{filepath.Join(root, "journal"), filepath.Join(root, "data"), filepath.Join(root, "history")}
	logF, err := os.Create(filepath.Join(root, "daemon.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer logF.Close()

	// The hidden-DB target lives in the test process, so it survives
	// every daemon crash the way a real site would.
	const dbSize, k, longN = 400, 50, 400
	ds := datagen.Vehicles(dbSize, 21)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		t.Fatal(err)
	}
	target := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	defer target.Close()
	dist, err := exact.WalkDist(db, nil, k)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	d := startDaemon(t, addr, logF, dirs)
	defer func() { d.kill() }()

	// A quick job that completes before the first crash: its terminal
	// record and on-disk sample set must survive every cycle.
	quick := submit(t, d.base, jobsvc.Spec{URL: target.URL, N: 5, Workers: 2, Seed: 7, C: 1, NoShuffle: true})
	for deadline := time.Now().Add(30 * time.Second); ; {
		if v := job(t, d.base, quick.ID); v.State.Terminal() {
			if v.State != jobsvc.StateCompleted || v.Accepted != 5 {
				t.Fatalf("quick job did not complete: %+v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quick job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The long jobs are the crash targets: one is always in flight,
	// resuming from its journal checkpoint after each kill; whenever one
	// completes it is verified and replaced, so every cycle crashes the
	// daemon mid-job. NoShuffle pins the canonical attribute order so
	// WalkDist is the exact reference for the bias gate (per-walk order
	// shuffling samples from the order-averaged distribution instead).
	longSpec := func(seed int64) jobsvc.Spec {
		return jobsvc.Spec{URL: target.URL, N: longN, Workers: 3, Seed: seed, C: 1, NoShuffle: true}
	}
	nextSeed := int64(5)
	live := submit(t, d.base, longSpec(nextSeed)).ID
	var completed []string
	var floorAccepted, floorQueries, floorEpoch int64

	// verifyDone checks a finished long job: exact sample count (replay
	// neither lost nor double-folded samples), a bill covering the last
	// journaled floor, and in-domain tuples, which it feeds the bias gate.
	counts := make([]int, dbSize)
	totalSamples, resumed := 0, 0
	verifyDone := func(id string, v jobsvc.View) {
		t.Helper()
		if v.State != jobsvc.StateCompleted {
			t.Fatalf("long job %s ended %s: %+v", id, v.State, v)
		}
		if v.Accepted != longN {
			t.Fatalf("%s accepted %d, want exactly %d (lost or duplicated samples)", id, v.Accepted, longN)
		}
		if v.Epoch >= 2 {
			resumed++
		}
		set := samples(t, d.base, id)
		tuples, _, err := set.DecodeSamples()
		if err != nil {
			t.Fatal(err)
		}
		if len(tuples) != longN {
			t.Fatalf("%s sample set carries %d samples, want %d", id, len(tuples), longN)
		}
		if set.Queries < floorQueries {
			t.Fatalf("%s sample-set bill %d below journaled floor %d", id, set.Queries, floorQueries)
		}
		for _, tu := range tuples {
			if tu.ID < 0 || tu.ID >= dbSize {
				t.Fatalf("%s sample outside DB domain: %d", id, tu.ID)
			}
			counts[tu.ID]++
		}
		totalSamples += len(tuples)
	}

	for cycle := 1; cycle <= cycles; cycle++ {
		// Let the live job make some progress (and the journal compact),
		// then pull the plug at a randomized point.
		time.Sleep(time.Duration(60+rng.Intn(240)) * time.Millisecond)
		d.kill()
		fmt.Fprintf(logF, "--- crashtest: cycle %d restart ---\n", cycle)
		d = startDaemon(t, addr, logF, dirs)

		// No admitted job lost, all states valid.
		var views []jobsvc.View
		getJSON(t, d.base+"/jobs", &views)
		if want := 2 + len(completed); len(views) != want {
			t.Fatalf("cycle %d: %d jobs after restart, want %d: %+v", cycle, len(views), want, views)
		}
		for _, v := range views {
			if !validState(v.State) {
				t.Fatalf("cycle %d: job %s in invalid state %q", cycle, v.ID, v.State)
			}
		}
		if q := job(t, d.base, quick.ID); q.State != jobsvc.StateCompleted || q.Accepted != 5 {
			t.Fatalf("cycle %d: quick job regressed: %+v", cycle, q)
		}

		// Replayed accounting is monotone: the floors recovered from the
		// journal never move backwards across restarts.
		v := job(t, d.base, live)
		if v.Accepted < floorAccepted {
			t.Fatalf("cycle %d: %s accepted floor regressed %d -> %d", cycle, live, floorAccepted, v.Accepted)
		}
		if v.Queries < floorQueries {
			t.Fatalf("cycle %d: %s query bill regressed %d -> %d", cycle, live, floorQueries, v.Queries)
		}
		if v.Epoch < floorEpoch {
			t.Fatalf("cycle %d: %s epoch regressed %d -> %d", cycle, live, floorEpoch, v.Epoch)
		}
		floorAccepted, floorQueries, floorEpoch = v.Accepted, v.Queries, v.Epoch
		if v.State.Terminal() {
			verifyDone(live, v)
			completed = append(completed, live)
			nextSeed += 101
			live = submit(t, d.base, longSpec(nextSeed)).ID
			floorAccepted, floorQueries, floorEpoch = 0, 0, 0
		}
	}

	// Convergence: the last resumed job must finish too.
	var final jobsvc.View
	for deadline := time.Now().Add(2 * time.Minute); ; {
		final = job(t, d.base, live)
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job %s never converged after the crash cycles: %+v", live, final)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.Queries < floorQueries {
		t.Fatalf("final query bill %d below journaled floor %d", final.Queries, floorQueries)
	}
	verifyDone(live, final)
	completed = append(completed, live)
	t.Logf("%d long jobs completed across %d crash cycles, %d resumed after a kill", len(completed), cycles, resumed)
	if cycles >= 5 && resumed == 0 {
		t.Fatal("no job was ever killed mid-run: the harness exercised nothing — retune the kill timing")
	}

	// Bias gate: samples accumulated across many crash epochs and resumed
	// jobs must still match the exact walk-selection distribution (c=1:
	// accept-all).
	want := dist.Selection(1)
	expected := make([]float64, len(want))
	df := -1
	for i, w := range want {
		expected[i] = w * float64(totalSamples)
		if w > 0 {
			df++
		}
	}
	const alpha = 1e-3
	chi := metrics.ChiSquareStat(counts, expected)
	if df > 0 {
		if p := metrics.ChiSquarePValue(chi, df); p < alpha {
			t.Fatalf("resumed samples biased: chi2=%.1f df=%d p=%.3g < %g", chi, df, p, alpha)
		}
	}

	// Quick job's terminal sample set still loads from its checkpoint
	// pointer after all those replays.
	if qs := samples(t, d.base, quick.ID); func() int { n, _, _ := qs.DecodeSamples(); return len(n) }() != 5 {
		t.Fatal("quick job's persisted sample set corrupted by the crash cycles")
	}

	// Durability health: the journal survived every kill without
	// degrading, and the counters moved.
	var h jobsvc.Health
	getJSON(t, d.base+"/healthz", &h)
	if h.Journal != "ok" || h.JournalStats == nil {
		t.Fatalf("journal health after harness: %+v", h)
	}
	if h.JournalStats.Appends == 0 || h.JournalStats.ReplayRecords == 0 {
		t.Fatalf("journal counters flat after harness: %+v", h.JournalStats)
	}
}
