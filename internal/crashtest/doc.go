// Package crashtest is the kill-9 recovery harness for the hdsamplerd
// daemon: the end-to-end proof behind internal/jobq's durability claims.
//
// The harness (crash_test.go) builds the real hdsamplerd binary, points
// it at an in-process webform target, submits jobs, and then repeatedly
// SIGKILLs the daemon at randomized points mid-job — including while the
// journal is compacting (-journal-compact-every is set aggressively low)
// — and restarts it over the same journal, data, and history
// directories. After every restart it asserts the crash-safety contract:
//
//   - No admitted job is lost: every job acknowledged before the kill is
//     listed after the restart, terminal jobs with their final stats and
//     loadable sample sets.
//   - Interrupted jobs requeue and resume under a new lease epoch; the
//     epoch observed after each restart never decreases.
//   - Replayed progress is monotone: the accepted-sample and
//     interface-query floors recovered from the journal never regress
//     across restarts (un-checkpointed tail progress may be redone, but
//     acknowledged accounting never moves backwards).
//   - Resumed jobs converge: the long job eventually completes with
//     exactly the requested number of samples — the checkpointed base and
//     the resumed draws compose without loss or double-folding — and its
//     final query bill covers every journaled floor.
//   - Recovery does not bias the sample: the completed job's samples,
//     accumulated across many crash epochs, pass a chi-square test
//     against the exact walk-selection distribution.
//
// Knobs (environment variables, for CI short/nightly-long splits):
//
//	CRASH_CYCLES  kill/restart cycles (default 20)
//	CRASH_SEED    seed for the randomized kill timing (default 1)
//	CRASH_DIR     artifact directory kept after the run: daemon logs,
//	              journal, data and history dirs (default: test temp dir)
package crashtest
