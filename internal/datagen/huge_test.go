package datagen

import "testing"

func TestHugeStreamDeterministic(t *testing.T) {
	h := NewHuge(50000, 9)
	counts := [3][]int{make([]int, 100), make([]int, 2), make([]int, 4)}
	rows := 0
	first := make([][3]int, 0, 50000)
	for i, vals := range h.Tuples() {
		if i != rows {
			t.Fatalf("stream index %d at row %d", i, rows)
		}
		rows++
		for a, v := range vals {
			counts[a][v]++
		}
		first = append(first, [3]int{vals[0], vals[1], vals[2]})
	}
	if rows != h.N {
		t.Fatalf("stream yielded %d rows, want %d", rows, h.N)
	}
	// Distribution sanity: rare values near 1% each, common near 95/5.
	for v, c := range counts[0] {
		if c < 300 || c > 700 {
			t.Fatalf("rare value %d count %d outside [300,700]", v, c)
		}
	}
	if frac := float64(counts[1][0]) / float64(rows); frac < 0.93 || frac > 0.97 {
		t.Fatalf("common majority fraction %.3f outside [0.93,0.97]", frac)
	}
	// A second pass and random access must reproduce the same rows.
	var vals [3]int
	for i, row := range h.Tuples() {
		if [3]int{row[0], row[1], row[2]} != first[i] {
			t.Fatalf("second pass diverged at row %d", i)
		}
		h.At(i, vals[:])
		if vals != first[i] {
			t.Fatalf("At(%d) = %v, stream had %v", i, vals, first[i])
		}
	}
	// Materialization agrees with the stream.
	ds := NewHuge(5000, 9).Dataset()
	if len(ds.Tuples) != 5000 {
		t.Fatalf("Dataset has %d tuples", len(ds.Tuples))
	}
	for i := 0; i < 5000; i++ {
		got := ds.Tuples[i].Vals
		if [3]int{got[0], got[1], got[2]} != first[i] {
			t.Fatalf("Dataset row %d = %v, stream had %v", i, got, first[i])
		}
	}
	// Different seeds give different streams.
	other := NewHuge(5000, 10)
	same := 0
	for i, row := range other.Tuples() {
		if [3]int{row[0], row[1], row[2]} == first[i] {
			same++
		}
	}
	if same == 5000 {
		t.Fatal("seed is ignored: streams identical")
	}
	// Early break must not run the full stream.
	steps := 0
	for range NewHuge(1<<30, 1).Tuples() {
		steps++
		if steps == 10 {
			break
		}
	}
	if steps != 10 {
		t.Fatalf("early break took %d steps", steps)
	}
}
