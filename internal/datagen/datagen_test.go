package datagen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdsampler/internal/hiddendb"
)

func TestIIDBooleanShape(t *testing.T) {
	ds := IIDBoolean(5, 100, 0.5, 1)
	if ds.Schema.NumAttrs() != 5 {
		t.Fatalf("attrs = %d", ds.Schema.NumAttrs())
	}
	if len(ds.Tuples) != 100 {
		t.Fatalf("tuples = %d", len(ds.Tuples))
	}
	for _, a := range ds.Schema.Attrs {
		if a.Kind != hiddendb.KindBool {
			t.Fatalf("attr %q kind = %v", a.Name, a.Kind)
		}
	}
}

func TestIIDBooleanProbability(t *testing.T) {
	ds := IIDBoolean(4, 20000, 0.3, 2)
	ones := 0
	for _, tu := range ds.Tuples {
		for _, v := range tu.Vals {
			ones += v
		}
	}
	frac := float64(ones) / float64(4*20000)
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("fraction of ones = %g, want ~0.3", frac)
	}
}

func TestIIDBooleanDeterministic(t *testing.T) {
	a := IIDBoolean(6, 50, 0.5, 42)
	b := IIDBoolean(6, 50, 0.5, 42)
	for i := range a.Tuples {
		for j := range a.Tuples[i].Vals {
			if a.Tuples[i].Vals[j] != b.Tuples[i].Vals[j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := IIDBoolean(6, 50, 0.5, 43)
	same := true
	for i := range a.Tuples {
		for j := range a.Tuples[i].Vals {
			if a.Tuples[i].Vals[j] != c.Tuples[i].Vals[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestCorrelatedBooleanRuns(t *testing.T) {
	// With corr=0.95 adjacent attributes agree far more often than 50%.
	ds := CorrelatedBoolean(10, 5000, 0.95, 3)
	agree, total := 0, 0
	for _, tu := range ds.Tuples {
		for j := 1; j < len(tu.Vals); j++ {
			if tu.Vals[j] == tu.Vals[j-1] {
				agree++
			}
			total++
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.9 {
		t.Fatalf("adjacent agreement = %g, want > 0.9", frac)
	}
	// corr=0 behaves like a fair coin.
	ds0 := CorrelatedBoolean(10, 5000, 0, 3)
	agree, total = 0, 0
	for _, tu := range ds0.Tuples {
		for j := 1; j < len(tu.Vals); j++ {
			if tu.Vals[j] == tu.Vals[j-1] {
				agree++
			}
			total++
		}
	}
	frac = float64(agree) / float64(total)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("corr=0 agreement = %g, want ~0.5", frac)
	}
}

func TestCorrelatedBooleanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("corr out of range did not panic")
		}
	}()
	CorrelatedBoolean(3, 10, 1.5, 1)
}

func TestZipfCategoricalSkew(t *testing.T) {
	ds := ZipfCategorical([]int{8, 8}, 20000, 1.2, 4)
	counts := make([]int, 8)
	for _, tu := range ds.Tuples {
		counts[tu.Vals[0]]++
	}
	for v := 1; v < 8; v++ {
		if counts[v] > counts[0] {
			t.Fatalf("zipf skew violated: counts[%d]=%d > counts[0]=%d", v, counts[v], counts[0])
		}
	}
	if counts[0] < counts[7]*3 {
		t.Fatalf("head %d not >> tail %d for s=1.2", counts[0], counts[7])
	}
	// s=0 should be near-uniform.
	u := ZipfCategorical([]int{5}, 20000, 0, 4)
	counts = make([]int, 5)
	for _, tu := range u.Tuples {
		counts[tu.Vals[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-4000) > 400 {
			t.Fatalf("s=0 counts[%d]=%d far from uniform 4000", v, c)
		}
	}
}

func TestWeightedDistribution(t *testing.T) {
	w := newWeighted([]float64{1, 2, 7})
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 3)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[w.draw(rng)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.015 {
			t.Errorf("weight %d frequency = %g, want ~%g", i, got, want)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"zero":     {0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s weights did not panic", name)
				}
			}()
			newWeighted(w)
		}()
	}
}

func TestVehiclesSchemaShape(t *testing.T) {
	s := VehiclesSchema()
	if s.NumAttrs() != vehNumAttrs {
		t.Fatalf("attrs = %d, want %d", s.NumAttrs(), vehNumAttrs)
	}
	if s.Attrs[VehAttrMake].Name != "make" || s.Attrs[VehAttrDoors].Name != "doors" {
		t.Fatal("attribute order wrong")
	}
	if got := s.DomainSize(VehAttrModel); got != 48 {
		t.Fatalf("model domain = %d, want 48", got)
	}
	if s.SpaceSize() < 1e8 {
		t.Fatalf("space size %g too small to make brute force interesting", s.SpaceSize())
	}
	if s.Attrs[VehAttrPrice].Kind != hiddendb.KindNumeric {
		t.Fatal("price must be numeric")
	}
}

func TestVehiclesValidAgainstSchema(t *testing.T) {
	ds := Vehicles(2000, 7)
	if _, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 10}); err != nil {
		t.Fatalf("generated tuples rejected: %v", err)
	}
}

func TestVehiclesCorrelations(t *testing.T) {
	ds := Vehicles(20000, 8)
	s := ds.Schema
	priceAttr := s.Attrs[VehAttrPrice]
	mileAttr := s.Attrs[VehAttrMileage]
	for i, tu := range ds.Tuples {
		mk := tu.Vals[VehAttrMake]
		lo, hi := MakeModels(mk)
		if tu.Vals[VehAttrModel] < lo || tu.Vals[VehAttrModel] >= hi {
			t.Fatalf("tuple %d: model %d outside make %d range [%d,%d)", i, tu.Vals[VehAttrModel], mk, lo, hi)
		}
		price, ok := tu.Num(VehAttrPrice)
		if !ok {
			t.Fatalf("tuple %d missing price payload", i)
		}
		if got := priceAttr.BucketOf(price); got != tu.Vals[VehAttrPrice] {
			t.Fatalf("tuple %d price bucket mismatch: raw %g -> %d, stored %d", i, price, got, tu.Vals[VehAttrPrice])
		}
		miles, ok := tu.Num(VehAttrMileage)
		if !ok {
			t.Fatalf("tuple %d missing mileage payload", i)
		}
		if got := mileAttr.BucketOf(miles); got != tu.Vals[VehAttrMileage] {
			t.Fatalf("tuple %d mileage bucket mismatch", i)
		}
		if tu.Vals[VehAttrCondition] == 0 && miles > 500 {
			t.Fatalf("tuple %d: new car with %g miles", i, miles)
		}
	}
}

func TestVehiclesAggregateShape(t *testing.T) {
	ds := Vehicles(30000, 9)
	// Japanese share should roughly match the configured weights
	// (14+12+9+5+4)/100 = 44%.
	japanese := map[int]bool{}
	for _, idx := range JapaneseMakeIndexes() {
		japanese[idx] = true
	}
	nj := 0
	for _, tu := range ds.Tuples {
		if japanese[tu.Vals[VehAttrMake]] {
			nj++
		}
	}
	share := float64(nj) / float64(len(ds.Tuples))
	if share < 0.38 || share > 0.50 {
		t.Fatalf("japanese share = %g, want ~0.44", share)
	}
	// Older cars should be cheaper on average than the newest cars.
	var oldSum, newSum float64
	var oldN, newN int
	for _, tu := range ds.Tuples {
		p, _ := tu.Num(VehAttrPrice)
		if tu.Vals[VehAttrYear] <= 2 {
			oldSum += p
			oldN++
		}
		if tu.Vals[VehAttrYear] >= 10 {
			newSum += p
			newN++
		}
	}
	if oldN == 0 || newN == 0 {
		t.Fatal("year distribution degenerate")
	}
	if oldSum/float64(oldN) >= newSum/float64(newN) {
		t.Fatalf("old avg price %g >= new avg price %g", oldSum/float64(oldN), newSum/float64(newN))
	}
}

func TestJapaneseMakeIndexes(t *testing.T) {
	idx := JapaneseMakeIndexes()
	if len(idx) != 5 {
		t.Fatalf("japanese makes = %d, want 5", len(idx))
	}
	s := VehiclesSchema()
	names := map[string]bool{}
	for _, i := range idx {
		names[s.Attrs[VehAttrMake].Values[i]] = true
	}
	for _, want := range []string{"toyota", "honda", "nissan", "mazda", "subaru"} {
		if !names[want] {
			t.Errorf("missing japanese make %q", want)
		}
	}
}

func TestMakeModelsBounds(t *testing.T) {
	total := 0
	for mk := 0; mk < NumMakes(); mk++ {
		lo, hi := MakeModels(mk)
		if lo != total {
			t.Fatalf("make %d offset = %d, want %d", mk, lo, total)
		}
		if hi <= lo {
			t.Fatalf("make %d empty model range", mk)
		}
		total = hi
	}
	if total != VehiclesSchema().DomainSize(VehAttrModel) {
		t.Fatalf("model ranges cover %d, domain is %d", total, VehiclesSchema().DomainSize(VehAttrModel))
	}
	if lo, hi := MakeModels(999); lo != -1 || hi != -1 {
		t.Fatal("out-of-range make should return -1,-1")
	}
}

// Property: every generator produces tuples valid against its schema.
func TestGeneratorsProduceValidTuplesProperty(t *testing.T) {
	f := func(seed int64) bool {
		for _, ds := range []*Dataset{
			IIDBoolean(4, 30, 0.5, seed),
			CorrelatedBoolean(5, 30, 0.8, seed),
			ZipfCategorical([]int{3, 4}, 30, 1, seed),
			Vehicles(30, seed),
		} {
			for _, tu := range ds.Tuples {
				if len(tu.Vals) != ds.Schema.NumAttrs() {
					return false
				}
				for a, v := range tu.Vals {
					if v < 0 || v >= ds.Schema.DomainSize(a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestVehiclesDeterministic(t *testing.T) {
	a := Vehicles(200, 77)
	b := Vehicles(200, 77)
	for i := range a.Tuples {
		for j := range a.Tuples[i].Vals {
			if a.Tuples[i].Vals[j] != b.Tuples[i].Vals[j] {
				t.Fatal("same seed produced different vehicles")
			}
		}
	}
}
