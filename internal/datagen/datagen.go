package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"hdsampler/internal/hiddendb"
)

// Dataset bundles a generated schema with its tuples, ready for
// hiddendb.New or for serving through the web form.
type Dataset struct {
	Schema *hiddendb.Schema
	Tuples []hiddendb.Tuple
	// Ranker, when non-nil, is the interface ordering this dataset is
	// meant to be served under (e.g. RankedListings ranks by price);
	// nil keeps hiddendb's default opaque hash order.
	Ranker hiddendb.Ranker
}

// IIDBoolean generates n tuples over m boolean attributes where each
// attribute is independently true with probability p.
func IIDBoolean(m, n int, p float64, seed int64) *Dataset {
	if m < 1 || n < 1 {
		panic(fmt.Sprintf("datagen: invalid boolean shape m=%d n=%d", m, n))
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]hiddendb.Attribute, m)
	for i := range attrs {
		attrs[i] = hiddendb.BoolAttr(fmt.Sprintf("a%d", i+1))
	}
	schema := hiddendb.MustSchema(fmt.Sprintf("bool-iid-m%d", m), attrs...)
	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		vals := make([]int, m)
		for j := range vals {
			if rng.Float64() < p {
				vals[j] = 1
			}
		}
		tuples[i] = hiddendb.Tuple{Vals: vals}
	}
	return &Dataset{Schema: schema, Tuples: tuples}
}

// CorrelatedBoolean generates n tuples over m boolean attributes with a
// Markov dependency along the attribute order: attribute j repeats
// attribute j-1's value with probability corr and resamples uniformly
// otherwise. corr = 0 reduces to IIDBoolean with p = 0.5; corr close to 1
// produces long runs, the clustered shape that stresses random walks.
func CorrelatedBoolean(m, n int, corr float64, seed int64) *Dataset {
	if corr < 0 || corr > 1 {
		panic(fmt.Sprintf("datagen: corr %g outside [0,1]", corr))
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]hiddendb.Attribute, m)
	for i := range attrs {
		attrs[i] = hiddendb.BoolAttr(fmt.Sprintf("a%d", i+1))
	}
	schema := hiddendb.MustSchema(fmt.Sprintf("bool-corr-m%d", m), attrs...)
	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		vals := make([]int, m)
		vals[0] = rng.Intn(2)
		for j := 1; j < m; j++ {
			if rng.Float64() < corr {
				vals[j] = vals[j-1]
			} else {
				vals[j] = rng.Intn(2)
			}
		}
		tuples[i] = hiddendb.Tuple{Vals: vals}
	}
	return &Dataset{Schema: schema, Tuples: tuples}
}

// ZipfCategorical generates n tuples over categorical attributes with the
// given domain sizes; within each attribute, value v is drawn with
// probability proportional to 1/(v+1)^s. s = 0 is uniform; larger s is more
// skewed, concentrating mass on early values — the marginal-histogram shape
// the demo's Figure 4 displays.
func ZipfCategorical(domSizes []int, n int, s float64, seed int64) *Dataset {
	if len(domSizes) == 0 || n < 1 {
		panic("datagen: empty shape for ZipfCategorical")
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]hiddendb.Attribute, len(domSizes))
	samplers := make([]*weighted, len(domSizes))
	for i, d := range domSizes {
		if d < 2 {
			panic(fmt.Sprintf("datagen: domain size %d < 2", d))
		}
		values := make([]string, d)
		w := make([]float64, d)
		for v := 0; v < d; v++ {
			values[v] = fmt.Sprintf("v%d", v)
			w[v] = 1 / math.Pow(float64(v+1), s)
		}
		attrs[i] = hiddendb.CatAttr(fmt.Sprintf("a%d", i+1), values...)
		samplers[i] = newWeighted(w)
	}
	schema := hiddendb.MustSchema(fmt.Sprintf("zipf-s%.2g", s), attrs...)
	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		vals := make([]int, len(domSizes))
		for j := range vals {
			vals[j] = samplers[j].draw(rng)
		}
		tuples[i] = hiddendb.Tuple{Vals: vals}
	}
	return &Dataset{Schema: schema, Tuples: tuples}
}

// weighted draws indices with probability proportional to fixed weights
// via inverse-CDF sampling.
type weighted struct {
	cum []float64
}

func newWeighted(w []float64) *weighted {
	cum := make([]float64, len(w))
	total := 0.0
	for i, x := range w {
		if x < 0 {
			panic("datagen: negative weight")
		}
		total += x
		cum[i] = total
	}
	if total <= 0 {
		panic("datagen: zero total weight")
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[len(cum)-1] = 1 // guard against FP drift
	return &weighted{cum: cum}
}

func (w *weighted) draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
