package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"hdsampler/internal/hiddendb"
)

// RankedListings generates a storefront-shaped database whose interface
// order is meaningful rather than opaque: listings with a category, a
// condition flag and a numeric price, ranked cheapest-first (the common
// storefront default). Because the top-k window is now correlated with
// price, overflowing queries systematically hide the expensive tail —
// the ranked-result regime the scenario matrix stresses samplers under.
// Set the returned Dataset's Ranker on hiddendb.New to serve it that way.
func RankedListings(n int, seed int64) *Dataset {
	if n < 1 {
		panic(fmt.Sprintf("datagen: invalid RankedListings size n=%d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	categories := []string{"books", "music", "games", "tools", "garden", "kitchen"}
	priceCuts := []float64{0, 10, 25, 50, 100, 250}
	schema := hiddendb.MustSchema("ranked-listings",
		hiddendb.CatAttr("category", categories...),
		hiddendb.BoolAttr("used"),
		hiddendb.NumAttr("price", priceCuts...),
	)
	priceAttr := schema.AttrIndex("price")
	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		cat := rng.Intn(len(categories))
		used := rng.Intn(2)
		// Log-uniform price in [1, 250): every bucket is populated but the
		// cheap ones are denser, like a real listing site.
		price := math.Exp(rng.Float64() * math.Log(250))
		if price < 1 {
			price = 1
		}
		bucket := schema.Attrs[priceAttr].BucketOf(price)
		if bucket < 0 {
			bucket = len(priceCuts) - 2
		}
		nums := make([]float64, 3)
		nums[0], nums[1] = math.NaN(), math.NaN()
		nums[priceAttr] = price
		tuples[i] = hiddendb.Tuple{Vals: []int{cat, used, bucket}, Nums: nums}
	}
	return &Dataset{
		Schema: schema,
		Tuples: tuples,
		Ranker: hiddendb.ByAttrRanker{Attr: priceAttr, Ascending: true},
	}
}

// WideCategorical generates n tuples over m categorical attributes of
// domain size dom each, with lumpy per-attribute value frequencies (drawn
// once from an exponential prior) and a deliberate fraction of empty
// values. Wide, holey domains are the dead-end-heavy regime: most single
// drill-down steps land on rare or empty branches, stressing walk restart
// machinery and history-cache churn rather than depth.
func WideCategorical(m, dom, n int, holeFrac float64, seed int64) *Dataset {
	if m < 1 || dom < 2 || n < 1 {
		panic(fmt.Sprintf("datagen: invalid WideCategorical shape m=%d dom=%d n=%d", m, dom, n))
	}
	if holeFrac < 0 || holeFrac >= 1 {
		panic(fmt.Sprintf("datagen: WideCategorical holeFrac %g outside [0,1)", holeFrac))
	}
	rng := rand.New(rand.NewSource(seed))
	attrs := make([]hiddendb.Attribute, m)
	samplers := make([]*weighted, m)
	for i := 0; i < m; i++ {
		values := make([]string, dom)
		w := make([]float64, dom)
		holes := int(holeFrac * float64(dom))
		for v := 0; v < dom; v++ {
			values[v] = fmt.Sprintf("v%d", v)
			if v >= dom-holes {
				w[v] = 0 // advertised in the form, present in no tuple
			} else {
				w[v] = rng.ExpFloat64() + 1e-3
			}
		}
		attrs[i] = hiddendb.CatAttr(fmt.Sprintf("a%d", i+1), values...)
		samplers[i] = newWeighted(w)
	}
	schema := hiddendb.MustSchema(fmt.Sprintf("wide-cat-m%d-d%d", m, dom), attrs...)
	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		vals := make([]int, m)
		for j := range vals {
			vals[j] = samplers[j].draw(rng)
		}
		tuples[i] = hiddendb.Tuple{Vals: vals}
	}
	return &Dataset{Schema: schema, Tuples: tuples}
}
