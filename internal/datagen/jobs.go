package datagen

import (
	"math"
	"math/rand"

	"hdsampler/internal/hiddendb"
)

// Attribute positions in the Jobs schema.
const (
	JobAttrCategory = iota
	JobAttrSeniority
	JobAttrLocation
	JobAttrSalary
	JobAttrExperience
	JobAttrType
	JobAttrRemote
	JobAttrEducation
	jobNumAttrs
)

var jobCategories = []string{
	"software", "data", "finance", "healthcare", "sales", "marketing",
	"operations", "design", "legal", "education", "manufacturing", "hospitality",
}
var jobCategoryWeights = []float64{14, 8, 10, 12, 11, 8, 9, 5, 4, 7, 7, 5}

var jobLocations = []string{
	"new-york", "san-francisco", "chicago", "austin", "seattle", "boston",
	"atlanta", "denver", "miami", "portland", "phoenix", "nashville",
	"columbus", "raleigh", "salt-lake-city", "remote-usa",
}

// JobsSchema returns the schema of a simulated careers site — the shape of
// MSN Career, whose k = 4000 limit the paper lists. Eight searchable
// attributes; salary and experience are numeric with raw payloads.
func JobsSchema() *hiddendb.Schema {
	return hiddendb.MustSchema("jobs",
		hiddendb.CatAttr("category", jobCategories...),
		hiddendb.CatAttr("seniority", "intern", "junior", "mid", "senior", "lead", "executive"),
		hiddendb.CatAttr("location", jobLocations...),
		hiddendb.NumAttr("salary", 0, 40000, 60000, 85000, 120000, 170000, 250000, 500000),
		hiddendb.NumAttr("experience", 0, 1, 3, 6, 10, 40),
		hiddendb.CatAttr("type", "full-time", "part-time", "contract"),
		hiddendb.BoolAttr("remote"),
		hiddendb.CatAttr("education", "none", "bachelors", "masters", "phd"),
	)
}

// Jobs generates a seeded n-posting careers database with realistic
// correlations: salary rises with seniority, category tier and location
// cost; experience tracks seniority; software/data roles skew remote.
func Jobs(n int, seed int64) *Dataset {
	schema := JobsSchema()
	rng := rand.New(rand.NewSource(seed))
	catDraw := newWeighted(jobCategoryWeights)

	// Location pay multipliers, loosely tiered.
	locMult := []float64{1.25, 1.35, 1.1, 1.05, 1.2, 1.2, 1.0, 1.05, 1.0, 1.0, 0.95, 0.95, 0.9, 0.95, 0.95, 1.0}
	// Category base pay.
	catBase := []float64{110000, 105000, 95000, 80000, 65000, 70000, 62000, 75000, 98000, 55000, 58000, 42000}

	salaryAttr := schema.Attrs[JobAttrSalary]
	expAttr := schema.Attrs[JobAttrExperience]

	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		cat := catDraw.draw(rng)
		// Seniority pyramid.
		var sen int
		switch r := rng.Float64(); {
		case r < 0.05:
			sen = 0
		case r < 0.30:
			sen = 1
		case r < 0.65:
			sen = 2
		case r < 0.88:
			sen = 3
		case r < 0.97:
			sen = 4
		default:
			sen = 5
		}
		loc := rng.Intn(len(jobLocations))

		// Experience grows with seniority.
		expBase := []float64{0, 0.5, 3, 6, 9, 14}[sen]
		years := expBase + rng.Float64()*3
		if years > 39 {
			years = 39
		}

		// Salary: base by category, scaled by seniority and location.
		senMult := []float64{0.35, 0.65, 1.0, 1.35, 1.7, 2.6}[sen]
		salary := catBase[cat] * senMult * locMult[loc] * (0.85 + 0.3*rng.Float64())
		if salary < 20000 {
			salary = 20000
		}
		if salary > 499999 {
			salary = 499999
		}
		salary = math.Round(salary)
		years = math.Round(years*10) / 10

		// Remote skews tech-ward; the remote-usa location is always remote.
		remote := 0
		if loc == len(jobLocations)-1 || (cat <= 1 && rng.Float64() < 0.45) || rng.Float64() < 0.15 {
			remote = 1
		}
		jobType := 0
		switch r := rng.Float64(); {
		case r < 0.08:
			jobType = 1
		case r < 0.22:
			jobType = 2
		}
		edu := 1
		switch r := rng.Float64(); {
		case r < 0.25:
			edu = 0
		case r < 0.85:
			edu = 1
		case r < 0.97:
			edu = 2
		default:
			edu = 3
		}
		if cat == 8 || cat == 9 { // legal/education lean advanced degrees
			if rng.Float64() < 0.4 {
				edu = 2
			}
		}

		vals := make([]int, jobNumAttrs)
		vals[JobAttrCategory] = cat
		vals[JobAttrSeniority] = sen
		vals[JobAttrLocation] = loc
		vals[JobAttrSalary] = salaryAttr.BucketOf(salary)
		vals[JobAttrExperience] = expAttr.BucketOf(years)
		vals[JobAttrType] = jobType
		vals[JobAttrRemote] = remote
		vals[JobAttrEducation] = edu

		nums := make([]float64, jobNumAttrs)
		for j := range nums {
			nums[j] = math.NaN()
		}
		nums[JobAttrSalary] = salary
		nums[JobAttrExperience] = years

		tuples[i] = hiddendb.Tuple{Vals: vals, Nums: nums}
	}
	return &Dataset{Schema: schema, Tuples: tuples}
}
