package datagen

import (
	"testing"

	"hdsampler/internal/hiddendb"
)

func TestRankedListingsShape(t *testing.T) {
	ds := RankedListings(300, 4)
	if ds.Ranker == nil {
		t.Fatal("RankedListings must carry its price ranker")
	}
	if got := ds.Schema.NumAttrs(); got != 3 {
		t.Fatalf("attrs = %d, want 3", got)
	}
	priceAttr := ds.Schema.AttrIndex("price")
	if priceAttr < 0 || ds.Schema.Attrs[priceAttr].Kind != hiddendb.KindNumeric {
		t.Fatalf("missing numeric price attribute (idx %d)", priceAttr)
	}
	for i, tu := range ds.Tuples {
		p, ok := tu.Num(priceAttr)
		if !ok || p < 1 || p >= 250 {
			t.Fatalf("tuple %d: price %g outside [1,250)", i, p)
		}
		if b := ds.Schema.Attrs[priceAttr].BucketOf(p); b != tu.Vals[priceAttr] {
			t.Fatalf("tuple %d: price %g in bucket %d but Vals says %d", i, p, b, tu.Vals[priceAttr])
		}
	}
	// Served under its ranker, the visible top-k must be the cheapest
	// rows: the correlated-truncation regime the generator exists for.
	db, err := hiddendb.New(ds.Schema, ds.Tuples, ds.Ranker, hiddendb.Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Overflow || len(res.Tuples) != 10 {
		t.Fatalf("top-k page: overflow=%v rows=%d", res.Overflow, len(res.Tuples))
	}
	maxShown := 0.0
	for i := range res.Tuples {
		if p, _ := res.Tuples[i].Num(priceAttr); p > maxShown {
			maxShown = p
		}
	}
	cheaperHidden := 0
	for i := range ds.Tuples {
		tu := db.Tuple(i)
		if p, _ := tu.Num(priceAttr); p < maxShown {
			cheaperHidden++
		}
	}
	if cheaperHidden > 10 {
		t.Fatalf("ranking broken: %d rows cheaper than the page's max, want <= 10", cheaperHidden)
	}
}

func TestRankedListingsDeterministic(t *testing.T) {
	a, b := RankedListings(100, 9), RankedListings(100, 9)
	for i := range a.Tuples {
		pa, _ := a.Tuples[i].Num(2)
		pb, _ := b.Tuples[i].Num(2)
		if pa != pb || a.Tuples[i].Vals[0] != b.Tuples[i].Vals[0] {
			t.Fatalf("tuple %d differs across equal seeds", i)
		}
	}
	c := RankedListings(100, 10)
	same := true
	for i := range a.Tuples {
		pa, _ := a.Tuples[i].Num(2)
		pc, _ := c.Tuples[i].Num(2)
		if pa != pc {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated identical data")
	}
}

func TestWideCategoricalHolesNeverDrawn(t *testing.T) {
	const m, dom, n = 3, 12, 500
	ds := WideCategorical(m, dom, n, 0.25, 6)
	if got := ds.Schema.NumAttrs(); got != m {
		t.Fatalf("attrs = %d, want %d", got, m)
	}
	holes := int(0.25 * dom)
	for a := 0; a < m; a++ {
		if got := ds.Schema.DomainSize(a); got != dom {
			t.Fatalf("attr %d domain = %d, want %d", a, got, dom)
		}
		seen := make([]int, dom)
		for _, tu := range ds.Tuples {
			seen[tu.Vals[a]]++
		}
		for v := dom - holes; v < dom; v++ {
			if seen[v] != 0 {
				t.Fatalf("attr %d: hole value %d drawn %d times", a, v, seen[v])
			}
		}
		populated := 0
		for v := 0; v < dom-holes; v++ {
			if seen[v] > 0 {
				populated++
			}
		}
		if populated < dom/2 {
			t.Fatalf("attr %d: only %d of %d non-hole values populated", a, populated, dom-holes)
		}
	}
}

func TestWideCategoricalPanicsOnBadShape(t *testing.T) {
	for _, fn := range []func(){
		func() { WideCategorical(0, 5, 10, 0, 1) },
		func() { WideCategorical(2, 1, 10, 0, 1) },
		func() { WideCategorical(2, 5, 0, 0, 1) },
		func() { WideCategorical(2, 5, 10, 1.0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad shape did not panic")
				}
			}()
			fn()
		}()
	}
}
