package datagen

import (
	"math"
	"math/rand"

	"hdsampler/internal/hiddendb"
)

// Attribute positions in the Vehicles schema, exported so experiments and
// examples can form predicates without string lookups.
const (
	VehAttrMake = iota
	VehAttrModel
	VehAttrYear
	VehAttrPrice
	VehAttrMileage
	VehAttrColor
	VehAttrCondition
	VehAttrTransmission
	VehAttrFuel
	VehAttrDoors
	vehNumAttrs
)

// vehMake describes one manufacturer: its market share weight, price tier
// multiplier, and models (each model index is global across makes, so a
// conjunctive query with mismatched make/model is empty — the realistic
// sparsity of a vehicles search form).
type vehMake struct {
	name     string
	weight   float64
	tier     float64 // base price multiplier
	japanese bool
	models   []string
}

var vehMakes = []vehMake{
	{"toyota", 14, 1.0, true, []string{"camry", "corolla", "prius", "rav4"}},
	{"honda", 12, 1.0, true, []string{"civic", "accord", "cr-v", "fit"}},
	{"nissan", 9, 0.95, true, []string{"altima", "sentra", "maxima", "rogue"}},
	{"mazda", 5, 0.9, true, []string{"mazda3", "mazda6", "cx-5", "mx-5"}},
	{"subaru", 4, 0.95, true, []string{"outback", "forester", "impreza", "legacy"}},
	{"ford", 13, 0.9, false, []string{"f-150", "focus", "fusion", "escape"}},
	{"chevrolet", 12, 0.9, false, []string{"silverado", "malibu", "impala", "equinox"}},
	{"dodge", 7, 0.85, false, []string{"ram", "charger", "durango", "caravan"}},
	{"bmw", 5, 1.9, false, []string{"3-series", "5-series", "x3", "x5"}},
	{"mercedes", 4, 2.0, false, []string{"c-class", "e-class", "glk", "slk"}},
	{"volkswagen", 8, 1.1, false, []string{"golf", "jetta", "passat", "tiguan"}},
	{"hyundai", 7, 0.8, false, []string{"elantra", "sonata", "tucson", "santa-fe"}},
}

var vehColors = []string{"black", "white", "silver", "gray", "red", "blue", "green", "beige", "brown", "orange"}
var vehColorWeights = []float64{20, 19, 16, 13, 10, 9, 4, 4, 3, 2}

const (
	vehYearLo = 1998
	vehYearHi = 2009 // the demo year; inclusive
)

// VehiclesSchema returns the schema of the simulated Google Base Vehicles
// database: 10 searchable attributes whose cross-product space has roughly
// 2.4e8 cells, so fully-specified brute-force probing is hopeless while the
// random drill-down succeeds in tens of queries — the regime the paper
// targets.
func VehiclesSchema() *hiddendb.Schema {
	makeNames := make([]string, len(vehMakes))
	var modelNames []string
	for i, m := range vehMakes {
		makeNames[i] = m.name
		modelNames = append(modelNames, m.models...)
	}
	years := make([]string, 0, vehYearHi-vehYearLo+1)
	for y := vehYearLo; y <= vehYearHi; y++ {
		years = append(years, itoa(y))
	}
	return hiddendb.MustSchema("vehicles",
		hiddendb.CatAttr("make", makeNames...),
		hiddendb.CatAttr("model", modelNames...),
		hiddendb.CatAttr("year", years...),
		hiddendb.NumAttr("price", 0, 5000, 10000, 15000, 20000, 30000, 45000, 70000, 120000),
		hiddendb.NumAttr("mileage", 0, 10000, 30000, 60000, 100000, 150000, 300000),
		hiddendb.CatAttr("color", vehColors...),
		hiddendb.CatAttr("condition", "new", "used", "certified"),
		hiddendb.CatAttr("transmission", "automatic", "manual"),
		hiddendb.CatAttr("fuel", "gas", "diesel", "hybrid", "electric"),
		hiddendb.CatAttr("doors", "2", "4", "5"),
	)
}

func itoa(v int) string {
	// small positive ints only
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Vehicles generates a seeded n-tuple inventory with realistic
// correlations: model depends on make; newer cars cost more and have lower
// mileage; "new" condition implies a recent year and near-zero mileage;
// hybrids concentrate in a few models; luxury makes sit in higher price
// bands. Raw price and mileage are carried as numeric payloads for SUM/AVG
// experiments.
func Vehicles(n int, seed int64) *Dataset {
	schema := VehiclesSchema()
	rng := rand.New(rand.NewSource(seed))

	makeWeights := make([]float64, len(vehMakes))
	for i, m := range vehMakes {
		makeWeights[i] = m.weight
	}
	makeDraw := newWeighted(makeWeights)
	colorDraw := newWeighted(vehColorWeights)

	// Year skews recent: weight grows linearly toward the demo year.
	nYears := vehYearHi - vehYearLo + 1
	yearWeights := make([]float64, nYears)
	for i := range yearWeights {
		yearWeights[i] = float64(i + 2)
	}
	yearDraw := newWeighted(yearWeights)

	// Model offset of each make within the global model domain.
	modelOffset := make([]int, len(vehMakes))
	off := 0
	for i, m := range vehMakes {
		modelOffset[i] = off
		off += len(m.models)
	}

	priceAttr := schema.Attrs[VehAttrPrice]
	mileAttr := schema.Attrs[VehAttrMileage]

	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		mk := makeDraw.draw(rng)
		model := modelOffset[mk] + rng.Intn(len(vehMakes[mk].models))
		year := yearDraw.draw(rng)
		age := nYears - 1 - year // 0 for the newest year

		// Condition: recent cars may be new; certified sits in between.
		var condition int
		switch {
		case age == 0 && rng.Float64() < 0.55, age == 1 && rng.Float64() < 0.2:
			condition = 0 // new
		case age <= 4 && rng.Float64() < 0.25:
			condition = 2 // certified
		default:
			condition = 1 // used
		}

		// Mileage: grows with age; new cars are delivery-miles only.
		var miles float64
		if condition == 0 {
			miles = rng.Float64() * 200
		} else {
			perYear := 8000 + rng.Float64()*8000
			miles = (float64(age) + 0.3) * perYear * (0.7 + 0.6*rng.Float64())
			if miles > 299999 {
				miles = 299999
			}
		}

		// Price: tier base, depreciates ~11%/year, mileage discount, noise.
		base := 26000 * vehMakes[mk].tier
		price := base * math.Pow(0.89, float64(age)) * (1 - miles/1.6e6)
		price *= 0.85 + 0.3*rng.Float64()
		if condition == 2 {
			price *= 1.05
		}
		if price < 500 {
			price = 500
		}
		if price > 119999 {
			price = 119999
		}
		// Round the payloads before bucketing so the stored bucket always
		// matches the visible raw value.
		price = math.Round(price)
		miles = math.Round(miles)

		// Fuel: hybrids cluster in prius/civic/camry; electric very rare.
		fuel := 0
		switch vehMakes[mk].models[model-modelOffset[mk]] {
		case "prius":
			fuel = 2
		case "civic", "camry", "fusion":
			if rng.Float64() < 0.15 {
				fuel = 2
			}
		default:
			r := rng.Float64()
			if r < 0.04 {
				fuel = 1 // diesel
			} else if r < 0.045 {
				fuel = 3 // electric
			}
		}

		transmission := 0
		if rng.Float64() < 0.12 {
			transmission = 1
		}
		doors := 1 // "4"
		switch r := rng.Float64(); {
		case r < 0.15:
			doors = 0 // "2"
		case r < 0.35:
			doors = 2 // "5" (hatch/SUV)
		}

		vals := make([]int, vehNumAttrs)
		vals[VehAttrMake] = mk
		vals[VehAttrModel] = model
		vals[VehAttrYear] = year
		vals[VehAttrPrice] = priceAttr.BucketOf(price)
		vals[VehAttrMileage] = mileAttr.BucketOf(miles)
		vals[VehAttrColor] = colorDraw.draw(rng)
		vals[VehAttrCondition] = condition
		vals[VehAttrTransmission] = transmission
		vals[VehAttrFuel] = fuel
		vals[VehAttrDoors] = doors

		nums := make([]float64, vehNumAttrs)
		for j := range nums {
			nums[j] = math.NaN()
		}
		nums[VehAttrPrice] = price
		nums[VehAttrMileage] = miles

		tuples[i] = hiddendb.Tuple{Vals: vals, Nums: nums}
	}
	return &Dataset{Schema: schema, Tuples: tuples}
}

// JapaneseMakeIndexes returns the make-domain indices of Japanese
// manufacturers — the paper's introductory use case asks for "the
// percentage of Japanese cars in the dealer's inventory".
func JapaneseMakeIndexes() []int {
	var out []int
	for i, m := range vehMakes {
		if m.japanese {
			out = append(out, i)
		}
	}
	return out
}

// MakeModels returns the global model-domain index range [lo, hi) belonging
// to make mk; queries pairing make mk with a model outside this range are
// empty by construction.
func MakeModels(mk int) (lo, hi int) {
	off := 0
	for i, m := range vehMakes {
		if i == mk {
			return off, off + len(m.models)
		}
		off += len(m.models)
	}
	return -1, -1
}

// NumMakes returns the number of manufacturers in the Vehicles schema.
func NumMakes() int { return len(vehMakes) }
