// Package datagen produces the seeded synthetic datasets the experiments
// run against: i.i.d. and correlated boolean databases (the shapes the
// HIDDEN-DB-SAMPLER paper analyses), Zipfian categorical databases, and a
// Google-Base-like Vehicles database that stands in for the demo's live
// data source. All generators are deterministic given their seed.
package datagen
