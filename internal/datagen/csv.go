package datagen

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"hdsampler/internal/hiddendb"
)

// CSVOptions tunes FromCSV's schema inference.
type CSVOptions struct {
	// Name is the schema name; defaults to "csv".
	Name string
	// NumericBuckets is the bucket count for numeric columns (quantile
	// cuts); defaults to 8.
	NumericBuckets int
	// MaxCategorical rejects categorical columns with more distinct values
	// than this (likely free text); defaults to 200.
	MaxCategorical int
}

// FromCSV builds a Dataset from a CSV file with a header row, inferring
// each column's attribute kind the way a wrapper author would: columns
// whose every value parses as a number become numeric attributes bucketed
// at empirical quantiles (raw values kept as payloads); columns with only
// "true"/"false" become boolean; everything else becomes categorical with
// values in first-appearance order. Constant columns (a single distinct
// value) are skipped — a web form select with one option is not a
// searchable attribute — and reported in skipped.
//
// This is how cmd/hiddendbd serves real user data behind the simulated
// web form interface.
func FromCSV(r io.Reader, opts CSVOptions) (ds *Dataset, skipped []string, err error) {
	if opts.Name == "" {
		opts.Name = "csv"
	}
	if opts.NumericBuckets <= 0 {
		opts.NumericBuckets = 8
	}
	if opts.MaxCategorical <= 0 {
		opts.MaxCategorical = 200
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: reading CSV header: %w", err)
	}
	if len(header) == 0 {
		return nil, nil, fmt.Errorf("datagen: empty CSV header")
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: reading CSV rows: %w", err)
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("datagen: CSV has no data rows")
	}

	type column struct {
		name    string
		kind    hiddendb.Kind
		labels  []string       // categorical/bool
		index   map[string]int // label -> value index
		numbers []float64      // numeric raw values per row
		attr    hiddendb.Attribute
	}
	var cols []*column
	for c, name := range header {
		name = strings.TrimSpace(name)
		if name == "" {
			name = fmt.Sprintf("col%d", c)
		}
		col := &column{name: name}
		distinct := map[string]bool{}
		allNumeric, allBool := true, true
		for _, rec := range records {
			if c >= len(rec) {
				return nil, nil, fmt.Errorf("datagen: ragged CSV row (column %q missing)", name)
			}
			v := strings.TrimSpace(rec[c])
			distinct[v] = true
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				allNumeric = false
			}
			if v != "true" && v != "false" {
				allBool = false
			}
		}
		switch {
		case len(distinct) < 2:
			skipped = append(skipped, name)
			continue
		case allBool:
			col.kind = hiddendb.KindBool
			col.attr = hiddendb.BoolAttr(name)
			col.index = map[string]int{"false": 0, "true": 1}
		case allNumeric:
			col.kind = hiddendb.KindNumeric
			col.numbers = make([]float64, len(records))
			for i, rec := range records {
				col.numbers[i], _ = strconv.ParseFloat(strings.TrimSpace(rec[c]), 64)
			}
			attr, ok := quantileAttr(name, col.numbers, opts.NumericBuckets)
			if ok {
				col.attr = attr
				break
			}
			// Too few distinct values for range buckets: expose the column
			// as categorical instead (e.g. a numeric "doors" column with
			// values 2 and 4).
			col.kind = hiddendb.KindCategorical
			col.numbers = nil
			col.index = map[string]int{}
			for _, rec := range records {
				v := strings.TrimSpace(rec[c])
				if _, ok := col.index[v]; !ok {
					col.index[v] = len(col.labels)
					col.labels = append(col.labels, v)
				}
			}
			col.attr = hiddendb.CatAttr(name, col.labels...)
		default:
			if len(distinct) > opts.MaxCategorical {
				return nil, nil, fmt.Errorf("datagen: column %q has %d distinct values (max %d); likely free text",
					name, len(distinct), opts.MaxCategorical)
			}
			col.kind = hiddendb.KindCategorical
			col.index = map[string]int{}
			for _, rec := range records {
				v := strings.TrimSpace(rec[c])
				if _, ok := col.index[v]; !ok {
					col.index[v] = len(col.labels)
					col.labels = append(col.labels, v)
				}
			}
			col.attr = hiddendb.CatAttr(name, col.labels...)
		}
		cols = append(cols, col)
	}
	if len(cols) == 0 {
		return nil, nil, fmt.Errorf("datagen: no usable columns in CSV")
	}

	attrs := make([]hiddendb.Attribute, len(cols))
	for i, col := range cols {
		attrs[i] = col.attr
	}
	schema, err := hiddendb.NewSchema(opts.Name, attrs...)
	if err != nil {
		return nil, nil, fmt.Errorf("datagen: inferred schema invalid: %w", err)
	}

	tuples := make([]hiddendb.Tuple, len(records))
	for i, rec := range records {
		vals := make([]int, len(cols))
		var nums []float64
		for a, col := range cols {
			origIdx := indexOfHeader(header, col.name)
			v := strings.TrimSpace(rec[origIdx])
			switch col.kind {
			case hiddendb.KindNumeric:
				x := col.numbers[i]
				b := col.attr.BucketOf(x)
				if b < 0 {
					return nil, nil, fmt.Errorf("datagen: row %d: value %g outside inferred buckets of %q", i, x, col.name)
				}
				vals[a] = b
				if nums == nil {
					nums = make([]float64, len(cols))
					for j := range nums {
						nums[j] = math.NaN()
					}
				}
				nums[a] = x
			default:
				idx, ok := col.index[v]
				if !ok {
					return nil, nil, fmt.Errorf("datagen: row %d: unexpected value %q in column %q", i, v, col.name)
				}
				vals[a] = idx
			}
		}
		tuples[i] = hiddendb.Tuple{Vals: vals, Nums: nums}
	}
	return &Dataset{Schema: schema, Tuples: tuples}, skipped, nil
}

// indexOfHeader finds the original CSV column for a (trimmed, defaulted)
// attribute name.
func indexOfHeader(header []string, name string) int {
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			h = fmt.Sprintf("col%d", i)
		}
		if h == name {
			return i
		}
	}
	return -1
}

// quantileAttr buckets a numeric column at empirical quantiles, returning
// ok=false when fewer than two distinct buckets survive (near-constant
// column).
func quantileAttr(name string, values []float64, buckets int) (hiddendb.Attribute, bool) {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if lo == hi {
		return hiddendb.Attribute{}, false
	}
	cuts := []float64{lo}
	for b := 1; b < buckets; b++ {
		q := sorted[len(sorted)*b/buckets]
		if q > cuts[len(cuts)-1] && q < hi {
			cuts = append(cuts, q)
		}
	}
	// The last bucket must include the maximum; extend past it slightly so
	// the half-open [lo,hi) convention still contains every value.
	cuts = append(cuts, math.Nextafter(hi, math.Inf(1)))
	if len(cuts) < 3 {
		// One bucket only: not searchable.
		return hiddendb.Attribute{}, false
	}
	return hiddendb.NumAttr(name, cuts...), true
}
