package datagen

import (
	"fmt"
	"iter"

	"hdsampler/internal/hiddendb"
)

// Huge streams the skewed-posting benchmark shape (a ~1% selective
// attribute, a 95%/5% common attribute, and a 4-value filler) at sizes
// where materializing a []Tuple first would dominate memory and build
// time. Tuple values are a pure function of the index through a
// splitmix64-style mixer, so the stream is deterministic, restartable,
// and needs no per-tuple RNG state: 100M-tuple posting structures can
// be built directly from the stream without ever holding the tuples.
type Huge struct {
	// N is the number of tuples in the stream.
	N int
	// Seed perturbs the value mixer; equal seeds give equal streams.
	Seed uint64

	schema *hiddendb.Schema
}

// NewHuge returns the streaming generator for n tuples.
func NewHuge(n int, seed uint64) *Huge {
	if n < 1 {
		panic(fmt.Sprintf("datagen: invalid Huge size n=%d", n))
	}
	rare := make([]string, 100)
	for i := range rare {
		rare[i] = fmt.Sprintf("r%02d", i)
	}
	schema := hiddendb.MustSchema("huge-skew",
		hiddendb.CatAttr("rare", rare...),
		hiddendb.CatAttr("common", "yes", "no"),
		hiddendb.CatAttr("mid", "a", "b", "c", "d"),
	)
	return &Huge{N: n, Seed: seed, schema: schema}
}

// Schema returns the stream's schema: rare (100 values, ~1% each),
// common (95% "yes"), mid (4 uniform values).
func (h *Huge) Schema() *hiddendb.Schema { return h.schema }

// Tuples yields (index, values) for every tuple in order. The values
// slice is reused between iterations — callers that keep a row must
// copy it.
func (h *Huge) Tuples() iter.Seq2[int, []int] {
	return func(yield func(int, []int) bool) {
		vals := make([]int, 3)
		for i := 0; i < h.N; i++ {
			h.fill(i, vals)
			if !yield(i, vals) {
				return
			}
		}
	}
}

// At writes tuple i's values into vals (len ≥ 3) — random access for
// samplers that probe the stream out of order.
func (h *Huge) At(i int, vals []int) {
	h.fill(i, vals)
}

func (h *Huge) fill(i int, vals []int) {
	x := mix64(h.Seed ^ uint64(i))
	vals[0] = int(x % 100)
	if (x>>32)%20 == 19 {
		vals[1] = 1 // the 5% minority
	} else {
		vals[1] = 0
	}
	vals[2] = int((x >> 16) % 4)
}

// Dataset materializes the stream into a Dataset for sizes where that
// is affordable; the per-tuple value slices share one backing array.
func (h *Huge) Dataset() *Dataset {
	backing := make([]int, 3*h.N)
	tuples := make([]hiddendb.Tuple, h.N)
	for i, vals := range h.Tuples() {
		row := backing[3*i : 3*i+3 : 3*i+3]
		copy(row, vals)
		tuples[i] = hiddendb.Tuple{Vals: row}
	}
	return &Dataset{Schema: h.schema, Tuples: tuples}
}

// mix64 is the splitmix64 finalizer: a bijective avalanche mixer, so
// distinct indices give well-scattered values with no RNG state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
