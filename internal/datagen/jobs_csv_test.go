package datagen

import (
	"strings"
	"testing"

	"hdsampler/internal/hiddendb"
)

func TestJobsSchemaAndGeneration(t *testing.T) {
	ds := Jobs(5000, 7)
	if ds.Schema.NumAttrs() != jobNumAttrs {
		t.Fatalf("attrs = %d", ds.Schema.NumAttrs())
	}
	if _, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 100}); err != nil {
		t.Fatalf("generated jobs rejected: %v", err)
	}
	salaryAttr := ds.Schema.Attrs[JobAttrSalary]
	for i, tu := range ds.Tuples {
		sal, ok := tu.Num(JobAttrSalary)
		if !ok {
			t.Fatalf("tuple %d missing salary payload", i)
		}
		if got := salaryAttr.BucketOf(sal); got != tu.Vals[JobAttrSalary] {
			t.Fatalf("tuple %d salary bucket mismatch", i)
		}
	}
	// Correlation: executives out-earn interns on average.
	var internSum, execSum float64
	var internN, execN int
	for _, tu := range ds.Tuples {
		sal, _ := tu.Num(JobAttrSalary)
		switch tu.Vals[JobAttrSeniority] {
		case 0:
			internSum += sal
			internN++
		case 5:
			execSum += sal
			execN++
		}
	}
	if internN == 0 || execN == 0 {
		t.Fatal("seniority pyramid degenerate")
	}
	if execSum/float64(execN) < 2*internSum/float64(internN) {
		t.Errorf("executives (%g avg) should far out-earn interns (%g avg)",
			execSum/float64(execN), internSum/float64(internN))
	}
	// remote-usa location implies remote flag.
	for i, tu := range ds.Tuples {
		if tu.Vals[JobAttrLocation] == len(jobLocations)-1 && tu.Vals[JobAttrRemote] != 1 {
			t.Fatalf("tuple %d: remote-usa location without remote flag", i)
		}
	}
}

func TestJobsDeterministic(t *testing.T) {
	a, b := Jobs(100, 5), Jobs(100, 5)
	for i := range a.Tuples {
		for j := range a.Tuples[i].Vals {
			if a.Tuples[i].Vals[j] != b.Tuples[i].Vals[j] {
				t.Fatal("same seed differs")
			}
		}
	}
}

const sampleCSV = `make,price,used,notes,year
toyota,12000,true,constant,2005
honda,9500,false,constant,2003
toyota,15000,true,constant,2008
ford,7000,false,constant,2001
honda,22000,true,constant,2009
ford,8000,true,constant,2002
toyota,31000,false,constant,2009
honda,5000,true,constant,1999
`

func TestFromCSVInference(t *testing.T) {
	ds, skipped, err := FromCSV(strings.NewReader(sampleCSV), CSVOptions{Name: "cars", NumericBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "notes" {
		t.Fatalf("skipped = %v, want [notes]", skipped)
	}
	s := ds.Schema
	if s.Name != "cars" || s.NumAttrs() != 4 {
		t.Fatalf("schema = %q with %d attrs", s.Name, s.NumAttrs())
	}
	if s.Attrs[0].Kind != hiddendb.KindCategorical || s.Attrs[0].Name != "make" {
		t.Fatalf("make attr = %+v", s.Attrs[0])
	}
	if s.Attrs[0].Values[0] != "toyota" { // first-appearance order
		t.Fatalf("make values = %v", s.Attrs[0].Values)
	}
	if s.Attrs[1].Kind != hiddendb.KindNumeric {
		t.Fatalf("price kind = %v", s.Attrs[1].Kind)
	}
	if s.Attrs[2].Kind != hiddendb.KindBool {
		t.Fatalf("used kind = %v", s.Attrs[2].Kind)
	}
	if s.Attrs[3].Kind != hiddendb.KindNumeric {
		t.Fatalf("year kind = %v", s.Attrs[3].Kind)
	}
	if len(ds.Tuples) != 8 {
		t.Fatalf("tuples = %d", len(ds.Tuples))
	}
	// The dataset must be servable.
	db, err := hiddendb.New(s, ds.Tuples, nil, hiddendb.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: toyota, 12000, true.
	tu := db.Tuple(0)
	if s.Attrs[0].Values[tu.Vals[0]] != "toyota" {
		t.Error("row 0 make wrong")
	}
	if price, ok := tu.Num(1); !ok || price != 12000 {
		t.Errorf("row 0 price payload = %g", price)
	}
	if tu.Vals[2] != 1 {
		t.Error("row 0 used should be true")
	}
	// Every numeric value lands inside its bucket, including the maximum.
	for i := range ds.Tuples {
		tu := db.Tuple(i)
		price, _ := tu.Num(1)
		if s.Attrs[1].BucketOf(price) != tu.Vals[1] {
			t.Fatalf("row %d price bucket mismatch", i)
		}
	}
}

func TestFromCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"headerOnly": "a,b\n",
		"ragged":     "a,b\n1\n",
	}
	for name, in := range cases {
		if _, _, err := FromCSV(strings.NewReader(in), CSVOptions{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Too many distinct categorical values.
	var b strings.Builder
	b.WriteString("id,x\n")
	for i := 0; i < 50; i++ {
		b.WriteString(strings.Repeat("a", i+1) + ",1\n")
		b.WriteString(strings.Repeat("b", i+1) + ",2\n")
	}
	if _, _, err := FromCSV(strings.NewReader(b.String()), CSVOptions{MaxCategorical: 10}); err == nil ||
		!strings.Contains(err.Error(), "distinct values") {
		t.Errorf("high-cardinality column: %v", err)
	}
	// All columns constant.
	if _, _, err := FromCSV(strings.NewReader("a,b\n1,x\n1,x\n"), CSVOptions{}); err == nil {
		t.Error("all-constant CSV accepted")
	}
}

func TestFromCSVQuantileBuckets(t *testing.T) {
	// 100 uniform values over [0,100): 4 buckets of ~25 each.
	var b strings.Builder
	b.WriteString("v\n")
	for i := 0; i < 100; i++ {
		b.WriteString(strings.TrimSpace(strings.Join([]string{itoa(i)}, "")) + "\n")
	}
	ds, _, err := FromCSV(strings.NewReader(b.String()), CSVOptions{NumericBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	attr := ds.Schema.Attrs[0]
	if attr.DomainSize() != 4 {
		t.Fatalf("buckets = %d, want 4", attr.DomainSize())
	}
	counts := make([]int, 4)
	for _, tu := range ds.Tuples {
		counts[tu.Vals[0]]++
	}
	for i, c := range counts {
		if c != 25 {
			t.Errorf("bucket %d holds %d values, want 25", i, c)
		}
	}
}

func TestFromCSVHeaderDefaults(t *testing.T) {
	ds, _, err := FromCSV(strings.NewReader(",x\n1,a\n2,b\n"), CSVOptions{NumericBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Attrs[0].Name != "col0" {
		t.Fatalf("empty header name = %q", ds.Schema.Attrs[0].Name)
	}
	// Two distinct numeric values cannot form range buckets; the column
	// falls back to categorical.
	if ds.Schema.Attrs[0].Kind != hiddendb.KindCategorical {
		t.Fatalf("2-value numeric column kind = %v, want categorical fallback", ds.Schema.Attrs[0].Kind)
	}
	if ds.Schema.Attrs[0].Values[0] != "1" || ds.Schema.Attrs[0].Values[1] != "2" {
		t.Fatalf("fallback values = %v", ds.Schema.Attrs[0].Values)
	}
}
