package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/estimate"
	"hdsampler/internal/exact"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
	"hdsampler/internal/metrics"
)

// TopK reproduces the §2 list of real top-k limits — Google (1000), MSN
// Career (4000), Microsoft Solution Finder (500), MSN Stock Screener
// (25) — showing how the interface's k shapes walk cost and skew.
func TopK(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(5000, 50000)
	ds := datagen.Vehicles(n, 21)
	t := &Table{
		ID:      "topk",
		Title:   "effect of the interface's top-k limit (exact analysis)",
		Header:  []string{"k (site)", "queries/walk", "candidates/walk", "queries/candidate", "skew(C=1)", "unreachable"},
		Metrics: map[string]float64{},
	}
	sites := []struct {
		k    int
		site string
	}{
		{25, "MSN Stock Screener"},
		{500, "MS Solution Finder"},
		{1000, "Google Base"},
		{4000, "MSN Career"},
	}
	for _, s := range sites {
		db, err := hiddendb.New(ds.Schema, cloneTuples(ds.Tuples), nil, hiddendb.Config{K: s.k})
		if err != nil {
			return nil, err
		}
		d, err := exact.WalkDist(db, nil, s.k)
		if err != nil {
			return nil, err
		}
		sum := d.Summarize(1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%s)", s.k, s.site),
			fmtF(d.QueriesPerWalk),
			fmtF(sum.CandidatePerWalk),
			fmtF(d.QueriesPerWalk / sum.CandidatePerWalk),
			fmtF(sum.Skew),
			fmt.Sprintf("%d", d.Unreachable),
		})
		t.Metrics[fmt.Sprintf("queries/candidate@k=%d", s.k)] = d.QueriesPerWalk / sum.CandidatePerWalk
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d, fixed schema order; larger k ends walks earlier (cheaper) but pools more tuples per valid node", n))
	return t, nil
}

// cloneTuples deep-copies a tuple slice so repeated hiddendb.New calls
// (which overwrite IDs) do not interfere.
func cloneTuples(in []hiddendb.Tuple) []hiddendb.Tuple {
	out := make([]hiddendb.Tuple, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}

// Tradeoff reproduces the §3.1 slider: sweeping the target reach
// probability C between provably-uniform and accept-everything, reporting
// the exact skew and query cost at each stop.
func Tradeoff(ctx context.Context, sc Scale) (*Table, error) {
	m := sc.pick(10, 14)
	n := sc.pick(500, 2000)
	k := 10
	ds := datagen.CorrelatedBoolean(m, n, 0.8, 31)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		return nil, err
	}
	d, err := exact.WalkDist(db, nil, k)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "tradeoff",
		Title:   "efficiency vs skew along the slider (exact analysis)",
		Header:  []string{"slider", "C", "accept rate", "queries/sample", "skew (CV)", "skew (reachable)", "TV vs uniform"},
		Metrics: map[string]float64{},
	}
	for _, pos := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := core.SliderC(db.Schema(), nil, k, pos)
		s := d.Summarize(c)
		acceptRate := 0.0
		if s.CandidatePerWalk > 0 {
			acceptRate = s.AcceptPerWalk / s.CandidatePerWalk
		}
		t.Rows = append(t.Rows, []string{
			fmtF(pos), fmt.Sprintf("%.3g", c), fmtPct(acceptRate),
			fmtF(s.QueriesPerSample), fmtF(s.Skew), fmtF(reachableSkew(d, c)), fmtF(s.TV),
		})
		t.Metrics[fmt.Sprintf("queries/sample@slider=%.2f", pos)] = s.QueriesPerSample
		t.Metrics[fmt.Sprintf("skew@slider=%.2f", pos)] = s.Skew
	}
	fixedSum := d.Summarize(1)
	t.Notes = append(t.Notes,
		fmt.Sprintf("correlated boolean m=%d n=%d k=%d, fixed order; slider 0 = provably uniform over reachable tuples (C = 1/(|space|·k)), slider 1 = raw walk", m, n, k),
		fmt.Sprintf("%d of %d tuples are hidden beyond the top-k of their fully-specified query and are unreachable by ANY interface sampler; 'skew (CV)' counts them, 'skew (reachable)' does not", fixedSum.Unreachable, n),
		"the demo's §3.1 claim: 'a highly uniform sample may take a long time... moderate skew may be obtained quite fast'")
	return t, nil
}

// reachableSkew computes the CV of the post-rejection selection
// distribution restricted to reachable tuples.
func reachableSkew(d *exact.Dist, c float64) float64 {
	var sel []float64
	for _, r := range d.Reach {
		if r <= 0 {
			continue
		}
		p := r
		if c > 0 && c < p {
			p = c
		}
		sel = append(sel, p)
	}
	return metrics.CV(sel)
}

// History reproduces the §3.2 optimization from [2]: the query-history
// cache answering repeated and inferable queries locally.
func History(ctx context.Context, sc Scale) (*Table, error) {
	m := sc.pick(12, 16)
	n := sc.pick(1000, 5000)
	k := 50
	samples := sc.pick(150, 500)
	ds := datagen.IIDBoolean(m, n, 0.5, 41)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: k, CountMode: hiddendb.CountExact})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "history",
		Title:   "query-history reuse: interface queries with and without the cache",
		Header:  []string{"configuration", "candidates", "queries sent", "queries saved", "savings"},
		Metrics: map[string]float64{},
	}
	for _, cfg := range []struct {
		name        string
		useCache    bool
		trustCounts bool
	}{
		{"no cache", false, false},
		{"cache (repeat + ancestor rules)", true, false},
		{"cache + count inference", true, true},
	} {
		local := formclient.NewLocal(db)
		var conn formclient.Conn = local
		var cache *history.Cache
		if cfg.useCache {
			cache = history.New(local, history.Options{TrustCounts: cfg.trustCounts})
			conn = cache
		}
		gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 42, Order: core.OrderFixed})
		if err != nil {
			return nil, err
		}
		_, cs, err := core.Collect(ctx, gen, nil, samples)
		if err != nil {
			return nil, err
		}
		sent := local.Stats().Queries
		saved := int64(0)
		if cache != nil {
			saved = cache.CacheStats().Saved()
		}
		total := sent + saved
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%d", cs.Candidates),
			fmt.Sprintf("%d", sent),
			fmt.Sprintf("%d", saved),
			fmtPct(float64(saved) / float64(total)),
		})
		t.Metrics["queries-sent:"+cfg.name] = float64(sent)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("iid boolean m=%d n=%d k=%d, %d candidates drawn with fixed order (restarts repeat prefixes, so the cache keeps paying)", m, n, k, samples),
		"reproduces [2]'s claim quoted in §3.2: never issue the same query twice, nor one whose answer is inferable")
	return t, nil
}

// BruteForceTable reproduces §3.4's justification for validating with —
// but never deploying — BRUTE-FORCE-SAMPLER.
func BruteForceTable(ctx context.Context, sc Scale) (*Table, error) {
	// Hidden databases are sparse: the cross-product space dwarfs the row
	// count (vehicles: 2.4e8 cells for tens of thousands of rows). Fix n
	// and grow m to show the exponential divergence.
	ms := []int{12, 16, 20}
	n := sc.pick(200, 400)
	k := 10
	t := &Table{
		ID:      "bruteforce",
		Title:   "brute force vs random walk: expected queries per sample (exact)",
		Header:  []string{"m (boolean attrs)", "|space|", "brute q/sample", "walk q/sample (C=min reach)", "walk q/sample (C=1)", "brute/walk ratio"},
		Metrics: map[string]float64{},
	}
	for _, m := range ms {
		ds := datagen.IIDBoolean(m, n, 0.5, int64(50+m))
		db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k})
		if err != nil {
			return nil, err
		}
		bf := exact.BruteForceCost(db)
		d, err := exact.WalkDist(db, nil, k)
		if err != nil {
			return nil, err
		}
		uniform := d.Summarize(d.MinReach())
		raw := d.Summarize(1)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%.0f", db.Schema().SpaceSize()),
			fmtF(bf),
			fmtF(uniform.QueriesPerSample),
			fmtF(raw.QueriesPerSample),
			fmtF(bf / raw.QueriesPerSample),
		})
		t.Metrics[fmt.Sprintf("brute/walk@m=%d", m)] = bf / raw.QueriesPerSample
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d tuples, k=%d; brute force pays |space|/occupied-cells per sample and grows exponentially in m while the walk grows mildly", n, k))
	return t, nil
}

// CountLeverage reproduces the ICDE 2009 comparison the demo cites as [2]:
// what count reporting buys.
func CountLeverage(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(5000, 50000)
	k := 1000
	samples := sc.pick(100, 300)
	t := &Table{
		ID:      "count",
		Title:   "leveraging counts: cost and accuracy by interface count mode",
		Header:  []string{"sampler / counts", "queries/sample", "TV(make) vs truth", "restarts"},
		Metrics: map[string]float64{},
	}

	type cfg struct {
		name  string
		mode  hiddendb.CountMode
		noise float64
		run   func(db *hiddendb.DB) (q float64, tv float64, restarts int64, err error)
	}
	runWalker := func(db *hiddendb.DB) (float64, float64, int64, error) {
		gen, err := core.NewWalker(ctx, formclient.NewLocal(db), core.WalkerConfig{Seed: 61, Order: core.OrderShuffle})
		if err != nil {
			return 0, 0, 0, err
		}
		tuples, cs, err := core.Collect(ctx, gen, nil, samples)
		if err != nil {
			return 0, 0, 0, err
		}
		return float64(cs.Queries) / float64(len(tuples)), marginalTV(db, tuples, datagen.VehAttrMake), gen.GenStats().Restarts, nil
	}
	runCount := func(upc bool) func(db *hiddendb.DB) (float64, float64, int64, error) {
		return func(db *hiddendb.DB) (float64, float64, int64, error) {
			gen, err := core.NewCountWalker(ctx, formclient.NewLocal(db),
				core.CountWalkerConfig{Seed: 62, UseParentCount: upc})
			if err != nil {
				return 0, 0, 0, err
			}
			tuples, cs, err := core.Collect(ctx, gen, nil, samples)
			if err != nil {
				return 0, 0, 0, err
			}
			return float64(cs.Queries) / float64(len(tuples)), marginalTV(db, tuples, datagen.VehAttrMake), gen.GenStats().Restarts, nil
		}
	}
	configs := []cfg{
		{"random walk / counts ignored", hiddendb.CountNone, 0, runWalker},
		{"count-weighted / exact counts", hiddendb.CountExact, 0, runCount(false)},
		{"count-weighted + parent inference / exact", hiddendb.CountExact, 0, runCount(true)},
		{"count-weighted / approx ±30%", hiddendb.CountApprox, 0.3, runCount(false)},
	}
	for _, c := range configs {
		db, err := vehiclesDB(n, k, c.mode, 63)
		if err != nil {
			return nil, err
		}
		if c.mode == hiddendb.CountApprox {
			ds := datagen.Vehicles(n, 63)
			db, err = hiddendb.New(ds.Schema, ds.Tuples, nil,
				hiddendb.Config{K: k, CountMode: c.mode, CountNoise: c.noise, NoiseSeed: 9})
			if err != nil {
				return nil, err
			}
		}
		q, tv, restarts, err := c.run(db)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{c.name, fmtF(q), fmtF(tv), fmt.Sprintf("%d", restarts)})
		t.Metrics["queries/sample:"+c.name] = q
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d, k=%d, %d samples; count-weighted pays per-child probes but never restarts and is exactly uniform with exact counts", n, k, samples),
		"the demo ignored Google Base's approximate counts (§3.1); the last row shows why the default is safe yet counts remain usable")
	return t, nil
}

// Aggregates reproduces the paper's motivating use case: "the percentage
// of Japanese cars in the dealer's inventory" plus COUNT/SUM/AVG (§3.4),
// with error shrinking as samples accumulate.
func Aggregates(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(5000, 50000)
	k := 1000
	sizes := []int{50, 100}
	if sc == ScaleFull {
		sizes = []int{50, 100, 200, 400, 800, 1600}
	}
	db, err := vehiclesDB(n, k, hiddendb.CountExact, 71)
	if err != nil {
		return nil, err
	}
	conn := history.New(formclient.NewLocal(db), history.Options{})
	gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 72, Order: core.OrderShuffle})
	if err != nil {
		return nil, err
	}

	// Ground truths.
	japanese := datagen.JapaneseMakeIndexes()
	trueJapanese := 0.0
	for _, idx := range japanese {
		c, _, _ := db.TrueAggregate(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx}), -1)
		trueJapanese += float64(c)
	}
	trueJapanese /= float64(db.Size())
	usedPred := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1})
	trueUsedCount, trueUsedMileage, _ := db.TrueAggregate(usedPred, datagen.VehAttrMileage)
	toyotaPred := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0})
	_, _, trueToyotaAvg := db.TrueAggregate(toyotaPred, datagen.VehAttrPrice)

	t := &Table{
		ID:     "aggregates",
		Title:  "aggregate estimates vs truth as the sample grows",
		Header: []string{"samples", "%japanese err", "COUNT(used) err", "AVG(price|toyota) err", "SUM(mileage|used) err"},
	}
	var tuples []hiddendb.Tuple
	var lastErrs [4]float64
	for _, target := range sizes {
		for len(tuples) < target {
			cand, err := gen.Candidate(ctx)
			if err != nil {
				return nil, err
			}
			tuples = append(tuples, cand.Tuple)
		}
		jp := 0.0
		for _, idx := range japanese {
			jp += estimate.Proportion(tuples, hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx})).Value
		}
		countEst := estimate.Count(tuples, usedPred, db.Size())
		avgEst := estimate.Avg(tuples, toyotaPred, datagen.VehAttrPrice)
		sumEst := estimate.Sum(tuples, usedPred, datagen.VehAttrMileage, db.Size())
		lastErrs = [4]float64{
			math.Abs(jp-trueJapanese) / trueJapanese,
			math.Abs(countEst.Value-float64(trueUsedCount)) / float64(trueUsedCount),
			math.Abs(avgEst.Value-trueToyotaAvg) / trueToyotaAvg,
			math.Abs(sumEst.Value-trueUsedMileage) / trueUsedMileage,
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(tuples)),
			fmtPct(lastErrs[0]), fmtPct(lastErrs[1]), fmtPct(lastErrs[2]), fmtPct(lastErrs[3]),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d, k=%d, raw walk (C=1) with shuffled order + history; truth: %%japanese=%.3f, COUNT(used)=%d, AVG(price|toyota)=%.0f, SUM(mileage|used)=%.3g",
			n, k, trueJapanese, trueUsedCount, trueToyotaAvg, trueUsedMileage),
		"reproduces the §1 claim that 'a very small number of uniform random samples can provide a quite accurate answer'")
	t.Metrics = map[string]float64{
		"err(%japanese)@max":  lastErrs[0],
		"err(count-used)@max": lastErrs[1],
	}
	return t, nil
}

// Scalability reproduces the abstract's "snapshot of the marginal
// distribution ... in a matter of minutes" claim across database sizes.
func Scalability(ctx context.Context, sc Scale) (*Table, error) {
	sizes := []int{2000, 10000}
	if sc == ScaleFull {
		sizes = []int{10000, 50000, 200000, 1000000}
	}
	samples := sc.pick(100, 500)
	k := 1000
	t := &Table{
		ID:      "scale",
		Title:   "wall time and queries to a fixed sample count vs database size",
		Header:  []string{"n (tuples)", "queries", "queries/sample", "wall(ms)", "TV(make)"},
		Metrics: map[string]float64{},
	}
	for i, n := range sizes {
		db, err := vehiclesDB(n, k, hiddendb.CountNone, int64(80+i))
		if err != nil {
			return nil, err
		}
		conn := history.New(formclient.NewLocal(db), history.Options{})
		gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: int64(81 + i), Order: core.OrderShuffle})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tuples, cs, err := core.Collect(ctx, gen, nil, samples)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", cs.Queries),
			fmtF(float64(cs.Queries) / float64(len(tuples))),
			fmt.Sprintf("%d", wall.Milliseconds()),
			fmtF(marginalTV(db, tuples, datagen.VehAttrMake)),
		})
		t.Metrics[fmt.Sprintf("queries/sample@n=%d", n)] = float64(cs.Queries) / float64(len(tuples))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d samples, k=%d, raw walk + history, local connector (network latency excluded); query cost is driven by tree shape, not n — larger inventories are no harder", samples, k))
	return t, nil
}

// Ordering reproduces the 2007 paper's random-ordering optimization that
// HDSampler exposes through its tuning parameters.
func Ordering(ctx context.Context, sc Scale) (*Table, error) {
	m := sc.pick(10, 14)
	n := sc.pick(500, 2000)
	k := 10
	orders := sc.pick(10, 40)
	ds := datagen.CorrelatedBoolean(m, n, 0.9, 91)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k})
	if err != nil {
		return nil, err
	}
	fixed, err := exact.WalkDist(db, nil, k)
	if err != nil {
		return nil, err
	}
	shuffled, err := exact.AverageWalkDist(db, k, orders, 92)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ordering",
		Title:  "fixed vs per-walk shuffled attribute order (exact analysis)",
		Header: []string{"order", "skew(C=1)", "TV vs uniform", "dead-end rate", "queries/walk"},
	}
	for _, row := range []struct {
		name string
		d    *exact.Dist
	}{{"fixed (schema order)", fixed}, {fmt.Sprintf("shuffled (avg over %d orders)", orders), shuffled}} {
		s := row.d.Summarize(1)
		t.Rows = append(t.Rows, []string{
			row.name, fmtF(s.Skew), fmtF(s.TV), fmtPct(row.d.DeadEnd), fmtF(row.d.QueriesPerWalk),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("correlated boolean m=%d n=%d corr=0.9 k=%d; shuffling averages away order-specific reach imbalance", m, n, k))
	t.Metrics = map[string]float64{
		"skew-fixed":    fixed.Summarize(1).Skew,
		"skew-shuffled": shuffled.Summarize(1).Skew,
	}
	return t, nil
}
