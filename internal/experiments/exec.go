package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/queryexec"
	"hdsampler/internal/webform"
)

// ExecLayer measures the query-execution layer's wire economics: the same
// 8-replica draw run direct, with single-flight coalescing, and with
// coalescing plus micro-batching against the web form's batch endpoint.
// The interface round trip is HDSampler's bottleneck (every drill-down
// level is one HTTP query against a rate-limited site), so the headline
// number is wire requests per logical query — the fraction of the
// politeness budget each configuration burns for the same sample.
func ExecLayer(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(3000, 20000)
	perWorker := sc.pick(12, 60)
	const workers = 8

	ds := datagen.Vehicles(n, 151)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 500})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(webform.NewServer(db, webform.Options{MaxBatch: 16}))
	defer srv.Close()

	t := &Table{
		ID:      "exec",
		Title:   "query-execution layer: coalescing + micro-batching wire savings (8 replicas)",
		Header:  []string{"configuration", "samples", "logical queries", "wire requests", "wire/query", "coalesced", "batched", "wall(ms)"},
		Metrics: map[string]float64{},
	}
	for _, cfg := range []struct {
		name     string
		layer    bool
		linger   time.Duration
		inflight int
	}{
		{"direct (baseline)", false, 0, 0},
		{"+ coalesce", true, 0, 0},
		{"+ coalesce + batch 3ms", true, 3 * time.Millisecond, 8},
	} {
		api := formclient.NewAPI(srv.URL, formclient.HTTPOptions{Client: srv.Client()})
		var conn formclient.Conn = api
		var exec *queryexec.Executor
		if cfg.layer {
			opts := queryexec.Options{BatchLinger: cfg.linger, MaxBatch: 16}
			if cfg.inflight > 0 {
				opts.Limiter = queryexec.NewLimiter(queryexec.LimiterOptions{MaxInFlight: cfg.inflight})
			}
			exec = queryexec.New(api, opts)
			conn = exec
		}
		if _, err := conn.Schema(ctx); err != nil {
			return nil, err
		}
		req0 := api.Stats().HTTPRequests

		start := time.Now()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		var samples int
		var logical int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{
					Seed: 152 + int64(w)*7919, Order: core.OrderShuffle,
				})
				if err == nil {
					var tuples []hiddendb.Tuple
					tuples, _, err = core.Collect(ctx, gen, nil, perWorker)
					mu.Lock()
					samples += len(tuples)
					logical += gen.GenStats().Queries
					mu.Unlock()
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, firstErr)
		}
		wall := time.Since(start)
		wire := api.Stats().HTTPRequests - req0
		perQuery := float64(wire) / float64(logical)
		var coalesced, batched int64
		if exec != nil {
			xs := exec.ExecStats()
			coalesced, batched = xs.Coalesced, xs.Batched
		}
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%d", samples),
			fmt.Sprintf("%d", logical),
			fmt.Sprintf("%d", wire),
			fmtF(perQuery),
			fmt.Sprintf("%d", coalesced),
			fmt.Sprintf("%d", batched),
			fmt.Sprintf("%d", wall.Milliseconds()),
		})
		t.Metrics["wire/query:"+cfg.name] = perQuery
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d behind the web form API, k=500, %d replicas × %d raw-walk samples, no history cache (isolating the layer)", n, workers, perWorker),
		"coalescing collapses identical in-flight queries; batching packs concurrent distinct queries into POST /api/search/batch, one rate-limit charge per batch wire request")
	return t, nil
}
