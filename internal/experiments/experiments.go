// Package experiments regenerates every exhibit of the HDSampler demo
// paper: Figures 1–4 and the quantitative claims embedded in the prose
// (top-k limits of real sites, the efficiency↔skew slider, history
// savings, brute-force impracticality, count leveraging, aggregate
// accuracy, scalability, attribute ordering). Each experiment returns a
// Table whose rows cmd/hdbench prints and whose Metrics the root package's
// benchmarks report, so the numbers in EXPERIMENTS.md are reproducible
// from either entry point.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"
)

// Scale selects experiment sizing: ScaleSmall keeps unit tests and
// benchmarks fast; ScaleFull reproduces the paper-scale setup.
type Scale int

const (
	ScaleSmall Scale = iota
	ScaleFull
)

// pick returns small or full depending on the scale.
func (s Scale) pick(small, full int) int {
	if s == ScaleFull {
		return full
	}
	return small
}

// Table is one experiment's rendered result.
type Table struct {
	// ID is the experiment key (e.g. "figure4", "tradeoff"); Title the
	// paper exhibit it reproduces.
	ID, Title string
	Header    []string
	Rows      [][]string
	// Notes hold workload parameters and caveats, printed under the table.
	Notes []string
	// Metrics are the headline numbers benchmarks report
	// (name -> value, unit embedded in the name, e.g. "queries/sample").
	Metrics map[string]float64
}

// Fprint renders the table with aligned columns (widths in runes, so
// symbols like ± align).
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if n := utf8.RuneCountInString(cell); i < len(widths) && n < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-n))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment couples an ID with its runner. Run accepts the caller's
// context so a whole exhibit sweep can be cancelled or deadlined from the
// entry point (cmd/hdbench flag, test timeout) instead of each experiment
// minting its own detached root.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, Scale) (*Table, error)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"figure1", "Fig. 1 — query tree walk on the worked example", Figure1},
		{"figure2", "Fig. 2 — incremental pipeline with kill switch", Figure2},
		{"figure3", "Fig. 3 — attribute scoping", Figure3},
		{"figure4", "Fig. 4 — marginal histograms vs brute-force truth", Figure4},
		{"topk", "§2 — real-world top-k limits (k = 25…4000)", TopK},
		{"tradeoff", "§3.1 — efficiency vs skew slider", Tradeoff},
		{"history", "§3.2 — query history savings", History},
		{"bruteforce", "§3.4 — brute force impracticality", BruteForceTable},
		{"count", "[2] — leveraging count information", CountLeverage},
		{"aggregates", "§1/§3.4 — approximate aggregates", Aggregates},
		{"scale", "abstract — 'matter of minutes' scalability", Scalability},
		{"ordering", "2007 §opt — fixed vs shuffled attribute order", Ordering},
		{"crawl", "§1 — crawling vs sampling for one aggregate", CrawlVsSample},
		{"weighted", "ext — Horvitz–Thompson weighting vs rejection", WeightedEstimation},
		{"deployment", "ext — the fully realistic interface end to end", Deployment},
		{"cache", "ext — shared history cache under concurrency", CacheConcurrency},
		{"exec", "ext — query-execution layer wire savings", ExecLayer},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs sorted as listed.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// fmtF renders a float compactly.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// sortedKeys is a helper for deterministic metric iteration in tests.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
