package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

// CacheConcurrency profiles the shared history cache the way the daemon
// uses it: many workers replaying a warm working set through one cache,
// plus deep-query ancestor inference. The sharded/indexed redesign is
// what makes these numbers flat in the worker count; the table records
// the trajectory per PR via hdbench -json.
func CacheConcurrency(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(5000, 20000)
	opsPerWorker := sc.pick(2000, 10000)
	deepOps := sc.pick(500, 4000)

	ds := datagen.Vehicles(n, 17)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 1000})
	if err != nil {
		return nil, err
	}
	cache := history.New(formclient.NewLocal(db), history.Options{})

	// Warm a hot working set: the (make, condition) slices replicas
	// re-request constantly.
	var queries []hiddendb.Query
	for mk := 0; mk < 8; mk++ {
		for cond := 0; cond < 2; cond++ {
			q := hiddendb.MustQuery(
				hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: mk},
				hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: cond})
			if _, err := cache.Execute(ctx, q); err != nil {
				return nil, err
			}
			queries = append(queries, q)
		}
	}

	t := &Table{
		ID:      "cache",
		Title:   "shared history cache under concurrency (sharded + ancestor index)",
		Header:  []string{"workload", "goroutines", "ops", "elapsed", "ops/sec"},
		Metrics: map[string]float64{},
	}
	for _, workers := range []int{1, 4, 8, 16} {
		start := time.Now()
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPerWorker; i++ {
					if _, err := cache.Execute(ctx, queries[(i+w)%len(queries)]); err != nil {
						errc <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			return nil, fmt.Errorf("hot replay with %d workers: %w", workers, err)
		}
		elapsed := time.Since(start)
		ops := workers * opsPerWorker
		rate := float64(ops) / elapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			"hot replay", fmt.Sprintf("%d", workers), fmt.Sprintf("%d", ops),
			fmt.Sprintf("%.1fms", float64(elapsed.Microseconds())/1000), fmtF(rate),
		})
		t.Metrics[fmt.Sprintf("hits/sec@%d", workers)] = rate
	}

	// Deep inference: one complete root answers depth-12 descendants
	// through the ancestor index (the old design probed 2^12 subsets per
	// query under the global lock).
	const attrs, depth = 24, 12
	dsDeep := datagen.IIDBoolean(attrs, 50, 0.5, 23)
	dbDeep, err := hiddendb.New(dsDeep.Schema, dsDeep.Tuples, nil, hiddendb.Config{K: 100})
	if err != nil {
		return nil, err
	}
	deep := history.New(formclient.NewLocal(dbDeep), history.Options{})
	if _, err := deep.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(29))
	start := time.Now()
	for i := 0; i < deepOps; i++ {
		perm := rng.Perm(attrs)[:depth]
		sort.Ints(perm)
		q := hiddendb.EmptyQuery()
		for _, a := range perm {
			q = q.With(a, rng.Intn(2))
		}
		if _, err := deep.Execute(ctx, q); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start)
	rate := float64(deepOps) / elapsed.Seconds()
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("deep inference d=%d", depth), "1", fmt.Sprintf("%d", deepOps),
		fmt.Sprintf("%.1fms", float64(elapsed.Microseconds())/1000), fmtF(rate),
	})
	t.Metrics["deep-infer/sec"] = rate
	if st := deep.CacheStats(); st.Inferred > 0 {
		t.Metrics["deep-inferred"] = float64(st.Inferred)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d k=1000, %d-query hot set; deep workload: iid boolean m=%d, depth %d, one cached root", n, len(queries), attrs, depth),
		fmt.Sprintf("GOMAXPROCS=%d — hot-replay scaling needs multiple CPUs to show", runtime.GOMAXPROCS(0)))
	return t, nil
}
