package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/estimate"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

// WeightedEstimation compares three ways to answer an aggregate from the
// same candidate stream (identical query bill): naive (pretend raw
// candidates are uniform — the mistake the acceptance/rejection module
// exists to prevent), rejection (discard candidates until near-uniform,
// then estimate), and Horvitz–Thompson weighting (use every candidate,
// weighted by 1/reach) — the unbiased-estimation upgrade from the count-
// leveraging line.
func WeightedEstimation(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(5000, 50000)
	k := 1000
	candidates := sc.pick(500, 1500)
	db, err := vehiclesDB(n, k, hiddendb.CountNone, 101)
	if err != nil {
		return nil, err
	}
	conn := history.New(formclient.NewLocal(db), history.Options{})
	gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 102, Order: core.OrderShuffle})
	if err != nil {
		return nil, err
	}

	// Ground truth.
	japanese := datagen.JapaneseMakeIndexes()
	trueJP := 0.0
	for _, idx := range japanese {
		c, _, _ := db.TrueAggregate(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx}), -1)
		trueJP += float64(c)
	}
	usedPred := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1})
	trueUsed, _, _ := db.TrueAggregate(usedPred, -1)

	// One candidate stream shared by all three estimators.
	ws := &estimate.WeightedSet{}
	var tuples []hiddendb.Tuple
	var cands []*core.Candidate
	for len(ws.Samples) < candidates {
		cand, err := gen.Candidate(ctx)
		if err != nil {
			return nil, err
		}
		ws.Add(cand.Tuple, cand.Reach, cand.Restarts)
		tuples = append(tuples, cand.Tuple)
		cands = append(cands, cand)
	}
	queries := gen.GenStats().Queries

	// Rejection pass over the same stream, with C self-calibrated to the
	// 25th percentile of observed reaches — a mid-slider setting that
	// adapts to the database instead of requiring ground truth.
	reaches := make([]float64, len(cands))
	for i, c := range cands {
		reaches[i] = c.Reach
	}
	sort.Float64s(reaches)
	cTarget := reaches[len(reaches)/4]
	rej := core.NewRejector(cTarget, 103)
	var accepted []hiddendb.Tuple
	for _, c := range cands {
		if rej.Accept(c) {
			accepted = append(accepted, c.Tuple)
		}
	}

	jpOf := func(samples []hiddendb.Tuple) float64 {
		p := 0.0
		for _, idx := range japanese {
			p += estimate.Proportion(samples, hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx})).Value
		}
		return p * float64(db.Size())
	}
	relErr := func(got, want float64) float64 { return math.Abs(got-want) / want }

	htJP := 0.0
	for _, idx := range japanese {
		htJP += ws.Count(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx})).Value
	}

	t := &Table{
		ID:     "weighted",
		Title:  "same candidate stream, three estimators (COUNT japanese / COUNT used)",
		Header: []string{"estimator", "samples used", "japanese err", "COUNT(used) err"},
	}
	rows := []struct {
		name    string
		used    int
		jpErr   float64
		usedErr float64
	}{
		{"naive (raw candidates as uniform)", len(tuples),
			relErr(jpOf(tuples), trueJP),
			relErr(estimate.Count(tuples, usedPred, db.Size()).Value, float64(trueUsed))},
		{fmt.Sprintf("rejection (C = p25 of reach, %d kept)", len(accepted)), len(accepted),
			relErr(jpOf(accepted), trueJP),
			relErr(estimate.Count(accepted, usedPred, db.Size()).Value, float64(trueUsed))},
		{"Horvitz-Thompson (all candidates, 1/reach)", len(tuples),
			relErr(htJP, trueJP),
			relErr(ws.Count(usedPred).Value, float64(trueUsed))},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.name, fmt.Sprintf("%d", r.used), fmtPct(r.jpErr), fmtPct(r.usedErr)})
	}
	popEst := ws.Population()
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d, k=%d; one stream of %d candidates (%d interface queries) feeds all three estimators", n, k, candidates, queries),
		fmt.Sprintf("the HT set also estimates the database size without counts: %.0f ± %.0f (truth %d)", popEst.Value, popEst.StdErr, db.Size()),
		"naive inherits the walk's systematic skew; rejection is unbiased but discards candidates; HT is unbiased and uses everything at the cost of weight variance")
	t.Metrics = map[string]float64{
		"ht-japanese-err":    rows[2].jpErr,
		"naive-japanese-err": rows[0].jpErr,
		"ht-population-err":  relErr(popEst.Value, float64(db.Size())),
	}
	return t, nil
}
