package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
	"hdsampler/internal/webform"
)

// Deployment runs the sampler against the fully adversarial interface a
// real deployment faces — HTML scraping, paginated results, per-client
// rate limiting with 429 retries, politeness delays, approximate counts —
// and reports the end-to-end bill. This is the demo's operating condition
// (a live web site), not a lab shortcut.
func Deployment(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(4000, 20000)
	samples := sc.pick(60, 200)
	ds := datagen.Vehicles(n, 111)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{
		K: 1000, CountMode: hiddendb.CountApprox, CountNoise: 0.3, NoiseSeed: 5,
	})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(webform.NewServer(db, webform.Options{
		RatePerSec: 120, Burst: 8, PageSize: 100,
	}))
	defer srv.Close()

	t := &Table{
		ID:      "deployment",
		Title:   "sampling through the fully realistic interface (pagination + rate limit + scraping)",
		Header:  []string{"configuration", "samples", "logical queries", "HTTP requests", "429 retries", "wall(ms)", "TV(make)"},
		Metrics: map[string]float64{},
	}
	for _, cfg := range []struct {
		name       string
		politeness time.Duration
		history    bool
	}{
		{"scrape, no history", 0, false},
		{"scrape + history cache", 0, true},
		{"scrape + history + 2ms politeness", 2 * time.Millisecond, true},
	} {
		httpConn := formclient.NewHTTP(srv.URL, formclient.HTTPOptions{
			Client: srv.Client(), Politeness: cfg.politeness, MaxRetries: 50,
		})
		var conn formclient.Conn = httpConn
		if cfg.history {
			conn = history.New(httpConn, history.Options{})
		}
		gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 112, Order: core.OrderShuffle})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		tuples, _, err := core.Collect(ctx, gen, nil, samples)
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		st := httpConn.Stats()
		t.Rows = append(t.Rows, []string{
			cfg.name,
			fmt.Sprintf("%d", len(tuples)),
			fmt.Sprintf("%d", st.Queries),
			fmt.Sprintf("%d", st.HTTPRequests),
			fmt.Sprintf("%d", st.RateLimitRetries),
			fmt.Sprintf("%d", wall.Milliseconds()),
			fmtF(marginalTV(db, tuples, datagen.VehAttrMake)),
		})
		t.Metrics["http-requests:"+cfg.name] = float64(st.HTTPRequests)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d behind HTML form, k=1000, page size 100, server limit 120 q/s burst 8, approximate counts; %d raw-walk samples per configuration", n, samples),
		"overflow pages stop at page 1 (their rows are unused by the drill-down); the history cache removes repeat traffic so fewer requests hit the rate limiter")
	return t, nil
}
