package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/estimate"
	"hdsampler/internal/exact"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
	"hdsampler/internal/metrics"
	"hdsampler/internal/webform"
)

// vehiclesDB builds the standard Vehicles workload.
func vehiclesDB(n, k int, mode hiddendb.CountMode, seed int64) (*hiddendb.DB, error) {
	ds := datagen.Vehicles(n, seed)
	return hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
}

// marginalTV computes the total-variation distance between a sampled
// marginal and the database's true marginal for one attribute.
func marginalTV(db *hiddendb.DB, samples []hiddendb.Tuple, attr int) float64 {
	truth := metrics.Normalize(db.TrueMarginal(attr))
	got := make([]int, db.Schema().DomainSize(attr))
	for i := range samples {
		got[samples[i].Vals[attr]]++
	}
	return metrics.TVFromCounts(got, truth)
}

// Figure1 reproduces the paper's worked example: the query tree of the
// 4-tuple boolean database, each tuple's exact reach probability, and the
// effect of acceptance/rejection at the uniformizing C.
func Figure1(context.Context, Scale) (*Table, error) {
	s := hiddendb.MustSchema("fig1",
		hiddendb.BoolAttr("a1"), hiddendb.BoolAttr("a2"), hiddendb.BoolAttr("a3"))
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 1}}, // t1
		{Vals: []int{0, 1, 0}}, // t2
		{Vals: []int{0, 1, 1}}, // t3
		{Vals: []int{1, 1, 0}}, // t4
	}
	db, err := hiddendb.New(s, tuples, nil, hiddendb.Config{K: 1})
	if err != nil {
		return nil, err
	}
	d, err := exact.WalkDist(db, nil, 1)
	if err != nil {
		return nil, err
	}
	cUniform := d.MinReach()
	uni := d.Summarize(cUniform)
	raw := d.Summarize(1)

	t := &Table{
		ID:     "figure1",
		Title:  "random walk over the Fig. 1 boolean database (k=1)",
		Header: []string{"tuple", "values", "reach P", "accept P (C=1/8)", "final P (C=1/8)"},
		Metrics: map[string]float64{
			"queries/walk":          d.QueriesPerWalk,
			"queries/sample(C=1/8)": uni.QueriesPerSample,
			"skew(C=1)":             raw.Skew,
			"skew(C=1/8)":           uni.Skew,
			"accept-rate(C=1/8)":    uni.AcceptPerWalk / uni.CandidatePerWalk,
		},
	}
	names := []string{"t1 (001)", "t2 (010)", "t3 (011)", "t4 (110)"}
	for i, name := range names {
		acc := 1.0
		if d.Reach[i] > cUniform {
			acc = cUniform / d.Reach[i]
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d%d%d", tuples[i].Vals[0], tuples[i].Vals[1], tuples[i].Vals[2]),
			fmtF(d.Reach[i]),
			fmtF(acc),
			fmtF(minF(d.Reach[i], cUniform)),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("expected queries per walk %.3g; with C=1/8 every tuple's final probability is 1/8 (uniform), %.3g queries per accepted sample", d.QueriesPerWalk, uni.QueriesPerSample),
		"matches §2 of the demo paper: shallow tuples (t4 at depth 1) are reached most and must be rejected most")
	return t, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Figure2 reproduces the architecture demonstration: the incremental
// Generator→Processor→Output pipeline delivering samples continuously, and
// the kill switch stopping a run mid-flight.
func Figure2(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(4000, 20000)
	target := sc.pick(80, 200)
	db, err := vehiclesDB(n, 100, hiddendb.CountNone, 2)
	if err != nil {
		return nil, err
	}
	conn := history.New(formclient.NewLocal(db), history.Options{})
	gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 3, Order: core.OrderShuffle})
	if err != nil {
		return nil, err
	}
	pipe := core.NewPipeline(gen, nil, core.PipelineConfig{Target: target})
	acc := estimate.NewAccumulator(db.Schema(), 10)
	start := time.Now()
	var collected []hiddendb.Tuple

	t := &Table{
		ID:     "figure2",
		Title:  "incremental pipeline: histogram converges as samples stream in",
		Header: []string{"samples", "queries", "elapsed(ms)", "TV(make) vs truth"},
	}
	milestones := map[int]bool{target / 4: true, target / 2: true, 3 * target / 4: true, target: true}
	for s := range pipe.Start(ctx) {
		acc.Add(s.Tuple)
		collected = append(collected, s.Tuple)
		if milestones[acc.N()] {
			pr := pipe.Progress()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", acc.N()),
				fmt.Sprintf("%d", pr.Queries),
				fmt.Sprintf("%d", time.Since(start).Milliseconds()),
				fmtF(marginalTV(db, collected, datagen.VehAttrMake)),
			})
		}
	}
	if err := pipe.Err(); err != nil {
		return nil, err
	}

	// Kill switch: start an unbounded run, stop after target/4 samples.
	gen2, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 5, Order: core.OrderShuffle})
	if err != nil {
		return nil, err
	}
	pipe2 := core.NewPipeline(gen2, nil, core.PipelineConfig{})
	ch := pipe2.Start(ctx)
	got := 0
	for range ch {
		got++
		if got == target/4 {
			pipe2.Stop()
		}
	}
	if !pipe2.Progress().Done {
		return nil, fmt.Errorf("kill switch failed to stop the pipeline")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d, k=100, shuffled order, history cache on; unbounded second run stopped cleanly by kill switch after %d samples", n, got))
	finalTV := marginalTV(db, collected, datagen.VehAttrMake)
	t.Metrics = map[string]float64{
		"samples":        float64(len(collected)),
		"final-tv(make)": finalTV,
		"queries/sample": float64(pipe.Progress().Queries) / float64(len(collected)),
	}
	return t, nil
}

// Figure3 reproduces the attribute-settings exhibit: restricting the
// sampler to a subset of attributes (the Fig. 3 checkboxes) changes walk
// depth and cost but keeps the scoped marginals accurate.
func Figure3(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(4000, 20000)
	samples := sc.pick(150, 400)
	db, err := vehiclesDB(n, 100, hiddendb.CountNone, 7)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name  string
		attrs []int
	}{
		{"all 10 attributes", nil},
		{"make+price+condition", []int{datagen.VehAttrMake, datagen.VehAttrPrice, datagen.VehAttrCondition}},
		{"make only", []int{datagen.VehAttrMake}},
	}
	t := &Table{
		ID:      "figure3",
		Title:   "attribute scoping: cost and accuracy per selection",
		Header:  []string{"scope", "queries/sample", "restart rate", "TV(make) vs truth"},
		Metrics: map[string]float64{},
	}
	for i, cfg := range configs {
		conn := formclient.NewLocal(db)
		gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{
			Seed: int64(10 + i), Order: core.OrderShuffle, Attrs: cfg.attrs,
		})
		if err != nil {
			return nil, err
		}
		tuples, cs, err := core.Collect(ctx, gen, nil, samples)
		if err != nil {
			return nil, err
		}
		gs := gen.GenStats()
		restartRate := float64(gs.Restarts) / float64(gs.Walks)
		qps := float64(cs.Queries) / float64(len(tuples))
		t.Rows = append(t.Rows, []string{
			cfg.name, fmtF(qps), fmtPct(restartRate), fmtF(marginalTV(db, tuples, datagen.VehAttrMake)),
		})
		t.Metrics["queries/sample:"+cfg.name] = qps
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d, k=100, %d samples per scope; narrower scopes walk shallower trees (make/model mismatches vanish) at the cost of coarser samples", n, samples))
	return t, nil
}

// Figure4 reproduces the headline exhibit: marginal histograms from
// HDSampler against ground truth and against the BRUTE-FORCE-SAMPLER
// reference, sampled through the live HTTP form interface with Google
// Base's k = 1000.
func Figure4(ctx context.Context, sc Scale) (*Table, error) {
	n := sc.pick(5000, 50000)
	steps := []int{sc.pick(50, 100), sc.pick(150, 500), sc.pick(400, 2000)}
	bruteSamples := sc.pick(60, 300)

	db, err := vehiclesDB(n, 1000, hiddendb.CountApprox, 4)
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	defer srv.Close()

	conn := history.New(
		formclient.NewHTTP(srv.URL, formclient.HTTPOptions{Client: srv.Client()}),
		history.Options{})
	gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: 11, Order: core.OrderShuffle})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "figure4",
		Title:  "marginals vs truth over the live HTML interface (k=1000)",
		Header: []string{"estimator", "samples", "queries", "TV(make)", "TV(price)", "TV(condition)"},
	}
	var collected []hiddendb.Tuple
	var lastTV float64
	for _, target := range steps {
		for len(collected) < target {
			cand, err := gen.Candidate(ctx)
			if err != nil {
				return nil, err
			}
			collected = append(collected, cand.Tuple)
		}
		lastTV = marginalTV(db, collected, datagen.VehAttrMake)
		t.Rows = append(t.Rows, []string{
			"HDSampler/HTTP",
			fmt.Sprintf("%d", len(collected)),
			fmt.Sprintf("%d", gen.GenStats().Queries),
			fmtF(lastTV),
			fmtF(marginalTV(db, collected, datagen.VehAttrPrice)),
			fmtF(marginalTV(db, collected, datagen.VehAttrCondition)),
		})
	}

	// BRUTE-FORCE reference (long offline run in the paper): local
	// connector, reduced sample count — it is orders of magnitude slower.
	brute, err := core.NewBruteForce(ctx, formclient.NewLocal(db), core.BruteForceConfig{Seed: 12})
	if err != nil {
		return nil, err
	}
	bruteTuples, _, err := core.Collect(ctx, brute, nil, bruteSamples)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"BRUTE-FORCE ref",
		fmt.Sprintf("%d", len(bruteTuples)),
		fmt.Sprintf("%d", brute.GenStats().Queries),
		fmtF(marginalTV(db, bruteTuples, datagen.VehAttrMake)),
		fmtF(marginalTV(db, bruteTuples, datagen.VehAttrPrice)),
		fmtF(marginalTV(db, bruteTuples, datagen.VehAttrCondition)),
	})

	hdQueries := float64(gen.GenStats().Queries)
	bfQueries := float64(brute.GenStats().Queries)
	t.Notes = append(t.Notes,
		fmt.Sprintf("vehicles n=%d behind a live HTML form; HDSampler scraped every answer (%d HTTP requests), approximate counts ignored as in the demo", n, conn.Stats().HTTPRequests),
		fmt.Sprintf("brute force needed %.0f queries/sample vs HDSampler's %.1f — the demo's point that brute force is impractical while its samples validate the histograms",
			bfQueries/float64(len(bruteTuples)), hdQueries/float64(len(collected))))
	t.Metrics = map[string]float64{
		"tv(make)@max-samples": lastTV,
		"hd-queries/sample":    hdQueries / float64(len(collected)),
		"brute-queries/sample": bfQueries / float64(len(bruteTuples)),
	}
	return t, nil
}
