package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestAllExperimentsRunSmall executes every experiment at small scale and
// checks structural sanity: rows present, header arity respected, metrics
// populated, and the table renders.
func TestAllExperimentsRunSmall(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(context.Background(), ScaleSmall)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
				}
			}
			if len(tbl.Metrics) == 0 {
				t.Error("no metrics")
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			out := buf.String()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, tbl.Header[0]) {
				t.Errorf("render missing pieces:\n%s", out)
			}
		})
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs = %d, All = %d", len(ids), len(All()))
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found something")
	}
}

// TestFigure1ExactNumbers pins the worked example's numbers: they are
// analytic and must never drift.
func TestFigure1ExactNumbers(t *testing.T) {
	tbl, err := Figure1(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.Metrics["queries/walk"]; got != 1.75 {
		t.Errorf("queries/walk = %g, want 1.75", got)
	}
	if got := tbl.Metrics["queries/sample(C=1/8)"]; got != 3.5 {
		t.Errorf("queries/sample = %g, want 3.5", got)
	}
	if got := tbl.Metrics["skew(C=1/8)"]; got > 1e-12 {
		t.Errorf("uniform skew = %g, want 0", got)
	}
	if got := tbl.Metrics["skew(C=1)"]; got <= 0 {
		t.Errorf("raw skew = %g, want > 0", got)
	}
}

// TestTradeoffShape verifies the headline slider property: cost falls and
// skew rises monotonically as the slider moves toward efficiency.
func TestTradeoffShape(t *testing.T) {
	tbl, err := Tradeoff(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	positions := []string{"0", "0.25", "0.5", "0.75", "1"}
	prevCost := -1.0
	prevSkew := -1.0
	first := true
	for _, pos := range positions {
		cost := tbl.Metrics["queries/sample@slider="+padPos(pos)]
		skew := tbl.Metrics["skew@slider="+padPos(pos)]
		if !first {
			if cost > prevCost+1e-9 {
				t.Errorf("cost rose along slider at %s: %g > %g", pos, cost, prevCost)
			}
			if skew < prevSkew-1e-9 {
				t.Errorf("skew fell along slider at %s: %g < %g", pos, skew, prevSkew)
			}
		}
		prevCost, prevSkew, first = cost, skew, false
	}
}

func padPos(p string) string {
	switch p {
	case "0":
		return "0.00"
	case "0.25":
		return "0.25"
	case "0.5":
		return "0.50"
	case "0.75":
		return "0.75"
	default:
		return "1.00"
	}
}

// TestHistorySavesQueries pins the §3.2 claim: the cache strictly reduces
// queries sent.
func TestHistorySavesQueries(t *testing.T) {
	tbl, err := History(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	noCache := tbl.Metrics["queries-sent:no cache"]
	withCache := tbl.Metrics["queries-sent:cache (repeat + ancestor rules)"]
	if withCache >= noCache {
		t.Errorf("cache did not reduce queries: %g >= %g", withCache, noCache)
	}
}

// TestBruteForceDominated pins §3.4: brute force costs orders of magnitude
// more than the walk and the gap widens with m.
func TestBruteForceDominated(t *testing.T) {
	tbl, err := BruteForceTable(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	r12 := tbl.Metrics["brute/walk@m=12"]
	r20 := tbl.Metrics["brute/walk@m=20"]
	if r12 <= 1 {
		t.Errorf("brute force not dominated at m=12: ratio %g", r12)
	}
	if r20 <= r12 {
		t.Errorf("gap did not widen: m=20 ratio %g <= m=12 ratio %g", r20, r12)
	}
}

// TestOrderingReducesSkew pins the 2007 optimization's direction.
func TestOrderingReducesSkew(t *testing.T) {
	tbl, err := Ordering(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Metrics["skew-shuffled"] >= tbl.Metrics["skew-fixed"] {
		t.Errorf("shuffling did not reduce skew: %g >= %g",
			tbl.Metrics["skew-shuffled"], tbl.Metrics["skew-fixed"])
	}
}

// TestFigure4Shape pins the headline exhibit's direction: HDSampler's
// histogram approaches truth and costs far fewer queries per sample than
// brute force.
func TestFigure4Shape(t *testing.T) {
	tbl, err := Figure4(context.Background(), ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if tv := tbl.Metrics["tv(make)@max-samples"]; tv > 0.25 {
		t.Errorf("make marginal TV %g too far from truth", tv)
	}
	hd := tbl.Metrics["hd-queries/sample"]
	brute := tbl.Metrics["brute-queries/sample"]
	if brute < 10*hd {
		t.Errorf("brute force (%g q/s) should dwarf HDSampler (%g q/s)", brute, hd)
	}
}
