package experiments

import (
	"context"
	"fmt"
	"math"

	"hdsampler/internal/core"
	"hdsampler/internal/datagen"
	"hdsampler/internal/estimate"
	"hdsampler/internal/formclient"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/history"
)

// CrawlVsSample reproduces the paper's introductory argument: answering
// one aggregate question ("the percentage of Japanese cars") from a small
// sample costs a tiny fraction of crawling the database, and the gap
// widens with inventory size while the sample cost stays flat.
func CrawlVsSample(ctx context.Context, sc Scale) (*Table, error) {
	sizes := []int{2000, 10000}
	if sc == ScaleFull {
		sizes = []int{10000, 50000, 200000}
	}
	k := 100
	const wantSamples = 200
	t := &Table{
		ID:      "crawl",
		Title:   "crawl vs sample: cost to answer '% japanese cars'",
		Header:  []string{"n (tuples)", "crawl queries", "sample queries", "crawl/sample", "sample answer err"},
		Metrics: map[string]float64{},
	}
	for i, n := range sizes {
		db, err := vehiclesDB(n, k, hiddendb.CountNone, int64(95+i))
		if err != nil {
			return nil, err
		}
		// Ground truth.
		trueJP := 0.0
		for _, idx := range datagen.JapaneseMakeIndexes() {
			c, _, _ := db.TrueAggregate(hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx}), -1)
			trueJP += float64(c)
		}
		trueJP /= float64(db.Size())

		crawler, err := core.NewCrawler(ctx, formclient.NewLocal(db), core.CrawlerConfig{})
		if err != nil {
			return nil, err
		}
		if _, err := crawler.Run(ctx); err != nil {
			return nil, err
		}

		conn := history.New(formclient.NewLocal(db), history.Options{})
		gen, err := core.NewWalker(ctx, conn, core.WalkerConfig{Seed: int64(96 + i), Order: core.OrderShuffle})
		if err != nil {
			return nil, err
		}
		samples, cs, err := core.Collect(ctx, gen, nil, wantSamples)
		if err != nil {
			return nil, err
		}
		jp := 0.0
		for _, idx := range datagen.JapaneseMakeIndexes() {
			jp += estimate.Proportion(samples, hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: idx})).Value
		}
		ratio := float64(crawler.Queries()) / float64(cs.Queries)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", crawler.Queries()),
			fmt.Sprintf("%d", cs.Queries),
			fmtF(ratio),
			fmtPct(math.Abs(jp-trueJP) / trueJP),
		})
		t.Metrics[fmt.Sprintf("crawl/sample@n=%d", n)] = ratio
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("k=%d, %d samples (raw walk + history); crawl cost grows ~n/k·depth while the sample bill is flat in n", k, wantSamples),
		"reproduces §1: 'crawling a very large hidden database can be extremely expensive ... a very small number of uniform random samples can provide a quite accurate answer'")
	return t, nil
}
