// Package hiddendb implements the back-end hidden database substrate: a
// relational table reachable only through a conjunctive top-k query
// interface, exactly the access model HDSampler (SIGMOD 2009) samples
// through. It provides schemas with boolean, categorical and bucketed
// numeric attributes, pluggable deterministic ranking functions, overflow
// and underflow classification, and exact / approximate / absent COUNT
// reporting, mirroring interfaces such as Google Base (k = 1000,
// approximate counts).
package hiddendb

import (
	"fmt"
	"math"
	"strings"
)

// Kind identifies how an attribute's domain is presented by the form
// interface.
type Kind int

const (
	// KindBool is a two-valued attribute rendered as false/true.
	KindBool Kind = iota
	// KindCategorical is a finite labelled domain (e.g. vehicle make).
	KindCategorical
	// KindNumeric is a continuous attribute exposed by the form as a fixed
	// set of range buckets (e.g. price bands), the way real web forms
	// present price or mileage. Tuples carry the raw numeric value too, so
	// SUM/AVG aggregates can be estimated from samples.
	KindNumeric
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindCategorical:
		return "categorical"
	case KindNumeric:
		return "numeric"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Bucket is a half-open numeric range [Lo, Hi) used by KindNumeric
// attributes. The final bucket of an attribute is closed at Hi.
type Bucket struct {
	Lo, Hi float64
}

// Contains reports whether x falls inside the bucket, treating the bucket
// as [Lo, Hi). Callers that need the closed last bucket use
// Attribute.BucketOf which special-cases the end.
func (b Bucket) Contains(x float64) bool {
	return x >= b.Lo && x < b.Hi
}

// Label renders the bucket as "lo-hi" with compact integer formatting.
func (b Bucket) Label() string {
	return fmt.Sprintf("%s-%s", compactNum(b.Lo), compactNum(b.Hi))
}

func compactNum(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

// Attribute describes one searchable field of the hidden database.
type Attribute struct {
	// Name is the attribute's label, also used as the form field name.
	Name string
	// Kind determines how Values was derived.
	Kind Kind
	// Values holds the domain labels, in form-option order. For KindBool it
	// is always ["false","true"]; for KindNumeric it is the bucket labels.
	Values []string
	// Buckets holds the numeric ranges for KindNumeric attributes, aligned
	// with Values. Empty otherwise.
	Buckets []Bucket
}

// DomainSize returns the number of selectable values.
func (a *Attribute) DomainSize() int { return len(a.Values) }

// ValueIndex returns the index of label within the attribute domain, or -1.
func (a *Attribute) ValueIndex(label string) int {
	for i, v := range a.Values {
		if v == label {
			return i
		}
	}
	return -1
}

// BucketOf maps a raw numeric value to its bucket index. The last bucket is
// closed on the right so the domain maximum belongs to it. Returns -1 when
// x lies outside every bucket.
func (a *Attribute) BucketOf(x float64) int {
	for i, b := range a.Buckets {
		if b.Contains(x) {
			return i
		}
		if i == len(a.Buckets)-1 && x == b.Hi {
			return i
		}
	}
	return -1
}

// BoolAttr constructs a boolean attribute.
func BoolAttr(name string) Attribute {
	return Attribute{Name: name, Kind: KindBool, Values: []string{"false", "true"}}
}

// CatAttr constructs a categorical attribute with the given domain labels.
func CatAttr(name string, values ...string) Attribute {
	return Attribute{Name: name, Kind: KindCategorical, Values: values}
}

// NumAttr constructs a numeric attribute bucketed at the given cut points.
// cuts must be strictly increasing and produce len(cuts)-1 buckets.
func NumAttr(name string, cuts ...float64) Attribute {
	a := Attribute{Name: name, Kind: KindNumeric}
	for i := 0; i+1 < len(cuts); i++ {
		b := Bucket{Lo: cuts[i], Hi: cuts[i+1]}
		a.Buckets = append(a.Buckets, b)
		a.Values = append(a.Values, b.Label())
	}
	return a
}

// Schema is the full description of a hidden database's search interface:
// its name and the ordered list of searchable attributes.
type Schema struct {
	Name  string
	Attrs []Attribute
}

// NewSchema builds and validates a schema.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and generators
// with statically known-good inputs.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural invariants: at least one attribute, unique
// non-empty attribute names, every domain non-trivial, bucket lists aligned
// and strictly increasing.
func (s *Schema) Validate() error {
	if s == nil {
		return fmt.Errorf("hiddendb: nil schema")
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("hiddendb: schema %q has no attributes", s.Name)
	}
	seen := make(map[string]bool, len(s.Attrs))
	for i := range s.Attrs {
		a := &s.Attrs[i]
		if a.Name == "" {
			return fmt.Errorf("hiddendb: attribute %d has empty name", i)
		}
		if strings.ContainsAny(a.Name, "=&\n") {
			return fmt.Errorf("hiddendb: attribute %q contains reserved characters", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("hiddendb: duplicate attribute name %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Values) < 2 {
			return fmt.Errorf("hiddendb: attribute %q has domain size %d; need >= 2", a.Name, len(a.Values))
		}
		vseen := make(map[string]bool, len(a.Values))
		for _, v := range a.Values {
			if vseen[v] {
				return fmt.Errorf("hiddendb: attribute %q has duplicate value %q", a.Name, v)
			}
			vseen[v] = true
		}
		if a.Kind == KindNumeric {
			if len(a.Buckets) != len(a.Values) {
				return fmt.Errorf("hiddendb: attribute %q has %d buckets for %d values", a.Name, len(a.Buckets), len(a.Values))
			}
			for j, b := range a.Buckets {
				if b.Hi <= b.Lo {
					return fmt.Errorf("hiddendb: attribute %q bucket %d empty: [%g,%g)", a.Name, j, b.Lo, b.Hi)
				}
				if j > 0 && a.Buckets[j-1].Hi != b.Lo {
					return fmt.Errorf("hiddendb: attribute %q buckets %d,%d not contiguous", a.Name, j-1, j)
				}
			}
		} else if len(a.Buckets) != 0 {
			return fmt.Errorf("hiddendb: attribute %q is %v but has buckets", a.Name, a.Kind)
		}
	}
	return nil
}

// NumAttrs returns the number of attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or -1.
func (s *Schema) AttrIndex(name string) int {
	for i := range s.Attrs {
		if s.Attrs[i].Name == name {
			return i
		}
	}
	return -1
}

// DomainSize returns the domain size of attribute i.
func (s *Schema) DomainSize(i int) int { return len(s.Attrs[i].Values) }

// SpaceSize returns the size of the full cross-product domain space as a
// float64 (it overflows int64 quickly: it is the denominator of the
// BRUTE-FORCE-SAMPLER's hit probability).
func (s *Schema) SpaceSize() float64 {
	size := 1.0
	for i := range s.Attrs {
		size *= float64(len(s.Attrs[i].Values))
	}
	return size
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name, Attrs: make([]Attribute, len(s.Attrs))}
	for i, a := range s.Attrs {
		na := a
		na.Values = append([]string(nil), a.Values...)
		na.Buckets = append([]Bucket(nil), a.Buckets...)
		c.Attrs[i] = na
	}
	return c
}

// Equal reports whether two schemas describe the same interface.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.Name != o.Name || len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		a, b := &s.Attrs[i], &o.Attrs[i]
		if a.Name != b.Name || a.Kind != b.Kind || len(a.Values) != len(b.Values) {
			return false
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				return false
			}
		}
		if len(a.Buckets) != len(b.Buckets) {
			return false
		}
		for j := range a.Buckets {
			if a.Buckets[j] != b.Buckets[j] {
				return false
			}
		}
	}
	return true
}
