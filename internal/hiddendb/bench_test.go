package hiddendb

import (
	"fmt"
	"testing"
)

// benchSkewDB builds a database engineered for skewed posting lists: a
// selective attribute whose values each match ~1% of tuples, and a common
// attribute whose value 0 matches 95% — the shape where per-candidate
// binary search over the long list wastes the most work versus a galloping
// cursor that only ever moves forward.
func benchSkewDB(b *testing.B, n int, mode CountMode) (*DB, Query) {
	b.Helper()
	rareVals := make([]string, 100)
	for i := range rareVals {
		rareVals[i] = fmt.Sprintf("r%02d", i)
	}
	schema, err := NewSchema("skew",
		CatAttr("rare", rareVals...),
		CatAttr("common", "yes", "no"),
		CatAttr("mid", "a", "b", "c", "d"),
	)
	if err != nil {
		b.Fatal(err)
	}
	tuples := make([]Tuple, n)
	for i := range tuples {
		common := 0
		if i%20 == 19 { // 95% share value 0
			common = 1
		}
		tuples[i] = Tuple{Vals: []int{i % 100, common, i % 4}}
	}
	db, err := New(schema, tuples, nil, Config{K: 100, CountMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	q := MustQuery(
		Predicate{Attr: 0, Value: 0},
		Predicate{Attr: 1, Value: 0},
	)
	return db, q
}

// BenchmarkExecuteIntersect measures the posting-list intersection hot
// path on skewed lists (a ~1% list against a 95% list over 100k tuples).
func BenchmarkExecuteIntersect(b *testing.B) {
	for _, mode := range []CountMode{CountNone, CountExact} {
		b.Run(mode.String(), func(b *testing.B) {
			db, q := benchSkewDB(b, 100000, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Execute(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryKey measures the canonical-key accessor the history cache
// and execution layer call on every lookup.
func BenchmarkQueryKey(b *testing.B) {
	preds := make([]Predicate, 8)
	for i := range preds {
		preds[i] = Predicate{Attr: i, Value: i % 3}
	}
	q := MustQuery(preds...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(q.Key()) == 0 {
			b.Fatal("empty key")
		}
	}
}

// BenchmarkQueryWith measures extending a query one predicate at a time,
// the walk's per-step query construction.
func BenchmarkQueryWith(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := EmptyQuery()
		for a := 0; a < 8; a++ {
			q = q.With(a, a%3)
		}
		if q.Len() != 8 {
			b.Fatal("bad query")
		}
	}
}
