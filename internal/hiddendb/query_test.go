package hiddendb

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewQueryCanonicalOrder(t *testing.T) {
	q, err := NewQuery(Predicate{3, 1}, Predicate{0, 2}, Predicate{1, 0})
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	want := []Predicate{{0, 2}, {1, 0}, {3, 1}}
	if !reflect.DeepEqual(q.Preds(), want) {
		t.Fatalf("Preds = %v, want %v", q.Preds(), want)
	}
}

func TestNewQueryDuplicateAttr(t *testing.T) {
	if _, err := NewQuery(Predicate{1, 0}, Predicate{1, 1}); err == nil {
		t.Fatal("expected duplicate-attribute error")
	}
}

func TestQueryValueAndHasAttr(t *testing.T) {
	q := MustQuery(Predicate{2, 5}, Predicate{7, 1})
	if v, ok := q.Value(2); !ok || v != 5 {
		t.Errorf("Value(2) = %d,%v", v, ok)
	}
	if _, ok := q.Value(3); ok {
		t.Error("Value(3) should be absent")
	}
	if !q.HasAttr(7) || q.HasAttr(0) {
		t.Error("HasAttr wrong")
	}
}

func TestQueryWith(t *testing.T) {
	q := EmptyQuery().With(5, 1).With(2, 3).With(9, 0)
	want := []Predicate{{2, 3}, {5, 1}, {9, 0}}
	if !reflect.DeepEqual(q.Preds(), want) {
		t.Fatalf("Preds = %v, want %v", q.Preds(), want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("With on constrained attribute did not panic")
		}
	}()
	q.With(5, 0)
}

func TestQueryWithDoesNotMutate(t *testing.T) {
	base := MustQuery(Predicate{1, 1})
	ext := base.With(0, 0)
	if base.Len() != 1 {
		t.Fatalf("base mutated: %v", base)
	}
	if ext.Len() != 2 {
		t.Fatalf("ext wrong: %v", ext)
	}
}

func TestQueryWithout(t *testing.T) {
	q := MustQuery(Predicate{1, 1}, Predicate{2, 2})
	r := q.Without(1)
	if r.Len() != 1 || r.HasAttr(1) || !r.HasAttr(2) {
		t.Fatalf("Without(1) = %v", r)
	}
	if q.Without(9).Len() != 2 {
		t.Error("Without of absent attribute changed query")
	}
}

func TestQueryMatches(t *testing.T) {
	q := MustQuery(Predicate{0, 1}, Predicate{2, 0})
	if !q.Matches([]int{1, 9, 0}) {
		t.Error("should match")
	}
	if q.Matches([]int{0, 9, 0}) {
		t.Error("should not match (attr 0)")
	}
	if q.Matches([]int{1, 9}) {
		t.Error("short tuple should not match")
	}
	if !EmptyQuery().Matches([]int{5}) {
		t.Error("empty query matches everything")
	}
}

func TestQueryContains(t *testing.T) {
	parent := MustQuery(Predicate{0, 1})
	child := MustQuery(Predicate{0, 1}, Predicate{3, 2})
	other := MustQuery(Predicate{0, 2}, Predicate{3, 2})
	if !parent.Contains(child) {
		t.Error("parent should contain child")
	}
	if child.Contains(parent) {
		t.Error("child should not contain parent")
	}
	if parent.Contains(other) {
		t.Error("different value should not be contained")
	}
	if !parent.Contains(parent) {
		t.Error("query should contain itself")
	}
	if !EmptyQuery().Contains(parent) {
		t.Error("empty query contains everything")
	}
}

func TestQueryKeyRoundTrip(t *testing.T) {
	s := MustSchema("s", BoolAttr("a"), CatAttr("b", "x", "y", "z"), BoolAttr("c"))
	q := MustQuery(Predicate{1, 2}, Predicate{0, 1})
	key := q.Key()
	if key != "0=1&1=2" {
		t.Fatalf("Key = %q", key)
	}
	back, err := ParseQueryKey(s, key)
	if err != nil {
		t.Fatalf("ParseQueryKey: %v", err)
	}
	if back.Key() != key {
		t.Fatalf("round trip %q -> %q", key, back.Key())
	}
	if e, err := ParseQueryKey(s, ""); err != nil || e.Len() != 0 {
		t.Fatalf("empty key parse: %v %v", e, err)
	}
}

func TestParseQueryKeyErrors(t *testing.T) {
	s := MustSchema("s", BoolAttr("a"))
	for _, bad := range []string{"0", "x=1", "0=x", "0=5", "5=0", "0=-1"} {
		if _, err := ParseQueryKey(s, bad); err == nil {
			t.Errorf("ParseQueryKey(%q) succeeded, want error", bad)
		}
	}
}

func TestQueryStringAndDescribe(t *testing.T) {
	s := MustSchema("cars", CatAttr("make", "toyota", "honda"), BoolAttr("used"))
	q := MustQuery(Predicate{0, 1}, Predicate{1, 0})
	if q.String() != "{0=1, 1=0}" {
		t.Errorf("String = %q", q.String())
	}
	if got := q.Describe(s); got != "make='honda' AND used='false'" {
		t.Errorf("Describe = %q", got)
	}
	if EmptyQuery().String() != "{*}" || EmptyQuery().Describe(s) != "TRUE" {
		t.Error("empty renders wrong")
	}
	// Out-of-schema predicates degrade to indices rather than panicking.
	weird := MustQuery(Predicate{7, 9})
	if !strings.Contains(weird.Describe(s), "7=9") {
		t.Errorf("Describe out-of-schema = %q", weird.Describe(s))
	}
}

func TestQueryValidateAgainst(t *testing.T) {
	s := MustSchema("s", BoolAttr("a"), CatAttr("b", "x", "y"))
	if err := MustQuery(Predicate{1, 1}).ValidateAgainst(s); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	if err := MustQuery(Predicate{2, 0}).ValidateAgainst(s); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if err := MustQuery(Predicate{1, 2}).ValidateAgainst(s); err == nil {
		t.Error("out-of-range value accepted")
	}
}

// Property: Key/ParseQueryKey round-trips for arbitrary valid queries.
func TestQueryKeyRoundTripProperty(t *testing.T) {
	s := MustSchema("s",
		CatAttr("a", "0", "1", "2"),
		CatAttr("b", "0", "1", "2", "3"),
		BoolAttr("c"),
		CatAttr("d", "0", "1", "2", "3", "4"))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := EmptyQuery()
		for a := 0; a < s.NumAttrs(); a++ {
			if rng.Intn(2) == 0 {
				q = q.With(a, rng.Intn(s.DomainSize(a)))
			}
		}
		back, err := ParseQueryKey(s, q.Key())
		return err == nil && back.Key() == q.Key() && back.Len() == q.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains is consistent with Matches — if parent Contains child,
// every tuple matching child matches parent.
func TestContainsConsistentWithMatchesProperty(t *testing.T) {
	s := MustSchema("s", CatAttr("a", "0", "1", "2"), CatAttr("b", "0", "1", "2"), BoolAttr("c"))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randQ := func() Query {
			q := EmptyQuery()
			for a := 0; a < s.NumAttrs(); a++ {
				if rng.Intn(2) == 0 {
					q = q.With(a, rng.Intn(s.DomainSize(a)))
				}
			}
			return q
		}
		p, c := randQ(), randQ()
		if !p.Contains(c) {
			return true // vacuous
		}
		for trial := 0; trial < 20; trial++ {
			vals := []int{rng.Intn(3), rng.Intn(3), rng.Intn(2)}
			if c.Matches(vals) && !p.Matches(vals) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
