package hiddendb

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"hdsampler/internal/hiddendb/bitmap"
)

// CountMode selects how the interface reports result counts, matching the
// three behaviours seen on real sites.
type CountMode int

const (
	// CountNone: the interface never reports a count (only the top-k rows
	// and an overflow flag).
	CountNone CountMode = iota
	// CountExact: the interface reports the exact number of matches.
	CountExact
	// CountApprox: the interface reports a noisy estimate, as Google Base's
	// proprietary estimator did; HDSampler ignores these by default.
	CountApprox
)

// String returns the mode's name.
func (m CountMode) String() string {
	switch m {
	case CountNone:
		return "none"
	case CountExact:
		return "exact"
	case CountApprox:
		return "approx"
	default:
		return fmt.Sprintf("countmode(%d)", int(m))
	}
}

// PostingBackend selects the posting-list representation behind
// Execute's conjunctive intersections.
type PostingBackend int

const (
	// PostingsBitmap (the default) stores posting lists as roaring-style
	// compressed bitmaps (internal/hiddendb/bitmap): array/bitmap/run
	// containers keyed by the high 16 bits of the rank position, with
	// word-level AND kernels and free exact counts from container
	// cardinalities. This is the backend that holds at 100M+ tuples.
	PostingsBitmap PostingBackend = iota
	// PostingsSorted is the PR 4 sorted-[]int32 representation with
	// galloping intersection, kept as the differential-testing and
	// benchmarking reference for the bitmap backend.
	PostingsSorted
)

// String returns the backend's name.
func (p PostingBackend) String() string {
	switch p {
	case PostingsBitmap:
		return "bitmap"
	case PostingsSorted:
		return "sorted"
	default:
		return fmt.Sprintf("postings(%d)", int(p))
	}
}

// Config tunes a DB's interface behaviour.
type Config struct {
	// K is the top-k limit: the maximum tuples displayed per query.
	// Google Base used 1000, MSN Career 4000, MSN Stock Screener 25.
	K int
	// CountMode selects count reporting (default CountNone).
	CountMode CountMode
	// CountNoise is the maximum multiplicative relative error of
	// CountApprox estimates, e.g. 0.3 for ±30%. The noise is a
	// deterministic function of the query, like a fixed proprietary
	// estimator: asking twice gives the same estimate.
	CountNoise float64
	// NoiseSeed seeds the deterministic count noise.
	NoiseSeed uint64
	// QueryBudget, when positive, bounds the total number of queries the
	// interface will answer before returning ErrBudgetExhausted — data
	// providers commonly cap queries per client.
	QueryBudget int64
	// Postings selects the posting-list representation (default
	// PostingsBitmap).
	Postings PostingBackend
	// ParallelIntersect enables splitting large multi-predicate bitmap
	// intersections across GOMAXPROCS workers. Only queries with at
	// least three predicates whose cheapest posting list still spans
	// ≥65536 rank positions take the parallel path; everything else
	// stays on the serial early-exit kernel. Ignored by PostingsSorted.
	ParallelIntersect bool
}

// ErrBudgetExhausted is returned once a DB's QueryBudget is spent.
var ErrBudgetExhausted = errors.New("hiddendb: query budget exhausted")

// DB is an in-memory hidden database: a tuple store that can only be
// queried through Execute, which applies conjunctive filtering, top-k
// truncation under a deterministic ranking, and the configured count
// reporting. It is safe for concurrent use.
type DB struct {
	schema *Schema
	cfg    Config
	ranker Ranker

	// tuples in insertion order; IDs are positions here.
	tuples []Tuple
	// rankPos[id] is the tuple's position in the global rank order
	// (0 = best). byRank is the inverse permutation.
	rankPos []int32
	byRank  []int32
	// postings[attr][value] lists matching tuples as rank positions,
	// ascending, so intersections stream out in rank order. Exactly one
	// of the two representations is populated, per Config.Postings:
	// sorted []int32 slices, or roaring-style compressed bitmaps. A nil
	// bitPostings entry means no tuple has that value.
	postings    [][][]int32
	bitPostings [][]*bitmap.Bitmap

	// scratch pools per-Execute intersection state (posting-list views,
	// galloping cursors, match buffer) so the hot path allocates nothing
	// beyond the Result it returns.
	scratch sync.Pool

	queries atomic.Int64
}

// matchScratch is the reusable per-Execute intersection state.
type matchScratch struct {
	lists   [][]int32
	cursors []int
	out     []int32
	views   []*bitmap.Bitmap
	res     *bitmap.Bitmap
}

// New builds a DB over the given tuples. Tuples are validated against the
// schema; their IDs are overwritten with their positions. The ranker
// defaults to HashRanker{Seed:1} and K to 100 when unset.
func New(schema *Schema, tuples []Tuple, ranker Ranker, cfg Config) (*DB, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, errors.New("hiddendb: empty database")
	}
	if ranker == nil {
		ranker = HashRanker{Seed: 1}
	}
	if cfg.K <= 0 {
		cfg.K = 100
	}
	if cfg.CountNoise < 0 || cfg.CountNoise >= 1 {
		return nil, fmt.Errorf("hiddendb: CountNoise %g outside [0,1)", cfg.CountNoise)
	}
	db := &DB{schema: schema, cfg: cfg, ranker: ranker, tuples: tuples}
	db.scratch.New = func() any { return &matchScratch{res: bitmap.New()} }
	m := len(schema.Attrs)
	for i := range db.tuples {
		t := &db.tuples[i]
		//hdlint:ignore resultimmut New takes documented ownership of the caller's tuple slice; IDs are assigned once here
		t.ID = i
		if len(t.Vals) != m {
			return nil, fmt.Errorf("hiddendb: tuple %d has %d values for %d attributes", i, len(t.Vals), m)
		}
		for a, v := range t.Vals {
			if v < 0 || v >= schema.DomainSize(a) {
				return nil, fmt.Errorf("hiddendb: tuple %d attribute %q value %d out of domain [0,%d)",
					i, schema.Attrs[a].Name, v, schema.DomainSize(a))
			}
		}
		if t.Nums != nil && len(t.Nums) != m {
			return nil, fmt.Errorf("hiddendb: tuple %d has %d numeric payloads for %d attributes", i, len(t.Nums), m)
		}
	}
	db.buildRank()
	db.buildPostings()
	return db, nil
}

func (db *DB) buildRank() {
	n := len(db.tuples)
	scores := make([]float64, n)
	for i := range db.tuples {
		scores[i] = db.ranker.Score(&db.tuples[i])
	}
	db.byRank = make([]int32, n)
	for i := range db.byRank {
		db.byRank[i] = int32(i)
	}
	sort.SliceStable(db.byRank, func(i, j int) bool {
		a, b := db.byRank[i], db.byRank[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b] // higher score ranks earlier
		}
		return a < b
	})
	db.rankPos = make([]int32, n)
	for pos, id := range db.byRank {
		db.rankPos[id] = int32(pos)
	}
}

func (db *DB) buildPostings() {
	if db.cfg.Postings == PostingsSorted {
		db.buildSortedPostings()
		return
	}
	m := len(db.schema.Attrs)
	db.bitPostings = make([][]*bitmap.Bitmap, m)
	for a := 0; a < m; a++ {
		db.bitPostings[a] = make([]*bitmap.Bitmap, db.schema.DomainSize(a))
	}
	// Iterate in rank order so every Add is an ascending tail append —
	// O(1) amortized per value, no mid-container memmoves even at 100M.
	for pos, id := range db.byRank {
		for a, v := range db.tuples[id].Vals {
			pb := db.bitPostings[a][v]
			if pb == nil {
				pb = bitmap.New()
				db.bitPostings[a][v] = pb
			}
			pb.Add(uint32(pos))
		}
	}
	for a := range db.bitPostings {
		for _, pb := range db.bitPostings[a] {
			if pb != nil {
				pb.Optimize()
			}
		}
	}
}

func (db *DB) buildSortedPostings() {
	m := len(db.schema.Attrs)
	db.postings = make([][][]int32, m)
	for a := 0; a < m; a++ {
		db.postings[a] = make([][]int32, db.schema.DomainSize(a))
	}
	for id := range db.tuples {
		pos := db.rankPos[id]
		for a, v := range db.tuples[id].Vals {
			db.postings[a][v] = append(db.postings[a][v], pos)
		}
	}
	for a := range db.postings {
		for v := range db.postings[a] {
			p := db.postings[a][v]
			sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
		}
	}
}

// Schema returns the database schema.
func (db *DB) Schema() *Schema { return db.schema }

// K returns the interface's top-k limit.
func (db *DB) K() int { return db.cfg.K }

// CountMode returns the interface's count reporting mode.
func (db *DB) CountMode() CountMode { return db.cfg.CountMode }

// Size returns the number of tuples (hidden from interface clients; used by
// experiments for ground truth).
func (db *DB) Size() int { return len(db.tuples) }

// QueriesServed returns the number of Execute calls answered so far.
func (db *DB) QueriesServed() int64 { return db.queries.Load() }

// ResetBudget reopens a budget-exhausted database (used between experiment
// runs that share a server).
func (db *DB) ResetBudget() { db.queries.Store(0) }

// Execute answers one conjunctive query through the restricted interface:
// the top-k matches in rank order, the overflow flag, and a count according
// to the configured CountMode. This is the only read path a client has.
//
// The returned tuples share the database's immutable backing storage —
// callers must treat Result.Tuples as read-only and Clone tuples they
// intend to own (see Result's documentation).
//
//hdlint:hotpath
func (db *DB) Execute(q Query) (*Result, error) {
	if err := q.ValidateAgainst(db.schema); err != nil {
		return nil, err
	}
	n := db.queries.Add(1)
	if db.cfg.QueryBudget > 0 && n > db.cfg.QueryBudget {
		return nil, ErrBudgetExhausted
	}
	sc := db.scratch.Get().(*matchScratch)
	// Count-reporting interfaces need the exact total: compute it in the
	// same intersection pass instead of re-deriving the whole intersection
	// afterwards. Count-free interfaces stop scanning at K+1.
	needTotal := db.cfg.CountMode != CountNone
	var matchPos []int32
	var total int
	if db.cfg.Postings == PostingsSorted {
		matchPos, total = db.matchPositions(sc, q, db.cfg.K+1, needTotal)
	} else {
		matchPos, total = db.matchBitmap(sc, q, db.cfg.K+1, needTotal)
	}
	//hdlint:ignore hotpath the answer's documented two-allocation budget: the Result header here plus its Tuples slice below
	res := &Result{Count: CountAbsent}
	if total > db.cfg.K {
		res.Overflow = true
		matchPos = matchPos[:db.cfg.K]
	}
	res.Tuples = make([]Tuple, len(matchPos))
	for i, pos := range matchPos {
		res.Tuples[i] = db.tuples[db.byRank[pos]]
	}
	switch db.cfg.CountMode {
	case CountExact:
		res.Count = total
	case CountApprox:
		res.Count = db.approxCount(q, total)
	}
	db.scratch.Put(sc)
	return res, nil
}

// matchPositions intersects the query's posting lists into sc.out: the
// first limit matching rank positions in rank order. When needTotal is
// set, the scan continues past limit (appending nothing further) so total
// is the exact match count; otherwise total stops at limit, which still
// decides overflow when limit = K+1.
//
// The intersection is seeded from the shortest list and galloped: each
// longer list keeps a monotone cursor advanced by exponential probing plus
// binary search over the bracketed window, so a candidate costs O(log gap)
// rather than a fresh O(log n) binary search — and an exhausted list ends
// the whole scan early, since no later candidate can match.
//
//hdlint:hotpath
func (db *DB) matchPositions(sc *matchScratch, q Query, limit int, needTotal bool) (pos []int32, total int) {
	d := q.Len()
	if d == 0 {
		return db.matchAll(sc, limit)
	}
	lists := sc.lists[:0]
	for i := 0; i < d; i++ {
		p := q.Pred(i)
		lists = append(lists, db.postings[p.Attr][p.Value])
	}
	// Shortest list first. d is tiny (bounded by the schema width), so an
	// in-place insertion sort beats sort.Slice and its closure allocation.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	sc.lists = lists
	cursors := sc.cursors[:0]
	for range lists {
		cursors = append(cursors, 0)
	}
	sc.cursors = cursors
	out := sc.out[:0]
outer:
	for _, cand := range lists[0] {
		for j := 1; j < len(lists); j++ {
			l := lists[j]
			k := gallop(l, cursors[j], cand)
			cursors[j] = k
			if k == len(l) {
				break outer // list exhausted: nothing later can match
			}
			if l[k] != cand {
				continue outer
			}
		}
		total++
		if len(out) < limit {
			out = append(out, cand)
		}
		if !needTotal && total >= limit {
			break
		}
	}
	sc.out = out
	return out, total
}

// matchAll answers the empty (predicate-free) query shared by both
// posting backends: every tuple matches, so the first limit rank
// positions are simply 0..limit-1.
//
//hdlint:hotpath
func (db *DB) matchAll(sc *matchScratch, limit int) (pos []int32, total int) {
	total = len(db.tuples)
	n := total
	if n > limit {
		n = limit
	}
	out := sc.out[:0]
	for i := 0; i < n; i++ {
		out = append(out, int32(i))
	}
	sc.out = out
	return out, total
}

// parallelMinSeedCard is the cheapest-posting-list cardinality below
// which ParallelIntersect stays serial: splitting fewer than one
// container's worth of seed values per worker costs more in fan-out than
// the word kernels save.
const parallelMinSeedCard = 1 << 16

// matchBitmap is matchPositions for the bitmap backend: it intersects
// the query's posting bitmaps into sc.res, seeded from the
// lowest-cardinality predicate, and materializes the first limit rank
// positions into sc.out. The exact total falls out of the result
// cardinality for free when needTotal is set (the CountExact single-pass
// contract); otherwise the intersection early-exits once limit values
// are known, and total is only guaranteed to be ≥ limit or exact —
// still enough to decide overflow at limit = K+1.
//
//hdlint:hotpath
func (db *DB) matchBitmap(sc *matchScratch, q Query, limit int, needTotal bool) (pos []int32, total int) {
	d := q.Len()
	if d == 0 {
		return db.matchAll(sc, limit)
	}
	views := sc.views[:0]
	minCard := -1
	for i := 0; i < d; i++ {
		p := q.Pred(i)
		pb := db.bitPostings[p.Attr][p.Value]
		if pb == nil {
			// No tuple carries this value: the conjunction is empty.
			sc.views = views
			sc.out = sc.out[:0]
			return sc.out, 0
		}
		if c := pb.Cardinality(); minCard < 0 || c < minCard {
			minCard = c
		}
		views = append(views, pb)
	}
	sc.views = views
	if d == 1 {
		return db.materialize(sc, views[0], limit, views[0].Cardinality())
	}
	res := sc.res
	if db.cfg.ParallelIntersect && d >= 3 && minCard >= parallelMinSeedCard {
		total = bitmap.ParallelIntersectInto(res, views, runtime.GOMAXPROCS(0))
	} else {
		total = bitmap.IntersectInto(res, views, limit, needTotal)
	}
	return db.materialize(sc, res, limit, total)
}

// materialize copies the first limit values of b into sc.out as rank
// positions.
//
//hdlint:hotpath
func (db *DB) materialize(sc *matchScratch, b *bitmap.Bitmap, limit, total int) (pos []int32, n int) {
	k := b.Cardinality()
	if k > limit {
		k = limit
	}
	out := sc.out[:0]
	it := b.Iterator()
	for i := 0; i < k; i++ {
		v, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, int32(v))
	}
	sc.out = out
	return out, total
}

// gallop returns the smallest index i in [lo, len(l)] with l[i] >= x,
// assuming l ascending. It probes exponentially from lo, then binary
// searches the bracketed window, so advancing a cursor over a small gap is
// O(log gap) with mostly-local memory accesses.
//
//hdlint:hotpath
func gallop(l []int32, lo int, x int32) int {
	if lo >= len(l) || l[lo] >= x {
		return lo
	}
	step := 1
	for lo+step < len(l) && l[lo+step] < x {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(l) {
		hi = len(l)
	}
	// Invariant: l[lo] < x, and hi == len(l) or l[hi] >= x.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// TrueCount returns the exact number of tuples matching q, bypassing the
// interface; experiments use it for ground truth, never the samplers.
func (db *DB) TrueCount(q Query) int {
	sc := db.scratch.Get().(*matchScratch)
	var total int
	if db.cfg.Postings == PostingsSorted {
		_, total = db.matchPositions(sc, q, 0, true)
	} else {
		_, total = db.matchBitmap(sc, q, 0, true)
	}
	db.scratch.Put(sc)
	return total
}

// approxCount perturbs the exact count by a deterministic multiplicative
// factor in [1-noise, 1+noise] derived from the query key, modelling a
// fixed proprietary estimator. Zero counts stay zero (sites say "no
// results" reliably).
func (db *DB) approxCount(q Query, exact int) int {
	if exact == 0 || db.cfg.CountNoise == 0 {
		return exact
	}
	h := fnv.New64a()
	var seed [8]byte
	putUint64(seed[:], db.cfg.NoiseSeed)
	h.Write(seed[:])
	h.Write([]byte(q.Key()))                     // cached canonical key: no per-query rebuild
	u := float64(h.Sum64()>>11) / float64(1<<53) // uniform [0,1)
	factor := 1 + db.cfg.CountNoise*(2*u-1)
	est := int(math.Round(float64(exact) * factor))
	if est < 1 {
		est = 1
	}
	return est
}

// Tuple returns tuple id by value (ground-truth access for experiments).
func (db *DB) Tuple(id int) Tuple {
	return db.tuples[id].Clone()
}

// RankOrder returns all tuple IDs in global rank order (best first) — a
// ground-truth accessor used by the exact walk-distribution analyzer,
// never by samplers.
func (db *DB) RankOrder() []int {
	out := make([]int, len(db.byRank))
	for i, id := range db.byRank {
		out[i] = int(id)
	}
	return out
}

// ValsByRank returns each tuple's value vector, ordered by rank (row i is
// the i-th ranked tuple). Ground truth for the exact analyzer; the rows
// alias internal storage and must not be mutated.
func (db *DB) ValsByRank() ([][]int, []int) {
	vals := make([][]int, len(db.byRank))
	ids := make([]int, len(db.byRank))
	for i, id := range db.byRank {
		vals[i] = db.tuples[id].Vals
		ids[i] = int(id)
	}
	return vals, ids
}

// TrueMarginal returns the exact distribution of attribute attr over the
// whole database as counts per value index — the ground truth the demo's
// Figure 4 histograms are validated against.
func (db *DB) TrueMarginal(attr int) []int {
	counts := make([]int, db.schema.DomainSize(attr))
	for i := range db.tuples {
		counts[db.tuples[i].Vals[attr]]++
	}
	return counts
}

// TrueAggregate computes COUNT, SUM and AVG of numeric attribute attr over
// tuples matching q, bypassing the interface. When attr is negative only
// COUNT is meaningful and SUM/AVG are zero.
func (db *DB) TrueAggregate(q Query, attr int) (count int, sum, avg float64) {
	for i := range db.tuples {
		t := &db.tuples[i]
		if !q.Matches(t.Vals) {
			continue
		}
		count++
		if attr >= 0 {
			if v, ok := t.Num(attr); ok {
				sum += v
			}
		}
	}
	if count > 0 {
		avg = sum / float64(count)
	}
	return count, sum, avg
}
