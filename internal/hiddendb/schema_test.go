package hiddendb

import (
	"strings"
	"testing"
)

func TestBoolAttr(t *testing.T) {
	a := BoolAttr("sunroof")
	if a.Kind != KindBool {
		t.Fatalf("kind = %v, want bool", a.Kind)
	}
	if a.DomainSize() != 2 {
		t.Fatalf("domain size = %d, want 2", a.DomainSize())
	}
	if a.Values[0] != "false" || a.Values[1] != "true" {
		t.Fatalf("values = %v", a.Values)
	}
}

func TestCatAttrValueIndex(t *testing.T) {
	a := CatAttr("color", "red", "green", "blue")
	if got := a.ValueIndex("green"); got != 1 {
		t.Errorf("ValueIndex(green) = %d, want 1", got)
	}
	if got := a.ValueIndex("purple"); got != -1 {
		t.Errorf("ValueIndex(purple) = %d, want -1", got)
	}
}

func TestNumAttrBuckets(t *testing.T) {
	a := NumAttr("price", 0, 10000, 20000, 40000)
	if a.DomainSize() != 3 {
		t.Fatalf("domain size = %d, want 3", a.DomainSize())
	}
	cases := []struct {
		x    float64
		want int
	}{
		{-1, -1}, {0, 0}, {9999.99, 0}, {10000, 1}, {20000, 2},
		{39999, 2}, {40000, 2}, {40001, -1},
	}
	for _, c := range cases {
		if got := a.BucketOf(c.x); got != c.want {
			t.Errorf("BucketOf(%g) = %d, want %d", c.x, got, c.want)
		}
	}
	if a.Values[0] != "0-10000" {
		t.Errorf("bucket label = %q, want 0-10000", a.Values[0])
	}
}

func TestNewSchemaValid(t *testing.T) {
	s, err := NewSchema("cars", BoolAttr("used"), CatAttr("color", "red", "blue"))
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if s.NumAttrs() != 2 {
		t.Errorf("NumAttrs = %d, want 2", s.NumAttrs())
	}
	if s.AttrIndex("color") != 1 {
		t.Errorf("AttrIndex(color) = %d, want 1", s.AttrIndex("color"))
	}
	if s.AttrIndex("absent") != -1 {
		t.Errorf("AttrIndex(absent) = %d, want -1", s.AttrIndex("absent"))
	}
	if s.SpaceSize() != 4 {
		t.Errorf("SpaceSize = %g, want 4", s.SpaceSize())
	}
}

func TestSchemaValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
		want  string
	}{
		{"empty", nil, "no attributes"},
		{"noname", []Attribute{{Kind: KindBool, Values: []string{"a", "b"}}}, "empty name"},
		{"dupattr", []Attribute{BoolAttr("x"), BoolAttr("x")}, "duplicate attribute"},
		{"smalldomain", []Attribute{CatAttr("x", "only")}, "domain size 1"},
		{"dupvalue", []Attribute{CatAttr("x", "a", "a")}, "duplicate value"},
		{"reserved", []Attribute{CatAttr("x=y", "a", "b")}, "reserved"},
		{"bucketsonbool", []Attribute{{Name: "x", Kind: KindBool,
			Values: []string{"a", "b"}, Buckets: []Bucket{{0, 1}, {1, 2}}}}, "has buckets"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewSchema("s", c.attrs...)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSchemaValidationBucketErrors(t *testing.T) {
	bad := Attribute{Name: "p", Kind: KindNumeric,
		Values:  []string{"a", "b"},
		Buckets: []Bucket{{0, 10}, {20, 30}}}
	if _, err := NewSchema("s", bad); err == nil || !strings.Contains(err.Error(), "not contiguous") {
		t.Fatalf("want contiguity error, got %v", err)
	}
	empty := Attribute{Name: "p", Kind: KindNumeric,
		Values:  []string{"a", "b"},
		Buckets: []Bucket{{0, 10}, {10, 10}}}
	if _, err := NewSchema("s", empty); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("want empty-bucket error, got %v", err)
	}
	misaligned := Attribute{Name: "p", Kind: KindNumeric,
		Values:  []string{"a", "b", "c"},
		Buckets: []Bucket{{0, 10}, {10, 20}}}
	if _, err := NewSchema("s", misaligned); err == nil || !strings.Contains(err.Error(), "buckets for") {
		t.Fatalf("want alignment error, got %v", err)
	}
}

func TestSchemaCloneEqual(t *testing.T) {
	s := MustSchema("cars",
		BoolAttr("used"),
		CatAttr("color", "red", "blue"),
		NumAttr("price", 0, 10, 20))
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c.Attrs[1].Values[0] = "mauve"
	if s.Attrs[1].Values[0] != "red" {
		t.Fatal("clone shares value storage with original")
	}
	if s.Equal(c) {
		t.Fatal("mutated clone still Equal")
	}
	if s.Equal(nil) {
		t.Fatal("Equal(nil) = true")
	}
	d := s.Clone()
	d.Name = "other"
	if s.Equal(d) {
		t.Fatal("Equal ignores name")
	}
	e := s.Clone()
	e.Attrs[2].Buckets[0].Hi = 11
	if s.Equal(e) {
		t.Fatal("Equal ignores buckets")
	}
}

func TestKindString(t *testing.T) {
	if KindBool.String() != "bool" || KindCategorical.String() != "categorical" || KindNumeric.String() != "numeric" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Errorf("unknown kind rendered %q", Kind(9).String())
	}
}

func TestBucketLabel(t *testing.T) {
	if got := (Bucket{0, 10000}).Label(); got != "0-10000" {
		t.Errorf("Label = %q", got)
	}
	if got := (Bucket{0.5, 1.5}).Label(); got != "0.5-1.5" {
		t.Errorf("Label = %q", got)
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema did not panic on invalid schema")
		}
	}()
	MustSchema("bad")
}
