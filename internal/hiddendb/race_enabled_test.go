//go:build race

package hiddendb

// raceEnabled reports the race detector is active: its instrumentation
// adds allocations, so allocation-ceiling tests skip themselves.
const raceEnabled = true
