package hiddendb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Predicate is one equality constraint "attribute == value", both sides by
// index into the schema.
type Predicate struct {
	Attr  int
	Value int
}

// Query is a conjunction of equality predicates, the only query shape a
// conjunctive web form interface supports. Predicates are kept sorted by
// attribute index with at most one predicate per attribute, which gives
// every query a unique canonical form.
type Query struct {
	preds []Predicate
}

// NewQuery builds a query from predicates. It returns an error when an
// attribute appears twice; predicate order does not matter.
func NewQuery(preds ...Predicate) (Query, error) {
	q := Query{preds: append([]Predicate(nil), preds...)}
	sort.Slice(q.preds, func(i, j int) bool { return q.preds[i].Attr < q.preds[j].Attr })
	for i := 1; i < len(q.preds); i++ {
		if q.preds[i].Attr == q.preds[i-1].Attr {
			return Query{}, fmt.Errorf("hiddendb: duplicate predicate on attribute %d", q.preds[i].Attr)
		}
	}
	return q, nil
}

// MustQuery is NewQuery that panics on error.
func MustQuery(preds ...Predicate) Query {
	q, err := NewQuery(preds...)
	if err != nil {
		panic(err)
	}
	return q
}

// EmptyQuery returns the unconstrained query (SELECT *).
func EmptyQuery() Query { return Query{} }

// Len returns the number of predicates.
func (q Query) Len() int { return len(q.preds) }

// Preds returns a copy of the predicate list in canonical order.
func (q Query) Preds() []Predicate { return append([]Predicate(nil), q.preds...) }

// Value returns the value constrained for attribute attr and whether the
// query constrains it at all.
func (q Query) Value(attr int) (int, bool) {
	i := sort.Search(len(q.preds), func(i int) bool { return q.preds[i].Attr >= attr })
	if i < len(q.preds) && q.preds[i].Attr == attr {
		return q.preds[i].Value, true
	}
	return 0, false
}

// HasAttr reports whether attr is constrained.
func (q Query) HasAttr(attr int) bool {
	_, ok := q.Value(attr)
	return ok
}

// With returns a new query extended by attr == value. It panics if attr is
// already constrained: the random walk only ever lengthens a query with
// fresh attributes, so a duplicate indicates a programming error.
func (q Query) With(attr, value int) Query {
	if q.HasAttr(attr) {
		panic(fmt.Sprintf("hiddendb: query already constrains attribute %d", attr))
	}
	np := make([]Predicate, 0, len(q.preds)+1)
	inserted := false
	for _, p := range q.preds {
		if !inserted && attr < p.Attr {
			np = append(np, Predicate{attr, value})
			inserted = true
		}
		np = append(np, p)
	}
	if !inserted {
		np = append(np, Predicate{attr, value})
	}
	return Query{preds: np}
}

// Without returns a copy of the query with the predicate on attr removed.
// Removing an unconstrained attribute is a no-op.
func (q Query) Without(attr int) Query {
	np := make([]Predicate, 0, len(q.preds))
	for _, p := range q.preds {
		if p.Attr != attr {
			np = append(np, p)
		}
	}
	return Query{preds: np}
}

// Matches reports whether tuple values vals satisfy every predicate.
func (q Query) Matches(vals []int) bool {
	for _, p := range q.preds {
		if p.Attr >= len(vals) || vals[p.Attr] != p.Value {
			return false
		}
	}
	return true
}

// Contains reports whether q's predicate set is a subset of o's, i.e. every
// tuple matching o also matches q (q is an ancestor of o in the query
// tree). Every query contains itself.
func (q Query) Contains(o Query) bool {
	if len(q.preds) > len(o.preds) {
		return false
	}
	for _, p := range q.preds {
		v, ok := o.Value(p.Attr)
		if !ok || v != p.Value {
			return false
		}
	}
	return true
}

// Key returns the canonical string form "a=v&a=v&..." with attributes in
// increasing order: equal queries always produce equal keys, which the
// history cache uses for memoization.
func (q Query) Key() string {
	if len(q.preds) == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range q.preds {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(strconv.Itoa(p.Attr))
		b.WriteByte('=')
		b.WriteString(strconv.Itoa(p.Value))
	}
	return b.String()
}

// ParseQueryKey parses a canonical key back into a Query; it is the inverse
// of Key and validates attribute/value bounds against the schema.
func ParseQueryKey(s *Schema, key string) (Query, error) {
	if key == "" {
		return EmptyQuery(), nil
	}
	parts := strings.Split(key, "&")
	preds := make([]Predicate, 0, len(parts))
	for _, part := range parts {
		av := strings.SplitN(part, "=", 2)
		if len(av) != 2 {
			return Query{}, fmt.Errorf("hiddendb: malformed query key part %q", part)
		}
		attr, err := strconv.Atoi(av[0])
		if err != nil {
			return Query{}, fmt.Errorf("hiddendb: bad attribute in key part %q: %v", part, err)
		}
		val, err := strconv.Atoi(av[1])
		if err != nil {
			return Query{}, fmt.Errorf("hiddendb: bad value in key part %q: %v", part, err)
		}
		preds = append(preds, Predicate{attr, val})
	}
	q, err := NewQuery(preds...)
	if err != nil {
		return Query{}, err
	}
	if err := q.ValidateAgainst(s); err != nil {
		return Query{}, err
	}
	return q, nil
}

// ValidateAgainst checks that every predicate references a real attribute
// and an in-domain value of the schema.
func (q Query) ValidateAgainst(s *Schema) error {
	for _, p := range q.preds {
		if p.Attr < 0 || p.Attr >= len(s.Attrs) {
			return fmt.Errorf("hiddendb: predicate attribute %d out of range [0,%d)", p.Attr, len(s.Attrs))
		}
		if p.Value < 0 || p.Value >= len(s.Attrs[p.Attr].Values) {
			return fmt.Errorf("hiddendb: predicate value %d out of range for attribute %q (domain %d)",
				p.Value, s.Attrs[p.Attr].Name, len(s.Attrs[p.Attr].Values))
		}
	}
	return nil
}

// String renders the query with schema-free indices, e.g. "{2=1, 5=0}".
func (q Query) String() string {
	if len(q.preds) == 0 {
		return "{*}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range q.preds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d=%d", p.Attr, p.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Describe renders the query with attribute and value labels from the
// schema, e.g. "make='toyota' AND color='red'"; used by logs and the UI.
func (q Query) Describe(s *Schema) string {
	if len(q.preds) == 0 {
		return "TRUE"
	}
	var b strings.Builder
	for i, p := range q.preds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		if p.Attr < len(s.Attrs) && p.Value < len(s.Attrs[p.Attr].Values) {
			fmt.Fprintf(&b, "%s='%s'", s.Attrs[p.Attr].Name, s.Attrs[p.Attr].Values[p.Value])
		} else {
			fmt.Fprintf(&b, "%d=%d", p.Attr, p.Value)
		}
	}
	return b.String()
}
