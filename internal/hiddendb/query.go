package hiddendb

import (
	"fmt"
	"iter"
	"sort"
	"strconv"
	"strings"
)

// Predicate is one equality constraint "attribute == value", both sides by
// index into the schema.
type Predicate struct {
	Attr  int
	Value int
}

// Query is a conjunction of equality predicates, the only query shape a
// conjunctive web form interface supports. Predicates are kept sorted by
// attribute index with at most one predicate per attribute, which gives
// every query a unique canonical form.
//
// A query carries its canonical signature — the Key string and a 64-bit
// Hash — computed once at construction, so the history cache and the
// execution layer key their maps without rebuilding strings per lookup.
// Queries are immutable; the zero value is the empty (unconstrained)
// query.
type Query struct {
	preds []Predicate
	key   string
	hash  uint64
}

// FNV-1a parameters for the signature hash. The hash folds in the raw
// attribute/value integers (not the key bytes), so scratch signatures can
// be accumulated predicate-by-predicate without rendering digits.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// hashPred folds one predicate into a running signature hash. Callers
// seeding a scratch hash start from fnv64Offset (see AppendKeyWithout).
func hashPred(h uint64, p Predicate) uint64 {
	h ^= uint64(uint32(p.Attr))
	h *= fnv64Prime
	h ^= uint64(uint32(p.Value))
	h *= fnv64Prime
	return h
}

// intLen returns the rendered decimal width of x.
func intLen(x int) int {
	n := 1
	if x < 0 {
		n++
		x = -x
	}
	for x >= 10 {
		x /= 10
		n++
	}
	return n
}

// finalize computes the canonical signature from the (sorted, deduplicated)
// predicate list. The empty query's signature is ("", 0), matching the
// zero-value Query so literal Query{} values stay canonical.
func (q *Query) finalize() {
	if len(q.preds) == 0 {
		q.key, q.hash = "", 0
		return
	}
	size := len(q.preds) * 2 // '=' per predicate, '&' separators plus one spare
	for _, p := range q.preds {
		size += intLen(p.Attr) + intLen(p.Value)
	}
	var b strings.Builder
	b.Grow(size)
	var tmp [20]byte
	h := fnv64Offset
	for i, p := range q.preds {
		if i > 0 {
			b.WriteByte('&')
		}
		b.Write(strconv.AppendInt(tmp[:0], int64(p.Attr), 10))
		b.WriteByte('=')
		b.Write(strconv.AppendInt(tmp[:0], int64(p.Value), 10))
		h = hashPred(h, p)
	}
	q.key = b.String()
	q.hash = h
}

// NewQuery builds a query from predicates. It returns an error when an
// attribute appears twice; predicate order does not matter.
func NewQuery(preds ...Predicate) (Query, error) {
	q := Query{preds: append([]Predicate(nil), preds...)}
	sort.Slice(q.preds, func(i, j int) bool { return q.preds[i].Attr < q.preds[j].Attr })
	for i := 1; i < len(q.preds); i++ {
		if q.preds[i].Attr == q.preds[i-1].Attr {
			return Query{}, fmt.Errorf("hiddendb: duplicate predicate on attribute %d", q.preds[i].Attr)
		}
	}
	q.finalize()
	return q, nil
}

// MustQuery is NewQuery that panics on error.
func MustQuery(preds ...Predicate) Query {
	q, err := NewQuery(preds...)
	if err != nil {
		panic(err)
	}
	return q
}

// QueryFromSorted builds a query from predicates already in canonical
// order (strictly ascending attribute indexes). The slice is copied, so
// callers may keep appending to a reused scratch buffer — the walker's
// per-step construction path. It returns an error when the order is not
// strictly ascending.
func QueryFromSorted(preds []Predicate) (Query, error) {
	for i := 1; i < len(preds); i++ {
		if preds[i].Attr <= preds[i-1].Attr {
			return Query{}, fmt.Errorf("hiddendb: predicates not in strict canonical order at index %d", i)
		}
	}
	q := Query{preds: append([]Predicate(nil), preds...)}
	q.finalize()
	return q, nil
}

// EmptyQuery returns the unconstrained query (SELECT *).
func EmptyQuery() Query { return Query{} }

// Len returns the number of predicates.
func (q Query) Len() int { return len(q.preds) }

// Pred returns the i-th predicate in canonical order, without copying the
// predicate list. Use with Len for zero-allocation iteration.
func (q Query) Pred(i int) Predicate { return q.preds[i] }

// All iterates the predicates in canonical order without copying.
func (q Query) All() iter.Seq[Predicate] {
	return func(yield func(Predicate) bool) {
		for _, p := range q.preds {
			if !yield(p) {
				return
			}
		}
	}
}

// Preds returns a copy of the predicate list in canonical order. Hot paths
// should iterate via Len/Pred or All instead of paying for the copy.
func (q Query) Preds() []Predicate { return append([]Predicate(nil), q.preds...) }

// Value returns the value constrained for attribute attr and whether the
// query constrains it at all.
func (q Query) Value(attr int) (int, bool) {
	i := sort.Search(len(q.preds), func(i int) bool { return q.preds[i].Attr >= attr })
	if i < len(q.preds) && q.preds[i].Attr == attr {
		return q.preds[i].Value, true
	}
	return 0, false
}

// HasAttr reports whether attr is constrained.
func (q Query) HasAttr(attr int) bool {
	_, ok := q.Value(attr)
	return ok
}

// With returns a new query extended by attr == value. It panics if attr is
// already constrained: the random walk only ever lengthens a query with
// fresh attributes, so a duplicate indicates a programming error.
func (q Query) With(attr, value int) Query {
	if q.HasAttr(attr) {
		panic(fmt.Sprintf("hiddendb: query already constrains attribute %d", attr))
	}
	np := make([]Predicate, 0, len(q.preds)+1)
	inserted := false
	for _, p := range q.preds {
		if !inserted && attr < p.Attr {
			np = append(np, Predicate{attr, value})
			inserted = true
		}
		np = append(np, p)
	}
	if !inserted {
		np = append(np, Predicate{attr, value})
	}
	nq := Query{preds: np}
	nq.finalize()
	return nq
}

// Without returns a copy of the query with the predicate on attr removed.
// Removing an unconstrained attribute is a no-op.
func (q Query) Without(attr int) Query {
	if !q.HasAttr(attr) {
		return q
	}
	np := make([]Predicate, 0, len(q.preds)-1)
	for _, p := range q.preds {
		if p.Attr != attr {
			np = append(np, p)
		}
	}
	nq := Query{preds: np}
	nq.finalize()
	return nq
}

// Matches reports whether tuple values vals satisfy every predicate.
func (q Query) Matches(vals []int) bool {
	for _, p := range q.preds {
		if p.Attr >= len(vals) || vals[p.Attr] != p.Value {
			return false
		}
	}
	return true
}

// Contains reports whether q's predicate set is a subset of o's, i.e. every
// tuple matching o also matches q (q is an ancestor of o in the query
// tree). Every query contains itself.
func (q Query) Contains(o Query) bool {
	if len(q.preds) > len(o.preds) {
		return false
	}
	for _, p := range q.preds {
		v, ok := o.Value(p.Attr)
		if !ok || v != p.Value {
			return false
		}
	}
	return true
}

// Key returns the canonical string form "a=v&a=v&..." with attributes in
// increasing order: equal queries always produce equal keys, which the
// history cache uses for memoization. The key is computed once at
// construction; Key itself is O(1) and allocation-free.
func (q Query) Key() string { return q.key }

// Hash returns the query's 64-bit FNV-1a signature hash, computed once at
// construction. Equal queries always hash equally; the history cache and
// execution layer shard and key their maps on it, verifying the full Key
// on the (vanishingly rare) collision.
func (q Query) Hash() uint64 { return q.hash }

// AppendKeyWithout appends to dst the canonical key of q with the
// predicate on attr removed, returning the extended buffer and the removed
// query's signature hash. It lets the history cache probe a parent query's
// cache slot without allocating a Query (dst is a reusable scratch
// buffer). When attr is unconstrained the result equals q's own signature.
func (q Query) AppendKeyWithout(dst []byte, attr int) ([]byte, uint64) {
	h := fnv64Offset
	n := 0
	for _, p := range q.preds {
		if p.Attr == attr {
			continue
		}
		if n > 0 {
			dst = append(dst, '&')
		}
		dst = strconv.AppendInt(dst, int64(p.Attr), 10)
		dst = append(dst, '=')
		dst = strconv.AppendInt(dst, int64(p.Value), 10)
		h = hashPred(h, p)
		n++
	}
	if n == 0 {
		return dst, 0
	}
	return dst, h
}

// AppendKeyReplace appends to dst the canonical key of q with attr's value
// replaced by value, returning the extended buffer and the replaced
// query's signature hash — the sibling-probe companion of
// AppendKeyWithout. attr must already be constrained by q; replacing an
// unconstrained attribute panics, as that would silently change the
// query's shape.
func (q Query) AppendKeyReplace(dst []byte, attr, value int) ([]byte, uint64) {
	if !q.HasAttr(attr) {
		panic(fmt.Sprintf("hiddendb: AppendKeyReplace of unconstrained attribute %d", attr))
	}
	h := fnv64Offset
	for i, p := range q.preds {
		if p.Attr == attr {
			p.Value = value
		}
		if i > 0 {
			dst = append(dst, '&')
		}
		dst = strconv.AppendInt(dst, int64(p.Attr), 10)
		dst = append(dst, '=')
		dst = strconv.AppendInt(dst, int64(p.Value), 10)
		h = hashPred(h, p)
	}
	return dst, h
}

// ParseQueryKey parses a canonical key back into a Query; it is the inverse
// of Key and validates attribute/value bounds against the schema.
func ParseQueryKey(s *Schema, key string) (Query, error) {
	if key == "" {
		return EmptyQuery(), nil
	}
	parts := strings.Split(key, "&")
	preds := make([]Predicate, 0, len(parts))
	for _, part := range parts {
		av := strings.SplitN(part, "=", 2)
		if len(av) != 2 {
			return Query{}, fmt.Errorf("hiddendb: malformed query key part %q", part)
		}
		attr, err := strconv.Atoi(av[0])
		if err != nil {
			return Query{}, fmt.Errorf("hiddendb: bad attribute in key part %q: %v", part, err)
		}
		val, err := strconv.Atoi(av[1])
		if err != nil {
			return Query{}, fmt.Errorf("hiddendb: bad value in key part %q: %v", part, err)
		}
		preds = append(preds, Predicate{attr, val})
	}
	q, err := NewQuery(preds...)
	if err != nil {
		return Query{}, err
	}
	if err := q.ValidateAgainst(s); err != nil {
		return Query{}, err
	}
	return q, nil
}

// ValidateAgainst checks that every predicate references a real attribute
// and an in-domain value of the schema.
func (q Query) ValidateAgainst(s *Schema) error {
	for _, p := range q.preds {
		if p.Attr < 0 || p.Attr >= len(s.Attrs) {
			return fmt.Errorf("hiddendb: predicate attribute %d out of range [0,%d)", p.Attr, len(s.Attrs))
		}
		if p.Value < 0 || p.Value >= len(s.Attrs[p.Attr].Values) {
			return fmt.Errorf("hiddendb: predicate value %d out of range for attribute %q (domain %d)",
				p.Value, s.Attrs[p.Attr].Name, len(s.Attrs[p.Attr].Values))
		}
	}
	return nil
}

// String renders the query with schema-free indices, e.g. "{2=1, 5=0}".
func (q Query) String() string {
	if len(q.preds) == 0 {
		return "{*}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range q.preds {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d=%d", p.Attr, p.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Describe renders the query with attribute and value labels from the
// schema, e.g. "make='toyota' AND color='red'"; used by logs and the UI.
func (q Query) Describe(s *Schema) string {
	if len(q.preds) == 0 {
		return "TRUE"
	}
	var b strings.Builder
	for i, p := range q.preds {
		if i > 0 {
			b.WriteString(" AND ")
		}
		if p.Attr < len(s.Attrs) && p.Value < len(s.Attrs[p.Attr].Values) {
			fmt.Fprintf(&b, "%s='%s'", s.Attrs[p.Attr].Name, s.Attrs[p.Attr].Values[p.Value])
		} else {
			fmt.Fprintf(&b, "%d=%d", p.Attr, p.Value)
		}
	}
	return b.String()
}
