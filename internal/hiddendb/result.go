package hiddendb

import "math"

// Tuple is one row of the hidden database as seen through the interface:
// the value index of each attribute plus, for numeric attributes, the raw
// value the site displays (price in dollars, not just a price band).
type Tuple struct {
	// ID is the tuple's position in the backing table. The web form never
	// exposes it; connectors synthesize stable IDs from row content.
	ID int
	// Vals holds one domain-value index per schema attribute.
	Vals []int
	// Nums holds raw numeric values aligned with schema attributes; NaN for
	// non-numeric attributes. May be nil when the schema has no numeric
	// attributes.
	Nums []float64
}

// Num returns the raw numeric value of attribute i and whether one exists.
func (t *Tuple) Num(i int) (float64, bool) {
	if i < len(t.Nums) && !math.IsNaN(t.Nums[i]) {
		return t.Nums[i], true
	}
	return 0, false
}

// Clone deep-copies the tuple.
func (t *Tuple) Clone() Tuple {
	return Tuple{
		ID:   t.ID,
		Vals: append([]int(nil), t.Vals...),
		Nums: append([]float64(nil), t.Nums...),
	}
}

// CountAbsent marks Result.Count when the interface does not report counts.
const CountAbsent = -1

// Result is the interface's answer to one conjunctive query.
//
// Results are immutable by convention: producers (the in-process DB, the
// history cache, the execution layer) may hand the same tuples — or the
// same Result — to many readers, with Vals/Nums aliasing shared backing
// storage. Treat everything reachable from a Result as read-only; Clone a
// tuple (or the whole Result) to obtain mutable ownership.
type Result struct {
	// Tuples holds the top-k matching tuples in rank order; at most k.
	// May alias shared immutable storage: read-only.
	Tuples []Tuple
	// Overflow is the interface's "not all qualifying tuples are shown"
	// notification: more than k tuples matched.
	Overflow bool
	// Count is the number of matching tuples as reported by the interface:
	// exact, a noisy estimate, or CountAbsent depending on the interface's
	// CountMode. It is reported even for overflowing queries (as Google
	// Base did).
	Count int
}

// Returned is the number of tuples in the visible result page.
func (r *Result) Returned() int { return len(r.Tuples) }

// Empty reports an underflow: no tuple matched.
func (r *Result) Empty() bool { return len(r.Tuples) == 0 && !r.Overflow }

// Valid reports a non-overflow, non-empty answer — the stopping condition
// of the random drill-down: between 1 and k tuples, all visible.
func (r *Result) Valid() bool { return len(r.Tuples) > 0 && !r.Overflow }

// Clone deep-copies the result.
func (r *Result) Clone() *Result {
	c := &Result{Overflow: r.Overflow, Count: r.Count}
	c.Tuples = make([]Tuple, len(r.Tuples))
	for i := range r.Tuples {
		c.Tuples[i] = r.Tuples[i].Clone()
	}
	return c
}
