package hiddendb

import (
	"fmt"
	"strings"
	"testing"
)

// The hot-path allocation ceilings below are regression guards for the
// zero-allocation query pipeline: Key/Hash must stay free, and Execute
// must allocate only its Result envelope (the intersection runs on pooled
// scratch and the returned tuples share the database's storage).

func TestQueryKeyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	q := MustQuery(
		Predicate{Attr: 0, Value: 3},
		Predicate{Attr: 4, Value: 1},
		Predicate{Attr: 9, Value: 12},
	)
	n := testing.AllocsPerRun(200, func() {
		if q.Key() == "" || q.Hash() == 0 {
			t.Fatal("bad signature")
		}
	})
	if n != 0 {
		t.Fatalf("Key/Hash allocated %.1f per call, want 0", n)
	}
}

func TestQueryIterationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	q := MustQuery(Predicate{0, 1}, Predicate{2, 0}, Predicate{5, 3})
	n := testing.AllocsPerRun(200, func() {
		sum := 0
		for i := 0; i < q.Len(); i++ {
			sum += q.Pred(i).Value
		}
		for p := range q.All() {
			sum += p.Value
		}
		if sum == 0 {
			t.Fatal("no predicates seen")
		}
	})
	if n != 0 {
		t.Fatalf("predicate iteration allocated %.1f per call, want 0", n)
	}
}

func TestDBExecuteAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	db, q := allocTestDB(t, CountNone)
	// Warm the scratch pool so the measurement sees steady state.
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := db.Execute(q); err != nil {
			t.Fatal(err)
		}
	})
	// One Result plus one tuple-header slice; a little slack for pool
	// refills after an unlucky GC.
	if n > 3 {
		t.Fatalf("Execute allocated %.1f per call, want <= 3", n)
	}
}

func TestDBExecuteExactCountAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	db, q := allocTestDB(t, CountExact)
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		res, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count == CountAbsent {
			t.Fatal("exact count missing")
		}
	})
	if n > 3 {
		t.Fatalf("Execute (exact counts) allocated %.1f per call, want <= 3", n)
	}
}

func TestDBExecuteAllocsSortedBackend(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	// The sorted reference backend shares Execute's allocation budget.
	db, q := allocBackendDB(t, CountExact, PostingsSorted)
	if _, err := db.Execute(q); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, err := db.Execute(q); err != nil {
			t.Fatal(err)
		}
	})
	if n > 3 {
		t.Fatalf("Execute (sorted backend) allocated %.1f per call, want <= 3", n)
	}
}

// allocTestDB builds a small database and a two-predicate query that
// overflows K, so both the truncated scan and the exact-count full scan
// are exercised.
func allocTestDB(t *testing.T, mode CountMode) (*DB, Query) {
	return allocBackendDB(t, mode, PostingsBitmap)
}

func allocBackendDB(t *testing.T, mode CountMode, backend PostingBackend) (*DB, Query) {
	t.Helper()
	schema := MustSchema("alloc",
		CatAttr("a", "x", "y", "z"),
		CatAttr("b", "p", "q"),
	)
	tuples := make([]Tuple, 2000)
	for i := range tuples {
		tuples[i] = Tuple{Vals: []int{i % 3, i % 2}}
	}
	db, err := New(schema, tuples, nil, Config{K: 50, CountMode: mode, Postings: backend})
	if err != nil {
		t.Fatal(err)
	}
	return db, MustQuery(Predicate{0, 0}, Predicate{1, 0})
}

func TestQueryFromSortedMatchesWith(t *testing.T) {
	// Every construction path must agree on the canonical signature.
	preds := []Predicate{{1, 2}, {4, 0}, {7, 5}}
	a := MustQuery(preds...)
	b, err := QueryFromSorted(preds)
	if err != nil {
		t.Fatal(err)
	}
	c := EmptyQuery().With(4, 0).With(7, 5).With(1, 2)
	for _, q := range []Query{b, c} {
		if q.Key() != a.Key() || q.Hash() != a.Hash() {
			t.Fatalf("signature mismatch: %q/%d vs %q/%d", q.Key(), q.Hash(), a.Key(), a.Hash())
		}
	}
	if _, err := QueryFromSorted([]Predicate{{3, 0}, {3, 1}}); err == nil {
		t.Fatal("QueryFromSorted accepted a duplicate attribute")
	}
	if _, err := QueryFromSorted([]Predicate{{5, 0}, {3, 1}}); err == nil {
		t.Fatal("QueryFromSorted accepted out-of-order predicates")
	}
}

func TestScratchSignatureHelpers(t *testing.T) {
	q := MustQuery(Predicate{0, 1}, Predicate{3, 2}, Predicate{8, 0})
	var buf []byte

	// AppendKeyWithout must agree with the Without construction.
	for _, attr := range []int{0, 3, 8, 5} {
		want := q.Without(attr)
		key, h := q.AppendKeyWithout(buf[:0], attr)
		if string(key) != want.Key() || h != want.Hash() {
			t.Fatalf("AppendKeyWithout(%d) = %q/%d, want %q/%d", attr, key, h, want.Key(), want.Hash())
		}
	}
	// Removing the only predicate must match the empty query's signature.
	one := MustQuery(Predicate{2, 2})
	key, h := one.AppendKeyWithout(nil, 2)
	if len(key) != 0 || h != EmptyQuery().Hash() {
		t.Fatalf("AppendKeyWithout to empty = %q/%d, want \"\"/%d", key, h, EmptyQuery().Hash())
	}

	// AppendKeyReplace must agree with the Without+With construction.
	for _, v := range []int{0, 1, 9} {
		want := q.Without(3).With(3, v)
		key, h := q.AppendKeyReplace(buf[:0], 3, v)
		if string(key) != want.Key() || h != want.Hash() {
			t.Fatalf("AppendKeyReplace(3,%d) = %q/%d, want %q/%d", v, key, h, want.Key(), want.Hash())
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("AppendKeyReplace of an unconstrained attribute did not panic")
		}
	}()
	q.AppendKeyReplace(nil, 4, 0)
}

func TestSignatureAllocsScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; ceilings measured without -race")
	}
	q := MustQuery(Predicate{0, 1}, Predicate{3, 2}, Predicate{8, 0})
	buf := make([]byte, 0, 64)
	n := testing.AllocsPerRun(200, func() {
		b, _ := q.AppendKeyWithout(buf[:0], 3)
		b, _ = q.AppendKeyReplace(b[:0], 8, 1)
		buf = b[:0]
	})
	if n != 0 {
		t.Fatalf("scratch signature rendering allocated %.1f per call, want 0", n)
	}
}

func FuzzQueryKeyRoundTrip(f *testing.F) {
	attrs := make([]Attribute, 16)
	vals := []string{"v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"}
	for i := range attrs {
		attrs[i] = CatAttr(fmt.Sprintf("attr%d", i), vals...)
	}
	schema := MustSchema("fuzz", attrs...)

	// Seeds: empty, shallow, unsorted, max-depth, and malformed keys.
	maxDepth := make([]string, 0, len(attrs))
	for i := range attrs {
		maxDepth = append(maxDepth, fmt.Sprintf("%d=%d", i, i%len(vals)))
	}
	f.Add("")
	f.Add("0=1")
	f.Add("3=2&0=7")
	f.Add(strings.Join(maxDepth, "&"))
	f.Add("15=7&14=0&0=0")
	f.Add("notakey")
	f.Add("1=")
	f.Add("1=999")
	f.Fuzz(func(t *testing.T, key string) {
		q, err := ParseQueryKey(schema, key)
		if err != nil {
			return // invalid keys may be rejected, never crash
		}
		// The canonical key must be a fixpoint: parsing it again yields an
		// identical signature and predicate list.
		q2, err := ParseQueryKey(schema, q.Key())
		if err != nil {
			t.Fatalf("canonical key %q failed to reparse: %v", q.Key(), err)
		}
		if q2.Key() != q.Key() || q2.Hash() != q.Hash() || q2.Len() != q.Len() {
			t.Fatalf("round trip drifted: %q/%d/%d vs %q/%d/%d",
				q.Key(), q.Hash(), q.Len(), q2.Key(), q2.Hash(), q2.Len())
		}
		for i := 0; i < q.Len(); i++ {
			if q.Pred(i) != q2.Pred(i) {
				t.Fatalf("predicate %d drifted: %+v vs %+v", i, q.Pred(i), q2.Pred(i))
			}
		}
	})
}
