package hiddendb

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Ranker assigns every tuple a static relevance score; the interface
// returns the k highest-scoring matches of a query. Real hidden databases
// rank by a proprietary but deterministic function (Google Base's
// relevance, a dealer's "featured" ordering); the sampling theory only
// requires determinism, so any Ranker here exercises the same behaviour.
// Ties are broken by tuple ID, making the total order strict.
type Ranker interface {
	// Name identifies the ranker in logs and experiment tables.
	Name() string
	// Score returns the relevance of the tuple; higher ranks earlier.
	Score(t *Tuple) float64
}

// HashRanker ranks tuples by a seeded hash of their ID: a deterministic
// order that is uncorrelated with any attribute, modelling an opaque
// proprietary relevance function.
type HashRanker struct {
	Seed uint64
}

// Name implements Ranker.
func (r HashRanker) Name() string { return fmt.Sprintf("hash(seed=%d)", r.Seed) }

// Score implements Ranker.
func (r HashRanker) Score(t *Tuple) float64 {
	h := fnv.New64a()
	var buf [16]byte
	putUint64(buf[0:8], r.Seed)
	putUint64(buf[8:16], uint64(t.ID))
	h.Write(buf[:])
	// Map to (0,1); the exact distribution is irrelevant, only the order.
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// ByAttrRanker ranks tuples by one attribute's raw numeric value (for
// KindNumeric attributes) or value index (otherwise), ascending or
// descending — e.g. "cheapest first", the common storefront default.
type ByAttrRanker struct {
	Attr      int
	Ascending bool
}

// Name implements Ranker.
func (r ByAttrRanker) Name() string {
	dir := "desc"
	if r.Ascending {
		dir = "asc"
	}
	return fmt.Sprintf("byattr(%d,%s)", r.Attr, dir)
}

// Score implements Ranker.
func (r ByAttrRanker) Score(t *Tuple) float64 {
	var v float64
	if r.Attr < len(t.Nums) && !math.IsNaN(t.Nums[r.Attr]) {
		v = t.Nums[r.Attr]
	} else if r.Attr < len(t.Vals) {
		v = float64(t.Vals[r.Attr])
	}
	if r.Ascending {
		return -v
	}
	return v
}

// StaticRanker ranks tuples by a caller-provided score slice indexed by
// tuple ID; used by tests to force exact orderings.
type StaticRanker struct {
	Scores []float64
}

// Name implements Ranker.
func (r StaticRanker) Name() string { return "static" }

// Score implements Ranker.
func (r StaticRanker) Score(t *Tuple) float64 {
	if t.ID < len(r.Scores) {
		return r.Scores[t.ID]
	}
	return 0
}
