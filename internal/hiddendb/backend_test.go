package hiddendb

import (
	"math/rand"
	"testing"
)

// diffSchema is the differential-test schema: enough attributes and
// value skew that random conjunctive queries hit empty, partial, and
// overflowing result sets.
func diffSchema(t testing.TB) *Schema {
	t.Helper()
	schema, err := NewSchema("diff",
		CatAttr("a", "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7"),
		CatAttr("b", "b0", "b1", "b2"),
		CatAttr("c", "c0", "c1"),
		CatAttr("d", "d0", "d1", "d2", "d3", "d4"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// diffTuples generates a fresh tuple slice (New takes ownership and
// rewrites IDs, so each DB needs its own copy) with skewed value
// frequencies.
func diffTuples(rng *rand.Rand, n int) []Tuple {
	tuples := make([]Tuple, n)
	for i := range tuples {
		a := rng.Intn(8)
		if rng.Intn(4) != 0 {
			a = rng.Intn(2) // values 0–1 dominate
		}
		tuples[i] = Tuple{Vals: []int{
			a,
			rng.Intn(3),
			rng.Intn(2),
			rng.Intn(5),
		}}
	}
	return tuples
}

// diffQueries enumerates every 1-, 2- and 3-predicate query over the
// first value of each attribute plus a sample of random ones, so both
// sparse and dense intersections are covered.
func diffQueries(rng *rand.Rand, schema *Schema) []Query {
	var qs []Query
	qs = append(qs, EmptyQuery())
	m := len(schema.Attrs)
	for a := 0; a < m; a++ {
		for v := 0; v < schema.DomainSize(a); v++ {
			qs = append(qs, MustQuery(Predicate{Attr: a, Value: v}))
		}
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			qs = append(qs, MustQuery(
				Predicate{Attr: a, Value: rng.Intn(schema.DomainSize(a))},
				Predicate{Attr: b, Value: rng.Intn(schema.DomainSize(b))},
			))
		}
	}
	for i := 0; i < 40; i++ {
		qs = append(qs, MustQuery(
			Predicate{Attr: 0, Value: rng.Intn(schema.DomainSize(0))},
			Predicate{Attr: 1, Value: rng.Intn(schema.DomainSize(1))},
			Predicate{Attr: 3, Value: rng.Intn(schema.DomainSize(3))},
		))
	}
	qs = append(qs, MustQuery(
		Predicate{Attr: 0, Value: 0},
		Predicate{Attr: 1, Value: 0},
		Predicate{Attr: 2, Value: 0},
		Predicate{Attr: 3, Value: 0},
	))
	return qs
}

// compareBackends runs every query against both databases and fails on
// the first divergence in tuples, overflow flag, or count.
func compareBackends(t *testing.T, want, got *DB, qs []Query, label string) {
	t.Helper()
	for _, q := range qs {
		rw, err := want.Execute(q)
		if err != nil {
			t.Fatalf("%s: reference Execute(%s): %v", label, q.Key(), err)
		}
		rg, err := got.Execute(q)
		if err != nil {
			t.Fatalf("%s: Execute(%s): %v", label, q.Key(), err)
		}
		if rg.Overflow != rw.Overflow || rg.Count != rw.Count || len(rg.Tuples) != len(rw.Tuples) {
			t.Fatalf("%s: query %s diverges: overflow %v/%v count %d/%d rows %d/%d",
				label, q.Key(), rg.Overflow, rw.Overflow, rg.Count, rw.Count, len(rg.Tuples), len(rw.Tuples))
		}
		for i := range rw.Tuples {
			if rg.Tuples[i].ID != rw.Tuples[i].ID {
				t.Fatalf("%s: query %s row %d: tuple %d, want %d",
					label, q.Key(), i, rg.Tuples[i].ID, rw.Tuples[i].ID)
			}
		}
		if cw, cg := want.TrueCount(q), got.TrueCount(q); cw != cg {
			t.Fatalf("%s: query %s TrueCount %d, want %d", label, q.Key(), cg, cw)
		}
	}
}

// TestPostingBackendsAgree is the differential test: the bitmap backend
// (with and without parallel intersection) must be indistinguishable
// from the sorted-slice reference across modes and query shapes.
func TestPostingBackendsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schema := diffSchema(t)
	const n = 30000
	base := diffTuples(rng, n)
	clone := func() []Tuple {
		out := make([]Tuple, len(base))
		for i := range base {
			out[i] = Tuple{Vals: append([]int{}, base[i].Vals...)}
		}
		return out
	}
	qs := diffQueries(rng, schema)
	for _, mode := range []CountMode{CountNone, CountExact} {
		ranker := HashRanker{Seed: 7}
		sorted, err := New(schema, clone(), ranker, Config{K: 50, CountMode: mode, Postings: PostingsSorted})
		if err != nil {
			t.Fatal(err)
		}
		bm, err := New(schema, clone(), ranker, Config{K: 50, CountMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		par, err := New(schema, clone(), ranker, Config{K: 50, CountMode: mode, ParallelIntersect: true})
		if err != nil {
			t.Fatal(err)
		}
		compareBackends(t, sorted, bm, qs, "bitmap/"+mode.String())
		compareBackends(t, sorted, par, qs, "parallel/"+mode.String())
	}
}

// TestParallelIntersectPathTaken pins the parallel gate: with enough
// tuples that the cheapest posting list crosses parallelMinSeedCard, a
// three-predicate query must still agree with the serial backends. The
// dataset is built so the three queried values each cover ≥ 2^16+ rank
// positions.
func TestParallelIntersectPathTaken(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential dataset")
	}
	schema := diffSchema(t)
	const n = 160000
	tuples := func() []Tuple {
		out := make([]Tuple, n)
		for i := range out {
			// Attributes 0,1,2 all take value 0 on ~85% of tuples, so
			// every posting list in the query has cardinality ≥ 2^16.
			a, b, c := 0, 0, 0
			if i%7 == 1 {
				a = 1 + i%5
			}
			if i%6 == 2 {
				b = 1 + i%2
			}
			if i%9 == 3 {
				c = 1
			}
			out[i] = Tuple{Vals: []int{a, b, c, i % 5}}
		}
		return out
	}
	q := MustQuery(
		Predicate{Attr: 0, Value: 0},
		Predicate{Attr: 1, Value: 0},
		Predicate{Attr: 2, Value: 0},
	)
	ranker := HashRanker{Seed: 3}
	serial, err := New(schema, tuples(), ranker, Config{K: 100, CountMode: CountExact})
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(schema, tuples(), ranker, Config{K: 100, CountMode: CountExact, ParallelIntersect: true})
	if err != nil {
		t.Fatal(err)
	}
	// Confirm the gate's premise holds so the parallel branch is real.
	for a := 0; a < 3; a++ {
		if c := par.bitPostings[a][0].Cardinality(); c < parallelMinSeedCard {
			t.Fatalf("attr %d posting cardinality %d below parallel threshold; test shape broken", a, c)
		}
	}
	rs, err := serial.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Count != rs.Count || rp.Overflow != rs.Overflow || len(rp.Tuples) != len(rs.Tuples) {
		t.Fatalf("parallel diverges: count %d/%d overflow %v/%v rows %d/%d",
			rp.Count, rs.Count, rp.Overflow, rs.Overflow, len(rp.Tuples), len(rs.Tuples))
	}
	for i := range rs.Tuples {
		if rp.Tuples[i].ID != rs.Tuples[i].ID {
			t.Fatalf("parallel row %d: tuple %d, want %d", i, rp.Tuples[i].ID, rs.Tuples[i].ID)
		}
	}
	if got, want := par.TrueCount(q), serial.TrueCount(q); got != want {
		t.Fatalf("parallel TrueCount %d, want %d", got, want)
	}
}
