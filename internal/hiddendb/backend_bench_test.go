package hiddendb_test

import (
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
)

// BenchmarkExecuteIntersectBackends compares the posting backends head
// to head at 10M tuples under exact counts (full-intersection mode,
// where representation matters most): the sorted-slice reference, the
// bitmap backend on the same two-predicate query, and the bitmap
// backend with parallel intersection on a three-predicate query (the
// shape that takes the parallel path). Skipped under -short; the
// nightly workflow runs it at full size. This file is an external test
// package because datagen itself imports hiddendb.
func BenchmarkExecuteIntersectBackends(b *testing.B) {
	const n = 10_000_000
	cases := []struct {
		name  string
		cfg   hiddendb.Config
		preds []hiddendb.Predicate
	}{
		{"sorted-10M",
			hiddendb.Config{K: 100, CountMode: hiddendb.CountExact, Postings: hiddendb.PostingsSorted},
			[]hiddendb.Predicate{{Attr: 0, Value: 0}, {Attr: 1, Value: 0}}},
		{"bitmap-10M",
			hiddendb.Config{K: 100, CountMode: hiddendb.CountExact},
			[]hiddendb.Predicate{{Attr: 0, Value: 0}, {Attr: 1, Value: 0}}},
		{"bitmap-parallel-10M",
			hiddendb.Config{K: 100, CountMode: hiddendb.CountExact, ParallelIntersect: true},
			[]hiddendb.Predicate{{Attr: 0, Value: 0}, {Attr: 1, Value: 0}, {Attr: 2, Value: 0}}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			if testing.Short() {
				b.Skip("10M-tuple build skipped under -short")
			}
			ds := datagen.NewHuge(n, 1).Dataset()
			db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, tc.cfg)
			if err != nil {
				b.Fatal(err)
			}
			q := hiddendb.MustQuery(tc.preds...)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := db.Execute(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Count <= 0 {
					b.Fatal("missing exact count")
				}
			}
		})
	}
}
