package bitmap

import "math/bits"

// Iterator streams a bitmap's values in ascending order. It is a value
// type: obtain one with Bitmap.Iterator, keep it on the stack, and call
// Next until ok is false — the loop allocates nothing. Mutating the
// bitmap invalidates the iterator.
type Iterator struct {
	b  *Bitmap
	ci int // current container
	// array / run progress
	ai int
	// run offset within runs[ai]
	ro uint32
	// bitmap progress: next word index and the current word's remaining bits
	wi   int
	word uint64
}

// Iterator returns an iterator positioned before the first value.
func (b *Bitmap) Iterator() Iterator {
	return Iterator{b: b}
}

// Next returns the next value in ascending order.
//
//hdlint:hotpath
func (it *Iterator) Next() (uint32, bool) {
	for it.ci < len(it.b.cts) {
		c := &it.b.cts[it.ci]
		base := uint32(it.b.keys[it.ci]) << 16
		switch c.typ {
		case typeArray:
			if it.ai < len(c.arr) {
				v := base | uint32(c.arr[it.ai])
				it.ai++
				return v, true
			}
		case typeBitmap:
			for {
				if it.word != 0 {
					tz := bits.TrailingZeros64(it.word)
					it.word &= it.word - 1
					return base | uint32((it.wi-1)<<6+tz), true
				}
				if it.wi >= containerWords {
					break
				}
				it.word = c.words[it.wi]
				it.wi++
			}
		default: // typeRun
			if it.ai < len(c.runs) {
				r := c.runs[it.ai]
				v := base | (uint32(r.Start) + it.ro)
				if uint32(r.Start)+it.ro >= uint32(r.Last) {
					it.ai++
					it.ro = 0
				} else {
					it.ro++
				}
				return v, true
			}
		}
		it.ci++
		it.ai, it.ro, it.wi, it.word = 0, 0, 0, 0
	}
	return 0, false
}

// Select returns the i-th smallest value (0-based) and whether i is in
// range. Cost is O(#containers) to find the chunk plus O(words) within
// a bitmap container — the random-tuple accessor that keeps uniform
// selection over a posting list logarithmic-ish rather than a full scan.
func (b *Bitmap) Select(i int) (uint32, bool) {
	if i < 0 || int64(i) >= b.card {
		return 0, false
	}
	rem := int32(i)
	for ci := range b.cts {
		c := &b.cts[ci]
		if rem >= c.card {
			rem -= c.card
			continue
		}
		base := uint32(b.keys[ci]) << 16
		switch c.typ {
		case typeArray:
			return base | uint32(c.arr[rem]), true
		case typeBitmap:
			for w := 0; w < containerWords; w++ {
				n := int32(bits.OnesCount64(c.words[w]))
				if rem >= n {
					rem -= n
					continue
				}
				return base | uint32(w<<6+selectInWord(c.words[w], int(rem))), true
			}
		default: // typeRun
			for _, r := range c.runs {
				n := int32(r.Last-r.Start) + 1
				if rem >= n {
					rem -= n
					continue
				}
				return base | (uint32(r.Start) + uint32(rem)), true
			}
		}
	}
	return 0, false // unreachable while card is consistent
}

// selectInWord returns the position of the i-th set bit (0-based) of w.
func selectInWord(w uint64, i int) int {
	for ; i > 0; i-- {
		w &= w - 1
	}
	return bits.TrailingZeros64(w)
}

// Rank returns the number of values strictly less than x, so
// Select(Rank(x)) == x whenever x is in the set.
func (b *Bitmap) Rank(x uint32) int {
	key := uint16(x >> 16)
	low := uint16(x)
	rank := 0
	for ci := range b.cts {
		if b.keys[ci] > key {
			break
		}
		c := &b.cts[ci]
		if b.keys[ci] < key {
			rank += int(c.card)
			continue
		}
		switch c.typ {
		case typeArray:
			for _, v := range c.arr {
				if v >= low {
					break
				}
				rank++
			}
		case typeBitmap:
			w := int(low >> 6)
			for i := 0; i < w; i++ {
				rank += bits.OnesCount64(c.words[i])
			}
			rank += bits.OnesCount64(c.words[w] & (uint64(1)<<(low&63) - 1))
		default: // typeRun
			for _, r := range c.runs {
				if uint16(r.Start) >= low {
					break
				}
				if r.Last < low {
					rank += int(r.Last-r.Start) + 1
				} else {
					rank += int(low - r.Start)
				}
			}
		}
		break
	}
	return rank
}
