package bitmap

import (
	"math/rand"
	"sort"
	"testing"
)

// intersectRef computes the reference intersection of sorted slices.
func intersectRef(sets ...[]uint32) []uint32 {
	if len(sets) == 0 {
		return nil
	}
	out := append([]uint32{}, sets[0]...)
	for _, s := range sets[1:] {
		m := make(map[uint32]bool, len(s))
		for _, v := range s {
			m[v] = true
		}
		keep := out[:0]
		for _, v := range out {
			if m[v] {
				keep = append(keep, v)
			}
		}
		out = keep
	}
	return out
}

// collect drains a bitmap into a slice via its iterator.
func collect(b *Bitmap) []uint32 {
	out := make([]uint32, 0, b.Cardinality())
	it := b.Iterator()
	for {
		v, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

// genSets builds randomized overlapping value sets of the given sizes
// over a shared domain so intersections are non-trivial, with shape
// diversity (some clustered, some uniform).
func genSets(rng *rand.Rand, domain uint32, sizes ...int) ([][]uint32, []*Bitmap) {
	vals := make([][]uint32, len(sizes))
	maps := make([]*Bitmap, len(sizes))
	for i, n := range sizes {
		set := make([]uint32, 0, n)
		if i%2 == 1 {
			// Clustered: runs of consecutive values.
			for len(set) < n {
				start := rng.Uint32() % domain
				for j := uint32(0); j < 64 && len(set) < n; j++ {
					set = append(set, (start+j)%domain)
				}
			}
		} else {
			for j := 0; j < n; j++ {
				set = append(set, rng.Uint32()%domain)
			}
		}
		b, ref := buildBoth(set, i%3 == 0)
		vals[i] = ref
		maps[i] = b
	}
	return vals, maps
}

func buildBoth(vals []uint32, optimize bool) (*Bitmap, []uint32) {
	b := New()
	seen := make(map[uint32]bool, len(vals))
	for _, v := range vals {
		b.Add(v)
		seen[v] = true
	}
	if optimize {
		b.Optimize()
	}
	ref := make([]uint32, 0, len(seen))
	for v := range seen {
		ref = append(ref, v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	return b, ref
}

func TestIntersectInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]int{
		{1000, 200000},          // sparse × dense
		{5000, 5000},            // balanced
		{300, 40000, 150000},    // three-way
		{100, 100, 100, 100000}, // four-way with tiny seeds
	}
	for ci, sizes := range cases {
		refs, bms := genSets(rng, 1<<21, sizes...)
		want := intersectRef(refs...)
		dst := New()
		got := IntersectInto(dst, bms, 0, true)
		if got != len(want) {
			t.Fatalf("case %d: cardinality %d, want %d", ci, got, len(want))
		}
		vals := collect(dst)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("case %d: value[%d] = %d, want %d", ci, i, vals[i], want[i])
			}
		}
		if c := AndCardinality(New(), bms); c != len(want) {
			t.Fatalf("case %d: AndCardinality %d, want %d", ci, c, len(want))
		}
	}
}

func TestIntersectEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	refs, bms := genSets(rng, 1<<20, 50000, 400000)
	want := intersectRef(refs...)
	if len(want) < 200 {
		t.Fatalf("intersection too small (%d) to exercise early exit", len(want))
	}
	dst := New()
	limit := 101
	got := IntersectInto(dst, bms, limit, false)
	if got < limit {
		t.Fatalf("early exit stopped at %d < limit %d despite %d matches", got, limit, len(want))
	}
	if got > len(want) {
		t.Fatalf("early exit overcounted: %d > true %d", got, len(want))
	}
	// The early-exit result must be a prefix of the full intersection:
	// the smallest values, in order.
	vals := collect(dst)
	for i, v := range vals {
		if v != want[i] {
			t.Fatalf("early-exit result[%d] = %d, want prefix value %d", i, v, want[i])
		}
	}
}

func TestIntersectDisjoint(t *testing.T) {
	a, _ := buildBoth([]uint32{1, 2, 3, 100000}, false)
	b, _ := buildBoth([]uint32{4, 5, 200000}, false)
	dst := New()
	if got := IntersectInto(dst, []*Bitmap{a, b}, 0, true); got != 0 {
		t.Fatalf("disjoint intersection reported %d values", got)
	}
	if !dst.IsEmpty() || len(dst.keys) != 0 {
		t.Fatalf("disjoint intersection left %d containers", len(dst.keys))
	}
}

func TestIntersectReuseDst(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dst := New()
	for round := 0; round < 5; round++ {
		refs, bms := genSets(rng, 1<<19, 2000, 30000)
		want := intersectRef(refs...)
		got := IntersectInto(dst, bms, 0, true)
		if got != len(want) {
			t.Fatalf("round %d: cardinality %d, want %d", round, got, len(want))
		}
		vals := collect(dst)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("round %d: stale scratch leaked: value[%d] = %d, want %d", round, i, vals[i], want[i])
			}
		}
	}
}

func TestIntersectAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	_, bms := genSets(rng, 1<<20, 3000, 100000, 250000)
	dst := New()
	IntersectInto(dst, bms, 0, true) // warm dst's container storage
	n := testing.AllocsPerRun(100, func() {
		IntersectInto(dst, bms, 0, true)
	})
	if n != 0 {
		t.Fatalf("steady-state IntersectInto allocated %.1f per call, want 0", n)
	}
}

func TestParallelIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, workers := range []int{1, 2, 3, 8, 64} {
		refs, bms := genSets(rng, 1<<22, 20000, 300000, 500000)
		want := intersectRef(refs...)
		dst := New()
		got := ParallelIntersectInto(dst, bms, workers)
		if got != len(want) {
			t.Fatalf("workers=%d: cardinality %d, want %d", workers, got, len(want))
		}
		vals := collect(dst)
		for i := range want {
			if vals[i] != want[i] {
				t.Fatalf("workers=%d: value[%d] = %d, want %d", workers, i, vals[i], want[i])
			}
		}
	}
}

func TestOrAndNot(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for round := 0; round < 4; round++ {
		refs, bms := genSets(rng, 1<<19, 4000+round*10000, 50000)
		ra, rb := refs[0], refs[1]
		inB := make(map[uint32]bool, len(rb))
		for _, v := range rb {
			inB[v] = true
		}
		union := append([]uint32{}, ra...)
		for _, v := range rb {
			if !containsSorted(ra, v) {
				union = append(union, v)
			}
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		diff := make([]uint32, 0, len(ra))
		for _, v := range ra {
			if !inB[v] {
				diff = append(diff, v)
			}
		}

		dst := New()
		if got := Or(dst, bms[0], bms[1]); got != len(union) {
			t.Fatalf("round %d: Or cardinality %d, want %d", round, got, len(union))
		}
		if vals := collect(dst); !equalU32(vals, union) {
			t.Fatalf("round %d: Or contents diverge", round)
		}
		if got := AndNot(dst, bms[0], bms[1]); got != len(diff) {
			t.Fatalf("round %d: AndNot cardinality %d, want %d", round, got, len(diff))
		}
		if vals := collect(dst); !equalU32(vals, diff) {
			t.Fatalf("round %d: AndNot contents diverge", round)
		}
	}
}

func containsSorted(s []uint32, v uint32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
