package bitmap

import "math/bits"

// Or writes a ∪ b into dst and returns the resulting cardinality. dst
// is Reset first; it must be distinct from both operands. Union is the
// building block for disjunctive predicate extensions (numeric ranges
// as unions of bucket posting lists).
func Or(dst, a, b *Bitmap) int {
	dst.Reset()
	i, j := 0, 0
	for i < len(a.keys) || j < len(b.keys) {
		switch {
		case j == len(b.keys) || (i < len(a.keys) && a.keys[i] < b.keys[j]):
			d := dst.appendContainer(a.keys[i])
			d.copyFrom(&a.cts[i])
			i++
		case i == len(a.keys) || b.keys[j] < a.keys[i]:
			d := dst.appendContainer(b.keys[j])
			d.copyFrom(&b.cts[j])
			j++
		default: // equal keys: word-level OR
			d := dst.appendContainer(a.keys[i])
			d.orOf(&a.cts[i], &b.cts[j])
			i++
			j++
		}
		dst.card += int64(dst.cts[len(dst.cts)-1].card)
	}
	return int(dst.card)
}

// AndNot writes a \ b into dst and returns the resulting cardinality.
// dst is Reset first; it must be distinct from both operands.
func AndNot(dst, a, b *Bitmap) int {
	dst.Reset()
	j := 0
	for i := range a.keys {
		key := a.keys[i]
		j = gallopKeys(b.keys, j, key)
		if j == len(b.keys) || b.keys[j] != key {
			d := dst.appendContainer(key)
			d.copyFrom(&a.cts[i])
			dst.card += int64(d.card)
			continue
		}
		d := dst.appendContainer(key)
		d.andNotOf(&a.cts[i], &b.cts[j])
		if d.card == 0 {
			dst.keys = dst.keys[:len(dst.keys)-1]
			dst.cts = dst.cts[:len(dst.cts)-1]
			continue
		}
		dst.card += int64(d.card)
	}
	return int(dst.card)
}

// orOf fills c with a ∪ b: both operands are materialized into the word
// block (the simple, always-correct path — union is never on the query
// hot path), then the result converts back to array shape when sparse.
func (c *container) orOf(a, b *container) {
	c.typ = typeBitmap
	c.ensureWords()
	c.orInto(a)
	c.orInto(b)
	var card int32
	for _, w := range c.words {
		card += int32(bits.OnesCount64(w))
	}
	c.card = card
	c.toArrayIfSmall()
}

// orInto sets every bit of o in c's word block.
func (c *container) orInto(o *container) {
	switch o.typ {
	case typeArray:
		for _, v := range o.arr {
			c.words[v>>6] |= uint64(1) << (v & 63)
		}
	case typeBitmap:
		for i := range c.words {
			c.words[i] |= o.words[i]
		}
	default:
		for _, r := range o.runs {
			setRange(c.words, r.Start, r.Last)
		}
	}
}

// andNotOf fills c with a \ b via the word block, converting back to
// array shape when sparse.
func (c *container) andNotOf(a, b *container) {
	c.typ = typeBitmap
	c.ensureWords()
	c.orInto(a)
	switch b.typ {
	case typeArray:
		for _, v := range b.arr {
			c.words[v>>6] &^= uint64(1) << (v & 63)
		}
	case typeBitmap:
		for i := range c.words {
			c.words[i] &^= b.words[i]
		}
	default:
		for _, r := range b.runs {
			clearRange(c.words, r.Start, r.Last)
		}
	}
	var card int32
	for _, w := range c.words {
		card += int32(bits.OnesCount64(w))
	}
	c.card = card
	c.toArrayIfSmall()
}

// clearRange clears bits [start, last] (inclusive) in words.
func clearRange(words []uint64, start, last uint16) {
	w1, w2 := int(start>>6), int(last>>6)
	m1 := ^uint64(0) << (start & 63)
	m2 := ^uint64(0) >> (63 - (last & 63))
	if w1 == w2 {
		words[w1] &^= m1 & m2
		return
	}
	words[w1] &^= m1
	for w := w1 + 1; w < w2; w++ {
		words[w] = 0
	}
	words[w2] &^= m2
}

// toArrayIfSmall converts a bitmap-shaped container back to array shape
// when its cardinality fits.
func (c *container) toArrayIfSmall() {
	if c.typ != typeBitmap || c.card > arrayMaxCard {
		return
	}
	arr := c.arr[:0]
	for w, word := range c.words {
		for word != 0 {
			arr = append(arr, uint16(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	c.typ = typeArray
	c.arr = arr
	c.words = c.words[:0]
}
