package bitmap

import (
	"math/bits"
	"sort"
)

const (
	// arrayMaxCard is the densest an array container may get; the 4097th
	// value converts it to a bitmap container. 4096 uint16s occupy the
	// same 8KiB as the bitmap words, so the array shape is only ever kept
	// while it is strictly smaller.
	arrayMaxCard = 4096
	// containerWords is the fixed word count of a bitmap container:
	// 1024 uint64 words cover the 65536 low-bit values of one chunk.
	containerWords = 1024
	// containerSpan is the number of values one container covers.
	containerSpan = 1 << 16
)

// Container shapes. The zero value is an array container, the shape
// every chunk starts in.
const (
	typeArray uint8 = iota
	typeBitmap
	typeRun
)

// interval is one run [Start, Last], inclusive on both ends (inclusive
// ends let a run cover the full chunk without overflowing uint16).
type interval struct {
	Start, Last uint16
}

// container is one 65536-value chunk in whichever of the three shapes
// currently holds it. Exactly one of arr/words/runs is meaningful,
// selected by typ; the others keep their capacity for reuse when the
// container changes shape or its Bitmap is Reset.
type container struct {
	typ   uint8
	card  int32
	arr   []uint16
	words []uint64
	runs  []interval
}

// Bitmap is a compressed set of uint32 values: sorted chunk keys (the
// values' high 16 bits) paired with one container each. The zero value
// is an empty bitmap ready for use. Bitmaps are not safe for concurrent
// mutation; concurrent readers are fine.
type Bitmap struct {
	keys []uint16
	cts  []container
	card int64

	// Intersection scratch, owned by the Bitmap when it is used as an
	// IntersectInto destination: per-source key cursors and the
	// cardinality-ordered source view. Kept here so a pooled destination
	// makes repeated intersections allocation-free.
	cur  []int
	srcs []*Bitmap
}

// New returns an empty bitmap.
func New() *Bitmap { return &Bitmap{} }

// Cardinality returns the number of values in the set.
func (b *Bitmap) Cardinality() int { return int(b.card) }

// IsEmpty reports whether the set has no values.
func (b *Bitmap) IsEmpty() bool { return b.card == 0 }

// Reset empties the bitmap, keeping every container's storage for
// reuse — the pooled-scratch discipline of the intersection hot path.
func (b *Bitmap) Reset() {
	for i := range b.cts {
		c := &b.cts[i]
		c.typ = typeArray
		c.card = 0
		c.arr = c.arr[:0]
		c.runs = c.runs[:0]
		// words keep capacity; they are re-zeroed on first bitmap use.
	}
	b.keys = b.keys[:0]
	b.cts = b.cts[:0]
	b.card = 0
}

// Add inserts x. Adding in ascending order is O(1) amortized (the
// posting-build path); out-of-order adds pay a binary search and, for
// array containers, an insertion memmove.
func (b *Bitmap) Add(x uint32) {
	key := uint16(x >> 16)
	low := uint16(x)
	n := len(b.keys)
	// Fast path: the chunk is the current tail (ascending build order).
	if n > 0 && b.keys[n-1] == key {
		if b.cts[n-1].add(low) {
			b.card++
		}
		return
	}
	if n == 0 || key > b.keys[n-1] {
		c := b.appendContainer(key)
		c.arr = append(c.arr, low)
		c.card = 1
		b.card++
		return
	}
	i := sort.Search(n, func(i int) bool { return b.keys[i] >= key })
	if i < n && b.keys[i] == key {
		if b.cts[i].add(low) {
			b.card++
		}
		return
	}
	// Insert a fresh container at i.
	b.keys = append(b.keys, 0)
	copy(b.keys[i+1:], b.keys[i:])
	b.keys[i] = key
	b.cts = append(b.cts, container{})
	copy(b.cts[i+1:], b.cts[i:])
	b.cts[i] = container{typ: typeArray, card: 1, arr: []uint16{low}}
	b.card++
}

// appendContainer extends the container slice by one chunk at the tail,
// reusing spare capacity (and the spare element's buffers) when Reset
// left any behind.
func (b *Bitmap) appendContainer(key uint16) *container {
	b.keys = append(b.keys, key)
	if len(b.cts) < cap(b.cts) {
		b.cts = b.cts[:len(b.cts)+1]
		c := &b.cts[len(b.cts)-1]
		c.typ = typeArray
		c.card = 0
		c.arr = c.arr[:0]
		c.runs = c.runs[:0]
		return c
	}
	b.cts = append(b.cts, container{})
	return &b.cts[len(b.cts)-1]
}

// add inserts low into the container, reporting whether it was new.
func (c *container) add(low uint16) bool {
	switch c.typ {
	case typeArray:
		n := len(c.arr)
		if n == 0 || low > c.arr[n-1] {
			c.arr = append(c.arr, low)
		} else {
			i := sort.Search(n, func(i int) bool { return c.arr[i] >= low })
			if i < n && c.arr[i] == low {
				return false
			}
			c.arr = append(c.arr, 0)
			copy(c.arr[i+1:], c.arr[i:])
			c.arr[i] = low
		}
		c.card++
		if c.card > arrayMaxCard {
			c.toBitmap()
		}
		return true
	case typeBitmap:
		w, bit := int(low>>6), uint64(1)<<(low&63)
		if c.words[w]&bit != 0 {
			return false
		}
		c.words[w] |= bit
		c.card++
		return true
	default: // typeRun: rare (post-Optimize mutation); fall back to bitmap shape
		c.runToBitmap()
		return c.add(low)
	}
}

// ensureWords readies the container's word block: full capacity, zeroed.
func (c *container) ensureWords() {
	if cap(c.words) < containerWords {
		c.words = make([]uint64, containerWords)
		return
	}
	c.words = c.words[:containerWords]
	clear(c.words)
}

// toBitmap converts an array container to bitmap shape.
func (c *container) toBitmap() {
	arr := c.arr
	c.ensureWords()
	for _, v := range arr {
		c.words[v>>6] |= uint64(1) << (v & 63)
	}
	c.typ = typeBitmap
	c.arr = c.arr[:0]
}

// runToBitmap converts a run container to bitmap shape.
func (c *container) runToBitmap() {
	runs := c.runs
	c.ensureWords()
	for _, r := range runs {
		setRange(c.words, r.Start, r.Last)
	}
	c.typ = typeBitmap
	c.runs = c.runs[:0]
}

// setRange sets bits [start, last] (inclusive) in words.
func setRange(words []uint64, start, last uint16) {
	w1, w2 := int(start>>6), int(last>>6)
	m1 := ^uint64(0) << (start & 63)
	m2 := ^uint64(0) >> (63 - (last & 63))
	if w1 == w2 {
		words[w1] |= m1 & m2
		return
	}
	words[w1] |= m1
	for w := w1 + 1; w < w2; w++ {
		words[w] = ^uint64(0)
	}
	words[w2] |= m2
}

// Contains reports whether x is in the set.
func (b *Bitmap) Contains(x uint32) bool {
	key := uint16(x >> 16)
	i := b.findKey(key)
	if i < 0 {
		return false
	}
	return b.cts[i].contains(uint16(x))
}

// findKey returns the container index of key, or -1.
func (b *Bitmap) findKey(key uint16) int {
	n := len(b.keys)
	i := sort.Search(n, func(i int) bool { return b.keys[i] >= key })
	if i < n && b.keys[i] == key {
		return i
	}
	return -1
}

func (c *container) contains(low uint16) bool {
	switch c.typ {
	case typeArray:
		i := sort.Search(len(c.arr), func(i int) bool { return c.arr[i] >= low })
		return i < len(c.arr) && c.arr[i] == low
	case typeBitmap:
		return c.words[low>>6]&(uint64(1)<<(low&63)) != 0
	default:
		i := sort.Search(len(c.runs), func(i int) bool { return c.runs[i].Last >= low })
		return i < len(c.runs) && c.runs[i].Start <= low
	}
}

// Optimize converts containers to run shape where runs are strictly
// smaller than the current representation. Call it once after a bulk
// build; posting lists with clustered positions (rank-correlated
// attributes) shrink substantially.
func (b *Bitmap) Optimize() {
	for i := range b.cts {
		b.cts[i].optimize()
	}
}

func (c *container) optimize() {
	runs := c.countRuns()
	// Sizes in bytes: run = 4 per interval, array = 2 per value,
	// bitmap = 8KiB.
	runBytes := 4 * runs
	var curBytes int
	switch c.typ {
	case typeArray:
		curBytes = 2 * int(c.card)
	case typeBitmap:
		curBytes = 8 * containerWords
	default:
		return // already runs
	}
	if runBytes >= curBytes {
		return
	}
	c.toRuns(runs)
}

// countRuns returns the number of maximal runs of consecutive values.
func (c *container) countRuns() int {
	switch c.typ {
	case typeArray:
		runs := 0
		for i, v := range c.arr {
			if i == 0 || v != c.arr[i-1]+1 {
				runs++
			}
		}
		return runs
	case typeBitmap:
		// A run starts at every set bit whose predecessor is clear:
		// popcount of w &^ (w<<1 | carry from the previous word).
		runs := 0
		carry := uint64(0)
		for _, w := range c.words {
			runs += bits.OnesCount64(w &^ (w<<1 | carry))
			carry = w >> 63
		}
		return runs
	default:
		return len(c.runs)
	}
}

// toRuns rewrites the container as nruns intervals.
func (c *container) toRuns(nruns int) {
	runs := c.runs[:0]
	if cap(runs) < nruns {
		runs = make([]interval, 0, nruns)
	}
	switch c.typ {
	case typeArray:
		for i := 0; i < len(c.arr); {
			j := i
			for j+1 < len(c.arr) && c.arr[j+1] == c.arr[j]+1 {
				j++
			}
			runs = append(runs, interval{c.arr[i], c.arr[j]})
			i = j + 1
		}
		c.arr = c.arr[:0]
	case typeBitmap:
		for i := nextSet(c.words, 0); i < containerSpan; {
			j := nextClear(c.words, i) // first clear bit after the run
			runs = append(runs, interval{uint16(i), uint16(j - 1)})
			if j >= containerSpan {
				break
			}
			i = nextSet(c.words, j)
		}
		c.words = c.words[:0]
	}
	c.typ = typeRun
	c.runs = runs
}

// nextSet returns the position of the first set bit at or after pos, or
// containerSpan when none remains.
func nextSet(words []uint64, pos int) int {
	if pos >= containerSpan {
		return containerSpan
	}
	w := pos >> 6
	word := words[w] & (^uint64(0) << (pos & 63))
	for {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
		w++
		if w >= containerWords {
			return containerSpan
		}
		word = words[w]
	}
}

// nextClear returns the position of the first clear bit at or after pos,
// or containerSpan when the words are solid to the end.
func nextClear(words []uint64, pos int) int {
	if pos >= containerSpan {
		return containerSpan
	}
	w := pos >> 6
	word := ^words[w] & (^uint64(0) << (pos & 63))
	for {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
		w++
		if w >= containerWords {
			return containerSpan
		}
		word = ^words[w]
	}
}
