// Package bitmap implements roaring-style compressed bitmaps over
// uint32 values: the posting-list representation behind
// internal/hiddendb's conjunctive query engine.
//
// A Bitmap partitions the 32-bit value space by the high 16 bits into up
// to 65536 chunks; each populated chunk is stored as one of three
// container shapes chosen by density:
//
//   - array: a sorted []uint16 of the low bits, for sparse chunks
//     (cardinality <= 4096);
//   - bitmap: 1024 uint64 words (one bit per possible low value), for
//     dense chunks;
//   - run: sorted [start,last] intervals, for clustered chunks
//     (produced by Optimize when smaller than either alternative).
//
// Containers carry their cardinality, so Cardinality is O(#containers)
// and the exact COUNT of an intersection falls out of the final result
// for free. Intersection works container-by-container in ascending key
// order with word-level AND kernels (bits.OnesCount64 loops over the
// 1024-word blocks) and shape-specialized array/run kernels; because
// keys are processed in ascending order, results stream out smallest
// value first — rank order, when the values are rank positions.
//
// The package is allocation-disciplined: IntersectInto, Or and AndNot
// write into a caller-owned destination Bitmap whose container storage
// is recycled across calls (Reset keeps capacity), so a pooled
// destination makes repeated intersections allocation-free at steady
// state. ParallelIntersectInto splits the container key space across
// workers for large multi-list intersections.
//
// Rank/select are first-class: Select(i) returns the i-th smallest
// value in O(#containers + 64), Rank(x) counts values below x, and
// Iterator streams values in ascending order without allocating.
package bitmap
