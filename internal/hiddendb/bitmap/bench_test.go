package bitmap_test

import (
	"fmt"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb/bitmap"
)

// buildHugeBitmaps streams the datagen.Huge skew shape and builds the
// three posting bitmaps for the benchmark query rare=0 ∧ common=0 ∧
// mid=0 (~1%, ~95% and ~25% selectivity) without materializing tuples,
// so the 100M shape never holds the dataset in memory.
func buildHugeBitmaps(tb testing.TB, n int) []*bitmap.Bitmap {
	tb.Helper()
	h := datagen.NewHuge(n, 1)
	rare, common, mid := bitmap.New(), bitmap.New(), bitmap.New()
	for i, vals := range h.Tuples() {
		if vals[0] == 0 {
			rare.Add(uint32(i))
		}
		if vals[1] == 0 {
			common.Add(uint32(i))
		}
		if vals[2] == 0 {
			mid.Add(uint32(i))
		}
	}
	for _, b := range []*bitmap.Bitmap{rare, common, mid} {
		b.Optimize()
	}
	return []*bitmap.Bitmap{rare, common, mid}
}

// BenchmarkBitmapIntersect measures the full three-way intersection
// kernel (exact-count mode: no early exit) over the datagen.Huge skew
// shape. The 10M and 100M shapes are skipped under -short; CI runs 1M
// and the nightly workflow runs all three.
func BenchmarkBitmapIntersect(b *testing.B) {
	for _, n := range []int{1_000_000, 10_000_000, 100_000_000} {
		name := fmt.Sprintf("%dM", n/1_000_000)
		b.Run(name, func(b *testing.B) {
			if testing.Short() && n > 1_000_000 {
				b.Skipf("%s shape skipped under -short", name)
			}
			srcs := buildHugeBitmaps(b, n)
			dst := bitmap.New()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c := bitmap.IntersectInto(dst, srcs, 0, true); c == 0 {
					b.Fatal("empty intersection")
				}
			}
		})
	}
}
