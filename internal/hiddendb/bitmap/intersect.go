package bitmap

import (
	"math/bits"
	"sync"
)

// IntersectInto writes the intersection of srcs into dst and returns the
// resulting cardinality. dst is Reset first and its container storage is
// reused, so a pooled dst makes steady-state intersections allocation
// free. srcs must be non-empty and must not contain dst; the slice is
// reordered in place by ascending cardinality (the lowest-cardinality
// list seeds the scan, the cheapest order for conjunctive queries).
//
// When needAll is false and limit > 0 the scan stops as soon as dst
// holds at least limit values; because containers are processed in
// ascending key order, dst then holds the smallest limit-or-more values
// of the intersection — exactly the top-k prefix when values are rank
// positions. With needAll true the full intersection (and therefore the
// exact COUNT, as dst's cardinality) is computed.
func IntersectInto(dst *Bitmap, srcs []*Bitmap, limit int, needAll bool) int {
	dst.Reset()
	orderByCard(srcs)
	cur := dst.cur[:0]
	for range srcs {
		cur = append(cur, 0)
	}
	dst.cur = cur
	intersectSeedRange(dst, srcs, 0, len(srcs[0].cts), cur, limit, needAll)
	return int(dst.card)
}

// AndCardinality returns the exact cardinality of the intersection of
// srcs, using dst as scratch (its contents afterwards are the full
// intersection, as IntersectInto with needAll).
func AndCardinality(dst *Bitmap, srcs []*Bitmap) int {
	return IntersectInto(dst, srcs, 0, true)
}

// ParallelIntersectInto computes the full intersection of srcs into dst
// with the seed bitmap's container key space split across workers —
// the multi-predicate path for large posting lists, where each worker
// owns a contiguous, disjoint slice of the 65536-key space and results
// concatenate in key order. Unlike IntersectInto it always computes the
// complete intersection, and the fan-out allocates per call; callers
// gate it on predicate count and posting size.
func ParallelIntersectInto(dst *Bitmap, srcs []*Bitmap, workers int) int {
	dst.Reset()
	orderByCard(srcs)
	nc := len(srcs[0].cts)
	if workers > nc {
		workers = nc
	}
	if workers <= 1 {
		cur := dst.cur[:0]
		for range srcs {
			cur = append(cur, 0)
		}
		dst.cur = cur
		intersectSeedRange(dst, srcs, 0, nc, cur, 0, true)
		return int(dst.card)
	}
	parts := make([]*Bitmap, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := nc*w/workers, nc*(w+1)/workers
		part := New()
		parts[w] = part
		wg.Add(1)
		go func(part *Bitmap, lo, hi int) {
			defer wg.Done()
			intersectSeedRange(part, srcs, lo, hi, make([]int, len(srcs)), 0, true)
		}(part, lo, hi)
	}
	wg.Wait()
	// Workers cover disjoint ascending key ranges: concatenation is the
	// ordered merge. dst adopts the worker containers' storage.
	for _, p := range parts {
		dst.keys = append(dst.keys, p.keys...)
		dst.cts = append(dst.cts, p.cts...)
		dst.card += p.card
	}
	return int(dst.card)
}

// orderByCard sorts bitmaps by ascending cardinality in place. The list
// is tiny (one entry per query predicate), so insertion sort avoids the
// sort.Slice closure.
func orderByCard(srcs []*Bitmap) {
	if len(srcs) == 0 {
		panic("bitmap: intersection of no bitmaps")
	}
	for i := 1; i < len(srcs); i++ {
		for j := i; j > 0 && srcs[j].card < srcs[j-1].card; j-- {
			srcs[j], srcs[j-1] = srcs[j-1], srcs[j]
		}
	}
}

// intersectSeedRange intersects seed (srcs[0]) containers [lo, hi) with
// the other sources, appending result containers to dst. cur holds one
// key cursor per source; cursors only move forward, so the whole scan
// over the key space is linear. Honors the limit/needAll early-exit
// contract of IntersectInto.
func intersectSeedRange(dst *Bitmap, srcs []*Bitmap, lo, hi int, cur []int, limit int, needAll bool) {
	seed := srcs[0]
outer:
	for ci := lo; ci < hi; ci++ {
		key := seed.keys[ci]
		for s := 1; s < len(srcs); s++ {
			ks := srcs[s].keys
			k := gallopKeys(ks, cur[s], key)
			cur[s] = k
			if k == len(ks) {
				break outer // source exhausted: no later key can match
			}
			if ks[k] != key {
				continue outer
			}
		}
		d := dst.appendContainer(key)
		d.copyFrom(&seed.cts[ci])
		for s := 1; s < len(srcs); s++ {
			d.foldAnd(&srcs[s].cts[cur[s]])
			if d.card == 0 {
				break
			}
		}
		if d.card == 0 {
			// Roll the empty container back off the tail.
			dst.keys = dst.keys[:len(dst.keys)-1]
			dst.cts = dst.cts[:len(dst.cts)-1]
			continue
		}
		dst.card += int64(d.card)
		if !needAll && limit > 0 && dst.card >= int64(limit) {
			return
		}
	}
}

// gallopKeys returns the smallest index i in [lo, len(keys)] with
// keys[i] >= x: exponential probe then binary search, so advancing a
// forward-only cursor costs O(log gap).
func gallopKeys(keys []uint16, lo int, x uint16) int {
	if lo >= len(keys) || keys[lo] >= x {
		return lo
	}
	step := 1
	for lo+step < len(keys) && keys[lo+step] < x {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(keys) {
		hi = len(keys)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// copyFrom loads src's values into c, reusing c's storage. Run sources
// are materialized to array or bitmap shape so the fold kernels only
// ever mutate those two.
func (c *container) copyFrom(src *container) {
	c.card = src.card
	switch src.typ {
	case typeArray:
		c.typ = typeArray
		c.arr = append(c.arr[:0], src.arr...)
	case typeBitmap:
		c.typ = typeBitmap
		c.words = append(c.words[:0], src.words...)
	default: // typeRun
		if src.card <= arrayMaxCard {
			c.typ = typeArray
			arr := c.arr[:0]
			for _, r := range src.runs {
				for v := uint32(r.Start); v <= uint32(r.Last); v++ {
					arr = append(arr, uint16(v))
				}
			}
			c.arr = arr
		} else {
			c.typ = typeBitmap
			c.ensureWords()
			for _, r := range src.runs {
				setRange(c.words, r.Start, r.Last)
			}
		}
	}
}

// foldAnd intersects o into c in place. c is array or bitmap shaped
// (copyFrom's invariant); o may be any shape.
func (c *container) foldAnd(o *container) {
	if c.typ == typeArray {
		c.foldAndArray(o)
		return
	}
	c.foldAndBitmap(o)
}

// foldAndArray filters c.arr (sorted) down to the values o contains.
func (c *container) foldAndArray(o *container) {
	arr := c.arr
	out := arr[:0]
	switch o.typ {
	case typeArray:
		// Gallop the larger list from a monotone cursor.
		ob := o.arr
		k := 0
		for _, v := range arr {
			k = gallopKeys(ob, k, v)
			if k == len(ob) {
				break
			}
			if ob[k] == v {
				out = append(out, v)
			}
		}
	case typeBitmap:
		for _, v := range arr {
			if o.words[v>>6]&(uint64(1)<<(v&63)) != 0 {
				out = append(out, v)
			}
		}
	default: // typeRun
		k := 0
		for _, v := range arr {
			for k < len(o.runs) && o.runs[k].Last < v {
				k++
			}
			if k == len(o.runs) {
				break
			}
			if o.runs[k].Start <= v {
				out = append(out, v)
			}
		}
	}
	c.arr = out
	c.card = int32(len(out))
}

// foldAndBitmap intersects into c's word block. An array operand flips
// the result to array shape (it can only shrink to the operand's size).
func (c *container) foldAndBitmap(o *container) {
	switch o.typ {
	case typeArray:
		out := c.arr[:0]
		for _, v := range o.arr {
			if c.words[v>>6]&(uint64(1)<<(v&63)) != 0 {
				out = append(out, v)
			}
		}
		c.typ = typeArray
		c.arr = out
		c.card = int32(len(out))
		c.words = c.words[:0]
	case typeBitmap:
		c.card = andWords(c.words, o.words)
	default: // typeRun
		c.card = maskWordsToRuns(c.words, o.runs)
	}
}

// andWords is the word-level AND kernel: a &= b across the 1024-word
// block, returning the surviving cardinality via bits.OnesCount64.
//
//hdlint:hotpath
func andWords(a, b []uint64) int32 {
	a = a[:containerWords]
	b = b[:containerWords]
	var card int32
	for i := range a {
		a[i] &= b[i]
		card += int32(bits.OnesCount64(a[i]))
	}
	return card
}

// maskWordsToRuns clears every bit of words outside runs (sorted,
// non-overlapping), returning the surviving cardinality. It walks words
// and runs in one pass.
func maskWordsToRuns(words []uint64, runs []interval) int32 {
	words = words[:containerWords]
	var card int32
	k := 0
	for w := 0; w < containerWords; w++ {
		if words[w] == 0 {
			continue
		}
		base := uint32(w << 6)
		var mask uint64
		for k < len(runs) && uint32(runs[k].Last) < base {
			k++
		}
		for j := k; j < len(runs); j++ {
			r := runs[j]
			if uint32(r.Start) > base+63 {
				break
			}
			lo, hi := uint32(r.Start), uint32(r.Last)
			if lo < base {
				lo = base
			}
			if hi > base+63 {
				hi = base + 63
			}
			m := (^uint64(0) << (lo - base))
			if hi-base < 63 {
				m &= ^uint64(0) >> (63 - (hi - base))
			}
			mask |= m
		}
		words[w] &= mask
		card += int32(bits.OnesCount64(words[w]))
	}
	return card
}
