package bitmap

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet builds a Bitmap plus a sorted reference slice from the same
// values, optionally optimized to run shape.
func refSet(t *testing.T, vals []uint32, optimize bool) (*Bitmap, []uint32) {
	t.Helper()
	b := New()
	seen := make(map[uint32]bool, len(vals))
	for _, v := range vals {
		b.Add(v)
		seen[v] = true
	}
	ref := make([]uint32, 0, len(seen))
	for v := range seen {
		ref = append(ref, v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	if optimize {
		b.Optimize()
	}
	if b.Cardinality() != len(ref) {
		t.Fatalf("cardinality %d, want %d", b.Cardinality(), len(ref))
	}
	return b, ref
}

// shapes generates value sets exercising all three container shapes:
// sparse (array), dense (bitmap), clustered (runs after Optimize), and
// a mix spanning several chunk keys.
func shapes(rng *rand.Rand) map[string][]uint32 {
	sparse := make([]uint32, 500)
	for i := range sparse {
		sparse[i] = rng.Uint32() % (8 << 16)
	}
	dense := make([]uint32, 30000)
	for i := range dense {
		dense[i] = rng.Uint32() % (2 << 16)
	}
	clustered := make([]uint32, 0, 40000)
	for start := uint32(0); start < 200000; start += uint32(1000 + rng.Intn(4000)) {
		runLen := uint32(100 + rng.Intn(900))
		for v := start; v < start+runLen; v++ {
			clustered = append(clustered, v)
		}
	}
	mixed := append(append(append([]uint32{}, sparse...), dense...), clustered...)
	mixed = append(mixed, 0, 1<<16-1, 1<<16, 5<<16+12345, 1<<31, ^uint32(0))
	return map[string][]uint32{
		"sparse": sparse, "dense": dense, "clustered": clustered, "mixed": mixed,
	}
}

func TestAddContainsIterate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, vals := range shapes(rng) {
		for _, opt := range []bool{false, true} {
			b, ref := refSet(t, vals, opt)
			it := b.Iterator()
			for i, want := range ref {
				got, ok := it.Next()
				if !ok || got != want {
					t.Fatalf("%s(opt=%v): iterator[%d] = %d,%v want %d", name, opt, i, got, ok, want)
				}
			}
			if v, ok := it.Next(); ok {
				t.Fatalf("%s: iterator overran with %d", name, v)
			}
			// Probe membership at, around and far from set values.
			for _, v := range ref[:min(len(ref), 200)] {
				if !b.Contains(v) {
					t.Fatalf("%s: Contains(%d) = false", name, v)
				}
			}
			misses := 0
			for i := 0; i < 200; i++ {
				v := rng.Uint32()
				idx := sort.Search(len(ref), func(i int) bool { return ref[i] >= v })
				want := idx < len(ref) && ref[idx] == v
				if b.Contains(v) != want {
					t.Fatalf("%s: Contains(%d) = %v, want %v", name, v, !want, want)
				}
				if !want {
					misses++
				}
			}
			if misses == 0 {
				t.Fatalf("%s: probe generator never missed; test is vacuous", name)
			}
		}
	}
}

func TestOutOfOrderAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint32, 20000)
	for i := range vals {
		vals[i] = rng.Uint32() % (40 << 16)
	}
	// Build one bitmap in ascending order, one shuffled: they must agree.
	asc := append([]uint32{}, vals...)
	sort.Slice(asc, func(i, j int) bool { return asc[i] < asc[j] })
	a, _ := refSet(t, asc, false)
	b, _ := refSet(t, vals, false)
	if a.Cardinality() != b.Cardinality() {
		t.Fatalf("order-dependent cardinality: %d vs %d", a.Cardinality(), b.Cardinality())
	}
	ia, ib := a.Iterator(), b.Iterator()
	for {
		va, oka := ia.Next()
		vb, okb := ib.Next()
		if oka != okb || va != vb {
			t.Fatalf("order-dependent contents: %d,%v vs %d,%v", va, oka, vb, okb)
		}
		if !oka {
			break
		}
	}
}

func TestSelectRank(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for name, vals := range shapes(rng) {
		for _, opt := range []bool{false, true} {
			b, ref := refSet(t, vals, opt)
			for _, i := range []int{0, 1, len(ref) / 3, len(ref) / 2, len(ref) - 1} {
				got, ok := b.Select(i)
				if !ok || got != ref[i] {
					t.Fatalf("%s(opt=%v): Select(%d) = %d,%v want %d", name, opt, i, got, ok, ref[i])
				}
				if r := b.Rank(ref[i]); r != i {
					t.Fatalf("%s(opt=%v): Rank(%d) = %d, want %d", name, opt, ref[i], r, i)
				}
			}
			if _, ok := b.Select(-1); ok {
				t.Fatalf("%s: Select(-1) succeeded", name)
			}
			if _, ok := b.Select(len(ref)); ok {
				t.Fatalf("%s: Select(card) succeeded", name)
			}
			// Rank of an absent value counts the values below it.
			for i := 0; i < 100; i++ {
				v := rng.Uint32()
				want := sort.Search(len(ref), func(i int) bool { return ref[i] >= v })
				if r := b.Rank(v); r != want {
					t.Fatalf("%s(opt=%v): Rank(%d) = %d, want %d", name, opt, v, r, want)
				}
			}
		}
	}
}

func TestResetReuse(t *testing.T) {
	b := New()
	for i := uint32(0); i < 100000; i += 3 {
		b.Add(i)
	}
	b.Optimize()
	b.Reset()
	if !b.IsEmpty() || b.Cardinality() != 0 {
		t.Fatalf("Reset left card %d", b.Cardinality())
	}
	it := b.Iterator()
	if _, ok := it.Next(); ok {
		t.Fatal("Reset bitmap iterates values")
	}
	// Reuse after Reset: contents must be exactly the new values.
	b.Add(7)
	b.Add(70000)
	if b.Cardinality() != 2 || !b.Contains(7) || !b.Contains(70000) || b.Contains(9) {
		t.Fatalf("reused bitmap corrupt: card %d", b.Cardinality())
	}
}
