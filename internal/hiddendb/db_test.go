package hiddendb

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1DB builds the exact 4-tuple boolean database of the demo paper's
// Figure 1: attributes a1,a2,a3 and tuples
//
//	t1 = 001, t2 = 010, t3 = 011, t4 = 110.
func fig1DB(t *testing.T, k int) *DB {
	t.Helper()
	s := MustSchema("fig1", BoolAttr("a1"), BoolAttr("a2"), BoolAttr("a3"))
	tuples := []Tuple{
		{Vals: []int{0, 0, 1}},
		{Vals: []int{0, 1, 0}},
		{Vals: []int{0, 1, 1}},
		{Vals: []int{1, 1, 0}},
	}
	db, err := New(s, tuples, StaticRanker{Scores: []float64{4, 3, 2, 1}}, Config{K: k})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return db
}

func mustExec(t *testing.T, db *DB, q Query) *Result {
	t.Helper()
	res, err := db.Execute(q)
	if err != nil {
		t.Fatalf("Execute(%v): %v", q, err)
	}
	return res
}

func TestExecuteEmptyQueryOverflow(t *testing.T) {
	db := fig1DB(t, 2)
	res := mustExec(t, db, EmptyQuery())
	if !res.Overflow {
		t.Fatal("broad query should overflow with k=2")
	}
	if res.Returned() != 2 {
		t.Fatalf("returned %d tuples, want 2", res.Returned())
	}
	// StaticRanker scores rank t1 (4) then t2 (3).
	if res.Tuples[0].ID != 0 || res.Tuples[1].ID != 1 {
		t.Fatalf("rank order wrong: %d,%d", res.Tuples[0].ID, res.Tuples[1].ID)
	}
}

func TestExecuteValidAndUnderflow(t *testing.T) {
	db := fig1DB(t, 2)
	// a1=0 AND a2=0 matches only t1.
	res := mustExec(t, db, MustQuery(Predicate{0, 0}, Predicate{1, 0}))
	if !res.Valid() || res.Returned() != 1 || res.Tuples[0].ID != 0 {
		t.Fatalf("expected exactly t1, got %+v", res)
	}
	// a1=1 AND a2=0 matches nothing.
	res = mustExec(t, db, MustQuery(Predicate{0, 1}, Predicate{1, 0}))
	if !res.Empty() {
		t.Fatalf("expected underflow, got %+v", res)
	}
}

func TestExecuteFigure1Drilldown(t *testing.T) {
	// Walk the paper's Figure 1 tree with k=1: a1=0 overflows (3 tuples),
	// a1=0,a2=1 overflows (2 tuples), a1=0,a2=1,a3=0 is valid with t2.
	db := fig1DB(t, 1)
	r1 := mustExec(t, db, MustQuery(Predicate{0, 0}))
	if !r1.Overflow {
		t.Fatal("a1=0 should overflow with k=1")
	}
	r2 := mustExec(t, db, MustQuery(Predicate{0, 0}, Predicate{1, 1}))
	if !r2.Overflow {
		t.Fatal("a1=0,a2=1 should overflow with k=1")
	}
	r3 := mustExec(t, db, MustQuery(Predicate{0, 0}, Predicate{1, 1}, Predicate{2, 0}))
	if !r3.Valid() || r3.Tuples[0].ID != 1 {
		t.Fatalf("leaf query should return t2, got %+v", r3)
	}
	// a1=1 side: only t4=110.
	r4 := mustExec(t, db, MustQuery(Predicate{0, 1}))
	if !r4.Valid() || r4.Tuples[0].ID != 3 {
		t.Fatalf("a1=1 should return exactly t4, got %+v", r4)
	}
}

func TestCountModes(t *testing.T) {
	s := MustSchema("s", BoolAttr("a"), BoolAttr("b"))
	tuples := make([]Tuple, 100)
	for i := range tuples {
		tuples[i] = Tuple{Vals: []int{i % 2, (i / 2) % 2}}
	}

	none, err := New(s, tuples, nil, Config{K: 10, CountMode: CountNone})
	if err != nil {
		t.Fatal(err)
	}
	if res := mustExec(t, none, EmptyQuery()); res.Count != CountAbsent {
		t.Errorf("CountNone reported %d", res.Count)
	}

	exact, err := New(s, tuples, nil, Config{K: 10, CountMode: CountExact})
	if err != nil {
		t.Fatal(err)
	}
	if res := mustExec(t, exact, EmptyQuery()); res.Count != 100 {
		t.Errorf("CountExact = %d, want 100", res.Count)
	}
	if res := mustExec(t, exact, MustQuery(Predicate{0, 0})); res.Count != 50 {
		t.Errorf("CountExact(a=0) = %d, want 50", res.Count)
	}

	approx, err := New(s, tuples, nil, Config{K: 10, CountMode: CountApprox, CountNoise: 0.3, NoiseSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res1 := mustExec(t, approx, EmptyQuery())
	res2 := mustExec(t, approx, EmptyQuery())
	if res1.Count != res2.Count {
		t.Errorf("approximate count not deterministic: %d vs %d", res1.Count, res2.Count)
	}
	lo, hi := int(math.Floor(100*0.7)), int(math.Ceil(100*1.3))
	if res1.Count < lo || res1.Count > hi {
		t.Errorf("approx count %d outside [%d,%d]", res1.Count, lo, hi)
	}
}

func TestApproxCountZeroStaysZero(t *testing.T) {
	s := MustSchema("s", BoolAttr("a"), BoolAttr("b"))
	tuples := []Tuple{{Vals: []int{0, 0}}, {Vals: []int{0, 1}}}
	db, err := New(s, tuples, nil, Config{K: 5, CountMode: CountApprox, CountNoise: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, db, MustQuery(Predicate{0, 1}))
	if res.Count != 0 {
		t.Errorf("empty result approx count = %d, want 0", res.Count)
	}
}

func TestQueryBudget(t *testing.T) {
	db := fig1DB(t, 2)
	db.cfg.QueryBudget = 3
	for i := 0; i < 3; i++ {
		if _, err := db.Execute(EmptyQuery()); err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	if _, err := db.Execute(EmptyQuery()); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	db.ResetBudget()
	if _, err := db.Execute(EmptyQuery()); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestQueriesServedCounter(t *testing.T) {
	db := fig1DB(t, 2)
	if db.QueriesServed() != 0 {
		t.Fatal("counter should start at 0")
	}
	mustExec(t, db, EmptyQuery())
	mustExec(t, db, MustQuery(Predicate{0, 0}))
	if got := db.QueriesServed(); got != 2 {
		t.Fatalf("QueriesServed = %d, want 2", got)
	}
}

func TestExecuteRejectsInvalidQuery(t *testing.T) {
	db := fig1DB(t, 2)
	if _, err := db.Execute(MustQuery(Predicate{9, 0})); err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
	if _, err := db.Execute(MustQuery(Predicate{0, 7})); err == nil {
		t.Fatal("out-of-range value accepted")
	}
}

func TestNewValidation(t *testing.T) {
	s := MustSchema("s", BoolAttr("a"))
	if _, err := New(s, nil, nil, Config{}); err == nil {
		t.Error("empty database accepted")
	}
	if _, err := New(s, []Tuple{{Vals: []int{0, 1}}}, nil, Config{}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := New(s, []Tuple{{Vals: []int{3}}}, nil, Config{}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if _, err := New(s, []Tuple{{Vals: []int{0}, Nums: []float64{1, 2}}}, nil, Config{}); err == nil {
		t.Error("misaligned numeric payload accepted")
	}
	if _, err := New(s, []Tuple{{Vals: []int{0}}}, nil, Config{CountNoise: 1.5}); err == nil {
		t.Error("CountNoise >= 1 accepted")
	}
}

func TestTrueMarginal(t *testing.T) {
	db := fig1DB(t, 2)
	if got := db.TrueMarginal(0); got[0] != 3 || got[1] != 1 {
		t.Errorf("marginal(a1) = %v, want [3 1]", got)
	}
	if got := db.TrueMarginal(1); got[0] != 1 || got[1] != 3 {
		t.Errorf("marginal(a2) = %v, want [1 3]", got)
	}
}

func TestTrueAggregate(t *testing.T) {
	s := MustSchema("s", BoolAttr("used"), NumAttr("price", 0, 100, 200))
	nan := math.NaN()
	tuples := []Tuple{
		{Vals: []int{0, 0}, Nums: []float64{nan, 50}},
		{Vals: []int{1, 0}, Nums: []float64{nan, 80}},
		{Vals: []int{1, 1}, Nums: []float64{nan, 150}},
	}
	db, err := New(s, tuples, nil, Config{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	count, sum, avg := db.TrueAggregate(MustQuery(Predicate{0, 1}), 1)
	if count != 2 || sum != 230 || avg != 115 {
		t.Errorf("aggregate = %d,%g,%g; want 2,230,115", count, sum, avg)
	}
	count, sum, avg = db.TrueAggregate(EmptyQuery(), -1)
	if count != 3 || sum != 0 || avg != 0 {
		t.Errorf("count-only aggregate = %d,%g,%g", count, sum, avg)
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	// Execute shares the database's immutable tuple storage (see Result's
	// docs): Clone is the sanctioned way to obtain mutable ownership, and
	// a Clone must be fully detached from the backing store.
	db := fig1DB(t, 4)
	res := mustExec(t, db, EmptyQuery())
	c := res.Tuples[0].Clone()
	c.Vals[0] = 99
	res2 := mustExec(t, db, EmptyQuery())
	if res2.Tuples[0].Vals[0] == 99 {
		t.Fatal("Clone mutated shared tuple storage")
	}
	tu := db.Tuple(0)
	//hdlint:ignore resultimmut deliberate canary write proving db.Tuple returns a detached Clone
	tu.Vals[0] = 42
	if db.Tuple(0).Vals[0] == 42 {
		t.Fatal("Tuple returned shared storage")
	}
}

func TestRankOrderConsistency(t *testing.T) {
	// With HashRanker the order is arbitrary but must be identical across
	// queries: the top-k of a narrower query preserves relative order.
	s := MustSchema("s", BoolAttr("a"), BoolAttr("b"), BoolAttr("c"))
	rng := rand.New(rand.NewSource(11))
	tuples := make([]Tuple, 64)
	for i := range tuples {
		tuples[i] = Tuple{Vals: []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)}}
	}
	db, err := New(s, tuples, HashRanker{Seed: 3}, Config{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	broad := mustExec(t, db, EmptyQuery())
	narrow := mustExec(t, db, MustQuery(Predicate{0, 1}))
	posIn := func(id int, rs []Tuple) int {
		for i, tu := range rs {
			if tu.ID == id {
				return i
			}
		}
		return -1
	}
	last := -1
	for _, tu := range narrow.Tuples {
		p := posIn(tu.ID, broad.Tuples)
		if p < 0 {
			t.Fatalf("tuple %d in narrow result missing from broad result", tu.ID)
		}
		if p < last {
			t.Fatalf("rank order not preserved across queries")
		}
		last = p
	}
}

// Property: query-tree monotonicity. For random databases and random
// queries, extending a query never increases the match count, results of a
// child are a subset of the parent's matches, and TrueCount is consistent
// with Execute's overflow flag.
func TestQueryTreeMonotonicityProperty(t *testing.T) {
	s := MustSchema("s",
		CatAttr("a", "0", "1", "2"),
		CatAttr("b", "0", "1", "2"),
		BoolAttr("c"),
		BoolAttr("d"))
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		tuples := make([]Tuple, n)
		for i := range tuples {
			tuples[i] = Tuple{Vals: []int{rng.Intn(3), rng.Intn(3), rng.Intn(2), rng.Intn(2)}}
		}
		k := 1 + rng.Intn(8)
		db, err := New(s, tuples, HashRanker{Seed: uint64(seed)}, Config{K: k, CountMode: CountExact})
		if err != nil {
			return false
		}
		q := EmptyQuery()
		prevCount := db.TrueCount(q)
		order := rng.Perm(s.NumAttrs())
		for _, a := range order {
			q = q.With(a, rng.Intn(s.DomainSize(a)))
			c := db.TrueCount(q)
			if c > prevCount {
				return false
			}
			res, err := db.Execute(q)
			if err != nil {
				return false
			}
			if res.Count != c {
				return false
			}
			if res.Overflow != (c > k) {
				return false
			}
			if !res.Overflow && res.Returned() != c {
				return false
			}
			for _, tu := range res.Tuples {
				if !q.Matches(tu.Vals) {
					return false
				}
			}
			prevCount = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRankers(t *testing.T) {
	tu := Tuple{ID: 5, Vals: []int{2, 1}, Nums: []float64{math.NaN(), 150}}
	h := HashRanker{Seed: 1}
	if h.Score(&tu) != h.Score(&tu) {
		t.Error("HashRanker not deterministic")
	}
	other := Tuple{ID: 6, Vals: []int{2, 1}}
	if h.Score(&tu) == h.Score(&other) {
		t.Error("HashRanker should separate IDs (w.h.p.)")
	}
	asc := ByAttrRanker{Attr: 1, Ascending: true}
	desc := ByAttrRanker{Attr: 1}
	if asc.Score(&tu) != -150 || desc.Score(&tu) != 150 {
		t.Errorf("ByAttrRanker scores = %g,%g", asc.Score(&tu), desc.Score(&tu))
	}
	catRanker := ByAttrRanker{Attr: 0}
	if catRanker.Score(&tu) != 2 {
		t.Errorf("ByAttrRanker on categorical = %g, want 2", catRanker.Score(&tu))
	}
	st := StaticRanker{Scores: []float64{1, 2}}
	if st.Score(&Tuple{ID: 1}) != 2 || st.Score(&Tuple{ID: 9}) != 0 {
		t.Error("StaticRanker wrong")
	}
	for _, r := range []Ranker{h, asc, desc, st} {
		if r.Name() == "" {
			t.Error("empty ranker name")
		}
	}
}

func TestCountModeString(t *testing.T) {
	if CountNone.String() != "none" || CountExact.String() != "exact" || CountApprox.String() != "approx" {
		t.Error("count mode names wrong")
	}
	if CountMode(7).String() != "countmode(7)" {
		t.Error("unknown count mode rendered wrong")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Count: CountAbsent}
	if !r.Empty() || r.Valid() {
		t.Error("zero-tuple non-overflow should be Empty and not Valid")
	}
	r = &Result{Tuples: []Tuple{{}}, Overflow: true}
	if r.Empty() || r.Valid() {
		t.Error("overflow should be neither Empty nor Valid")
	}
	r = &Result{Tuples: []Tuple{{Vals: []int{1}}}}
	if !r.Valid() {
		t.Error("non-overflow with tuples should be Valid")
	}
	c := r.Clone()
	c.Tuples[0].Vals[0] = 9
	if r.Tuples[0].Vals[0] == 9 {
		t.Error("Clone shares tuple storage")
	}
}

func TestTupleNum(t *testing.T) {
	tu := Tuple{Vals: []int{0, 1}, Nums: []float64{math.NaN(), 42}}
	if _, ok := tu.Num(0); ok {
		t.Error("NaN payload should be absent")
	}
	if v, ok := tu.Num(1); !ok || v != 42 {
		t.Errorf("Num(1) = %g,%v", v, ok)
	}
	bare := Tuple{Vals: []int{0}}
	if _, ok := bare.Num(0); ok {
		t.Error("missing Nums should be absent")
	}
}
