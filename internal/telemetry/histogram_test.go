package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := &Histogram{}
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{0, 0},
		{-5 * time.Nanosecond, 0},
		{1 * time.Nanosecond, 1},
		{2 * time.Nanosecond, 2},
		{3 * time.Nanosecond, 2},
		{4 * time.Nanosecond, 3},
		{1023 * time.Nanosecond, 10},
		{1024 * time.Nanosecond, 11},
		{time.Hour, numBuckets - 1}, // beyond the range: clamped
	}
	for _, c := range cases {
		h.Observe(c.d)
	}
	s := h.Snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	if s.Max != time.Hour {
		t.Errorf("max = %v, want 1h", s.Max)
	}
	want := make(map[int]int64)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestHistogramQuantileAndSummary(t *testing.T) {
	h := &Histogram{}
	// 90 fast samples at ~1µs, 10 slow at ~1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1µs (2× bucket resolution)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms", p99)
	}
	sum := s.Summary()
	if sum.Count != 100 {
		t.Errorf("summary count = %d", sum.Count)
	}
	if sum.MaxMS != 1 {
		t.Errorf("summary max = %vms, want 1ms", sum.MaxMS)
	}
	if sum.MeanMS <= 0 || sum.P50MS <= 0 || sum.P99MS < sum.P50MS {
		t.Errorf("summary not monotone: %+v", sum)
	}
}

func TestHistogramZeroAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Errorf("nil snapshot count = %d", s.Count)
	}
	if s := (HistogramSnapshot{}); s.Quantile(0.5) != 0 || s.Summary().Count != 0 {
		t.Errorf("empty snapshot not zero: %+v", s.Summary())
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; run under -race this is the lock-freedom proof, and the
// final counts must balance exactly.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var cum int64
	for _, n := range s.Buckets {
		cum += n
	}
	if cum != s.Count {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec("host")
	a := v.With("a")
	if v.With("a") != a {
		t.Fatal("With not cached")
	}
	a.Observe(time.Millisecond)
	v.With("b").Observe(time.Second)
	series := v.snapshot()
	if len(series) != 2 || series[0].labels[0].Value != "a" || series[1].labels[0].Value != "b" {
		t.Fatalf("series = %+v", series)
	}
	if series[0].snap.Count != 1 || series[1].snap.Count != 1 {
		t.Fatalf("per-series counts wrong")
	}
	var nilV *HistogramVec
	nilV.With("x").Observe(time.Second) // nil-safe chain
}
