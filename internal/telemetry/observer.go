package telemetry

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; a nil *Counter ignores increments.
//
//hdlint:nilsafe
type Counter struct {
	v atomic.Int64
}

// Inc adds one; nil-safe, allocation-free.
//
//hdlint:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; nil-safe.
//
//hdlint:hotpath
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// WalkObserver bundles the per-walk instruments a generator records into:
// the trace sampler, the whole-walk latency histogram, and the slow-walk
// log. One observer serves all of a job's replicas concurrently; every
// field is optional, and a nil *WalkObserver disables observation
// entirely at the cost of two nil checks per candidate draw.
//
//hdlint:nilsafe
type WalkObserver struct {
	// Tracer samples walks for end-to-end tracing; nil or rate-0 traces
	// nothing.
	Tracer *Tracer
	// Duration observes every candidate draw's wall time.
	Duration *Histogram
	// SlowWalk and SlowQueries are the slow-walk log thresholds: a draw
	// lasting at least SlowWalk, or spending at least SlowQueries
	// interface queries, is logged and counted. 0 disables either check.
	SlowWalk    time.Duration
	SlowQueries int
	// SlowCount counts slow walks (for the metrics registry).
	SlowCount *Counter
	// Logger receives slow-walk records; nil uses slog.Default.
	Logger *slog.Logger
	// Job and Host label everything the observer emits.
	Job, Host string
}

// WalkSpan is one candidate draw under observation, created by Begin and
// completed by End. The zero value (from a nil observer) is inert.
type WalkSpan struct {
	obs   *WalkObserver
	tr    *WalkTrace
	start time.Time
}

// Begin starts observing one candidate draw of the given kind ("walk",
// "weighted"). If the draw is sampled for tracing, the returned context
// carries the trace down the stack. On a nil observer both returns are
// pass-throughs and nothing is recorded — not even the time.
func (o *WalkObserver) Begin(ctx context.Context, kind string) (WalkSpan, context.Context) {
	if o == nil {
		return WalkSpan{}, ctx
	}
	sp := WalkSpan{obs: o, start: time.Now()}
	if tr := o.Tracer.Start(kind, o.Job, o.Host); tr != nil {
		sp.tr = tr
		ctx = WithTrace(ctx, tr)
	}
	return sp, ctx
}

// Trace returns the span's trace, nil when the draw is untraced.
func (sp WalkSpan) Trace() *WalkTrace { return sp.tr }

// End completes the draw observation: it feeds the duration histogram,
// applies the slow-walk thresholds, and fills the trace's draw-level
// fields. When the draw produced a candidate the still-open trace is
// returned for the caller to attach to it (the accept/reject stage
// finishes it via Decide); otherwise the trace is finished here and End
// returns nil.
func (sp WalkSpan) End(queries, restarts int, produced bool, err error) *WalkTrace {
	o := sp.obs
	if o == nil {
		return nil
	}
	d := time.Since(sp.start)
	o.Duration.Observe(d)
	slow := (o.SlowWalk > 0 && d >= o.SlowWalk) || (o.SlowQueries > 0 && queries >= o.SlowQueries)
	if tr := sp.tr; tr != nil {
		tr.Duration = d
		tr.Queries = queries
		tr.Restarts = restarts
		tr.Produced = produced
		tr.Slow = slow
		if err != nil {
			tr.Err = err.Error()
		}
	}
	if slow {
		o.SlowCount.Inc()
		lg := o.Logger
		if lg == nil {
			lg = slog.Default()
		}
		lg.Warn("slow walk",
			slog.String("job", o.Job),
			slog.String("host", o.Host),
			slog.Duration("duration", d),
			slog.Int("queries", queries),
			slog.Int("restarts", restarts),
			slog.Bool("produced", produced))
	}
	if !produced {
		sp.tr.Finish()
		return nil
	}
	return sp.tr
}
