//go:build !race

package telemetry

// raceEnabled reports the race detector is active: its instrumentation
// allocates, so allocation-ceiling tests skip themselves under it.
const raceEnabled = false
