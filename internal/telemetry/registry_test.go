package telemetry

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRegistryExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A plain counter.")
	c.Add(3)
	v := r.CounterVec("test_by_host_total", "A labeled counter.", "host")
	v.With("b.example").Add(2)
	v.With("a.example").Inc()
	r.GaugeFunc("test_gauge", "A gauge.", func() float64 { return 1.5 })
	r.CollectGauge("test_states", "Scrape-time samples.", func(emit Emit) {
		emit(4, Label{"state", "running"})
		emit(0, Label{"state", "done"})
	})
	h := r.Histogram("test_seconds", "A histogram.")
	h.Observe(3 * time.Millisecond)
	h.Observe(time.Second)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	parseExposition(t, lines)

	// Families must appear sorted by name.
	var families []string
	for _, l := range lines {
		if strings.HasPrefix(l, "# HELP ") {
			families = append(families, strings.Fields(l)[2])
		}
	}
	want := []string{"test_by_host_total", "test_gauge", "test_seconds", "test_states", "test_total"}
	if strings.Join(families, " ") != strings.Join(want, " ") {
		t.Fatalf("family order = %v, want %v", families, want)
	}
	// Series within a family sort by label value.
	ia := strings.Index(out, `test_by_host_total{host="a.example"} 1`)
	ib := strings.Index(out, `test_by_host_total{host="b.example"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("labeled series missing or unsorted:\n%s", out)
	}
	for _, wantLine := range []string{
		"test_total 3",
		"test_gauge 1.5",
		`test_states{state="done"} 0`,
		`test_states{state="running"} 4`,
		`test_seconds_bucket{le="+Inf"} 2`,
		"test_seconds_count 2",
	} {
		if !strings.Contains(out, wantLine+"\n") {
			t.Errorf("missing line %q in:\n%s", wantLine, out)
		}
	}
}

// parseExposition validates lines against the Prometheus text format
// (version 0.0.4): comment structure, sample syntax, TYPE before
// samples, no duplicate families, and cumulative histogram buckets.
func parseExposition(t *testing.T, lines []string) {
	t.Helper()
	typed := make(map[string]string) // family -> TYPE
	helped := make(map[string]bool)
	var lastHist string
	var lastCum int64
	sampleSeen := make(map[string]bool)
	for n, line := range lines {
		if line == "" {
			t.Fatalf("line %d: blank line", n+1)
		}
		if strings.HasPrefix(line, "#") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", n+1, line)
			}
			name := f[2]
			switch f[1] {
			case "HELP":
				if helped[name] {
					t.Fatalf("line %d: duplicate HELP for %s", n+1, name)
				}
				helped[name] = true
			case "TYPE":
				if typed[name] != "" {
					t.Fatalf("line %d: duplicate TYPE for %s", n+1, name)
				}
				if sampleSeen[name] {
					t.Fatalf("line %d: TYPE for %s after its samples", n+1, name)
				}
				switch f[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: bad TYPE %q", n+1, f[3])
				}
				typed[name] = f[3]
			}
			continue
		}
		name, labels, value := parseSample(t, n+1, line)
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				family = base
			}
		}
		if typed[family] == "" {
			t.Fatalf("line %d: sample %s without TYPE", n+1, name)
		}
		sampleSeen[family] = true
		if strings.HasSuffix(name, "_bucket") && typed[family] == "histogram" {
			le, ok := labels["le"]
			if !ok {
				t.Fatalf("line %d: histogram bucket without le", n+1)
			}
			series := family + "|" + labels["host"] + labels["job"]
			cum := int64(value)
			if series == lastHist && cum < lastCum {
				t.Fatalf("line %d: bucket counts not cumulative (%d after %d)", n+1, cum, lastCum)
			}
			lastHist, lastCum = series, cum
			_ = le
		}
	}
}

// parseSample validates one sample line, returning name, labels, value.
func parseSample(t *testing.T, n int, line string) (string, map[string]string, float64) {
	t.Helper()
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		t.Fatalf("line %d: no value separator in %q", n, line)
	}
	name := rest[:i]
	if !validMetricName(name) {
		t.Fatalf("line %d: invalid metric name %q", n, name)
	}
	labels := make(map[string]string)
	if rest[i] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set in %q", n, line)
		}
		body := rest[i+1 : end]
		for _, pair := range splitLabelPairs(t, n, body) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: malformed label pair %q", n, pair)
			}
			lname, quoted := pair[:eq], pair[eq+1:]
			if !validMetricName(lname) {
				t.Fatalf("line %d: invalid label name %q", n, lname)
			}
			if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
				t.Fatalf("line %d: unquoted label value %q", n, quoted)
			}
			inner := quoted[1 : len(quoted)-1]
			for j := 0; j < len(inner); j++ {
				switch inner[j] {
				case '\\':
					j++
					if j >= len(inner) || (inner[j] != '\\' && inner[j] != '"' && inner[j] != 'n') {
						t.Fatalf("line %d: bad escape in label value %q", n, inner)
					}
				case '"', '\n':
					t.Fatalf("line %d: unescaped %q in label value %q", n, inner[j], inner)
				}
			}
			labels[lname] = inner
		}
		rest = rest[end+1:]
		if len(rest) == 0 || rest[0] != ' ' {
			t.Fatalf("line %d: no space after labels in %q", n, line)
		}
	} else {
		rest = rest[i:]
	}
	valStr := strings.TrimPrefix(rest, " ")
	if strings.ContainsAny(valStr, " ") {
		// A timestamp would be legal in the format, but this registry
		// never emits one; a stray space means a malformed value.
		t.Fatalf("line %d: unexpected trailing fields in %q", n, line)
	}
	var value float64
	switch valStr {
	case "+Inf", "-Inf", "NaN":
	default:
		if _, err := parseFloat(valStr); err != nil {
			t.Fatalf("line %d: bad value %q: %v", n, valStr, err)
		}
		value, _ = parseFloat(valStr)
	}
	return name, labels, value
}

// splitLabelPairs splits on commas outside quotes.
func splitLabelPairs(t *testing.T, n int, body string) []string {
	t.Helper()
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CollectGauge("esc_gauge", `help with \backslash and
newline`, func(emit Emit) {
		emit(1, Label{"v", "quote\"backslash\\newline\nend"})
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP esc_gauge help with \\backslash and\nnewline`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_gauge{v="quote\"backslash\\newline\nend"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	parseExposition(t, strings.Split(strings.TrimRight(out, "\n"), "\n"))
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.GaugeFunc("dup_total", "y", func() float64 { return 0 })
}

func TestRegistryHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("vec_seconds", "Per-host latency.", "host")
	v.With("h1").Observe(time.Millisecond)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, wantLine := range []string{
		`vec_seconds_bucket{host="h1",le="+Inf"} 1`,
		`vec_seconds_count{host="h1"} 1`,
	} {
		if !strings.Contains(out, wantLine+"\n") {
			t.Fatalf("missing %q in:\n%s", wantLine, out)
		}
	}
	parseExposition(t, strings.Split(strings.TrimRight(out, "\n"), "\n"))
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2:       "2",
		1000000: "1000000",
		1.5:     "1.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
