package telemetry

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestObserverNilIsInert(t *testing.T) {
	var o *WalkObserver
	ctx := context.Background()
	sp, ctx2 := o.Begin(ctx, "walk")
	if ctx2 != ctx {
		t.Fatal("nil observer rewrote the context")
	}
	if sp.Trace() != nil || sp.End(10, 1, true, nil) != nil {
		t.Fatal("nil observer produced a trace")
	}
}

func TestObserverDurationAndTrace(t *testing.T) {
	h := &Histogram{}
	o := &WalkObserver{
		Tracer:   NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: 4}),
		Duration: h,
		Job:      "j-1",
		Host:     "h1",
	}
	sp, ctx := o.Begin(context.Background(), "walk")
	if TraceFrom(ctx) == nil || TraceFrom(ctx) != sp.Trace() {
		t.Fatal("sampled walk's trace not in context")
	}
	tr := sp.End(4, 1, true, nil)
	if tr == nil {
		t.Fatal("produced walk returned no trace")
	}
	tr.Decide(false)
	if h.Snapshot().Count != 1 {
		t.Fatal("duration not observed")
	}
	v := o.Tracer.Dump()
	if len(v) != 1 || v[0].Queries != 4 || v[0].Restarts != 1 || !v[0].Produced ||
		!v[0].Decided || v[0].Accepted || v[0].Job != "j-1" {
		t.Fatalf("trace view: %+v", v)
	}
}

func TestObserverFinishesUnproducedWalks(t *testing.T) {
	o := &WalkObserver{Tracer: NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: 4})}
	sp, _ := o.Begin(context.Background(), "walk")
	if tr := sp.End(3, 2, false, errors.New("no candidate")); tr != nil {
		t.Fatal("unproduced walk returned an open trace")
	}
	v := o.Tracer.Dump()
	if len(v) != 1 || v[0].Produced || v[0].Err != "no candidate" {
		t.Fatalf("trace view: %+v", v)
	}
}

func TestObserverSlowWalkLog(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(slog.NewTextHandler(&buf, nil))
	slow := &Counter{}
	o := &WalkObserver{
		SlowQueries: 5,
		SlowCount:   slow,
		Logger:      lg,
		Job:         "j-2",
		Host:        "slowhost",
	}
	sp, _ := o.Begin(context.Background(), "walk")
	sp.End(3, 0, true, nil) // under budget: quiet
	sp, _ = o.Begin(context.Background(), "walk")
	sp.End(9, 2, true, nil) // over budget: logged
	if slow.Value() != 1 {
		t.Fatalf("slow count = %d, want 1", slow.Value())
	}
	out := buf.String()
	if !strings.Contains(out, "slow walk") || !strings.Contains(out, "job=j-2") ||
		!strings.Contains(out, "host=slowhost") || !strings.Contains(out, "queries=9") {
		t.Fatalf("slow-walk log: %q", out)
	}
	if strings.Contains(out, "queries=3") {
		t.Fatalf("fast walk logged: %q", out)
	}
}

func TestObserverSlowWalkLatencyThreshold(t *testing.T) {
	var buf bytes.Buffer
	o := &WalkObserver{
		SlowWalk:  time.Nanosecond, // everything is slow
		SlowCount: &Counter{},
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
	}
	sp, _ := o.Begin(context.Background(), "walk")
	time.Sleep(time.Microsecond)
	sp.End(1, 0, true, nil)
	if o.SlowCount.Value() != 1 || !strings.Contains(buf.String(), "slow walk") {
		t.Fatalf("latency threshold did not fire: %q", buf.String())
	}
}

func TestCounterNil(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter not inert")
	}
}
