package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("hidden")
	lg.Warn("shown", "component", "test")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Fatalf("level filter broken: %q", out)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("structured", "job", "j-1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log not parseable: %v in %q", err, buf.String())
	}
	if rec["msg"] != "structured" || rec["job"] != "j-1" {
		t.Fatalf("json record: %v", rec)
	}

	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}
