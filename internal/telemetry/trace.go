package telemetry

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// CacheOutcome records how the history layer answered one query.
type CacheOutcome uint8

const (
	CacheNone          CacheOutcome = iota // no cache in the stack, or not recorded
	CacheMiss                              // forwarded to the execution layer
	CacheHit                               // rule 1: exact entry
	CacheInferAncestor                     // rule 2: filtered a cached ancestor's rows
	CacheInferEmpty                        // rule 3: an empty cached ancestor
	CacheInferSibling                      // rule 4: derived from sibling counts
)

func (o CacheOutcome) String() string {
	switch o {
	case CacheMiss:
		return "miss"
	case CacheHit:
		return "hit"
	case CacheInferAncestor:
		return "infer-ancestor"
	case CacheInferEmpty:
		return "infer-empty"
	case CacheInferSibling:
		return "infer-sibling"
	default:
		return "none"
	}
}

// ExecOutcome records how the execution layer satisfied one query.
type ExecOutcome uint8

const (
	ExecNone      ExecOutcome = iota // no execution layer, or not recorded
	ExecWire                         // a wire call of its own
	ExecCoalesced                    // rode an identical in-flight call
	ExecBatched                      // shared a multi-query wire request
)

func (o ExecOutcome) String() string {
	switch o {
	case ExecWire:
		return "wire"
	case ExecCoalesced:
		return "coalesced"
	case ExecBatched:
		return "batched"
	default:
		return "none"
	}
}

// LevelOutcome records how one drill-down level resolved.
type LevelOutcome uint8

const (
	LevelUnknown  LevelOutcome = iota
	LevelValid                 // non-overflowing, non-empty: a terminal or a pick
	LevelOverflow              // top-k overflow: descend
	LevelEmpty                 // no matches: the walk restarts
	LevelError                 // the query itself failed
)

func (o LevelOutcome) String() string {
	switch o {
	case LevelValid:
		return "valid"
	case LevelOverflow:
		return "overflow"
	case LevelEmpty:
		return "empty"
	case LevelError:
		return "error"
	default:
		return "unknown"
	}
}

// LevelSpan is one recorded drill-down query within a traced walk.
type LevelSpan struct {
	// Walk is the restart index (0 = first attempt) the query belongs to.
	Walk int
	// Depth is the drill-down level; Attr/Value identify the predicate the
	// query added (Value is -1 for probes without a concrete assignment).
	Depth, Attr, Value int
	Outcome            LevelOutcome
	Cache              CacheOutcome
	Exec               ExecOutcome
	// Retries counts transient wire retries spent on this query.
	Retries int
	// AIMDLimit is the shared limiter's window when the query hit the
	// wire (0 when it never did, or limiting is disabled).
	AIMDLimit float64
	// Latency is the whole conn.Execute round trip as the walker saw it;
	// CacheLatency is the history layer's share of it.
	Latency, CacheLatency time.Duration
}

// maxTraceLevels bounds one trace's recorded spans so a pathological walk
// cannot grow a trace without bound; excess levels are counted, not kept.
const maxTraceLevels = 256

// WalkTrace records one candidate draw end-to-end: every drill-down
// query with its cache/exec/wire outcome, plus the walk's final accept or
// reject decision. Traces are produced by a Tracer for a sampled fraction
// of walks, travel down the stack via WithTrace/TraceFrom, and are owned
// by a single walker goroutine until Finish hands them to the ring
// buffer. All methods are no-ops on a nil receiver.
//
//hdlint:nilsafe
type WalkTrace struct {
	tracer *Tracer

	Kind      string // "walk", "weighted"
	Job, Host string
	Start     time.Time
	Duration  time.Duration
	Queries   int
	Restarts  int
	Produced  bool // a candidate came out of the draw
	Decided   bool // the accept/reject stage saw the candidate
	Accepted  bool
	Slow      bool // exceeded the observer's latency or query budget
	Err       string
	Levels    []LevelSpan
	Truncated int // level spans dropped past maxTraceLevels

	open bool // a BeginLevel without its EndLevel yet
}

func (t *WalkTrace) reset() {
	levels := t.Levels[:0]
	*t = WalkTrace{Levels: levels}
}

// BeginLevel opens a span for one drill-down query.
func (t *WalkTrace) BeginLevel(walk, depth, attr, value int) {
	if t == nil {
		return
	}
	if len(t.Levels) >= maxTraceLevels {
		t.Truncated++
		t.open = false
		return
	}
	t.Levels = append(t.Levels, LevelSpan{Walk: walk, Depth: depth, Attr: attr, Value: value})
	t.open = true
}

// EndLevel closes the current span with its outcome and total latency.
func (t *WalkTrace) EndLevel(out LevelOutcome, d time.Duration) {
	if t == nil {
		return
	}
	if s := t.cur(); s != nil {
		s.Outcome = out
		s.Latency = d
		t.open = false
	}
}

// MarkCache records the history layer's answer for the current span.
func (t *WalkTrace) MarkCache(o CacheOutcome, lookup time.Duration) {
	if t == nil {
		return
	}
	if s := t.cur(); s != nil {
		s.Cache = o
		s.CacheLatency = lookup
	}
}

// MarkExec records the execution layer's outcome for the current span.
func (t *WalkTrace) MarkExec(o ExecOutcome) {
	if t == nil {
		return
	}
	if s := t.cur(); s != nil {
		s.Exec = o
	}
}

// AddRetry counts one transient wire retry against the current span.
func (t *WalkTrace) AddRetry() {
	if t == nil {
		return
	}
	if s := t.cur(); s != nil {
		s.Retries++
	}
}

// SetAIMDLimit records the limiter window at wire-send time.
func (t *WalkTrace) SetAIMDLimit(limit float64) {
	if t == nil {
		return
	}
	if s := t.cur(); s != nil {
		s.AIMDLimit = limit
	}
}

// cur returns the open span, or nil when none is (including on a nil
// trace) — marks arriving outside a level are dropped, not misfiled.
func (t *WalkTrace) cur() *LevelSpan {
	if t == nil || !t.open || len(t.Levels) == 0 {
		return nil
	}
	return &t.Levels[len(t.Levels)-1]
}

// Decide records the rejection stage's verdict and finishes the trace —
// the accept/reject decision is the last event of a produced walk's life.
func (t *WalkTrace) Decide(accepted bool) {
	if t == nil {
		return
	}
	t.Decided = true
	t.Accepted = accepted
	t.Finish()
}

// Finish hands the trace to its tracer's ring buffer. Idempotent; the
// trace must not be touched by the finisher afterwards.
func (t *WalkTrace) Finish() {
	if t == nil || t.tracer == nil {
		return
	}
	tr := t.tracer
	t.tracer = nil
	tr.finish(t)
}

// ctxKey keys the in-flight trace in a context.
type ctxKey struct{}

// WithTrace attaches a trace to ctx so the layers below the walker
// (history, queryexec) can annotate it. Called only for sampled walks —
// it is the one allocating step of the tracing path.
func WithTrace(ctx context.Context, t *WalkTrace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the walk trace attached to ctx, or nil. This is the
// only per-query cost tracing imposes on untraced walks: one ctx.Value
// miss, no allocation.
func TraceFrom(ctx context.Context) *WalkTrace {
	t, _ := ctx.Value(ctxKey{}).(*WalkTrace)
	return t
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Rate is the fraction of walks to trace in [0,1]; 0 (or less)
	// disables sampling entirely.
	Rate float64
	// Seed seeds the sampling stream: equal seeds and rates make the
	// same sequence of trace/skip decisions (under a deterministic call
	// order), which is what replayable tests want.
	Seed uint64
	// Capacity is the finished-trace ring buffer size (default 128).
	Capacity int
}

// Tracer decides which walks to trace, recycles WalkTraces through a
// pool, and keeps the most recent finished traces in a fixed ring buffer
// for /debug/walks. A nil *Tracer never samples. Safe for concurrent use
// by many walker goroutines.
//
//hdlint:nilsafe
type Tracer struct {
	threshold uint64 // sample when the next splitmix64 draw is below this
	capacity  int

	rng      atomic.Uint64
	started  atomic.Int64
	finished atomic.Int64
	evicted  atomic.Int64

	pool sync.Pool

	mu   sync.Mutex
	ring []*WalkTrace
	next int
}

// NewTracer builds a tracer; a Rate of 0 yields a valid tracer that
// never samples (Start always returns nil).
func NewTracer(opts TracerOptions) *Tracer {
	t := &Tracer{capacity: opts.Capacity}
	if t.capacity <= 0 {
		t.capacity = 128
	}
	switch rate := opts.Rate; {
	case rate >= 1:
		t.threshold = math.MaxUint64
	case rate > 0:
		t.threshold = uint64(rate * float64(math.MaxUint64))
	}
	t.rng.Store(opts.Seed)
	return t
}

// sample draws the next decision from the seeded splitmix64 stream.
func (t *Tracer) sample() bool {
	x := t.rng.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x <= t.threshold
}

// Start begins tracing one walk, or returns nil when the tracer is off
// or this walk falls outside the sample. The unsampled path is two loads
// and an atomic add — no time read, no allocation.
func (t *Tracer) Start(kind, job, host string) *WalkTrace {
	if t == nil || t.threshold == 0 || !t.sample() {
		return nil
	}
	t.started.Add(1)
	tr, _ := t.pool.Get().(*WalkTrace)
	if tr == nil {
		tr = &WalkTrace{Levels: make([]LevelSpan, 0, 64)}
	} else {
		tr.reset()
	}
	tr.tracer = t
	tr.Kind = kind
	tr.Job = job
	tr.Host = host
	tr.Start = time.Now()
	return tr
}

// finish stores a completed trace in the ring, recycling the trace it
// displaces. Traces in the ring are immutable until displaced.
func (t *Tracer) finish(tr *WalkTrace) {
	t.finished.Add(1)
	t.mu.Lock()
	var displaced *WalkTrace
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
	} else {
		displaced = t.ring[t.next]
		t.ring[t.next] = tr
		t.next = (t.next + 1) % t.capacity
	}
	t.mu.Unlock()
	if displaced != nil {
		t.evicted.Add(1)
		t.pool.Put(displaced)
	}
}

// TracerStats counts a tracer's lifetime activity.
type TracerStats struct {
	// Started counts walks sampled into tracing; Finished counts traces
	// that completed and reached the ring; Evicted counts finished traces
	// the ring displaced; Buffered is the ring's current size.
	Started, Finished, Evicted int64
	Buffered                   int
}

// Stats returns the tracer's counters; zero on a nil tracer.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	buffered := len(t.ring)
	t.mu.Unlock()
	return TracerStats{
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Evicted:  t.evicted.Load(),
		Buffered: buffered,
	}
}

// TraceView is a finished trace rendered for JSON exposition
// (/debug/walks, hdbench -json).
type TraceView struct {
	Kind     string      `json:"kind"`
	Job      string      `json:"job,omitempty"`
	Host     string      `json:"host,omitempty"`
	Start    time.Time   `json:"start"`
	Duration float64     `json:"duration_ms"`
	Queries  int         `json:"queries"`
	Restarts int         `json:"restarts"`
	Produced bool        `json:"produced"`
	Decided  bool        `json:"decided"`
	Accepted bool        `json:"accepted"`
	Slow     bool        `json:"slow,omitempty"`
	Err      string      `json:"error,omitempty"`
	Levels   []LevelView `json:"levels,omitempty"`
	// Truncated counts level spans dropped past the per-trace cap.
	Truncated int `json:"truncated_levels,omitempty"`
}

// LevelView is one LevelSpan rendered for JSON exposition.
type LevelView struct {
	Walk      int     `json:"walk"`
	Depth     int     `json:"depth"`
	Attr      int     `json:"attr"`
	Value     int     `json:"value"`
	Outcome   string  `json:"outcome"`
	Cache     string  `json:"cache,omitempty"`
	Exec      string  `json:"exec,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	AIMDLimit float64 `json:"aimd_limit,omitempty"`
	LatencyUS float64 `json:"latency_us"`
	CacheUS   float64 `json:"cache_latency_us,omitempty"`
}

// Dump snapshots the ring's finished traces, oldest first.
func (t *Tracer) Dump() []TraceView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	traces := make([]*WalkTrace, 0, len(t.ring))
	// Ring order: next..end are the oldest entries once it has wrapped.
	traces = append(traces, t.ring[t.next:]...)
	traces = append(traces, t.ring[:t.next]...)
	out := make([]TraceView, len(traces))
	for i, tr := range traces {
		out[i] = tr.view()
	}
	t.mu.Unlock()
	return out
}

// view renders the trace; caller must hold the ring lock (the trace may
// be displaced and recycled otherwise).
func (t *WalkTrace) view() TraceView {
	v := TraceView{
		Kind:      t.Kind,
		Job:       t.Job,
		Host:      t.Host,
		Start:     t.Start,
		Duration:  float64(t.Duration) / float64(time.Millisecond),
		Queries:   t.Queries,
		Restarts:  t.Restarts,
		Produced:  t.Produced,
		Decided:   t.Decided,
		Accepted:  t.Accepted,
		Slow:      t.Slow,
		Err:       t.Err,
		Truncated: t.Truncated,
	}
	if len(t.Levels) > 0 {
		v.Levels = make([]LevelView, len(t.Levels))
		for i, s := range t.Levels {
			lv := LevelView{
				Walk:      s.Walk,
				Depth:     s.Depth,
				Attr:      s.Attr,
				Value:     s.Value,
				Outcome:   s.Outcome.String(),
				Retries:   s.Retries,
				AIMDLimit: s.AIMDLimit,
				LatencyUS: float64(s.Latency) / float64(time.Microsecond),
				CacheUS:   float64(s.CacheLatency) / float64(time.Microsecond),
			}
			if s.Cache != CacheNone {
				lv.Cache = s.Cache.String()
			}
			if s.Exec != ExecNone {
				lv.Exec = s.Exec.String()
			}
			v.Levels[i] = lv
		}
	}
	return v
}
