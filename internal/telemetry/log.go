package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the stack's structured logger: level is one of
// "debug", "info", "warn", "error" and format is "text" or "json" — the
// values behind hdsamplerd's -log-level and -log-format flags. Every
// component logs through slog with consistent job/host/component
// attributes, so one `-log-format json` flips the whole daemon to
// machine-parseable output.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
}
