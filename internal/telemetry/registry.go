package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one exposition label pair.
type Label struct {
	Name, Value string
}

// Emit is the callback a scrape-time collector uses to publish one
// sample of its family.
type Emit func(value float64, labels ...Label)

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4): stable family and series ordering,
// escaped HELP text and label values, and the proper content type on the
// HTTP handler. Families register once at construction time; values are
// read at scrape time, so both live instruments (Counter, Histogram) and
// scrape-time collectors (CollectGauge over existing stats structs) fit.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help, typ string
	collect         func(emit Emit)     // counter and gauge families
	hist            func() []histSeries // histogram families
}

type histSeries struct {
	labels []Label
	snap   HistogramSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.families[f.name] = f
}

// Counter registers and returns a label-less counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, typ: "counter", collect: func(emit Emit) {
		emit(float64(c.Value()))
	}})
	return c
}

// CounterVec registers a counter family partitioned by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, counters: make(map[string]*Counter)}
	r.register(&family{name: name, help: help, typ: "counter", collect: v.collect})
	return v
}

// CounterFunc registers a label-less counter whose value is computed at
// scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "counter", collect: func(emit Emit) {
		emit(fn())
	}})
}

// GaugeFunc registers a label-less gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, typ: "gauge", collect: func(emit Emit) {
		emit(fn())
	}})
}

// CollectCounter registers a counter family whose samples (any number,
// any labels) are produced by fn at scrape time.
func (r *Registry) CollectCounter(name, help string, fn func(emit Emit)) {
	r.register(&family{name: name, help: help, typ: "counter", collect: fn})
}

// CollectGauge registers a gauge family produced by fn at scrape time.
func (r *Registry) CollectGauge(name, help string, fn func(emit Emit)) {
	r.register(&family{name: name, help: help, typ: "gauge", collect: fn})
}

// Histogram registers and returns a label-less latency histogram,
// exposed with log₂-spaced le bounds in seconds.
func (r *Registry) Histogram(name, help string) *Histogram {
	h := &Histogram{}
	r.register(&family{name: name, help: help, typ: "histogram", hist: func() []histSeries {
		return []histSeries{{snap: h.Snapshot()}}
	}})
	return h
}

// HistogramVec registers a histogram family partitioned by one label
// (per-host, per-job). Series appear in the exposition as label values
// materialize.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	v := NewHistogramVec(label)
	r.register(&family{name: name, help: help, typ: "histogram", hist: v.snapshot})
	return v
}

// CounterVec is a counter family partitioned by one label. Hot paths
// call With once and keep the returned *Counter. A nil *CounterVec
// yields nil (inert) counters.
//
//hdlint:nilsafe
type CounterVec struct {
	label string

	mu       sync.Mutex
	counters map[string]*Counter
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.counters[value]
	if c == nil {
		c = &Counter{}
		v.counters[value] = c
	}
	return c
}

func (v *CounterVec) collect(emit Emit) {
	v.mu.Lock()
	values := make([]string, 0, len(v.counters))
	for val := range v.counters {
		values = append(values, val)
	}
	counters := make([]*Counter, len(values))
	for i, val := range values {
		counters[i] = v.counters[val]
	}
	v.mu.Unlock()
	for i, val := range values {
		emit(float64(counters[i].Value()), Label{v.label, val})
	}
}

// sample is one rendered series of a counter/gauge family.
type sample struct {
	labels []Label
	value  float64
}

// WriteText renders every registered family in the Prometheus text
// format, families sorted by name and series by label values.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	families := make([]*family, len(names))
	sort.Strings(names)
	for i, name := range names {
		families[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.typ)
		if f.hist != nil {
			writeHistogram(&b, f)
		} else {
			writeSamples(&b, f)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSamples(b *strings.Builder, f *family) {
	var samples []sample
	f.collect(func(value float64, labels ...Label) {
		samples = append(samples, sample{labels: labels, value: value})
	})
	sort.SliceStable(samples, func(i, j int) bool {
		return labelKey(samples[i].labels) < labelKey(samples[j].labels)
	})
	for _, s := range samples {
		b.WriteString(f.name)
		writeLabels(b, s.labels)
		b.WriteByte(' ')
		b.WriteString(formatValue(s.value))
		b.WriteByte('\n')
	}
}

func writeHistogram(b *strings.Builder, f *family) {
	for _, s := range f.hist() {
		lbls := make([]Label, len(s.labels)+1)
		copy(lbls, s.labels)
		var cum int64
		for i, n := range s.snap.Buckets {
			cum += n
			lbls[len(lbls)-1] = Label{"le", formatLe(bucketBound(i) / 1e9)}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, lbls)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
		b.WriteString(f.name)
		b.WriteString("_sum")
		writeLabels(b, s.labels)
		b.WriteByte(' ')
		b.WriteString(formatValue(s.snap.Sum.Seconds()))
		b.WriteByte('\n')
		b.WriteString(f.name)
		b.WriteString("_count")
		writeLabels(b, s.labels)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(s.snap.Count, 10))
		b.WriteByte('\n')
	}
}

// labelKey orders series within a family.
func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xff')
	}
	return b.String()
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are legal
// there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value, preferring exact integer notation
// (the form the existing metric consumers and tests expect) over
// scientific notation for whole numbers.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLe renders a bucket bound; +Inf spells exactly that.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape endpoint with the
// exposition-format content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
