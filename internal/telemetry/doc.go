// Package telemetry is the sampling stack's instrumentation layer: walk
// traces, latency histograms, and the metrics registry behind every
// /metrics endpoint. It is deliberately stdlib-only and imported by the
// core packages (core, history, queryexec), so it must never import them
// back.
//
// # Zero-alloc design
//
// The package is built so that *compiled-in but disabled* instrumentation
// costs nothing measurable on the walk hot path:
//
//   - Every instrument is nil-safe. A nil *Histogram, *Counter, *Tracer,
//     *WalkTrace or *WalkObserver accepts every method call as a no-op, so
//     instrumented code never branches on "is telemetry configured" — it
//     just calls, and the nil receiver check folds into a couple of
//     instructions.
//   - Traces travel by context. TraceFrom is a single ctx.Value lookup
//     (a pointer comparison per context link, no allocation); when no walk
//     is being traced the lookup misses and every downstream mark is a
//     no-op on a nil *WalkTrace. WithTrace — the only allocating step — runs
//     solely for the sampled fraction of walks.
//   - Histograms are lock-free: ~40 log₂-spaced buckets of atomic
//     counters indexed by bits.Len64 of the sample's nanoseconds. Observe
//     is a handful of atomic adds and never allocates.
//   - WalkTraces are pooled. The Tracer recycles traces through a
//     sync.Pool and a fixed-capacity ring buffer, so steady-state tracing
//     allocates only when a trace's level slice first grows.
//   - Expensive reads happen only on sampled walks: per-level latency,
//     cache-lookup timing, and the AIMD limit (a mutex acquisition) are
//     taken only when the walk carries a trace.
//
// The contract is enforced by AllocsPerRun ceilings in alloc_test.go and
// by BenchmarkTelemetryOverhead at the repo root, which drives the full
// end-to-end walk benchmark with the observer absent versus installed at
// a 1% sampling rate.
package telemetry
