package telemetry

import (
	"context"
	"testing"
	"time"
)

// The off-path allocation ceilings behind the tentpole's hard
// constraint: with tracing disabled, every instrumentation touchpoint on
// the walk hot path must stay allocation-free.

func TestOffPathAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceiling measured without -race")
	}
	ctx := context.Background()

	if n := testing.AllocsPerRun(200, func() {
		if TraceFrom(ctx) != nil {
			t.Fatal("trace in background context")
		}
	}); n > 0 {
		t.Errorf("TraceFrom miss allocates %.1f", n)
	}

	var o *WalkObserver
	if n := testing.AllocsPerRun(200, func() {
		sp, _ := o.Begin(ctx, "walk")
		sp.End(3, 0, true, nil)
	}); n > 0 {
		t.Errorf("nil-observer Begin/End allocates %.1f", n)
	}

	// Observer installed, tracing off: histogram + threshold checks only.
	on := &WalkObserver{
		Tracer:   NewTracer(TracerOptions{Rate: 0, Seed: 1}),
		Duration: &Histogram{},
		SlowWalk: time.Minute,
	}
	if n := testing.AllocsPerRun(200, func() {
		sp, _ := on.Begin(ctx, "walk")
		sp.End(3, 0, true, nil)
	}); n > 0 {
		t.Errorf("untraced observed walk allocates %.1f", n)
	}

	h := &Histogram{}
	if n := testing.AllocsPerRun(200, func() { h.Observe(time.Millisecond) }); n > 0 {
		t.Errorf("Histogram.Observe allocates %.1f", n)
	}

	c := &Counter{}
	if n := testing.AllocsPerRun(200, func() { c.Inc() }); n > 0 {
		t.Errorf("Counter.Inc allocates %.1f", n)
	}

	var nilTrace *WalkTrace
	if n := testing.AllocsPerRun(200, func() {
		nilTrace.BeginLevel(0, 0, 0, 0)
		nilTrace.MarkCache(CacheHit, 0)
		nilTrace.MarkExec(ExecWire)
		nilTrace.EndLevel(LevelValid, 0)
	}); n > 0 {
		t.Errorf("nil-trace marks allocate %.1f", n)
	}
}

// TestSteadyStateTracingAllocations: once the pool and ring are warm, a
// fully traced walk recycles its WalkTrace; only the context attachment
// allocates.
func TestSteadyStateTracingAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; ceiling measured without -race")
	}
	o := &WalkObserver{Tracer: NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: 4})}
	ctx := context.Background()
	for i := 0; i < 16; i++ { // warm the pool through ring displacement
		sp, _ := o.Begin(ctx, "walk")
		sp.End(1, 0, false, nil)
	}
	if n := testing.AllocsPerRun(200, func() {
		sp, tctx := o.Begin(ctx, "walk")
		tr := TraceFrom(tctx)
		tr.BeginLevel(0, 0, 1, 2)
		tr.MarkCache(CacheHit, time.Microsecond)
		tr.EndLevel(LevelValid, time.Millisecond)
		sp.End(1, 0, false, nil)
	}); n > 2 {
		t.Errorf("steady-state traced walk allocates %.1f, want <= 2 (context attach)", n)
	}
}
