package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// numBuckets covers durations from 1ns up to ~9.2 minutes (2^39 ns) in
// log₂ steps; anything longer lands in the final bucket.
const numBuckets = 40

// Histogram is a lock-free latency histogram: log₂-spaced buckets of
// atomic counters. Bucket i counts samples whose duration in nanoseconds
// has bit length i, i.e. d in [2^(i-1), 2^i); bucket 0 counts
// non-positive samples. The zero value is ready to use, and a nil
// *Histogram ignores observations, so instrumented code never branches
// on configuration.
//
//hdlint:nilsafe
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds, high-water mark
	buckets [numBuckets]atomic.Int64
}

// Observe records one duration. It is atomic, allocation-free, and a
// no-op on a nil receiver.
//
//hdlint:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= numBuckets {
		i = numBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
// Concurrent Observe calls may tear across buckets; each individual
// counter is consistent, which is all a monitoring read needs.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Max     time.Duration
	Buckets [numBuckets]int64
}

// Snapshot copies the histogram's counters; safe on a nil receiver
// (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	s.Max = time.Duration(h.max.Load())
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// bucketBound returns bucket i's inclusive upper bound in nanoseconds.
func bucketBound(i int) float64 {
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of the
// recorded durations, at the histogram's 2× bucket resolution.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			b := bucketBound(i)
			if math.IsInf(b, 1) || time.Duration(b) > s.Max {
				return s.Max
			}
			return time.Duration(b)
		}
	}
	return s.Max
}

// Summary condenses a snapshot into the few numbers a report wants.
// Times are in milliseconds for direct JSON readability.
type Summary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Summary computes the snapshot's summary statistics.
func (s HistogramSnapshot) Summary() Summary {
	out := Summary{Count: s.Count}
	if s.Count == 0 {
		return out
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out.MeanMS = ms(s.Sum) / float64(s.Count)
	out.P50MS = ms(s.Quantile(0.50))
	out.P90MS = ms(s.Quantile(0.90))
	out.P99MS = ms(s.Quantile(0.99))
	out.MaxMS = ms(s.Max)
	return out
}

// HistogramVec is a histogram family partitioned by one label (per-host,
// per-job). Hot paths call With once and keep the returned *Histogram;
// With itself takes a mutex and is not for per-sample use. A nil
// *HistogramVec returns nil histograms, which ignore observations.
//
//hdlint:nilsafe
type HistogramVec struct {
	label string

	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewHistogramVec builds a standalone vector partitioned by the named
// label; Registry.HistogramVec is the registered variant.
func NewHistogramVec(label string) *HistogramVec {
	return &HistogramVec{label: label, hists: make(map[string]*Histogram)}
}

// With returns the histogram for one label value, creating it on first
// use. Nil-safe: a nil vector yields a nil (inert) histogram.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h := v.hists[value]
	if h == nil {
		h = &Histogram{}
		v.hists[value] = h
	}
	return h
}

// snapshot returns the vector's series sorted by label value.
func (v *HistogramVec) snapshot() []histSeries {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	values := make([]string, 0, len(v.hists))
	for val := range v.hists {
		values = append(values, val)
	}
	hists := make([]*Histogram, len(values))
	for i, val := range values {
		hists[i] = v.hists[val]
	}
	v.mu.Unlock()

	out := make([]histSeries, len(values))
	for i := range values {
		out[i] = histSeries{labels: []Label{{v.label, values[i]}}, snap: hists[i].Snapshot()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labels[0].Value < out[j].labels[0].Value })
	return out
}
