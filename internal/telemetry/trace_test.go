package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestTracerSamplingDeterminism: equal seed and rate must replay the
// exact trace/skip sequence, and different seeds should disagree
// somewhere.
func TestTracerSamplingDeterminism(t *testing.T) {
	draw := func(seed uint64) []bool {
		tr := NewTracer(TracerOptions{Rate: 0.25, Seed: seed, Capacity: 4})
		out := make([]bool, 400)
		for i := range out {
			w := tr.Start("walk", "", "")
			out[i] = w != nil
			w.Finish()
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical decision streams")
	}
	// The sampled fraction should be in the right ballpark.
	n := 0
	for _, s := range a {
		if s {
			n++
		}
	}
	if n < 50 || n > 150 {
		t.Fatalf("sampled %d/400 at rate 0.25", n)
	}
}

func TestTracerRateExtremes(t *testing.T) {
	off := NewTracer(TracerOptions{Rate: 0, Seed: 1})
	for i := 0; i < 100; i++ {
		if off.Start("walk", "", "") != nil {
			t.Fatal("rate-0 tracer sampled a walk")
		}
	}
	var nilT *Tracer
	if nilT.Start("walk", "", "") != nil {
		t.Fatal("nil tracer sampled a walk")
	}
	if nilT.Dump() != nil || nilT.Stats() != (TracerStats{}) {
		t.Fatal("nil tracer not inert")
	}
	always := NewTracer(TracerOptions{Rate: 1, Seed: 1})
	for i := 0; i < 100; i++ {
		w := always.Start("walk", "", "")
		if w == nil {
			t.Fatal("rate-1 tracer skipped a walk")
		}
		w.Finish()
	}
}

// TestTracerRingWraparound fills the ring far past capacity and checks
// the ring holds exactly the newest traces, oldest first, with eviction
// accounting and pooled reuse intact. Run under -race with concurrent
// writers in TestTracerConcurrent below.
func TestTracerRingWraparound(t *testing.T) {
	const cap = 8
	tr := NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: cap})
	for i := 0; i < 30; i++ {
		w := tr.Start("walk", "", "")
		w.Queries = i // tag so views are distinguishable
		w.Finish()
	}
	views := tr.Dump()
	if len(views) != cap {
		t.Fatalf("ring holds %d, want %d", len(views), cap)
	}
	for i, v := range views {
		if want := 30 - cap + i; v.Queries != want {
			t.Fatalf("ring[%d].Queries = %d, want %d (oldest-first order)", i, v.Queries, want)
		}
	}
	st := tr.Stats()
	if st.Started != 30 || st.Finished != 30 || st.Evicted != 30-cap || st.Buffered != cap {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(TracerOptions{Rate: 1, Seed: 3, Capacity: 16})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := tr.Start("walk", "j", "h")
				w.BeginLevel(0, 0, 1, 2)
				w.MarkCache(CacheHit, time.Microsecond)
				w.EndLevel(LevelValid, time.Millisecond)
				w.Finish()
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent readers while writers run
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Dump()
			tr.Stats()
		}
	}()
	wg.Wait()
	<-done
	if st := tr.Stats(); st.Finished != 1600 {
		t.Fatalf("finished = %d, want 1600", st.Finished)
	}
}

func TestWalkTraceLevels(t *testing.T) {
	tr := NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: 2})
	w := tr.Start("walk", "j-1", "example.com")
	w.BeginLevel(0, 0, 2, 7)
	w.MarkCache(CacheMiss, 200*time.Nanosecond)
	w.MarkExec(ExecWire)
	w.SetAIMDLimit(6.5)
	w.AddRetry()
	w.EndLevel(LevelOverflow, 3*time.Millisecond)
	w.BeginLevel(0, 1, 3, 1)
	w.MarkCache(CacheInferSibling, 0)
	w.EndLevel(LevelValid, time.Microsecond)
	// Marks outside an open level are dropped, not misfiled.
	w.MarkExec(ExecBatched)
	w.Decide(true)

	views := tr.Dump()
	if len(views) != 1 {
		t.Fatalf("dump = %d traces", len(views))
	}
	v := views[0]
	if !v.Decided || !v.Accepted || v.Job != "j-1" || v.Host != "example.com" {
		t.Fatalf("trace header: %+v", v)
	}
	if len(v.Levels) != 2 {
		t.Fatalf("levels = %d", len(v.Levels))
	}
	l0 := v.Levels[0]
	if l0.Outcome != "overflow" || l0.Cache != "miss" || l0.Exec != "wire" ||
		l0.Retries != 1 || l0.AIMDLimit != 6.5 || l0.Attr != 2 || l0.Value != 7 {
		t.Fatalf("level 0: %+v", l0)
	}
	l1 := v.Levels[1]
	if l1.Outcome != "valid" || l1.Cache != "infer-sibling" || l1.Exec != "" {
		t.Fatalf("level 1: %+v", l1)
	}
}

func TestWalkTraceLevelCap(t *testing.T) {
	tr := NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: 2})
	w := tr.Start("walk", "", "")
	for i := 0; i < maxTraceLevels+10; i++ {
		w.BeginLevel(0, i, 0, 0)
		w.EndLevel(LevelValid, 0)
	}
	w.Finish()
	v := tr.Dump()[0]
	if len(v.Levels) != maxTraceLevels || v.Truncated != 10 {
		t.Fatalf("levels = %d, truncated = %d", len(v.Levels), v.Truncated)
	}
}

func TestWithTraceRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Fatal("trace in empty context")
	}
	w := &WalkTrace{}
	ctx := WithTrace(context.Background(), w)
	if TraceFrom(ctx) != w {
		t.Fatal("trace did not round-trip")
	}
}

func TestFinishIdempotent(t *testing.T) {
	tr := NewTracer(TracerOptions{Rate: 1, Seed: 1, Capacity: 4})
	w := tr.Start("walk", "", "")
	w.Finish()
	w.Finish() // second finish must not double-store
	if st := tr.Stats(); st.Finished != 1 || st.Buffered != 1 {
		t.Fatalf("stats after double finish: %+v", st)
	}
	var nilW *WalkTrace
	nilW.Finish()
	nilW.Decide(true)
	nilW.BeginLevel(0, 0, 0, 0)
	nilW.EndLevel(LevelValid, 0)
	nilW.MarkCache(CacheHit, 0)
	nilW.MarkExec(ExecWire)
	nilW.AddRetry()
	nilW.SetAIMDLimit(1)
}

func TestOutcomeStrings(t *testing.T) {
	if CacheNone.String() != "none" || CacheInferEmpty.String() != "infer-empty" ||
		ExecCoalesced.String() != "coalesced" || LevelEmpty.String() != "empty" ||
		LevelUnknown.String() != "unknown" {
		t.Fatal("outcome strings drifted")
	}
}
