package estimate

import (
	"math"

	"hdsampler/internal/hiddendb"
)

// Weighted couples a tuple with the exact probability the generating walk
// emitted it (its reach). Because the generators report reach on every
// candidate, aggregates can be estimated by Horvitz–Thompson weighting
// *without* the acceptance/rejection step: every candidate contributes
// 1/reach, dead-end walks contribute zero, and the estimator of any
// population total Σ_t f(t) is unbiased over reachable tuples — the
// unbiased-estimation idea of the ICDE 2009 count-leveraging line, which
// trades the rejection step's query bill for estimator variance.
type Weighted struct {
	Tuple hiddendb.Tuple
	Reach float64
}

// WeightedSet is a collection of weighted candidates plus the number of
// walks (including dead ends) that produced them; the walk count is the
// estimator's denominator.
type WeightedSet struct {
	Samples []Weighted
	// Walks is the total number of walks performed, successful or not.
	Walks int64
}

// Add appends one candidate produced after `restarts` dead-end walks.
func (ws *WeightedSet) Add(t hiddendb.Tuple, reach float64, restarts int) {
	ws.Samples = append(ws.Samples, Weighted{Tuple: t, Reach: reach})
	ws.Walks += int64(restarts) + 1
}

// Total estimates the population total Σ_t f(t) over reachable tuples:
// mean over walks of f(t)/reach(t) (zero for dead-end walks), with the
// standard error of that mean.
func (ws *WeightedSet) Total(f func(*hiddendb.Tuple) float64) Estimate {
	w := float64(ws.Walks)
	if w == 0 {
		return Estimate{}
	}
	var sum, sumSq float64
	for i := range ws.Samples {
		s := &ws.Samples[i]
		if s.Reach <= 0 {
			continue
		}
		v := f(&s.Tuple) / s.Reach
		sum += v
		sumSq += v * v
	}
	mean := sum / w
	// Per-walk variance including the (Walks - len(Samples)) zero terms.
	variance := sumSq/w - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Estimate{Value: mean, StdErr: math.Sqrt(variance / w), N: len(ws.Samples)}
}

// Count estimates COUNT(*) WHERE pred — no population size needed, unlike
// the uniform-sample Count.
func (ws *WeightedSet) Count(pred hiddendb.Query) Estimate {
	return ws.Total(func(t *hiddendb.Tuple) float64 {
		if pred.Matches(t.Vals) {
			return 1
		}
		return 0
	})
}

// Sum estimates SUM(attr) WHERE pred.
func (ws *WeightedSet) Sum(pred hiddendb.Query, attr int) Estimate {
	return ws.Total(func(t *hiddendb.Tuple) float64 {
		if !pred.Matches(t.Vals) {
			return 0
		}
		v, ok := t.Num(attr)
		if !ok {
			return 0
		}
		return v
	})
}

// Avg estimates AVG(attr) WHERE pred as the ratio of the Sum and Count
// estimators, with a first-order (delta-method) standard error.
func (ws *WeightedSet) Avg(pred hiddendb.Query, attr int) Estimate {
	sum := ws.Sum(pred, attr)
	count := ws.Count(pred)
	if count.Value <= 0 {
		return Estimate{N: len(ws.Samples)}
	}
	value := sum.Value / count.Value
	rel := 0.0
	if sum.Value != 0 {
		r1 := sum.StdErr / math.Abs(sum.Value)
		r2 := count.StdErr / count.Value
		rel = math.Sqrt(r1*r1 + r2*r2)
	}
	return Estimate{Value: value, StdErr: math.Abs(value) * rel, N: len(ws.Samples)}
}

// Population estimates the number of reachable tuples: the total of the
// constant-1 function. This is the unbiased size estimator a
// count-reporting interface makes unnecessary.
func (ws *WeightedSet) Population() Estimate {
	return ws.Total(func(*hiddendb.Tuple) float64 { return 1 })
}
