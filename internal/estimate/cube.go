package estimate

import (
	"fmt"
	"sort"

	"hdsampler/internal/hiddendb"
)

// CubeCell is one group of a grouped aggregate: the grouping values and
// the estimates computed over samples falling in the group.
type CubeCell struct {
	// Values holds one domain-value index per grouping attribute.
	Values []int
	// Share is the estimated fraction of the database in this group.
	Share Estimate
	// Count is Share scaled by the population (population <= 0 leaves it
	// zero-valued).
	Count Estimate
	// Sum and Avg aggregate the measure attribute over the group; only
	// populated when the cube has a measure.
	Sum Estimate
	Avg Estimate
	// Samples is the number of samples that landed in the group.
	Samples int
}

// Cube is the §3.4 "resultant data cube": grouped aggregate estimates over
// one or more attributes, computed from a uniform sample.
type Cube struct {
	// GroupBy holds the grouping attribute indexes; Measure the numeric
	// attribute aggregated per group (-1 for COUNT-only cubes).
	GroupBy []int
	Measure int
	Cells   []CubeCell
}

// BuildCube groups samples by the given attributes and estimates each
// group's share, COUNT (when population > 0), and SUM/AVG of the measure
// attribute (when measure >= 0). Only non-empty groups appear, in
// lexicographic order of their grouping values.
func BuildCube(schema *hiddendb.Schema, samples []hiddendb.Tuple, groupBy []int, measure, population int) (*Cube, error) {
	if len(groupBy) == 0 {
		return nil, fmt.Errorf("estimate: cube needs at least one grouping attribute")
	}
	for _, a := range groupBy {
		if a < 0 || a >= schema.NumAttrs() {
			return nil, fmt.Errorf("estimate: grouping attribute %d out of range", a)
		}
	}
	if measure >= schema.NumAttrs() {
		return nil, fmt.Errorf("estimate: measure attribute %d out of range", measure)
	}

	type group struct {
		vals []int
		idx  []int // sample indexes
	}
	byKey := make(map[string]*group)
	var order []string
	keyOf := func(t *hiddendb.Tuple) (string, []int) {
		key := ""
		vals := make([]int, len(groupBy))
		for i, a := range groupBy {
			v := t.Vals[a]
			vals[i] = v
			key += fmt.Sprintf("%d,", v)
		}
		return key, vals
	}
	for i := range samples {
		key, vals := keyOf(&samples[i])
		g, ok := byKey[key]
		if !ok {
			g = &group{vals: vals}
			byKey[key] = g
			order = append(order, key)
		}
		g.idx = append(g.idx, i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := byKey[order[i]].vals, byKey[order[j]].vals
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})

	cube := &Cube{GroupBy: append([]int(nil), groupBy...), Measure: measure}
	n := len(samples)
	for _, key := range order {
		g := byKey[key]
		cell := CubeCell{Values: g.vals, Samples: len(g.idx)}
		pred := groupPred(groupBy, g.vals)
		cell.Share = Proportion(samples, pred)
		if population > 0 {
			cell.Count = Count(samples, pred, population)
		}
		if measure >= 0 && n > 0 {
			if population > 0 {
				cell.Sum = Sum(samples, pred, measure, population)
			}
			cell.Avg = Avg(samples, pred, measure)
		}
		cube.Cells = append(cube.Cells, cell)
	}
	return cube, nil
}

// groupPred builds the conjunctive predicate selecting one group.
func groupPred(groupBy, vals []int) hiddendb.Query {
	q := hiddendb.EmptyQuery()
	for i, a := range groupBy {
		q = q.With(a, vals[i])
	}
	return q
}

// Cell returns the cube cell with the given grouping values, or nil.
func (c *Cube) Cell(vals ...int) *CubeCell {
	for i := range c.Cells {
		if len(c.Cells[i].Values) != len(vals) {
			continue
		}
		match := true
		for j, v := range vals {
			if c.Cells[i].Values[j] != v {
				match = false
				break
			}
		}
		if match {
			return &c.Cells[i]
		}
	}
	return nil
}
