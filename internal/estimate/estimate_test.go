package estimate

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"hdsampler/internal/hiddendb"
)

func sampleSchema() *hiddendb.Schema {
	return hiddendb.MustSchema("s",
		hiddendb.CatAttr("make", "toyota", "honda", "ford"),
		hiddendb.BoolAttr("used"),
		hiddendb.NumAttr("price", 0, 100, 200))
}

func mkSample(id, mk, used, priceBucket int, price float64) hiddendb.Tuple {
	return hiddendb.Tuple{
		ID:   id,
		Vals: []int{mk, used, priceBucket},
		Nums: []float64{math.NaN(), math.NaN(), price},
	}
}

func TestMarginals(t *testing.T) {
	s := sampleSchema()
	samples := []hiddendb.Tuple{
		mkSample(0, 0, 1, 0, 50),
		mkSample(1, 0, 0, 1, 150),
		mkSample(2, 1, 1, 0, 80),
		mkSample(3, 2, 1, 1, 120),
	}
	ms := Marginals(s, samples)
	if len(ms) != 3 {
		t.Fatalf("marginals = %d", len(ms))
	}
	if ms[0].Counts[0] != 2 || ms[0].Counts[1] != 1 || ms[0].Counts[2] != 1 {
		t.Errorf("make counts = %v", ms[0].Counts)
	}
	props := ms[0].Proportions()
	if props[0] != 0.5 {
		t.Errorf("make[0] proportion = %g", props[0])
	}
	if ms[1].N != 4 {
		t.Errorf("N = %d", ms[1].N)
	}
}

func TestMarginalCI(t *testing.T) {
	m := Marginal{Attr: 0, Counts: []int{50, 50}, N: 100}
	lo, hi := m.CI(0, 1.96)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("CI = [%g,%g] should straddle 0.5", lo, hi)
	}
	want := 1.96 * math.Sqrt(0.25/100)
	if math.Abs((hi-lo)/2-want) > 1e-9 {
		t.Errorf("CI half-width = %g, want %g", (hi-lo)/2, want)
	}
	// Clamped at [0,1].
	m2 := Marginal{Attr: 0, Counts: []int{100, 0}, N: 100}
	lo, hi = m2.CI(0, 3)
	if hi > 1 || lo < 0 {
		t.Errorf("CI not clamped: [%g,%g]", lo, hi)
	}
	empty := Marginal{Attr: 0, Counts: []int{0, 0}}
	if lo, hi = empty.CI(0, 2); lo != 0 || hi != 1 {
		t.Errorf("empty CI = [%g,%g], want [0,1]", lo, hi)
	}
	zero := m.Proportions()
	_ = zero
	if p := (&Marginal{Counts: []int{1, 1}}).Proportions(); p[0] != 0 {
		t.Error("zero-N proportions should be 0")
	}
}

func TestAccumulator(t *testing.T) {
	s := sampleSchema()
	a := NewAccumulator(s, 3)
	for i := 0; i < 5; i++ {
		a.Add(mkSample(i, i%3, i%2, 0, 50))
	}
	if a.N() != 5 {
		t.Fatalf("N = %d", a.N())
	}
	m := a.Marginal(0)
	if m.Counts[0] != 2 || m.Counts[1] != 2 || m.Counts[2] != 1 {
		t.Errorf("counts = %v", m.Counts)
	}
	recent := a.Recent()
	if len(recent) != 3 {
		t.Fatalf("recent = %d, want ring cap 3", len(recent))
	}
	// Newest last: IDs 2,3,4.
	if recent[0].ID != 2 || recent[2].ID != 4 {
		t.Errorf("recent IDs = %d,%d,%d", recent[0].ID, recent[1].ID, recent[2].ID)
	}
	// Before the ring fills, Recent returns only what exists.
	b := NewAccumulator(s, 10)
	b.Add(mkSample(7, 0, 0, 0, 10))
	if got := b.Recent(); len(got) != 1 || got[0].ID != 7 {
		t.Errorf("recent = %+v", got)
	}
	// Marginal snapshot is a copy.
	snap := a.Marginal(0)
	snap.Counts[0] = 99
	if a.Marginal(0).Counts[0] == 99 {
		t.Error("Marginal returned shared storage")
	}
}

func TestProportionAndCount(t *testing.T) {
	var samples []hiddendb.Tuple
	for i := 0; i < 200; i++ {
		mk := 0
		if i >= 80 { // 40% toyota
			mk = 1 + i%2
		}
		samples = append(samples, mkSample(i, mk, 0, 0, 50))
	}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	p := Proportion(samples, pred)
	if p.Value != 0.4 {
		t.Errorf("proportion = %g, want 0.4", p.Value)
	}
	wantSE := math.Sqrt(0.4 * 0.6 / 200)
	if math.Abs(p.StdErr-wantSE) > 1e-12 {
		t.Errorf("stderr = %g, want %g", p.StdErr, wantSE)
	}
	c := Count(samples, pred, 10000)
	if c.Value != 4000 {
		t.Errorf("count = %g, want 4000", c.Value)
	}
	if math.Abs(c.StdErr-wantSE*10000) > 1e-9 {
		t.Errorf("count stderr = %g", c.StdErr)
	}
	lo, hi := c.CI(1.96)
	if lo >= 4000 || hi <= 4000 {
		t.Errorf("CI = [%g,%g]", lo, hi)
	}
	if Proportion(nil, pred).Value != 0 {
		t.Error("empty proportion should be zero value")
	}
}

func TestAvg(t *testing.T) {
	samples := []hiddendb.Tuple{
		mkSample(0, 0, 0, 0, 10),
		mkSample(1, 0, 0, 0, 20),
		mkSample(2, 1, 0, 0, 1000), // excluded by predicate
	}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	got := Avg(samples, pred, 2)
	if got.Value != 15 || got.N != 2 {
		t.Errorf("avg = %+v, want 15 over 2", got)
	}
	// sd of {10,20} = 7.07..., stderr = sd/sqrt(2) = 5.
	if math.Abs(got.StdErr-5) > 1e-9 {
		t.Errorf("stderr = %g, want 5", got.StdErr)
	}
	if e := Avg(nil, pred, 2); e.Value != 0 || e.N != 0 {
		t.Errorf("empty avg = %+v", e)
	}
	// Predicate matching nothing.
	none := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 2})
	if e := Avg(samples, none, 2); e.N != 0 {
		t.Errorf("no-match avg = %+v", e)
	}
}

func TestSum(t *testing.T) {
	samples := []hiddendb.Tuple{
		mkSample(0, 0, 0, 0, 10),
		mkSample(1, 0, 0, 0, 30),
		mkSample(2, 1, 0, 0, 1000), // excluded
		mkSample(3, 0, 0, 0, 20),
	}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	// Mean contribution = (10+30+0+20)/4 = 15; population 100 -> 1500.
	got := Sum(samples, pred, 2, 100)
	if got.Value != 1500 {
		t.Errorf("sum = %g, want 1500", got.Value)
	}
	if got.StdErr <= 0 {
		t.Error("stderr should be positive")
	}
	if e := Sum(nil, pred, 2, 100); e.Value != 0 {
		t.Errorf("empty sum = %+v", e)
	}
}

// TestSingleSampleStdErrFinite is the n < 2 regression guard: Sum/Avg
// over exactly one (matching) sample must report a zero standard error —
// never the NaN an unguarded (n-1)-divisor stddev would produce, which
// encoding/json refuses to marshal (the webui aggregate endpoint serves
// these values as JSON). N carries the "one sample" caveat.
func TestSingleSampleStdErrFinite(t *testing.T) {
	one := []hiddendb.Tuple{mkSample(0, 0, 0, 0, 42)}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})

	sum := Sum(one, pred, 2, 100)
	if sum.Value != 4200 || sum.N != 1 {
		t.Fatalf("sum = %+v, want 4200 over 1", sum)
	}
	avg := Avg(one, pred, 2)
	if avg.Value != 42 || avg.N != 1 {
		t.Fatalf("avg = %+v, want 42 over 1", avg)
	}
	// A multi-sample set where the predicate matches exactly one row
	// exercises Avg's matching-subset path too.
	mixed := []hiddendb.Tuple{
		mkSample(0, 0, 0, 0, 42),
		mkSample(1, 1, 0, 0, 7),
		mkSample(2, 1, 0, 0, 9),
	}
	avgOne := Avg(mixed, pred, 2)
	if avgOne.Value != 42 || avgOne.N != 1 {
		t.Fatalf("single-match avg = %+v", avgOne)
	}
	for name, e := range map[string]Estimate{"sum": sum, "avg": avg, "avg-one-match": avgOne} {
		if math.IsNaN(e.StdErr) || math.IsInf(e.StdErr, 0) {
			t.Fatalf("%s stderr = %g, want finite", name, e.StdErr)
		}
		if e.StdErr != 0 {
			t.Fatalf("%s stderr = %g, want 0 for n < 2", name, e.StdErr)
		}
		if _, err := json.Marshal(e); err != nil {
			t.Fatalf("%s does not marshal: %v", name, err)
		}
	}
}

func TestSumCountConvergence(t *testing.T) {
	// On a synthetic population, sample estimates converge to truth.
	rng := rand.New(rand.NewSource(42))
	const population = 50000
	pop := make([]hiddendb.Tuple, population)
	var trueSum float64
	trueCount := 0
	for i := range pop {
		mk := rng.Intn(3)
		price := 50 + rng.Float64()*100
		pop[i] = mkSample(i, mk, rng.Intn(2), 0, price)
		if mk == 1 {
			trueSum += price
			trueCount++
		}
	}
	var samples []hiddendb.Tuple
	for i := 0; i < 2000; i++ {
		samples = append(samples, pop[rng.Intn(population)])
	}
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1})
	c := Count(samples, pred, population)
	if math.Abs(c.Value-float64(trueCount))/float64(trueCount) > 0.1 {
		t.Errorf("count estimate %g vs truth %d", c.Value, trueCount)
	}
	s := Sum(samples, pred, 2, population)
	if math.Abs(s.Value-trueSum)/trueSum > 0.1 {
		t.Errorf("sum estimate %g vs truth %g", s.Value, trueSum)
	}
	// The 3-sigma CI should cover the truth (fixed seed: deterministic).
	lo, hi := c.CI(3)
	if float64(trueCount) < lo || float64(trueCount) > hi {
		t.Errorf("count CI [%g,%g] misses truth %d", lo, hi, trueCount)
	}
}

func TestPopulationBirthday(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 400
	const population = 1000
	samples := make([]hiddendb.Tuple, n)
	for i := range samples {
		samples[i] = mkSample(rng.Intn(population), 0, 0, 0, 10)
	}
	est, ok := PopulationBirthday(samples)
	if !ok {
		t.Fatal("400 draws from 1000 should collide")
	}
	if est.Value < 500 || est.Value > 2000 {
		t.Errorf("population estimate %g far from 1000", est.Value)
	}
	// No collisions: undefined.
	unique := make([]hiddendb.Tuple, 10)
	for i := range unique {
		unique[i] = mkSample(i, 0, 0, 0, 10)
	}
	if _, ok := PopulationBirthday(unique); ok {
		t.Error("collision-free set should report not-ok")
	}
	// Unknown IDs are skipped.
	anon := []hiddendb.Tuple{mkSample(-1, 0, 0, 0, 1), mkSample(-1, 0, 0, 0, 1)}
	if _, ok := PopulationBirthday(anon); ok {
		t.Error("ID-less samples should not collide")
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Value: 1234.5678, StdErr: 12.3}
	if e.String() == "" {
		t.Error("empty String")
	}
}
