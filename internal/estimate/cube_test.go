package estimate

import (
	"math"
	"math/rand"
	"testing"

	"hdsampler/internal/hiddendb"
)

func TestBuildCubeSingleAttribute(t *testing.T) {
	s := sampleSchema()
	samples := []hiddendb.Tuple{
		mkSample(0, 0, 0, 0, 10),
		mkSample(1, 0, 1, 0, 20),
		mkSample(2, 1, 0, 1, 100),
		mkSample(3, 0, 0, 1, 30),
	}
	cube, err := BuildCube(s, samples, []int{0}, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (toyota, honda)", len(cube.Cells))
	}
	toyota := cube.Cell(0)
	if toyota == nil || toyota.Samples != 3 {
		t.Fatalf("toyota cell = %+v", toyota)
	}
	if toyota.Share.Value != 0.75 {
		t.Errorf("toyota share = %g", toyota.Share.Value)
	}
	if toyota.Count.Value != 750 {
		t.Errorf("toyota count = %g", toyota.Count.Value)
	}
	if toyota.Avg.Value != 20 {
		t.Errorf("toyota avg price = %g, want 20", toyota.Avg.Value)
	}
	// Sum: mean contribution (10+20+30+0)/4 * 1000 = 15000.
	if toyota.Sum.Value != 15000 {
		t.Errorf("toyota sum = %g, want 15000", toyota.Sum.Value)
	}
	honda := cube.Cell(1)
	if honda == nil || honda.Samples != 1 || honda.Avg.Value != 100 {
		t.Fatalf("honda cell = %+v", honda)
	}
	if cube.Cell(2) != nil {
		t.Error("empty group should be absent")
	}
	if cube.Cell(0, 0) != nil {
		t.Error("arity-mismatched lookup should return nil")
	}
}

func TestBuildCubeTwoAttributesOrdered(t *testing.T) {
	s := sampleSchema()
	var samples []hiddendb.Tuple
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		samples = append(samples, mkSample(i, rng.Intn(3), rng.Intn(2), 0, float64(rng.Intn(100))))
	}
	cube, err := BuildCube(s, samples, []int{0, 1}, -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cube.Cells))
	}
	// Lexicographic order of (make, used).
	prev := []int{-1, -1}
	for _, c := range cube.Cells {
		if c.Values[0] < prev[0] || (c.Values[0] == prev[0] && c.Values[1] <= prev[1]) {
			t.Fatalf("cells out of order: %v after %v", c.Values, prev)
		}
		prev = c.Values
		// COUNT-only cube: Sum/Avg stay zero-valued.
		if c.Sum.Value != 0 || c.Avg.Value != 0 {
			t.Fatalf("measure-less cube has aggregates: %+v", c)
		}
	}
	// Shares sum to 1.
	total := 0.0
	for _, c := range cube.Cells {
		total += c.Share.Value
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("shares sum to %g", total)
	}
}

func TestBuildCubeValidation(t *testing.T) {
	s := sampleSchema()
	samples := []hiddendb.Tuple{mkSample(0, 0, 0, 0, 1)}
	if _, err := BuildCube(s, samples, nil, -1, 0); err == nil {
		t.Error("empty groupBy accepted")
	}
	if _, err := BuildCube(s, samples, []int{9}, -1, 0); err == nil {
		t.Error("out-of-range group attr accepted")
	}
	if _, err := BuildCube(s, samples, []int{0}, 9, 0); err == nil {
		t.Error("out-of-range measure accepted")
	}
}

func TestBuildCubeEmptySamples(t *testing.T) {
	s := sampleSchema()
	cube, err := BuildCube(s, nil, []int{0}, -1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cube.Cells) != 0 {
		t.Fatalf("cells = %d, want 0", len(cube.Cells))
	}
}
