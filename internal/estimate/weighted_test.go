package estimate

import (
	"math"
	"math/rand"
	"testing"

	"hdsampler/internal/hiddendb"
)

// syntheticWalkSet simulates a walk process over a known population with
// per-tuple reach probabilities and returns the weighted set plus truth.
func syntheticWalkSet(t *testing.T, seed int64, walks int) (*WeightedSet, []hiddendb.Tuple) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	// Population: 60 tuples, reach proportional to 1 or 3 (skewed walk),
	// scaled so total candidate probability is 0.6 (40% dead ends).
	pop := make([]hiddendb.Tuple, 60)
	reach := make([]float64, 60)
	var reachTotal float64
	for i := range pop {
		mk := i % 3
		pop[i] = hiddendb.Tuple{ID: i, Vals: []int{mk}, Nums: []float64{float64(10 + i)}}
		w := 1.0
		if i%2 == 0 {
			w = 3
		}
		reach[i] = w
		reachTotal += w
	}
	for i := range reach {
		reach[i] = reach[i] / reachTotal * 0.6
	}
	ws := &WeightedSet{}
	pending := 0
	for w := 0; w < walks; w++ {
		u := rng.Float64()
		acc := 0.0
		hit := -1
		for i, r := range reach {
			acc += r
			if u < acc {
				hit = i
				break
			}
		}
		if hit < 0 {
			pending++ // dead-end walk
			continue
		}
		ws.Add(pop[hit], reach[hit], pending)
		pending = 0
	}
	ws.Walks += int64(pending) // trailing dead ends count too
	return ws, pop
}

func TestWeightedCountUnbiased(t *testing.T) {
	ws, pop := syntheticWalkSet(t, 1, 30000)
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1})
	trueCount := 0.0
	for _, tu := range pop {
		if pred.Matches(tu.Vals) {
			trueCount++
		}
	}
	est := ws.Count(pred)
	if math.Abs(est.Value-trueCount)/trueCount > 0.1 {
		t.Fatalf("HT count %g, truth %g", est.Value, trueCount)
	}
	// The 3-sigma interval should cover the truth (seeded, deterministic).
	lo, hi := est.CI(3)
	if trueCount < lo || trueCount > hi {
		t.Fatalf("CI [%g,%g] misses truth %g", lo, hi, trueCount)
	}
}

func TestWeightedSumAndAvg(t *testing.T) {
	ws, pop := syntheticWalkSet(t, 2, 30000)
	pred := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 0})
	var trueSum, trueCount float64
	for _, tu := range pop {
		if pred.Matches(tu.Vals) {
			v, _ := tu.Num(0)
			trueSum += v
			trueCount++
		}
	}
	sum := ws.Sum(pred, 0)
	if math.Abs(sum.Value-trueSum)/trueSum > 0.1 {
		t.Fatalf("HT sum %g, truth %g", sum.Value, trueSum)
	}
	avg := ws.Avg(pred, 0)
	trueAvg := trueSum / trueCount
	if math.Abs(avg.Value-trueAvg)/trueAvg > 0.1 {
		t.Fatalf("HT avg %g, truth %g", avg.Value, trueAvg)
	}
	if avg.StdErr <= 0 {
		t.Fatal("avg stderr should be positive")
	}
}

func TestWeightedPopulation(t *testing.T) {
	ws, pop := syntheticWalkSet(t, 3, 30000)
	est := ws.Population()
	if math.Abs(est.Value-float64(len(pop)))/float64(len(pop)) > 0.1 {
		t.Fatalf("HT population %g, truth %d", est.Value, len(pop))
	}
}

func TestWeightedEdgeCases(t *testing.T) {
	empty := &WeightedSet{}
	if e := empty.Count(hiddendb.EmptyQuery()); e.Value != 0 || e.StdErr != 0 {
		t.Errorf("empty set count = %+v", e)
	}
	// Zero/negative reach contributions are skipped, not divided by.
	ws := &WeightedSet{}
	ws.Add(hiddendb.Tuple{Vals: []int{0}}, 0, 0)
	ws.Add(hiddendb.Tuple{Vals: []int{0}}, 0.5, 0)
	e := ws.Count(hiddendb.EmptyQuery())
	if math.IsInf(e.Value, 0) || math.IsNaN(e.Value) {
		t.Fatalf("zero reach leaked: %+v", e)
	}
	// Avg over a predicate matching nothing.
	none := hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 1})
	if a := ws.Avg(none, 0); a.Value != 0 {
		t.Errorf("no-match avg = %+v", a)
	}
}
