// Package estimate turns uniform samples into the statistics the demo's
// Output Module displays: marginal histograms with confidence intervals
// (Figure 4), approximate aggregates — COUNT, SUM, AVG over conjunctive
// predicates (§3.4) — and population-size estimates, either from the
// interface's root count or from sample collisions.
package estimate

import (
	"fmt"
	"math"

	"hdsampler/internal/hiddendb"
)

// Marginal is the sampled distribution of one attribute.
type Marginal struct {
	Attr   int
	Counts []int
	// N is the number of samples accumulated (the column sums of Counts).
	N int
}

// Proportions returns the normalized histogram.
func (m *Marginal) Proportions() []float64 {
	out := make([]float64, len(m.Counts))
	if m.N == 0 {
		return out
	}
	for i, c := range m.Counts {
		out[i] = float64(c) / float64(m.N)
	}
	return out
}

// CI returns the normal-approximation confidence interval for value v's
// proportion at z standard errors (z = 1.96 for 95%), clamped to [0,1].
func (m *Marginal) CI(v int, z float64) (lo, hi float64) {
	if m.N == 0 {
		return 0, 1
	}
	p := float64(m.Counts[v]) / float64(m.N)
	se := math.Sqrt(p * (1 - p) / float64(m.N))
	lo, hi = p-z*se, p+z*se
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Marginals computes every attribute's sampled marginal.
func Marginals(schema *hiddendb.Schema, samples []hiddendb.Tuple) []Marginal {
	out := make([]Marginal, schema.NumAttrs())
	for a := range out {
		out[a] = Marginal{Attr: a, Counts: make([]int, schema.DomainSize(a))}
	}
	for i := range samples {
		for a, v := range samples[i].Vals {
			if a < len(out) && v >= 0 && v < len(out[a].Counts) {
				out[a].Counts[v]++
				out[a].N++
			}
		}
	}
	return out
}

// Accumulator ingests samples incrementally, maintaining all marginals and
// a bounded ring of recent samples — the state behind the demo's live
// histogram view.
type Accumulator struct {
	schema *hiddendb.Schema
	counts [][]int
	n      int

	recent []hiddendb.Tuple
	next   int
	filled bool
}

// NewAccumulator builds an accumulator keeping up to recentCap recent
// samples (default 100 when <= 0).
func NewAccumulator(schema *hiddendb.Schema, recentCap int) *Accumulator {
	if recentCap <= 0 {
		recentCap = 100
	}
	a := &Accumulator{schema: schema, recent: make([]hiddendb.Tuple, recentCap)}
	a.counts = make([][]int, schema.NumAttrs())
	for i := range a.counts {
		a.counts[i] = make([]int, schema.DomainSize(i))
	}
	return a
}

// Add ingests one sample.
func (a *Accumulator) Add(t hiddendb.Tuple) {
	for attr, v := range t.Vals {
		if attr < len(a.counts) && v >= 0 && v < len(a.counts[attr]) {
			a.counts[attr][v]++
		}
	}
	a.n++
	a.recent[a.next] = t.Clone()
	a.next++
	if a.next == len(a.recent) {
		a.next = 0
		a.filled = true
	}
}

// N returns the number of samples ingested.
func (a *Accumulator) N() int { return a.n }

// Marginal returns attribute attr's sampled marginal.
func (a *Accumulator) Marginal(attr int) Marginal {
	return Marginal{Attr: attr, Counts: append([]int(nil), a.counts[attr]...), N: a.n}
}

// Recent returns the most recent samples, newest last.
func (a *Accumulator) Recent() []hiddendb.Tuple {
	if !a.filled {
		out := make([]hiddendb.Tuple, a.next)
		copy(out, a.recent[:a.next])
		return out
	}
	out := make([]hiddendb.Tuple, 0, len(a.recent))
	out = append(out, a.recent[a.next:]...)
	out = append(out, a.recent[:a.next]...)
	return out
}

// Estimate is a point estimate with a normal-approximation standard error.
type Estimate struct {
	Value  float64
	StdErr float64
	// N is the number of samples the estimate used.
	N int
}

// CI returns the interval Value ± z·StdErr.
func (e Estimate) CI(z float64) (lo, hi float64) {
	return e.Value - z*e.StdErr, e.Value + z*e.StdErr
}

// String renders "value ± stderr".
func (e Estimate) String() string {
	return fmt.Sprintf("%.4g ± %.2g", e.Value, e.StdErr)
}

// Proportion estimates the fraction of the database matching pred from
// uniform samples.
func Proportion(samples []hiddendb.Tuple, pred hiddendb.Query) Estimate {
	n := len(samples)
	if n == 0 {
		return Estimate{}
	}
	match := 0
	for i := range samples {
		if pred.Matches(samples[i].Vals) {
			match++
		}
	}
	p := float64(match) / float64(n)
	return Estimate{Value: p, StdErr: math.Sqrt(p * (1 - p) / float64(n)), N: n}
}

// Count estimates COUNT(*) WHERE pred, given the population size (from the
// interface's root count or a population estimator).
func Count(samples []hiddendb.Tuple, pred hiddendb.Query, population int) Estimate {
	p := Proportion(samples, pred)
	return Estimate{
		Value:  p.Value * float64(population),
		StdErr: p.StdErr * float64(population),
		N:      p.N,
	}
}

// Sum estimates SUM(attr) WHERE pred, given the population size. Samples
// without a numeric payload for attr contribute zero.
func Sum(samples []hiddendb.Tuple, pred hiddendb.Query, attr, population int) Estimate {
	n := len(samples)
	if n == 0 {
		return Estimate{}
	}
	xs := make([]float64, n)
	for i := range samples {
		if pred.Matches(samples[i].Vals) {
			if v, ok := samples[i].Num(attr); ok {
				xs[i] = v
			}
		}
	}
	mean, sd := meanStd(xs)
	scale := float64(population)
	return Estimate{Value: mean * scale, StdErr: sd / math.Sqrt(float64(n)) * scale, N: n}
}

// Avg estimates AVG(attr) WHERE pred: the mean of the numeric payload over
// matching samples (a ratio estimator — no population size needed).
func Avg(samples []hiddendb.Tuple, pred hiddendb.Query, attr int) Estimate {
	var xs []float64
	for i := range samples {
		if !pred.Matches(samples[i].Vals) {
			continue
		}
		if v, ok := samples[i].Num(attr); ok {
			xs = append(xs, v)
		}
	}
	if len(xs) == 0 {
		return Estimate{}
	}
	mean, sd := meanStd(xs)
	return Estimate{Value: mean, StdErr: sd / math.Sqrt(float64(len(xs))), N: len(xs)}
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// PopulationBirthday estimates the database size from sample collisions
// (uniform draws with replacement): with c pairwise ID collisions among n
// samples, N ≈ n(n−1)/(2c). It returns ok = false when no collision has
// occurred yet (the estimator is undefined; more samples needed). Samples
// must carry stable IDs (item links give the HTTP connector these).
func PopulationBirthday(samples []hiddendb.Tuple) (Estimate, bool) {
	n := len(samples)
	seen := make(map[int]int, n)
	collisions := 0
	for i := range samples {
		if samples[i].ID < 0 {
			continue
		}
		collisions += seen[samples[i].ID]
		seen[samples[i].ID]++
	}
	if collisions == 0 {
		return Estimate{N: n}, false
	}
	pairs := float64(n) * float64(n-1) / 2
	est := pairs / float64(collisions)
	// Relative error of a Poisson count: 1/sqrt(c).
	return Estimate{Value: est, StdErr: est / math.Sqrt(float64(collisions)), N: n}, true
}
