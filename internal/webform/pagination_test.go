package webform

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/htmlx"
)

func paginatedServer(t *testing.T, n, k, pageSize int) (*hiddendb.DB, *httptest.Server) {
	t.Helper()
	ds := datagen.Vehicles(n, 17)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil,
		hiddendb.Config{K: k, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(db, Options{PageSize: pageSize}))
	t.Cleanup(srv.Close)
	return db, srv
}

func TestPaginationSplitsRows(t *testing.T) {
	db, srv := paginatedServer(t, 500, 100, 30)
	// Broad query: overflow, 100 visible rows over 4 pages of 30/30/30/10.
	want, err := db.Execute(hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !want.Overflow || len(want.Tuples) != 100 {
		t.Fatalf("setup: %d rows, overflow=%v", len(want.Tuples), want.Overflow)
	}
	var gotIDs []int
	path := "/search"
	pages := 0
	for path != "" {
		code, body := get(t, srv, path)
		if code != http.StatusOK {
			t.Fatalf("page %d status = %d", pages, code)
		}
		root := htmlx.Parse(body)
		if ov, _ := root.ByID("status").Attr("data-overflow"); ov != "true" {
			t.Fatalf("page %d lost overflow flag", pages)
		}
		tbl := htmlx.TableByID(root, "results")
		for _, row := range tbl.Rows {
			id, err := strconv.Atoi(row[0].Text[1:])
			if err != nil {
				t.Fatal(err)
			}
			gotIDs = append(gotIDs, id)
		}
		info := root.ByID("pageinfo")
		if info == nil {
			t.Fatalf("page %d missing pageinfo", pages)
		}
		if p, _ := info.Attr("data-pages"); p != "4" {
			t.Fatalf("data-pages = %q, want 4", p)
		}
		path = ""
		if next := root.ByID("next"); next != nil {
			path = next.AttrOr("href", "")
		}
		pages++
	}
	if pages != 4 {
		t.Fatalf("walked %d pages, want 4", pages)
	}
	if len(gotIDs) != len(want.Tuples) {
		t.Fatalf("assembled %d rows, want %d", len(gotIDs), len(want.Tuples))
	}
	for i := range gotIDs {
		if gotIDs[i] != want.Tuples[i].ID {
			t.Fatalf("row %d: id %d, want %d (rank order broken)", i, gotIDs[i], want.Tuples[i].ID)
		}
	}
}

func TestPaginationSinglePageOmitsNav(t *testing.T) {
	_, srv := paginatedServer(t, 500, 100, 30)
	// Narrow query returning fewer rows than a page.
	_, body := get(t, srv, "/search?make=0&condition=0&color=5")
	root := htmlx.Parse(body)
	if root.ByID("next") != nil {
		t.Error("single-page result has a next link")
	}
}

func TestPaginationBadPage(t *testing.T) {
	_, srv := paginatedServer(t, 500, 100, 30)
	for _, path := range []string{"/search?page=-1", "/search?page=x", "/search?page=99"} {
		if code, _ := get(t, srv, path); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
		}
	}
}

func TestPaginationEachPageCostsAQuery(t *testing.T) {
	db, srv := paginatedServer(t, 500, 100, 30)
	before := db.QueriesServed()
	for p := 0; p < 4; p++ {
		get(t, srv, fmt.Sprintf("/search?page=%d", p))
	}
	if got := db.QueriesServed() - before; got != 4 {
		t.Fatalf("4 page fetches cost %d backend queries, want 4", got)
	}
}

func TestNoPaginationByDefault(t *testing.T) {
	_, srv := paginatedServer(t, 500, 100, 0)
	_, body := get(t, srv, "/search")
	root := htmlx.Parse(body)
	if root.ByID("pageinfo") != nil || root.ByID("next") != nil {
		t.Error("unpaginated server rendered pagination markers")
	}
	tbl := htmlx.TableByID(root, "results")
	if len(tbl.Rows) != 100 {
		t.Fatalf("rows = %d, want all 100", len(tbl.Rows))
	}
}
