package webform

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// FaultConfig makes the served interface misbehave on purpose: 5xx blips
// and added latency injected deterministically from a seed, ahead of the
// query endpoints (/search, /api/search, /api/search/batch). It is the
// server-side counterpart of internal/faultform's connector wrapper: the
// wrapper exercises the layers above the wire, this exercises the real
// wire — HTML scraping, pagination, retry and backoff in formclient.HTTP
// — against a site that behaves like production on a bad day.
//
// Faults are keyed by the request's path and query, so one logical query
// blips the same way no matter which client retries it, and recover after
// Burst consecutive failures: every request eventually succeeds, which
// keeps fault-injected tests deterministic and hang-free.
type FaultConfig struct {
	// Seed drives fault membership; equal seeds misbehave identically.
	Seed int64
	// Prob5xx is the probability a (path, query) pair is blip-hit: its
	// first Burst5xx requests (default 2) answer 503 Service Unavailable.
	Prob5xx  float64
	Burst5xx int
	// Latency delays every query response (both faulted and clean) — the
	// cheap way to surface client timeout handling.
	Latency time.Duration
}

// faultState tracks per-query fault consumption.
type faultState struct {
	mu   sync.Mutex
	blip map[uint64]int
}

// maxFaultEntries bounds the consumption map of a long-running faulted
// server.
const maxFaultEntries = 1 << 16

// intercept applies the configured faults to a query request, reporting
// whether it already answered (with an error) on the server's behalf.
func (s *Server) intercept(w http.ResponseWriter, r *http.Request) bool {
	f := s.opts.Fault
	if f == nil {
		return false
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Prob5xx <= 0 {
		return false
	}
	key := fmix(uint64(f.Seed), fstr(r.URL.Path), fstr(r.URL.RawQuery))
	if float64(fmix(key, 0x5c)>>11)/float64(1<<53) >= f.Prob5xx {
		return false
	}
	burst := f.Burst5xx
	if burst <= 0 {
		burst = 2
	}
	s.faults.mu.Lock()
	n, known := s.faults.blip[key]
	hit := n < burst
	if hit {
		// Bound the consumption map the way faultform does: at the cap it
		// resets wholesale (spent bursts may replay once; the clients'
		// retry budgets absorb a burst per request), because a long-running
		// faulted server must not grow memory per distinct query forever.
		if !known && len(s.faults.blip) >= maxFaultEntries {
			clear(s.faults.blip)
		}
		s.faults.blip[key] = n + 1
	}
	s.faults.mu.Unlock()
	if !hit {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(1))
	http.Error(w, "webform: injected 503 blip", http.StatusServiceUnavailable)
	return true
}

// fstr folds a string into the fault hash.
func fstr(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fmix folds values via the splitmix64 finalizer.
func fmix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		v += 0x9E3779B97F4A7C15
		v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9
		v = (v ^ (v >> 27)) * 0x94D049BB133111EB
		h ^= v ^ (v >> 31)
	}
	return h
}
