// Package webform serves a hiddendb.DB behind a conjunctive web form
// interface over HTTP — the stand-in for Google Base in the original demo.
// It renders an HTML search form whose select controls expose the attribute
// domains, answers queries with a top-k HTML results page carrying an
// explicit overflow notification and (optionally) a count estimate, offers
// a machine-readable API variant, and enforces per-client rate limits the
// way real data providers do.
package webform

import (
	"bytes"
	"encoding/json"
	"fmt"
	"html/template"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/telemetry"
)

// Options configures interface behaviour beyond what the DB itself fixes.
type Options struct {
	// RatePerSec throttles each client to this many queries per second
	// (token bucket); zero disables limiting.
	RatePerSec float64
	// Burst is the token bucket capacity; defaults to 10 when limiting is
	// enabled.
	Burst int
	// PageSize paginates the visible top-k rows, the way real sites split
	// 1000 results over 10 pages; zero renders everything on one page.
	// Every page fetch re-runs the query (and is rate limited), exactly
	// like a live site.
	PageSize int
	// MaxBatch bounds the queries accepted by one POST /api/search/batch
	// request (default 16). The whole batch runs under a single
	// rate-limit charge — that is the endpoint's point — so the bound is
	// what keeps a batch from becoming a free crawl.
	MaxBatch int
	// Fault, when set, injects deterministic misbehaviour (5xx blips,
	// latency) into the query endpoints; see FaultConfig.
	Fault *FaultConfig
	// Metrics, when set, registers the interface's request counters,
	// rate-limit rejections and request-latency histogram into this
	// registry (hiddendbd serves it on /metrics). Nil disables
	// instrumentation entirely.
	Metrics *telemetry.Registry
	// Now lets tests control time; defaults to time.Now.
	Now func() time.Time
}

// Server is an http.Handler exposing one hidden database.
type Server struct {
	db   *hiddendb.DB
	opts Options
	mux  *http.ServeMux

	mu      sync.Mutex
	buckets map[string]*bucket

	faults faultState

	// Telemetry instruments (nil — and free — without Options.Metrics).
	reqs    *telemetry.CounterVec
	limited *telemetry.Counter
	latency *telemetry.Histogram
}

// NewServer builds the handler for db.
func NewServer(db *hiddendb.DB, opts Options) *Server {
	if opts.Burst <= 0 {
		opts.Burst = 10
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 16
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	s := &Server{db: db, opts: opts, buckets: make(map[string]*bucket)}
	if reg := opts.Metrics; reg != nil {
		s.reqs = reg.CounterVec("webform_requests_total",
			"Interface requests served, by endpoint.", "endpoint")
		s.limited = reg.Counter("webform_rate_limited_total",
			"Requests rejected with 429 by the per-client rate limiter.")
		s.latency = reg.Histogram("webform_request_seconds",
			"Interface request handling latency (all endpoints).")
	}
	s.faults.blip = make(map[uint64]int)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/", s.instrument("form", s.handleForm))
	s.mux.HandleFunc("/search", s.instrument("search", s.handleSearch))
	s.mux.HandleFunc("/item/", s.instrument("item", s.handleItem))
	s.mux.HandleFunc("/api/schema", s.instrument("api_schema", s.handleAPISchema))
	s.mux.HandleFunc("/api/search", s.instrument("api_search", s.handleAPISearch))
	s.mux.HandleFunc("POST /api/search/batch", s.instrument("api_batch", s.handleAPIBatch))
	return s
}

// instrument wraps a handler with the per-endpoint request counter and the
// latency histogram; without a registry it returns the handler untouched.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.reqs == nil {
		return h
	}
	c := s.reqs.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		start := time.Now()
		h(w, r)
		s.latency.Observe(time.Since(start))
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// bucket is a token bucket replenished lazily.
type bucket struct {
	tokens float64
	last   time.Time
}

// allow consumes a token for the client, returning (ok, wait-duration).
func (s *Server) allow(client string) (bool, time.Duration) {
	if s.opts.RatePerSec <= 0 {
		return true, 0
	}
	now := s.opts.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[client]
	if !ok {
		b = &bucket{tokens: float64(s.opts.Burst), last: now}
		s.buckets[client] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	b.last = now
	b.tokens = math.Min(float64(s.opts.Burst), b.tokens+elapsed*s.opts.RatePerSec)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / s.opts.RatePerSec * float64(time.Second))
	return false, wait
}

func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) rateLimited(w http.ResponseWriter, r *http.Request) bool {
	ok, wait := s.allow(clientKey(r))
	if ok {
		return false
	}
	ms := wait.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(wait.Seconds()))))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(ms, 10))
	http.Error(w, "query rate limit exceeded", http.StatusTooManyRequests)
	s.limited.Inc()
	return true
}

var formTmpl = template.Must(template.New("form").Parse(`<!DOCTYPE html>
<html>
<head><title>{{.Title}}</title></head>
<body>
<h1>{{.Title}}</h1>
<form name="search" action="/search" method="get">
{{range .Attrs}}  <label for="{{.Name}}">{{.Name}}</label>
  <select name="{{.Name}}" id="{{.Name}}">
    <option value="">any</option>
{{range .Options}}    <option value="{{.Index}}">{{.Label}}</option>
{{end}}  </select>
{{end}}  <input type="submit" value="Search">
</form>
<p id="meta" data-k="{{.K}}" data-countmode="{{.CountMode}}">At most the top {{.K}} matching items are shown per query.</p>
</body>
</html>
`))

type formAttr struct {
	Name    string
	Options []formOption
}

type formOption struct {
	Index int
	Label string
}

func (s *Server) handleForm(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	schema := s.db.Schema()
	data := struct {
		Title     string
		Attrs     []formAttr
		K         int
		CountMode string
	}{Title: schema.Name, K: s.db.K(), CountMode: s.db.CountMode().String()}
	for _, a := range schema.Attrs {
		fa := formAttr{Name: a.Name}
		for i, v := range a.Values {
			fa.Options = append(fa.Options, formOption{Index: i, Label: v})
		}
		data.Attrs = append(data.Attrs, fa)
	}
	renderHTML(w, formTmpl, data)
}

// renderHTML executes the template into a buffer before writing, so a
// template error yields a clean 500 and a client that disconnects
// mid-response (a cancelled sampler) cannot provoke a second
// WriteHeader.
func renderHTML(w http.ResponseWriter, tmpl *template.Template, data any) {
	var buf bytes.Buffer
	if err := tmpl.Execute(&buf, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write(buf.Bytes())
}

// parseQuery translates form parameters (attrName=valueIndex, empty = any)
// into a canonical Query.
func (s *Server) parseQuery(r *http.Request) (hiddendb.Query, error) {
	schema := s.db.Schema()
	q := hiddendb.EmptyQuery()
	params := r.URL.Query()
	for name, vals := range params {
		attr := schema.AttrIndex(name)
		if attr < 0 {
			continue // tolerate unrelated params (tracking junk etc.)
		}
		if len(vals) == 0 || vals[0] == "" {
			continue
		}
		idx, err := strconv.Atoi(vals[0])
		if err != nil {
			return q, fmt.Errorf("webform: bad value %q for %q", vals[0], name)
		}
		if idx < 0 || idx >= schema.DomainSize(attr) {
			return q, fmt.Errorf("webform: value %d out of range for %q", idx, name)
		}
		q = q.With(attr, idx)
	}
	return q, nil
}

var resultsTmpl = template.Must(template.New("results").Parse(`<!DOCTYPE html>
<html>
<head><title>{{.Title}} - results</title></head>
<body>
<h1>{{.Title}}</h1>
<div id="status" data-overflow="{{.OverflowStr}}">{{.Status}}</div>
{{if .HasCount}}<span id="count" data-count="{{.Count}}">about {{.Count}} matching items</span>
{{end}}{{if .Rows}}<table id="results">
<tr><th>item</th>{{range .Header}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr><td><a href="/item/{{.ID}}">#{{.ID}}</a></td>{{range .Cells}}<td>{{.}}</td>{{end}}</tr>
{{end}}</table>
{{else}}<p id="noresults">No results found.</p>
{{end}}{{if .HasPages}}<span id="pageinfo" data-page="{{.Page}}" data-pages="{{.Pages}}">page {{.PageHuman}} of {{.Pages}}</span>
{{if .NextURL}}<a id="next" href="{{.NextURL}}">next page</a>
{{end}}{{end}}<a href="/">new search</a>
</body>
</html>
`))

type resultRow struct {
	ID    int
	Cells []string
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.intercept(w, r) || s.rateLimited(w, r) {
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	page := 0
	if p := r.URL.Query().Get("page"); p != "" {
		page, err = strconv.Atoi(p)
		if err != nil || page < 0 {
			http.Error(w, "bad page", http.StatusBadRequest)
			return
		}
	}
	res, err := s.db.Execute(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	schema := s.db.Schema()
	data := struct {
		Title       string
		OverflowStr string
		Status      string
		HasCount    bool
		Count       int
		Header      []string
		Rows        []resultRow
		HasPages    bool
		Page        int
		PageHuman   int
		Pages       int
		NextURL     string
	}{Title: schema.Name, HasCount: res.Count != hiddendb.CountAbsent, Count: res.Count}
	if res.Overflow {
		data.OverflowStr = "true"
		data.Status = fmt.Sprintf("Result overflow: showing only the top %d matching items.", len(res.Tuples))
	} else {
		data.OverflowStr = "false"
		data.Status = fmt.Sprintf("Showing all %d matching items.", len(res.Tuples))
	}
	rows := res.Tuples
	if ps := s.opts.PageSize; ps > 0 && len(rows) > 0 {
		pages := (len(rows) + ps - 1) / ps
		if page >= pages {
			http.Error(w, "page beyond results", http.StatusBadRequest)
			return
		}
		lo := page * ps
		hi := lo + ps
		if hi > len(rows) {
			hi = len(rows)
		}
		rows = rows[lo:hi]
		data.HasPages = pages > 1
		data.Page = page
		data.PageHuman = page + 1
		data.Pages = pages
		if page+1 < pages {
			next := r.URL.Query()
			next.Set("page", strconv.Itoa(page+1))
			data.NextURL = "/search?" + next.Encode()
		}
	}
	for _, a := range schema.Attrs {
		data.Header = append(data.Header, a.Name)
	}
	for i := range rows {
		data.Rows = append(data.Rows, resultRow{ID: rows[i].ID, Cells: renderCells(schema, &rows[i])})
	}
	renderHTML(w, resultsTmpl, data)
}

// renderCells renders a tuple the way a listing site would: labels for
// boolean/categorical attributes, the raw numeric value for numeric ones.
func renderCells(schema *hiddendb.Schema, t *hiddendb.Tuple) []string {
	cells := make([]string, len(schema.Attrs))
	for a := range schema.Attrs {
		attr := &schema.Attrs[a]
		if attr.Kind == hiddendb.KindNumeric {
			if v, ok := t.Num(a); ok {
				cells[a] = strconv.FormatFloat(v, 'f', -1, 64)
				continue
			}
			// No raw payload: fall back to the bucket label.
		}
		cells[a] = attr.Values[t.Vals[a]]
	}
	return cells
}

var itemTmpl = template.Must(template.New("item").Parse(`<!DOCTYPE html>
<html><head><title>item {{.ID}}</title></head>
<body><h1>Item #{{.ID}}</h1>
<table id="item">
{{range .Fields}}<tr><th>{{.Name}}</th><td>{{.Value}}</td></tr>
{{end}}</table>
</body></html>
`))

func (s *Server) handleItem(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/item/")
	id, err := strconv.Atoi(idStr)
	if err != nil || id < 0 || id >= s.db.Size() {
		http.NotFound(w, r)
		return
	}
	t := s.db.Tuple(id)
	schema := s.db.Schema()
	cells := renderCells(schema, &t)
	data := struct {
		ID     int
		Fields []struct{ Name, Value string }
	}{ID: id}
	for a := range schema.Attrs {
		data.Fields = append(data.Fields, struct{ Name, Value string }{schema.Attrs[a].Name, cells[a]})
	}
	renderHTML(w, itemTmpl, data)
}

// apiSchema is the JSON wire form of a schema.
type apiSchema struct {
	Name      string    `json:"name"`
	K         int       `json:"k"`
	CountMode string    `json:"count_mode"`
	Attrs     []apiAttr `json:"attrs"`
}

type apiAttr struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Values  []string     `json:"values"`
	Buckets [][2]float64 `json:"buckets,omitempty"`
}

func (s *Server) handleAPISchema(w http.ResponseWriter, r *http.Request) {
	schema := s.db.Schema()
	out := apiSchema{Name: schema.Name, K: s.db.K(), CountMode: s.db.CountMode().String()}
	for _, a := range schema.Attrs {
		aa := apiAttr{Name: a.Name, Kind: a.Kind.String(), Values: a.Values}
		for _, b := range a.Buckets {
			aa.Buckets = append(aa.Buckets, [2]float64{b.Lo, b.Hi})
		}
		out.Attrs = append(out.Attrs, aa)
	}
	writeJSON(w, out)
}

// apiResult is the JSON wire form of a query answer.
type apiResult struct {
	Overflow bool     `json:"overflow"`
	Count    *int     `json:"count,omitempty"`
	Rows     []apiRow `json:"rows"`
}

type apiRow struct {
	ID   int                `json:"id"`
	Vals []int              `json:"vals"`
	Nums map[string]float64 `json:"nums,omitempty"`
}

func (s *Server) handleAPISearch(w http.ResponseWriter, r *http.Request) {
	if s.intercept(w, r) || s.rateLimited(w, r) {
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.db.Execute(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, s.toAPIResult(res))
}

// toAPIResult converts a query answer to its JSON wire form.
func (s *Server) toAPIResult(res *hiddendb.Result) apiResult {
	schema := s.db.Schema()
	out := apiResult{Overflow: res.Overflow, Rows: []apiRow{}}
	if res.Count != hiddendb.CountAbsent {
		c := res.Count
		out.Count = &c
	}
	for i := range res.Tuples {
		t := &res.Tuples[i]
		row := apiRow{ID: t.ID, Vals: t.Vals}
		for a := range schema.Attrs {
			if v, ok := t.Num(a); ok {
				if row.Nums == nil {
					row.Nums = make(map[string]float64)
				}
				row.Nums[schema.Attrs[a].Name] = v
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// batchRequest is the POST /api/search/batch body: one predicate map
// (attribute name → value index) per query.
type batchRequest struct {
	Queries []map[string]int `json:"queries"`
}

// batchResponse answers a batch, results aligned with the request.
type batchResponse struct {
	Results []apiResult `json:"results"`
}

// handleAPIBatch executes up to MaxBatch queries under one rate-limit
// charge — the wire-amortization counterpart of the client's
// micro-batching layer. Each query is validated like a form submission;
// one bad query fails the whole batch (the client retries unbatched).
func (s *Server) handleAPIBatch(w http.ResponseWriter, r *http.Request) {
	if s.intercept(w, r) || s.rateLimited(w, r) {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "webform: bad batch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 {
		http.Error(w, "webform: empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Queries) > s.opts.MaxBatch {
		http.Error(w, fmt.Sprintf("webform: batch of %d exceeds limit %d", len(req.Queries), s.opts.MaxBatch), http.StatusBadRequest)
		return
	}
	schema := s.db.Schema()
	out := batchResponse{Results: make([]apiResult, 0, len(req.Queries))}
	for qi, preds := range req.Queries {
		q := hiddendb.EmptyQuery()
		for name, idx := range preds {
			attr := schema.AttrIndex(name)
			if attr < 0 {
				http.Error(w, fmt.Sprintf("webform: batch query %d: unknown attribute %q", qi, name), http.StatusBadRequest)
				return
			}
			if idx < 0 || idx >= schema.DomainSize(attr) {
				http.Error(w, fmt.Sprintf("webform: batch query %d: value %d out of range for %q", qi, idx, name), http.StatusBadRequest)
				return
			}
			q = q.With(attr, idx)
		}
		res, err := s.db.Execute(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		out.Results = append(out.Results, s.toAPIResult(res))
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
