package webform

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"hdsampler/internal/hiddendb"
)

// TestFaultInjection5xxBurstThenRecovery: a blip-hit query answers 503
// for its burst, then recovers — deterministically for a given seed — and
// other queries flow untouched.
func TestFaultInjection5xxBurstThenRecovery(t *testing.T) {
	db := testDB(t, 3, hiddendb.CountNone)
	srv := httptest.NewServer(NewServer(db, Options{
		Fault: &FaultConfig{Seed: 9, Prob5xx: 1, Burst5xx: 2},
	}))
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	for i := 0; i < 2; i++ {
		if code := get("/search?make=1"); code != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, code)
		}
	}
	if code := get("/search?make=1"); code != http.StatusOK {
		t.Fatalf("post-burst request: status %d, want 200", code)
	}
	// The burst stays consumed.
	if code := get("/search?make=1"); code != http.StatusOK {
		t.Fatalf("burst resurrected: status %d", code)
	}
	// The form page itself is never fault-intercepted: schema discovery
	// keeps working while the query endpoints blip.
	if code := get("/"); code != http.StatusOK {
		t.Fatalf("form page: status %d, want 200", code)
	}
}

// TestFaultInjectionProbabilisticAndDeterministic: with a partial
// probability some queries blip and some do not, and two servers with one
// seed agree exactly on which.
func TestFaultInjectionProbabilisticAndDeterministic(t *testing.T) {
	db := testDB(t, 3, hiddendb.CountNone)
	status := func(seed int64) []int {
		srv := httptest.NewServer(NewServer(db, Options{
			Fault: &FaultConfig{Seed: seed, Prob5xx: 0.5, Burst5xx: 1},
		}))
		defer srv.Close()
		var codes []int
		for v := 0; v < 3; v++ {
			for u := 0; u < 2; u++ {
				resp, err := http.Get(srv.URL + fmt.Sprintf("/api/search?make=%d&used=%d", v, u))
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				codes = append(codes, resp.StatusCode)
			}
		}
		return codes
	}
	a := status(7)
	b := status(7)
	blips, oks := 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d: seed-7 runs disagree: %d vs %d", i, a[i], b[i])
		}
		switch a[i] {
		case http.StatusServiceUnavailable:
			blips++
		case http.StatusOK:
			oks++
		}
	}
	if blips == 0 || oks == 0 {
		t.Fatalf("prob 0.5 produced %d blips / %d oks over %d queries", blips, oks, len(a))
	}
}
