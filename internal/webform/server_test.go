package webform

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/htmlx"
)

func testDB(t *testing.T, k int, mode hiddendb.CountMode) *hiddendb.DB {
	t.Helper()
	s := hiddendb.MustSchema("testdb",
		hiddendb.CatAttr("make", "toyota", "honda", "ford"),
		hiddendb.BoolAttr("used"),
		hiddendb.NumAttr("price", 0, 100, 200))
	nan := math.NaN()
	tuples := []hiddendb.Tuple{
		{Vals: []int{0, 0, 0}, Nums: []float64{nan, nan, 50}},
		{Vals: []int{0, 1, 1}, Nums: []float64{nan, nan, 150}},
		{Vals: []int{1, 1, 0}, Nums: []float64{nan, nan, 99}},
		{Vals: []int{2, 0, 1}, Nums: []float64{nan, nan, 101}},
		{Vals: []int{0, 1, 0}, Nums: []float64{nan, nan, 10}},
	}
	db, err := hiddendb.New(s, tuples, hiddendb.StaticRanker{Scores: []float64{5, 4, 3, 2, 1}},
		hiddendb.Config{K: k, CountMode: mode, CountNoise: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestFormPage(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountExact), Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	root := htmlx.Parse(body)
	form := htmlx.FormByName(root, "search")
	if form == nil {
		t.Fatal("search form missing")
	}
	if form.Action != "/search" || form.Method != "GET" {
		t.Fatalf("form = %+v", form)
	}
	if len(form.Selects) != 3 {
		t.Fatalf("selects = %d, want 3", len(form.Selects))
	}
	mk := form.SelectByName("make")
	if mk == nil {
		t.Fatal("make select missing")
	}
	// "any" + 3 values.
	if len(mk.Options) != 4 || mk.Options[0].Value != "" || mk.Options[1].Label != "toyota" {
		t.Fatalf("make options = %+v", mk.Options)
	}
	price := form.SelectByName("price")
	if price.Options[1].Label != "0-100" {
		t.Fatalf("price bucket label = %q", price.Options[1].Label)
	}
	meta := root.ByID("meta")
	if meta == nil {
		t.Fatal("meta missing")
	}
	if k, _ := meta.Attr("data-k"); k != "2" {
		t.Errorf("data-k = %q", k)
	}
	if cm, _ := meta.Attr("data-countmode"); cm != "exact" {
		t.Errorf("data-countmode = %q", cm)
	}
}

func TestFormPage404OnOtherPath(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountNone), Options{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/nonsense"); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

func TestSearchValidResult(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 10, hiddendb.CountExact), Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/search?make=0&used=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	root := htmlx.Parse(body)
	status := root.ByID("status")
	if ov, _ := status.Attr("data-overflow"); ov != "false" {
		t.Fatalf("overflow = %q", ov)
	}
	count := root.ByID("count")
	if c, _ := count.Attr("data-count"); c != "2" {
		t.Fatalf("count = %q, want 2", c)
	}
	tbl := htmlx.TableByID(root, "results")
	if tbl == nil {
		t.Fatal("results table missing")
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	// Header: item + 3 attrs.
	if len(tbl.Header) != 4 || tbl.Header[1] != "make" {
		t.Fatalf("header = %v", tbl.Header)
	}
	// Rank order: tuple 1 (score 4) before tuple 4 (score 1).
	if tbl.Rows[0][0].Text != "#1" || tbl.Rows[1][0].Text != "#4" {
		t.Fatalf("row ids = %q,%q", tbl.Rows[0][0].Text, tbl.Rows[1][0].Text)
	}
	// Numeric cell carries the raw price.
	if tbl.Rows[0][3].Text != "150" {
		t.Fatalf("price cell = %q", tbl.Rows[0][3].Text)
	}
}

func TestSearchOverflow(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountNone), Options{}))
	defer srv.Close()
	_, body := get(t, srv, "/search")
	root := htmlx.Parse(body)
	if ov, _ := root.ByID("status").Attr("data-overflow"); ov != "true" {
		t.Fatalf("overflow = %q", ov)
	}
	if root.ByID("count") != nil {
		t.Error("count rendered despite CountNone")
	}
	tbl := htmlx.TableByID(root, "results")
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want k=2", len(tbl.Rows))
	}
}

func TestSearchUnderflow(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountExact), Options{}))
	defer srv.Close()
	_, body := get(t, srv, "/search?make=1&used=0")
	root := htmlx.Parse(body)
	if ov, _ := root.ByID("status").Attr("data-overflow"); ov != "false" {
		t.Fatalf("overflow = %q", ov)
	}
	if root.ByID("noresults") == nil {
		t.Error("noresults marker missing")
	}
	if htmlx.TableByID(root, "results") != nil {
		t.Error("results table rendered for empty result")
	}
	if c, _ := root.ByID("count").Attr("data-count"); c != "0" {
		t.Errorf("count = %q, want 0", c)
	}
}

func TestSearchIgnoresUnknownAndEmptyParams(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 10, hiddendb.CountExact), Options{}))
	defer srv.Close()
	_, body := get(t, srv, "/search?make=&utm_source=ad&used=1")
	root := htmlx.Parse(body)
	if c, _ := root.ByID("count").Attr("data-count"); c != "3" {
		t.Fatalf("count = %q, want 3 (used=1 only)", c)
	}
}

func TestSearchBadParams(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountNone), Options{}))
	defer srv.Close()
	for _, path := range []string{"/search?make=abc", "/search?make=9", "/search?make=-1"} {
		if code, _ := get(t, srv, path); code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, code)
		}
	}
}

func TestItemPage(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountNone), Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/item/1")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	root := htmlx.Parse(body)
	tbl := htmlx.TableByID(root, "item")
	if tbl == nil {
		t.Fatal("item table missing")
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("fields = %d", len(tbl.Rows))
	}
	if code, _ := get(t, srv, "/item/99"); code != http.StatusNotFound {
		t.Errorf("missing item status = %d", code)
	}
	if code, _ := get(t, srv, "/item/x"); code != http.StatusNotFound {
		t.Errorf("bad id status = %d", code)
	}
}

func TestAPISchema(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 7, hiddendb.CountApprox), Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/api/schema")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var got apiSchema
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != "testdb" || got.K != 7 || got.CountMode != "approx" {
		t.Fatalf("schema meta = %+v", got)
	}
	if len(got.Attrs) != 3 || got.Attrs[2].Kind != "numeric" || len(got.Attrs[2].Buckets) != 2 {
		t.Fatalf("attrs = %+v", got.Attrs)
	}
}

func TestAPISearch(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 10, hiddendb.CountExact), Options{}))
	defer srv.Close()
	code, body := get(t, srv, "/api/search?make=0")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var got apiResult
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Overflow || got.Count == nil || *got.Count != 3 || len(got.Rows) != 3 {
		t.Fatalf("result = %+v", got)
	}
	if got.Rows[0].Nums["price"] != 50 {
		t.Fatalf("nums = %+v", got.Rows[0].Nums)
	}
	if code, _ := get(t, srv, "/api/search?make=zz"); code != http.StatusBadRequest {
		t.Error("bad param not rejected")
	}
}

func TestAPISearchCountAbsent(t *testing.T) {
	srv := httptest.NewServer(NewServer(testDB(t, 10, hiddendb.CountNone), Options{}))
	defer srv.Close()
	_, body := get(t, srv, "/api/search?make=0")
	var got apiResult
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Count != nil {
		t.Fatalf("count should be absent, got %v", *got.Count)
	}
}

func TestRateLimiting(t *testing.T) {
	now := time.Unix(1000, 0)
	opts := Options{RatePerSec: 1, Burst: 2, Now: func() time.Time { return now }}
	srv := httptest.NewServer(NewServer(testDB(t, 2, hiddendb.CountNone), opts))
	defer srv.Close()

	// Burst of 2 allowed, third within the same instant is limited.
	for i := 0; i < 2; i++ {
		if code, _ := get(t, srv, "/search"); code != http.StatusOK {
			t.Fatalf("burst query %d status = %d", i, code)
		}
	}
	resp, err := srv.Client().Get(srv.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-Retry-After-Ms") == "" {
		t.Fatal("retry headers missing")
	}
	ms, err := strconv.Atoi(resp.Header.Get("X-Retry-After-Ms"))
	if err != nil || ms <= 0 || ms > 2000 {
		t.Fatalf("X-Retry-After-Ms = %q", resp.Header.Get("X-Retry-After-Ms"))
	}

	// After a second of simulated time a token is available again.
	now = now.Add(1100 * time.Millisecond)
	if code, _ := get(t, srv, "/search"); code != http.StatusOK {
		t.Fatalf("post-refill status = %d", code)
	}
	// The form page itself is never rate limited.
	if code, _ := get(t, srv, "/"); code != http.StatusOK {
		t.Fatal("form page rate limited")
	}
}

func TestBudgetExhaustionSurfacesAs503(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"))
	db, err := hiddendb.New(s, []hiddendb.Tuple{{Vals: []int{0}}}, nil,
		hiddendb.Config{K: 5, QueryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(db, Options{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/search"); code != http.StatusOK {
		t.Fatalf("first query status = %d", code)
	}
	if code, _ := get(t, srv, "/search"); code != http.StatusServiceUnavailable {
		t.Fatalf("exhausted status = %d, want 503", code)
	}
}

// Integration: the full Vehicles inventory round-trips through the HTML
// layer — every row of a valid result parses back to an in-domain tuple.
func TestVehiclesEndToEndHTML(t *testing.T) {
	ds := datagen.Vehicles(500, 42)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 50, CountMode: hiddendb.CountExact})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(db, Options{}))
	defer srv.Close()

	q := url.Values{}
	q.Set("make", "0") // toyota
	q.Set("condition", "1")
	code, body := get(t, srv, "/search?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	root := htmlx.Parse(body)
	tbl := htmlx.TableByID(root, "results")
	if tbl == nil {
		t.Skip("query returned no rows for this seed")
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[0].Text, "#") {
			t.Fatalf("row id cell = %q", row[0].Text)
		}
		if row[1].Text != "toyota" {
			t.Fatalf("make cell = %q", row[1].Text)
		}
		price, err := strconv.ParseFloat(row[4].Text, 64)
		if err != nil {
			t.Fatalf("price cell %q: %v", row[4].Text, err)
		}
		if ds.Schema.Attrs[datagen.VehAttrPrice].BucketOf(price) < 0 {
			t.Fatalf("price %g outside all buckets", price)
		}
	}
}

func TestConcurrentSearches(t *testing.T) {
	db := testDB(t, 3, hiddendb.CountExact)
	srv := httptest.NewServer(NewServer(db, Options{}))
	defer srv.Close()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				resp, err := srv.Client().Get(fmt.Sprintf("%s/search?make=%d", srv.URL, (w+i)%3))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
