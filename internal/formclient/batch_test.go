package formclient

import (
	"context"
	"strings"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

func TestAPIBatchRoundTrip(t *testing.T) {
	db, srv := vehiclesServer(t, 300, 50, hiddendb.CountExact, webform.Options{})
	conn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()

	qs := []hiddendb.Query{
		hiddendb.EmptyQuery(),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 2}),
		hiddendb.MustQuery(
			hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 2},
			hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1}),
	}
	req0 := conn.Stats().HTTPRequests
	results, err := conn.ExecuteBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	// One schema fetch (first use) plus exactly one batch POST.
	if got := conn.Stats().HTTPRequests - req0; got != 2 {
		t.Fatalf("HTTP requests for a 3-query batch = %d, want 2 (schema + batch)", got)
	}
	if len(results) != len(qs) {
		t.Fatalf("results = %d, want %d", len(results), len(qs))
	}
	for i, q := range qs {
		want, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if len(got.Tuples) != len(want.Tuples) || got.Overflow != want.Overflow || got.Count != want.Count {
			t.Fatalf("query %d: %d tuples overflow=%v count=%d, want %d/%v/%d",
				i, len(got.Tuples), got.Overflow, got.Count, len(want.Tuples), want.Overflow, want.Count)
		}
		for j := range got.Tuples {
			if got.Tuples[j].ID != want.Tuples[j].ID {
				t.Fatalf("query %d row %d: ID %d, want %d", i, j, got.Tuples[j].ID, want.Tuples[j].ID)
			}
		}
	}
}

func TestAPIBatchSingleRateCharge(t *testing.T) {
	// Rate 1/s with burst 2: two wire requests pass (schema is unmetered,
	// search endpoints are), so a 5-query batch succeeds where 5 separate
	// queries would be throttled.
	_, srv := vehiclesServer(t, 200, 50, hiddendb.CountNone, webform.Options{RatePerSec: 1, Burst: 2})
	conn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client(), MaxRetries: 1, Sleep: noSleep})
	ctx := context.Background()
	if _, err := conn.Schema(ctx); err != nil {
		t.Fatal(err)
	}
	qs := make([]hiddendb.Query, 5)
	for i := range qs {
		qs[i] = hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i})
	}
	if _, err := conn.ExecuteBatch(ctx, qs); err != nil {
		t.Fatalf("batch within one charge failed: %v", err)
	}
	if retries := conn.Stats().RateLimitRetries; retries != 0 {
		t.Fatalf("batch was rate limited %d times despite a single charge", retries)
	}
}

func TestAPIBatchOversizedRejected(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 50, hiddendb.CountNone, webform.Options{MaxBatch: 2})
	conn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client(), MaxRetries: 1, Sleep: noSleep})
	ctx := context.Background()
	qs := make([]hiddendb.Query, 3)
	for i := range qs {
		qs[i] = hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: i})
	}
	_, err := conn.ExecuteBatch(ctx, qs)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized batch error = %v, want the server's limit message", err)
	}
}

func TestAPIBatchValidatesQueries(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 50, hiddendb.CountNone, webform.Options{})
	conn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client(), MaxRetries: 1, Sleep: noSleep})
	ctx := context.Background()
	bad := []hiddendb.Query{hiddendb.MustQuery(hiddendb.Predicate{Attr: 0, Value: 99999})}
	if _, err := conn.ExecuteBatch(ctx, bad); err == nil {
		t.Fatal("out-of-domain batch query passed client validation")
	}
}

// TestBatchPolitenessShared makes sure batch POSTs run through the same
// politeness/retry machinery as every other request.
func TestBatchPolitenessShared(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 50, hiddendb.CountNone, webform.Options{})
	var sleeps int
	conn := NewAPI(srv.URL, HTTPOptions{
		Client:     srv.Client(),
		Politeness: 5 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if d == 5*time.Millisecond {
				sleeps++
			}
			return ctx.Err()
		},
	})
	ctx := context.Background()
	if _, err := conn.Schema(ctx); err != nil { // first request: no delay
		t.Fatal(err)
	}
	qs := []hiddendb.Query{
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0}),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1}),
	}
	if _, err := conn.ExecuteBatch(ctx, qs); err != nil {
		t.Fatal(err)
	}
	if sleeps != 1 {
		t.Fatalf("batch POST slept %d politeness delays, want 1", sleeps)
	}
}
