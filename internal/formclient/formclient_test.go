package formclient

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/htmlx"
	"hdsampler/internal/webform"
)

func vehiclesServer(t *testing.T, n, k int, mode hiddendb.CountMode, opts webform.Options) (*hiddendb.DB, *httptest.Server) {
	t.Helper()
	ds := datagen.Vehicles(n, 21)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: k, CountMode: mode})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webform.NewServer(db, opts))
	t.Cleanup(srv.Close)
	return db, srv
}

func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestLocalConn(t *testing.T) {
	ds := datagen.IIDBoolean(4, 50, 0.5, 1)
	db, err := hiddendb.New(ds.Schema, ds.Tuples, nil, hiddendb.Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	conn := NewLocal(db)
	ctx := context.Background()
	schema, err := conn.Schema(ctx)
	if err != nil || schema.NumAttrs() != 4 {
		t.Fatalf("Schema: %v %v", schema, err)
	}
	res, err := conn.Execute(ctx, hiddendb.EmptyQuery())
	if err != nil || !res.Overflow {
		t.Fatalf("Execute: %+v %v", res, err)
	}
	if got := conn.Stats().Queries; got != 1 {
		t.Fatalf("Queries = %d", got)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := conn.Execute(cancelled, hiddendb.EmptyQuery()); err == nil {
		t.Fatal("cancelled context not honored")
	}
	if _, err := conn.Schema(cancelled); err == nil {
		t.Fatal("cancelled context not honored by Schema")
	}
}

func TestHTTPSchemaDiscovery(t *testing.T) {
	db, srv := vehiclesServer(t, 300, 50, hiddendb.CountExact, webform.Options{})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	schema, err := conn.Schema(context.Background())
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	want := db.Schema()
	if schema.NumAttrs() != want.NumAttrs() {
		t.Fatalf("discovered %d attrs, want %d", schema.NumAttrs(), want.NumAttrs())
	}
	for i := range want.Attrs {
		wa, ga := &want.Attrs[i], &schema.Attrs[i]
		if wa.Name != ga.Name {
			t.Errorf("attr %d name %q, want %q", i, ga.Name, wa.Name)
		}
		if wa.Kind != ga.Kind {
			t.Errorf("attr %q kind %v, want %v", wa.Name, ga.Kind, wa.Kind)
		}
		if len(wa.Values) != len(ga.Values) {
			t.Errorf("attr %q domain %d, want %d", wa.Name, len(ga.Values), len(wa.Values))
			continue
		}
		for j := range wa.Values {
			if wa.Values[j] != ga.Values[j] {
				t.Errorf("attr %q value %d = %q, want %q", wa.Name, j, ga.Values[j], wa.Values[j])
			}
		}
		for j := range wa.Buckets {
			if j < len(ga.Buckets) && wa.Buckets[j] != ga.Buckets[j] {
				t.Errorf("attr %q bucket %d = %v, want %v", wa.Name, j, ga.Buckets[j], wa.Buckets[j])
			}
		}
	}
	// Discovery is cached: a second call makes no new HTTP requests.
	before := conn.Stats().HTTPRequests
	if _, err := conn.Schema(context.Background()); err != nil {
		t.Fatal(err)
	}
	if conn.Stats().HTTPRequests != before {
		t.Error("schema discovery not cached")
	}
}

func TestHTTPExecuteMatchesLocal(t *testing.T) {
	db, srv := vehiclesServer(t, 400, 30, hiddendb.CountExact, webform.Options{})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()

	queries := []hiddendb.Query{
		hiddendb.EmptyQuery(),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0}),
		hiddendb.MustQuery(
			hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0},
			hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1},
			hiddendb.Predicate{Attr: datagen.VehAttrColor, Value: 2}),
		// Mismatched make/model: empty by construction.
		hiddendb.MustQuery(
			hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 0},
			hiddendb.Predicate{Attr: datagen.VehAttrModel, Value: 47}),
	}
	for _, q := range queries {
		want, err := db.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := conn.Execute(ctx, q)
		if err != nil {
			t.Fatalf("Execute(%v): %v", q, err)
		}
		if got.Overflow != want.Overflow || got.Count != want.Count || len(got.Tuples) != len(want.Tuples) {
			t.Fatalf("query %v: got (ov=%v,count=%d,n=%d), want (ov=%v,count=%d,n=%d)",
				q, got.Overflow, got.Count, len(got.Tuples), want.Overflow, want.Count, len(want.Tuples))
		}
		for i := range want.Tuples {
			wt, gt := &want.Tuples[i], &got.Tuples[i]
			if wt.ID != gt.ID {
				t.Fatalf("query %v row %d: id %d, want %d", q, i, gt.ID, wt.ID)
			}
			for a := range wt.Vals {
				if wt.Vals[a] != gt.Vals[a] {
					t.Fatalf("query %v row %d attr %d: %d, want %d", q, i, a, gt.Vals[a], wt.Vals[a])
				}
			}
			wp, _ := wt.Num(datagen.VehAttrPrice)
			gp, _ := gt.Num(datagen.VehAttrPrice)
			if wp != gp {
				t.Fatalf("query %v row %d price: %g, want %g", q, i, gp, wp)
			}
		}
	}
	if conn.Stats().Queries != int64(len(queries)) {
		t.Errorf("Queries = %d, want %d", conn.Stats().Queries, len(queries))
	}
}

func TestHTTPCountAbsent(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 10, hiddendb.CountNone, webform.Options{})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	res, err := conn.Execute(context.Background(), hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != hiddendb.CountAbsent {
		t.Fatalf("Count = %d, want CountAbsent", res.Count)
	}
}

func TestHTTPRateLimitRetry(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	opts := webform.Options{RatePerSec: 1000, Burst: 1, Now: func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(500 * time.Microsecond) // half a token per request
		return now
	}}
	_, srv := vehiclesServer(t, 50, 10, hiddendb.CountNone, opts)
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep, MaxRetries: 10})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	if conn.Stats().RateLimitRetries == 0 {
		t.Error("expected some rate-limit retries")
	}
	if conn.Stats().HTTPRequests <= conn.Stats().Queries {
		t.Error("retries should inflate HTTPRequests beyond Queries")
	}
}

func TestHTTPRateLimitExhaustion(t *testing.T) {
	fixed := time.Unix(0, 0)
	opts := webform.Options{RatePerSec: 0.001, Burst: 1, Now: func() time.Time { return fixed }}
	_, srv := vehiclesServer(t, 50, 10, hiddendb.CountNone, opts)
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep, MaxRetries: 3})
	ctx := context.Background()
	if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		t.Fatalf("first query: %v", err)
	}
	_, err := conn.Execute(ctx, hiddendb.EmptyQuery())
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
}

func TestHTTPBadPages(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`<html><body>no form here</body></html>`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	if _, err := conn.Schema(context.Background()); !errors.Is(err, ErrPageFormat) {
		t.Fatalf("want ErrPageFormat, got %v", err)
	}
}

func TestHTTPMalformedResultPage(t *testing.T) {
	schema := datagen.VehiclesSchema()
	for name, page := range map[string]string{
		"nostatus":    `<html><body><p>hi</p></body></html>`,
		"badoverflow": `<div id="status" data-overflow="maybe">x</div>`,
		"badcount":    `<div id="status" data-overflow="false"></div><span id="count" data-count="lots"></span>`,
		"shortrow": `<div id="status" data-overflow="false"></div><table id="results">
			<tr><td>#1</td><td>toyota</td></tr></table>`,
		"badlabel": `<div id="status" data-overflow="false"></div><table id="results">
			<tr><td>#1</td><td>yugo</td><td>camry</td><td>2005</td><td>9000</td><td>50000</td><td>red</td><td>used</td><td>automatic</td><td>gas</td><td>4</td></tr></table>`,
		"outofbucket": `<div id="status" data-overflow="false"></div><table id="results">
			<tr><td>#1</td><td>toyota</td><td>camry</td><td>2005</td><td>999999999</td><td>50000</td><td>red</td><td>used</td><td>automatic</td><td>gas</td><td>4</td></tr></table>`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, _, err := parseResultPage(schema, page); !errors.Is(err, ErrPageFormat) {
				t.Fatalf("want ErrPageFormat, got %v", err)
			}
		})
	}
}

func TestParseResultPageBucketLabelFallback(t *testing.T) {
	// A site that renders the bucket label instead of the raw value still
	// parses; the raw payload is simply absent.
	schema := hiddendb.MustSchema("s", hiddendb.NumAttr("price", 0, 100, 200))
	page := `<div id="status" data-overflow="false"></div><table id="results">
		<tr><td>#0</td><td>100-200</td></tr></table>`
	res, _, err := parseResultPage(schema, page)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples[0].Vals[0] != 1 {
		t.Fatalf("bucket = %d, want 1", res.Tuples[0].Vals[0])
	}
	if _, ok := res.Tuples[0].Num(0); ok {
		t.Fatal("raw payload should be absent")
	}
}

func TestHTTPServerErrorPropagates(t *testing.T) {
	s := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"))
	db, err := hiddendb.New(s, []hiddendb.Tuple{{Vals: []int{0}}}, nil,
		hiddendb.Config{K: 5, QueryBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(webform.NewServer(db, webform.Options{}))
	defer srv.Close()
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()
	if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		t.Fatalf("first: %v", err)
	}
	// Second query exceeds the backend budget -> 503 -> error (no retry).
	if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want 503 error, got %v", err)
	}
}

func TestInferAttr(t *testing.T) {
	if a := inferAttr("x", []string{"false", "true"}); a.Kind != hiddendb.KindBool {
		t.Error("bool not inferred")
	}
	a := inferAttr("p", []string{"0-10", "10-20"})
	if a.Kind != hiddendb.KindNumeric || len(a.Buckets) != 2 || a.Buckets[1].Hi != 20 {
		t.Errorf("numeric not inferred: %+v", a)
	}
	for _, labels := range [][]string{
		{"red", "blue"},
		{"3-series", "5-series"},   // dashes but not numeric ranges
		{"0-10", "20-30"},          // not contiguous
		{"10-0", "0-10"},           // inverted
		{"0-10", "10-20", "cheap"}, // mixed
		{"-5", "5-"},               // malformed
	} {
		if a := inferAttr("x", labels); a.Kind != hiddendb.KindCategorical {
			t.Errorf("labels %v inferred as %v, want categorical", labels, a.Kind)
		}
	}
}

func TestAPIConn(t *testing.T) {
	db, srv := vehiclesServer(t, 300, 25, hiddendb.CountApprox, webform.Options{})
	conn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()
	schema, err := conn.Schema(ctx)
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	if !schema.Equal(db.Schema()) {
		t.Fatal("API schema differs from server schema")
	}
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1})
	want, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := conn.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Overflow != want.Overflow || got.Count != want.Count || len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("API result mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Tuples {
		if want.Tuples[i].ID != got.Tuples[i].ID {
			t.Fatal("tuple order differs")
		}
		wp, wok := want.Tuples[i].Num(datagen.VehAttrPrice)
		gp, gok := got.Tuples[i].Num(datagen.VehAttrPrice)
		if wok != gok || wp != gp {
			t.Fatal("numeric payload differs")
		}
		if v, ok := got.Tuples[i].Num(datagen.VehAttrMake); ok {
			t.Fatalf("non-numeric attr has payload %g", v)
		}
	}
	if conn.Stats().Queries != 1 {
		t.Errorf("Queries = %d", conn.Stats().Queries)
	}
	// Approximate counts are still deterministic through the API.
	again, err := conn.Execute(ctx, q)
	if err != nil || again.Count != got.Count {
		t.Error("approx count changed between identical queries")
	}
}

func TestHTTPAndAPIAgree(t *testing.T) {
	_, srv := vehiclesServer(t, 200, 40, hiddendb.CountExact, webform.Options{})
	htmlConn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	apiConn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()
	hs, err := htmlConn.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	as, err := apiConn.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// HTML discovery derives the name from the page title; compare attrs.
	if hs.NumAttrs() != as.NumAttrs() {
		t.Fatalf("attr counts differ: %d vs %d", hs.NumAttrs(), as.NumAttrs())
	}
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 0})
	hr, err := htmlConn.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := apiConn.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Overflow != ar.Overflow || hr.Count != ar.Count || len(hr.Tuples) != len(ar.Tuples) {
		t.Fatalf("HTML and API disagree: (%v,%d,%d) vs (%v,%d,%d)",
			hr.Overflow, hr.Count, len(hr.Tuples), ar.Overflow, ar.Count, len(ar.Tuples))
	}
	for i := range hr.Tuples {
		if hr.Tuples[i].ID != ar.Tuples[i].ID {
			t.Fatal("row order differs between HTML and API")
		}
	}
}

func TestHTTPContextCancellation(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 10, hiddendb.CountNone, webform.Options{})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err == nil {
		t.Fatal("cancelled context should fail")
	}
}

func TestParseRowMissingID(t *testing.T) {
	schema := hiddendb.MustSchema("s", hiddendb.BoolAttr("a"))
	tu, err := parseRow(schema, []htmlx.Cell{{Text: "n/a"}, {Text: "true"}})
	if err != nil {
		t.Fatal(err)
	}
	if tu.ID != -1 || tu.Vals[0] != 1 {
		t.Fatalf("tuple = %+v", tu)
	}
}

func TestNumericInfersNaNForCategorical(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 20, hiddendb.CountNone, webform.Options{})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	res, err := conn.Execute(context.Background(),
		hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 3}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Tuples {
		if _, ok := res.Tuples[i].Num(datagen.VehAttrMake); ok {
			t.Fatal("categorical attribute has numeric payload")
		}
		if math.IsNaN(res.Tuples[i].Nums[datagen.VehAttrPrice]) {
			t.Fatal("numeric attribute missing payload")
		}
	}
}
