package formclient

import (
	"context"
	"testing"

	"hdsampler/internal/datagen"
	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

func TestHTTPFollowsPagination(t *testing.T) {
	db, srv := vehiclesServer(t, 600, 120, hiddendb.CountExact,
		webform.Options{PageSize: 50})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), FetchAllOverflowPages: true})
	ctx := context.Background()

	// Broad query: 120 visible rows over 3 pages; with
	// FetchAllOverflowPages the connector assembles them all in rank
	// order as one logical query.
	want, err := db.Execute(hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	got, err := conn.Execute(ctx, hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("assembled %d rows, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		if got.Tuples[i].ID != want.Tuples[i].ID {
			t.Fatalf("row %d: id %d, want %d", i, got.Tuples[i].ID, want.Tuples[i].ID)
		}
	}
	if got.Overflow != want.Overflow || got.Count != want.Count {
		t.Fatalf("meta mismatch: %+v vs %+v", got, want)
	}
	st := conn.Stats()
	if st.Queries != 1 {
		t.Errorf("logical queries = %d, want 1", st.Queries)
	}
	// Form page + 3 result pages.
	if st.HTTPRequests != 4 {
		t.Errorf("HTTP requests = %d, want 4 (form + 3 pages)", st.HTTPRequests)
	}
}

func TestHTTPSkipsOverflowPagesByDefault(t *testing.T) {
	_, srv := vehiclesServer(t, 600, 120, hiddendb.CountExact,
		webform.Options{PageSize: 50})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()
	got, err := conn.Execute(ctx, hiddendb.EmptyQuery())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Overflow {
		t.Fatal("want overflow")
	}
	// Only the first page's rows arrive; the overflow flag is what the
	// drill-down actually consumes.
	if len(got.Tuples) != 50 {
		t.Fatalf("rows = %d, want first page only (50)", len(got.Tuples))
	}
	if st := conn.Stats(); st.HTTPRequests != 2 {
		t.Fatalf("HTTP requests = %d, want 2 (form + page 1)", st.HTTPRequests)
	}
}

func TestHTTPPaginationMatchesDirectForNarrowQueries(t *testing.T) {
	db, srv := vehiclesServer(t, 600, 120, hiddendb.CountExact,
		webform.Options{PageSize: 7})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()
	q := hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrMake, Value: 1})
	want, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := conn.Execute(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != len(want.Tuples) {
		t.Fatalf("rows = %d, want %d", len(got.Tuples), len(want.Tuples))
	}
	for i := range want.Tuples {
		for a := range want.Tuples[i].Vals {
			if got.Tuples[i].Vals[a] != want.Tuples[i].Vals[a] {
				t.Fatal("cell mismatch across pagination")
			}
		}
	}
}

func TestSamplingThroughPaginatedSite(t *testing.T) {
	// End to end: the sampler stack works unchanged against a paginated
	// site; only the HTTP request count grows.
	_, srv := vehiclesServer(t, 400, 60, hiddendb.CountNone,
		webform.Options{PageSize: 25})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
	ctx := context.Background()
	schema, err := conn.Schema(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumAttrs() != 10 {
		t.Fatalf("attrs = %d", schema.NumAttrs())
	}
	res, err := conn.Execute(ctx, hiddendb.MustQuery(hiddendb.Predicate{Attr: datagen.VehAttrCondition, Value: 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Overflow answers stop at the first page by default (25 rows); the
	// flag itself is intact.
	if res.Overflow && len(res.Tuples) != 25 {
		t.Fatalf("overflow rows = %d, want one page (25)", len(res.Tuples))
	}
	if conn.Stats().HTTPRequests <= conn.Stats().Queries {
		t.Error("pagination should cost extra HTTP requests")
	}
}
