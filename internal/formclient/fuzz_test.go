package formclient

import (
	"testing"

	"hdsampler/internal/datagen"
)

// FuzzParseResultPage hammers the result-page parser with arbitrary
// bytes: whatever a misbehaving or adversarial site serves, the parser
// must either return a page-format error or a well-formed Result — never
// panic, and never hand back tuples whose shape disagrees with the
// schema. The nightly fuzz smoke run (see .github/workflows/nightly.yml)
// extends these seeds with 30s of coverage-guided exploration.
func FuzzParseResultPage(f *testing.F) {
	schema := datagen.Vehicles(50, 21).Schema
	m := schema.NumAttrs()

	f.Add("")
	f.Add("<html><body></body></html>")
	f.Add(`<div id="status" data-overflow="false"></div><div id="noresults"></div>`)
	f.Add(`<div id="status" data-overflow="true"></div>`)
	f.Add(`<div id="status" data-overflow="maybe"></div>`)
	f.Add(`<div id="status" data-overflow="false"></div><div id="count" data-count="37"></div><div id="noresults"></div>`)
	f.Add(`<div id="status" data-overflow="false"></div><div id="count" data-count="NaN"></div>`)
	f.Add(`<div id="status" data-overflow="false"></div><a id="next" href="/results?page=2"></a><table id="results"><tr><td>#3</td></tr></table>`)
	f.Add(`<div id="status" data-overflow="false"></div><table id="results"><tr><td>#0</td><td>junk</td><td></td><td></td><td></td><td></td></tr></table>`)

	f.Fuzz(func(t *testing.T, body string) {
		res, next, err := parseResultPage(schema, body)
		if err != nil {
			return
		}
		if res == nil {
			t.Fatalf("nil result without error (next=%q)", next)
		}
		for i, tu := range res.Tuples {
			if len(tu.Vals) != m || len(tu.Nums) != m {
				t.Fatalf("tuple %d shape %d/%d vals/nums, want %d for schema", i, len(tu.Vals), len(tu.Nums), m)
			}
		}
	})
}
