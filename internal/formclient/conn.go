// Package formclient provides the connector abstraction every sampler
// draws through: a Conn answers conjunctive queries against some hidden
// database. Local wraps an in-process hiddendb.DB (the demo's "locally
// simulated hidden database" backup plan); HTTP drives a live web form
// interface, discovering the attribute domains by parsing the form page
// and reading answers off HTML result pages, with rate-limit-aware
// retries — the Google Base path of the original system.
package formclient

import (
	"context"
	"sync/atomic"

	"hdsampler/internal/hiddendb"
)

// Stats counts a connector's traffic. Queries is the number of logical
// interface queries answered; HTTPRequests, RateLimitRetries and
// TransientRetries are only meaningful for HTTP (and fault-injecting)
// connectors.
type Stats struct {
	Queries          int64
	HTTPRequests     int64
	RateLimitRetries int64
	// TransientRetries counts attempts repeated after a 5xx blip or a
	// timed-out request — interface flakiness, as opposed to rate-limit
	// congestion.
	TransientRetries int64
}

// Conn is the restricted access channel to a hidden database. All samplers
// operate exclusively through this interface; they never see more than a
// conjunctive top-k query answer.
type Conn interface {
	// Schema returns the searchable attributes and their domains. For HTTP
	// connectors the first call performs discovery by parsing the live
	// form page; the result is cached.
	Schema(ctx context.Context) (*hiddendb.Schema, error)
	// Execute answers one conjunctive query.
	Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error)
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}

// Local is a Conn bound directly to an in-process database.
type Local struct {
	db      *hiddendb.DB
	queries atomic.Int64
	batches atomic.Int64
}

// NewLocal wraps db as a Conn.
func NewLocal(db *hiddendb.DB) *Local {
	return &Local{db: db}
}

// Schema implements Conn.
func (l *Local) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.db.Schema(), nil
}

// Execute implements Conn.
func (l *Local) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.queries.Add(1)
	return l.db.Execute(q)
}

// ExecuteBatch answers several queries in one call — the in-process
// analogue of the web form's batch endpoint, so the queryexec layer (and
// offline experiments) can exercise micro-batching without a server.
func (l *Local) ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	l.batches.Add(1)
	out := make([]*hiddendb.Result, len(qs))
	for i, q := range qs {
		l.queries.Add(1)
		res, err := l.db.Execute(q)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// BatchCalls returns the number of ExecuteBatch invocations.
func (l *Local) BatchCalls() int64 { return l.batches.Load() }

// Stats implements Conn.
func (l *Local) Stats() Stats {
	return Stats{Queries: l.queries.Load()}
}

var _ Conn = (*Local)(nil)
