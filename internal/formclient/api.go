package formclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hdsampler/internal/hiddendb"
)

// API is a Conn that uses a site's machine-readable endpoints
// (/api/schema, /api/search) instead of scraping HTML — the counterpart of
// the Google Base API the demo's front end could also target. It shares
// the HTTP transport, retry and rate-limit handling with the HTML
// connector.
type API struct {
	http *HTTP

	mu     sync.Mutex
	schema *hiddendb.Schema

	queries atomic.Int64
}

// NewAPI builds an API connector for the site rooted at baseURL.
func NewAPI(baseURL string, opts HTTPOptions) *API {
	return &API{http: NewHTTP(baseURL, opts)}
}

// wire forms of the API protocol; kept separate from webform's types on
// purpose: the client is an independent consumer of a documented wire
// format, not of the server's internals.
type wireSchema struct {
	Name  string `json:"name"`
	K     int    `json:"k"`
	Attrs []struct {
		Name    string       `json:"name"`
		Kind    string       `json:"kind"`
		Values  []string     `json:"values"`
		Buckets [][2]float64 `json:"buckets"`
	} `json:"attrs"`
}

type wireResult struct {
	Overflow bool `json:"overflow"`
	Count    *int `json:"count"`
	Rows     []struct {
		ID   int                `json:"id"`
		Vals []int              `json:"vals"`
		Nums map[string]float64 `json:"nums"`
	} `json:"rows"`
}

// Schema implements Conn.
func (a *API) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.schema != nil {
		return a.schema, nil
	}
	body, err := a.http.get(ctx, a.http.base+"/api/schema")
	if err != nil {
		return nil, err
	}
	var ws wireSchema
	if err := json.Unmarshal([]byte(body), &ws); err != nil {
		return nil, fmt.Errorf("%w: schema JSON: %v", ErrPageFormat, err)
	}
	attrs := make([]hiddendb.Attribute, 0, len(ws.Attrs))
	for _, wa := range ws.Attrs {
		attr := hiddendb.Attribute{Name: wa.Name, Values: wa.Values}
		switch wa.Kind {
		case "bool":
			attr.Kind = hiddendb.KindBool
		case "numeric":
			attr.Kind = hiddendb.KindNumeric
			for _, b := range wa.Buckets {
				attr.Buckets = append(attr.Buckets, hiddendb.Bucket{Lo: b[0], Hi: b[1]})
			}
		default:
			attr.Kind = hiddendb.KindCategorical
		}
		attrs = append(attrs, attr)
	}
	schema, err := hiddendb.NewSchema(ws.Name, attrs...)
	if err != nil {
		return nil, fmt.Errorf("formclient: API schema invalid: %v", err)
	}
	a.schema = schema
	return schema, nil
}

// Execute implements Conn.
func (a *API) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	schema, err := a.Schema(ctx)
	if err != nil {
		return nil, err
	}
	if err := q.ValidateAgainst(schema); err != nil {
		return nil, err
	}
	u := a.http.base + "/api/search"
	if enc := encodeQueryParams(schema, q); enc != "" {
		u += "?" + enc
	}
	body, err := a.http.get(ctx, u)
	if err != nil {
		return nil, err
	}
	a.queries.Add(1)
	var wr wireResult
	if err := json.Unmarshal([]byte(body), &wr); err != nil {
		return nil, fmt.Errorf("%w: result JSON: %v", ErrPageFormat, err)
	}
	return decodeWireResult(schema, &wr)
}

// decodeWireResult converts one wire result into a hiddendb.Result.
func decodeWireResult(schema *hiddendb.Schema, wr *wireResult) (*hiddendb.Result, error) {
	res := &hiddendb.Result{Overflow: wr.Overflow, Count: hiddendb.CountAbsent}
	if wr.Count != nil {
		res.Count = *wr.Count
	}
	m := schema.NumAttrs()
	for _, row := range wr.Rows {
		if len(row.Vals) != m {
			return nil, fmt.Errorf("%w: row arity %d, want %d", ErrPageFormat, len(row.Vals), m)
		}
		t := hiddendb.Tuple{ID: row.ID, Vals: row.Vals, Nums: make([]float64, m)}
		for i := 0; i < m; i++ {
			t.Nums[i] = math.NaN()
		}
		for name, v := range row.Nums {
			if idx := schema.AttrIndex(name); idx >= 0 {
				t.Nums[idx] = v
			}
		}
		res.Tuples = append(res.Tuples, t)
	}
	return res, nil
}

// wireBatch is the POST /api/search/batch request body: one predicate map
// (attribute name → value index) per query.
type wireBatch struct {
	Queries []map[string]int `json:"queries"`
}

// wireBatchResult is the batch endpoint's response body.
type wireBatchResult struct {
	Results []wireResult `json:"results"`
}

// ExecuteBatch answers several queries with one POST /api/search/batch
// wire request — the queryexec micro-batching capability. The server
// charges the whole batch a single rate-limit token, so b packed queries
// cost 1/b of the politeness budget each.
func (a *API) ExecuteBatch(ctx context.Context, qs []hiddendb.Query) ([]*hiddendb.Result, error) {
	schema, err := a.Schema(ctx)
	if err != nil {
		return nil, err
	}
	req := wireBatch{Queries: make([]map[string]int, len(qs))}
	size := len(`{"queries":[]}`) + 3*len(qs) // framing plus per-query braces/commas
	for i, q := range qs {
		if err := q.ValidateAgainst(schema); err != nil {
			return nil, err
		}
		m := make(map[string]int, q.Len())
		for p := range q.All() {
			m[schema.Attrs[p.Attr].Name] = p.Value
			size += len(schema.Attrs[p.Attr].Name) + 8 // "name":vv,
		}
		req.Queries[i] = m
	}
	// Encode into one buffer sized from the actual predicates, and ship
	// its bytes without an intermediate string copy: batch bodies are
	// built on every linger-window flush.
	var buf bytes.Buffer
	buf.Grow(size)
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return nil, err
	}
	body, err := a.http.post(ctx, a.http.base+"/api/search/batch", "application/json", buf.Bytes())
	if err != nil {
		return nil, err
	}
	a.queries.Add(int64(len(qs)))
	var wbr wireBatchResult
	if err := json.Unmarshal([]byte(body), &wbr); err != nil {
		return nil, fmt.Errorf("%w: batch result JSON: %v", ErrPageFormat, err)
	}
	if len(wbr.Results) != len(qs) {
		return nil, fmt.Errorf("%w: batch answered %d of %d queries", ErrPageFormat, len(wbr.Results), len(qs))
	}
	out := make([]*hiddendb.Result, len(qs))
	for i := range wbr.Results {
		res, err := decodeWireResult(schema, &wbr.Results[i])
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// Stats implements Conn.
func (a *API) Stats() Stats {
	s := a.http.Stats()
	s.Queries = a.queries.Load()
	return s
}

var _ Conn = (*API)(nil)
