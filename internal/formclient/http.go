package formclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/htmlx"
)

// ErrPageFormat reports that a page fetched from the target site did not
// contain the structure the scraper expects (missing form, status marker or
// results table).
var ErrPageFormat = errors.New("formclient: unrecognized page format")

// ErrRateLimited reports that the site kept answering 429 past the retry
// budget.
var ErrRateLimited = errors.New("formclient: rate limited beyond retry budget")

// ErrTransient reports a fault that is the site's (or the network's)
// problem, not the query's: a 5xx blip or a timed-out request. The
// connector retries these within its budget; past it the error surfaces
// wrapped in ErrTransient so upper layers (queryexec, the scenario
// harness) can distinguish "try again later" from "this query is wrong".
var ErrTransient = errors.New("formclient: transient interface fault")

// HTTPOptions tunes an HTTP connector.
type HTTPOptions struct {
	// Client is the http.Client to use; defaults to a client with a 30s
	// timeout.
	Client *http.Client
	// MaxRetries bounds the number of attempts per query when the site
	// answers 429 Too Many Requests; defaults to 5.
	MaxRetries int
	// MaxRetryWait caps the per-attempt backoff duration; defaults to 5s.
	MaxRetryWait time.Duration
	// Politeness inserts a delay before every request after the first —
	// basic crawler etiquette against production sites. Zero disables it.
	Politeness time.Duration
	// FetchAllOverflowPages follows pagination even on overflowing
	// results. Off by default: an overflow page's rows are never used by
	// the drill-down (it descends instead), so later pages are wasted
	// requests; valid results are always assembled completely.
	FetchAllOverflowPages bool
	// Sleep is the sleep function for backoff and politeness, overridable
	// by tests; defaults to a context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// HTTP is a Conn that drives a remote conjunctive web form interface. Its
// zero value is not usable; construct with NewHTTP.
type HTTP struct {
	base string
	opts HTTPOptions

	mu     sync.Mutex
	schema *hiddendb.Schema

	queries    atomic.Int64
	requests   atomic.Int64
	retries    atomic.Int64
	transients atomic.Int64
	requested  atomic.Bool // politeness: first request is immediate
}

// NewHTTP builds a connector for the site rooted at baseURL, e.g.
// "http://dealer.example.com". The connector performs schema discovery
// lazily on first use.
func NewHTTP(baseURL string, opts HTTPOptions) *HTTP {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 5
	}
	if opts.MaxRetryWait <= 0 {
		opts.MaxRetryWait = 5 * time.Second
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	return &HTTP{base: strings.TrimRight(baseURL, "/"), opts: opts}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// get fetches a URL with rate-limit retries and returns the body.
func (h *HTTP) get(ctx context.Context, u string) (string, error) {
	return h.do(ctx, http.MethodGet, u, "", nil)
}

// post submits a payload with the same retry and politeness machinery.
func (h *HTTP) post(ctx context.Context, u, contentType string, payload []byte) (string, error) {
	return h.do(ctx, http.MethodPost, u, contentType, payload)
}

// do performs one logical request with rate-limit and transient-fault
// retries and returns the body. payload is borrowed for the call (each
// retry re-reads it), never retained, so callers can hand over a reusable
// buffer's bytes.
//
// Two fault families are retried within the shared MaxRetries budget but
// counted separately, because upper layers react differently: 429s are
// congestion (the AIMD limiter backs off when RateLimitRetries advances),
// while 5xx blips and timed-out requests are plain flakiness
// (TransientRetries) that must not shrink the concurrency window.
func (h *HTTP) do(ctx context.Context, method, u, contentType string, payload []byte) (string, error) {
	var lastWait time.Duration
	var retrying *atomic.Int64 // counter to bump when the next attempt starts
	var budgetErr error        // error surfaced when the retry budget runs out
	for attempt := 0; attempt < h.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			retrying.Add(1)
			if err := h.opts.Sleep(ctx, lastWait); err != nil {
				return "", err
			}
		}
		if h.opts.Politeness > 0 && !h.requested.CompareAndSwap(false, true) {
			if err := h.opts.Sleep(ctx, h.opts.Politeness); err != nil {
				return "", err
			}
		}
		var reqBody io.Reader
		if method != http.MethodGet {
			reqBody = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, reqBody)
		if err != nil {
			return "", err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		h.requests.Add(1)
		resp, err := h.opts.Client.Do(req)
		if err != nil {
			// A timed-out request is a blip worth retrying; a cancelled
			// context (or any other transport failure) is not.
			if ctx.Err() == nil && isTimeout(err) {
				retrying, budgetErr = &h.transients, fmt.Errorf("%w: %s %s: %v", ErrTransient, method, u, err)
				lastWait = transientWait(attempt, h.opts.MaxRetryWait)
				continue
			}
			return "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return string(body), nil
		case http.StatusTooManyRequests:
			retrying, budgetErr = &h.retries, fmt.Errorf("%w: %s", ErrRateLimited, u)
			lastWait = retryWait(resp, h.opts.MaxRetryWait)
			continue
		case http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			retrying, budgetErr = &h.transients, fmt.Errorf("%w: %s %s: status %d: %s",
				ErrTransient, method, u, resp.StatusCode, strings.TrimSpace(string(body)))
			lastWait = transientWait(attempt, h.opts.MaxRetryWait)
			continue
		default:
			return "", fmt.Errorf("formclient: %s %s: status %d: %s",
				method, u, resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}
	return "", budgetErr
}

// isTimeout reports whether a transport error is a timeout (as opposed to
// a refused connection or a protocol failure).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// transientWait is the exponential backoff for 5xx/timeout retries, capped
// at max; servers in a blip give no Retry-After hint to honor.
func transientWait(attempt int, max time.Duration) time.Duration {
	return minDur(100*time.Millisecond<<attempt, max)
}

// retryWait derives the backoff from the response headers, preferring the
// millisecond-precision hint, capped at max.
func retryWait(resp *http.Response, max time.Duration) time.Duration {
	if ms := resp.Header.Get("X-Retry-After-Ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			return minDur(time.Duration(v)*time.Millisecond, max)
		}
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return minDur(time.Duration(v)*time.Second, max)
		}
	}
	return minDur(200*time.Millisecond, max)
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// Schema implements Conn: on first call it fetches the form page, locates
// the search form, and reconstructs the attribute domains from its select
// controls, inferring attribute kinds from the option labels (false/true
// pairs become boolean; contiguous "lo-hi" range labels become numeric
// with buckets; anything else is categorical).
func (h *HTTP) Schema(ctx context.Context) (*hiddendb.Schema, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.schema != nil {
		return h.schema, nil
	}
	body, err := h.get(ctx, h.base+"/")
	if err != nil {
		return nil, err
	}
	root := htmlx.Parse(body)
	form := htmlx.FormByName(root, "search")
	if form == nil {
		return nil, fmt.Errorf("%w: no search form on %s/", ErrPageFormat, h.base)
	}
	name := "hidden-database"
	if titles := root.ByTag("title"); len(titles) > 0 {
		if t := titles[0].TextContent(); t != "" {
			name = t
		}
	}
	var attrs []hiddendb.Attribute
	for _, sel := range form.Selects {
		if sel.Name == "" {
			continue
		}
		var labels []string
		for i, opt := range sel.Options {
			if opt.Value == "" {
				continue // the "any" wildcard option
			}
			idx, err := strconv.Atoi(opt.Value)
			if err != nil || idx != len(labels) {
				return nil, fmt.Errorf("%w: select %q option %d has non-sequential value %q",
					ErrPageFormat, sel.Name, i, opt.Value)
			}
			labels = append(labels, opt.Label)
		}
		if len(labels) < 2 {
			continue // not a searchable domain
		}
		attrs = append(attrs, inferAttr(sel.Name, labels))
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("%w: search form has no usable selects", ErrPageFormat)
	}
	schema, err := hiddendb.NewSchema(name, attrs...)
	if err != nil {
		return nil, fmt.Errorf("formclient: discovered schema invalid: %v", err)
	}
	h.schema = schema
	return schema, nil
}

// inferAttr classifies a discovered domain. Boolean and numeric-range
// shapes are recognized; everything else stays categorical.
func inferAttr(name string, labels []string) hiddendb.Attribute {
	if len(labels) == 2 && labels[0] == "false" && labels[1] == "true" {
		return hiddendb.BoolAttr(name)
	}
	if buckets, ok := parseRangeLabels(labels); ok {
		a := hiddendb.Attribute{Name: name, Kind: hiddendb.KindNumeric,
			Values: append([]string(nil), labels...), Buckets: buckets}
		return a
	}
	return hiddendb.CatAttr(name, labels...)
}

// parseRangeLabels recognizes a contiguous ascending list of "lo-hi"
// labels, returning the bucket ranges.
func parseRangeLabels(labels []string) ([]hiddendb.Bucket, bool) {
	buckets := make([]hiddendb.Bucket, 0, len(labels))
	for _, l := range labels {
		dash := strings.Index(l, "-")
		if dash <= 0 || dash == len(l)-1 {
			return nil, false
		}
		lo, err1 := strconv.ParseFloat(l[:dash], 64)
		hi, err2 := strconv.ParseFloat(l[dash+1:], 64)
		if err1 != nil || err2 != nil || hi <= lo {
			return nil, false
		}
		if len(buckets) > 0 && buckets[len(buckets)-1].Hi != lo {
			return nil, false
		}
		buckets = append(buckets, hiddendb.Bucket{Lo: lo, Hi: hi})
	}
	return buckets, true
}

// encodeQueryParams renders q as a URL query string ("make=1&cond=0") in
// canonical predicate order, attribute names escaped. It iterates the
// query's predicates in place and renders into one pre-sized builder —
// no url.Values map, no predicate-list copy.
func encodeQueryParams(schema *hiddendb.Schema, q hiddendb.Query) string {
	if q.Len() == 0 {
		return ""
	}
	var sb strings.Builder
	sb.Grow(q.Len() * 16)
	for i := 0; i < q.Len(); i++ {
		p := q.Pred(i)
		if i > 0 {
			sb.WriteByte('&')
		}
		sb.WriteString(url.QueryEscape(schema.Attrs[p.Attr].Name))
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(p.Value))
	}
	return sb.String()
}

// Execute implements Conn: it submits the query as form parameters and
// scrapes the result page.
func (h *HTTP) Execute(ctx context.Context, q hiddendb.Query) (*hiddendb.Result, error) {
	schema, err := h.Schema(ctx)
	if err != nil {
		return nil, err
	}
	if err := q.ValidateAgainst(schema); err != nil {
		return nil, err
	}
	u := h.base + "/search"
	if enc := encodeQueryParams(schema, q); enc != "" {
		u += "?" + enc
	}
	body, err := h.get(ctx, u)
	if err != nil {
		return nil, err
	}
	h.queries.Add(1)
	res, next, err := parseResultPage(schema, body)
	if err != nil {
		return nil, err
	}
	// Paginated sites split the visible top-k across pages; follow the
	// "next" links to assemble the full answer. Each page fetch is a real
	// request (rate limited like any other), but still one logical query.
	// Overflow answers stop at page one by default: the walk only needs
	// the overflow flag there, not the rows.
	if res.Overflow && !h.opts.FetchAllOverflowPages {
		next = ""
	}
	for pages := 0; next != "" && pages < maxResultPages; pages++ {
		body, err := h.get(ctx, h.base+next)
		if err != nil {
			return nil, err
		}
		more, n, err := parseResultPage(schema, body)
		if err != nil {
			return nil, err
		}
		//hdlint:ignore resultimmut res is page one's freshly parsed Result (built by parseResultPage), not shared storage
		res.Tuples = append(res.Tuples, more.Tuples...)
		next = n
	}
	return res, nil
}

// maxResultPages bounds pagination loops against misbehaving sites.
const maxResultPages = 1000

// parseResultPage reads a result page into a hiddendb.Result plus the
// next-page link when the site paginates (empty when this is the last or
// only page).
func parseResultPage(schema *hiddendb.Schema, body string) (*hiddendb.Result, string, error) {
	root := htmlx.Parse(body)
	status := root.ByID("status")
	if status == nil {
		return nil, "", fmt.Errorf("%w: missing status marker", ErrPageFormat)
	}
	res := &hiddendb.Result{Count: hiddendb.CountAbsent}
	switch ov, _ := status.Attr("data-overflow"); ov {
	case "true":
		res.Overflow = true
	case "false":
	default:
		return nil, "", fmt.Errorf("%w: bad overflow marker %q", ErrPageFormat, ov)
	}
	if c := root.ByID("count"); c != nil {
		if v, ok := c.Attr("data-count"); ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, "", fmt.Errorf("%w: bad count %q", ErrPageFormat, v)
			}
			res.Count = n
		}
	}
	next := ""
	if a := root.ByID("next"); a != nil {
		next = a.AttrOr("href", "")
	}
	tbl := htmlx.TableByID(root, "results")
	if tbl == nil {
		if root.ByID("noresults") == nil && res.Overflow {
			return nil, "", fmt.Errorf("%w: overflow page without results table", ErrPageFormat)
		}
		return res, next, nil
	}
	for rowIdx, row := range tbl.Rows {
		if len(row) != schema.NumAttrs()+1 {
			return nil, "", fmt.Errorf("%w: row %d has %d cells, want %d",
				ErrPageFormat, rowIdx, len(row), schema.NumAttrs()+1)
		}
		t, err := parseRow(schema, row)
		if err != nil {
			return nil, "", fmt.Errorf("row %d: %w", rowIdx, err)
		}
		res.Tuples = append(res.Tuples, t)
	}
	return res, next, nil
}

// parseRow converts a result-table row (item link cell + one cell per
// attribute) back into a tuple.
func parseRow(schema *hiddendb.Schema, row []htmlx.Cell) (hiddendb.Tuple, error) {
	t := hiddendb.Tuple{ID: -1}
	if id, err := strconv.Atoi(strings.TrimPrefix(row[0].Text, "#")); err == nil {
		t.ID = id
	}
	m := schema.NumAttrs()
	t.Vals = make([]int, m)
	t.Nums = make([]float64, m)
	for a := 0; a < m; a++ {
		t.Nums[a] = math.NaN()
		attr := &schema.Attrs[a]
		text := row[a+1].Text
		if attr.Kind == hiddendb.KindNumeric {
			if raw, err := strconv.ParseFloat(text, 64); err == nil {
				b := attr.BucketOf(raw)
				if b < 0 {
					return t, fmt.Errorf("%w: value %g outside buckets of %q", ErrPageFormat, raw, attr.Name)
				}
				t.Vals[a] = b
				t.Nums[a] = raw
				continue
			}
			// Fall through: site may render the bucket label itself.
		}
		idx := attr.ValueIndex(text)
		if idx < 0 {
			return t, fmt.Errorf("%w: unknown label %q for attribute %q", ErrPageFormat, text, attr.Name)
		}
		t.Vals[a] = idx
	}
	return t, nil
}

// Stats implements Conn.
func (h *HTTP) Stats() Stats {
	return Stats{
		Queries:          h.queries.Load(),
		HTTPRequests:     h.requests.Load(),
		RateLimitRetries: h.retries.Load(),
		TransientRetries: h.transients.Load(),
	}
}

var _ Conn = (*HTTP)(nil)
