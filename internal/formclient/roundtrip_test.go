package formclient

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"testing/quick"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

// randomSchema builds an arbitrary valid schema whose labels avoid shapes
// that would legitimately change kind under discovery (numeric-range
// lookalikes, false/true pairs).
func randomSchema(rng *rand.Rand) *hiddendb.Schema {
	m := 1 + rng.Intn(6)
	attrs := make([]hiddendb.Attribute, m)
	for i := range attrs {
		name := fmt.Sprintf("attr%d", i)
		switch rng.Intn(3) {
		case 0:
			attrs[i] = hiddendb.BoolAttr(name)
		case 1:
			d := 2 + rng.Intn(6)
			values := make([]string, d)
			for j := range values {
				values[j] = fmt.Sprintf("val%d_%c", j, 'a'+byte(rng.Intn(26)))
			}
			attrs[i] = hiddendb.CatAttr(name, values...)
		default:
			nCuts := 3 + rng.Intn(4)
			cuts := make([]float64, nCuts)
			cur := float64(rng.Intn(100))
			for j := range cuts {
				cuts[j] = cur
				cur += float64(1 + rng.Intn(5000))
			}
			attrs[i] = hiddendb.NumAttr(name, cuts...)
		}
	}
	return hiddendb.MustSchema("roundtrip", attrs...)
}

// randomTuples fills a schema with arbitrary valid rows, with numeric
// payloads placed inside their buckets.
func randomTuples(rng *rand.Rand, s *hiddendb.Schema, n int) []hiddendb.Tuple {
	tuples := make([]hiddendb.Tuple, n)
	for i := range tuples {
		vals := make([]int, s.NumAttrs())
		var nums []float64
		for a := range vals {
			vals[a] = rng.Intn(s.DomainSize(a))
		}
		for a := range s.Attrs {
			if s.Attrs[a].Kind != hiddendb.KindNumeric {
				continue
			}
			if nums == nil {
				nums = make([]float64, s.NumAttrs())
				for j := range nums {
					nums[j] = math.NaN()
				}
			}
			b := s.Attrs[a].Buckets[vals[a]]
			// An integral value strictly inside the bucket survives the
			// site's decimal rendering exactly.
			nums[a] = float64(int64(b.Lo))
			if nums[a] < b.Lo || nums[a] >= b.Hi {
				nums[a] = b.Lo
			}
		}
		tuples[i] = hiddendb.Tuple{Vals: vals, Nums: nums}
	}
	return tuples
}

// Property: for arbitrary schemas, HTML discovery reconstructs the exact
// attribute structure and scraped query answers match direct execution.
func TestHTTPDiscoveryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schema := randomSchema(rng)
		tuples := randomTuples(rng, schema, 10+rng.Intn(80))
		k := 1 + rng.Intn(20)
		db, err := hiddendb.New(schema, tuples, nil, hiddendb.Config{K: k, CountMode: hiddendb.CountExact})
		if err != nil {
			return false
		}
		srv := httptest.NewServer(webform.NewServer(db, webform.Options{}))
		defer srv.Close()
		conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client()})
		ctx := context.Background()
		got, err := conn.Schema(ctx)
		if err != nil {
			t.Logf("seed %d: discovery failed: %v", seed, err)
			return false
		}
		if !got.Equal(schema) {
			t.Logf("seed %d: discovered schema differs", seed)
			return false
		}
		// Spot-check scraped answers against direct execution.
		for trial := 0; trial < 5; trial++ {
			q := hiddendb.EmptyQuery()
			for a := 0; a < schema.NumAttrs(); a++ {
				if rng.Intn(2) == 0 {
					q = q.With(a, rng.Intn(schema.DomainSize(a)))
				}
			}
			want, err := db.Execute(q)
			if err != nil {
				return false
			}
			res, err := conn.Execute(ctx, q)
			if err != nil {
				t.Logf("seed %d: execute failed: %v", seed, err)
				return false
			}
			if res.Overflow != want.Overflow || res.Count != want.Count || len(res.Tuples) != len(want.Tuples) {
				t.Logf("seed %d: result mismatch on %v", seed, q)
				return false
			}
			for i := range want.Tuples {
				if res.Tuples[i].ID != want.Tuples[i].ID {
					return false
				}
				for a := range want.Tuples[i].Vals {
					if res.Tuples[i].Vals[a] != want.Tuples[i].Vals[a] {
						t.Logf("seed %d: value mismatch row %d attr %d", seed, i, a)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
