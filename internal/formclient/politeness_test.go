package formclient

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

func TestPolitenessDelay(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 20, hiddendb.CountNone, webform.Options{})
	var sleeps atomic.Int64
	conn := NewHTTP(srv.URL, HTTPOptions{
		Client:     srv.Client(),
		Politeness: 50 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if d == 50*time.Millisecond {
				sleeps.Add(1)
			}
			return ctx.Err()
		},
	})
	ctx := context.Background()
	if _, err := conn.Schema(ctx); err != nil { // request 1: no delay
		t.Fatal(err)
	}
	if sleeps.Load() != 0 {
		t.Fatalf("first request slept %d times", sleeps.Load())
	}
	for i := 0; i < 3; i++ {
		if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if got := sleeps.Load(); got != 3 {
		t.Fatalf("politeness sleeps = %d, want 3", got)
	}
}

func TestPolitenessDisabledByDefault(t *testing.T) {
	_, srv := vehiclesServer(t, 100, 20, hiddendb.CountNone, webform.Options{})
	var sleeps atomic.Int64
	conn := NewHTTP(srv.URL, HTTPOptions{
		Client: srv.Client(),
		Sleep: func(ctx context.Context, d time.Duration) error {
			sleeps.Add(1)
			return ctx.Err()
		},
	})
	ctx := context.Background()
	if _, err := conn.Execute(ctx, hiddendb.EmptyQuery()); err != nil {
		t.Fatal(err)
	}
	if sleeps.Load() != 0 {
		t.Fatalf("unexpected sleeps: %d", sleeps.Load())
	}
}
