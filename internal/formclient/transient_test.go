package formclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hdsampler/internal/hiddendb"
	"hdsampler/internal/webform"
)

// TestHTMLScrapeSurvives5xxBlips drives the real HTML-scraping path
// against a webform server that injects 503 bursts into every query
// endpoint: the connector must absorb the blips with bounded retries and
// still assemble correct results.
func TestHTMLScrapeSurvives5xxBlips(t *testing.T) {
	db, srv := vehiclesServer(t, 300, 50, hiddendb.CountNone,
		webform.Options{Fault: &webform.FaultConfig{Seed: 3, Prob5xx: 1, Burst5xx: 2}})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep})
	ctx := context.Background()

	q := hiddendb.EmptyQuery()
	res, err := conn.Execute(ctx, q)
	if err != nil {
		t.Fatalf("Execute through 503 burst: %v", err)
	}
	want, _ := db.Execute(q)
	if len(res.Tuples) != len(want.Tuples) || res.Overflow != want.Overflow {
		t.Fatalf("got %d tuples (overflow %v), want %d (%v)",
			len(res.Tuples), res.Overflow, len(want.Tuples), want.Overflow)
	}
	st := conn.Stats()
	if st.TransientRetries != 2 {
		t.Fatalf("TransientRetries = %d, want 2", st.TransientRetries)
	}
	if st.RateLimitRetries != 0 {
		t.Fatalf("RateLimitRetries = %d; 5xx blips must not count as congestion", st.RateLimitRetries)
	}
}

// TestHTMLPaginationSurvivesBlips: pagination fetches each page as its
// own request (a distinct blip target); the scraper must retry through
// per-page bursts and still return the complete assembled answer.
func TestHTMLPaginationSurvivesBlips(t *testing.T) {
	db, srv := vehiclesServer(t, 120, 200, hiddendb.CountNone,
		webform.Options{PageSize: 25, Fault: &webform.FaultConfig{Seed: 5, Prob5xx: 1, Burst5xx: 1}})
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep})

	res, err := conn.Execute(context.Background(), hiddendb.EmptyQuery())
	if err != nil {
		t.Fatalf("paginated Execute through blips: %v", err)
	}
	if len(res.Tuples) != db.Size() {
		t.Fatalf("assembled %d of %d rows — a blip dropped a page", len(res.Tuples), db.Size())
	}
	if st := conn.Stats(); st.TransientRetries == 0 {
		t.Fatal("no transient retries recorded — the fault injector did not engage")
	}
}

// TestAPISurvives5xxBlips covers the machine-readable connector on the
// same faulted server.
func TestAPISurvives5xxBlips(t *testing.T) {
	db, srv := vehiclesServer(t, 300, 50, hiddendb.CountExact,
		webform.Options{Fault: &webform.FaultConfig{Seed: 11, Prob5xx: 1, Burst5xx: 2}})
	conn := NewAPI(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep})

	res, err := conn.Execute(context.Background(), hiddendb.EmptyQuery())
	if err != nil {
		t.Fatalf("API Execute through 503 burst: %v", err)
	}
	if res.Count != db.Size() {
		t.Fatalf("Count = %d, want %d", res.Count, db.Size())
	}
	if st := conn.Stats(); st.TransientRetries == 0 {
		t.Fatal("no transient retries recorded")
	}
}

// TestPersistent5xxSurfacesErrTransient: past the retry budget the
// failure surfaces typed, so upper layers can tell flakiness from a
// broken query.
func TestPersistent5xxSurfacesErrTransient(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusBadGateway)
	}))
	defer srv.Close()
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep, MaxRetries: 3})

	_, err := conn.Schema(context.Background())
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (the retry budget)", got)
	}
	if st := conn.Stats(); st.TransientRetries != 2 {
		t.Fatalf("TransientRetries = %d, want 2", st.TransientRetries)
	}
}

// TestNonTransientStatusFailsFast: a 404 is not a blip and must not burn
// the retry budget.
func TestNonTransientStatusFailsFast(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer srv.Close()
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep})

	_, err := conn.Schema(context.Background())
	if err == nil || errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want a non-transient failure", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

// TestTimeoutRetriedAsTransient: a request that times out is retried; a
// site that recovers answers the retry.
func TestTimeoutRetriedAsTransient(t *testing.T) {
	var hits atomic.Int64
	db, backend := vehiclesServer(t, 100, 50, hiddendb.CountNone, webform.Options{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 2 {
			// Only the first /search request stalls (request 1 is schema
			// discovery); later ones answer promptly.
			time.Sleep(300 * time.Millisecond)
		}
		resp, err := http.Get(backend.URL + r.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		buf := make([]byte, 32*1024)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer srv.Close()

	client := &http.Client{Timeout: 100 * time.Millisecond}
	conn := NewHTTP(srv.URL, HTTPOptions{Client: client, Sleep: noSleep})
	res, err := conn.Execute(context.Background(), hiddendb.EmptyQuery())
	if err != nil {
		t.Fatalf("Execute through timeout: %v", err)
	}
	want, _ := db.Execute(hiddendb.EmptyQuery())
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatalf("got %d tuples, want %d", len(res.Tuples), len(want.Tuples))
	}
	if st := conn.Stats(); st.TransientRetries == 0 {
		t.Fatal("timeout was not retried as transient")
	}
}

// TestCancellationNotRetried: a cancelled context must fail immediately,
// not be mistaken for a timeout blip.
func TestCancellationNotRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-r.Context().Done()
	}))
	defer srv.Close()
	conn := NewHTTP(srv.URL, HTTPOptions{Client: srv.Client(), Sleep: noSleep})

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := conn.Schema(ctx)
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests after cancellation, want 1", got)
	}
	if st := conn.Stats(); st.TransientRetries != 0 {
		t.Fatalf("cancellation retried %d times", st.TransientRetries)
	}
}
