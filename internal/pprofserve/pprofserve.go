// Package pprofserve starts the net/http/pprof side listener the daemons
// share, so live processes can be profiled without exposing the debug
// handlers on their service ports.
package pprofserve

import (
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
)

// Start serves net/http/pprof's DefaultServeMux registrations on addr in
// a background goroutine; empty addr disables it. Both daemons route
// their service traffic through dedicated handlers, so the profiling
// endpoints exist only on this side listener. name prefixes the log
// lines.
func Start(name, addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("%s: pprof listening on http://%s/debug/pprof/", name, addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("%s: pprof server: %v", name, err)
		}
	}()
}
