// Package pprofserve starts the net/http/pprof side listener the daemons
// share, so live processes can be profiled without exposing the debug
// handlers on their service ports.
package pprofserve

import (
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
)

// Start serves net/http/pprof's DefaultServeMux registrations on addr in
// a background goroutine; empty addr disables it. Both daemons route
// their service traffic through dedicated handlers, so the profiling
// endpoints exist only on this side listener. name tags the log lines.
func Start(name, addr string) {
	if addr == "" {
		return
	}
	lg := slog.Default().With("component", name)
	go func() {
		lg.Info("pprof listening", "url", "http://"+addr+"/debug/pprof/")
		if err := http.ListenAndServe(addr, nil); err != nil {
			lg.Warn("pprof server", "error", err)
		}
	}()
}
