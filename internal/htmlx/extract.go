package htmlx

import "strings"

// Form is an extracted <form> element with the controls a conjunctive web
// interface exposes: drop-down selects (one per searchable attribute) and
// plain inputs.
type Form struct {
	// Action is the form's submission URL (may be relative) and Method the
	// uppercase HTTP method, defaulting to GET as browsers do.
	Action, Method, Name string
	Selects              []Select
	Inputs               []Input
}

// Select is a <select> control and its option domain.
type Select struct {
	Name     string
	Multiple bool
	Options  []Option
}

// Option is one <option>: the submitted value and the human label.
type Option struct {
	Value, Label string
	Selected     bool
}

// Input is a non-select form control.
type Input struct {
	Name, Type, Value string
}

// ExtractForms returns every form in the tree with its controls, in
// document order.
func ExtractForms(root *Node) []Form {
	var forms []Form
	for _, f := range root.ByTag("form") {
		form := Form{
			Action: f.AttrOr("action", ""),
			Method: strings.ToUpper(f.AttrOr("method", "GET")),
			Name:   f.AttrOr("name", f.AttrOr("id", "")),
		}
		for _, sel := range f.ByTag("select") {
			s := Select{Name: sel.AttrOr("name", "")}
			_, s.Multiple = sel.Attr("multiple")
			for _, opt := range sel.ByTag("option") {
				label := opt.TextContent()
				value := opt.AttrOr("value", label)
				_, selected := opt.Attr("selected")
				s.Options = append(s.Options, Option{Value: value, Label: label, Selected: selected})
			}
			form.Selects = append(form.Selects, s)
		}
		for _, in := range f.ByTag("input") {
			form.Inputs = append(form.Inputs, Input{
				Name:  in.AttrOr("name", ""),
				Type:  strings.ToLower(in.AttrOr("type", "text")),
				Value: in.AttrOr("value", ""),
			})
		}
		forms = append(forms, form)
	}
	return forms
}

// FormByName returns the form whose name or action contains name, or the
// first form when name is empty; nil when nothing matches.
func FormByName(root *Node, name string) *Form {
	forms := ExtractForms(root)
	if len(forms) == 0 {
		return nil
	}
	if name == "" {
		return &forms[0]
	}
	for i := range forms {
		if forms[i].Name == name || strings.Contains(forms[i].Action, name) {
			return &forms[i]
		}
	}
	return nil
}

// SelectByName returns the named select control, or nil.
func (f *Form) SelectByName(name string) *Select {
	for i := range f.Selects {
		if f.Selects[i].Name == name {
			return &f.Selects[i]
		}
	}
	return nil
}

// Table is an extracted <table>: its id attribute, the header row (th
// texts) and the body rows.
type Table struct {
	ID     string
	Header []string
	Rows   [][]Cell
}

// Cell is one td/th with its visible text and raw attributes (sites often
// stash machine-readable values in data-* attributes).
type Cell struct {
	Text  string
	Attrs []Attr
}

// Attr returns the named cell attribute and whether it exists.
func (c *Cell) Attr(key string) (string, bool) {
	for _, a := range c.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// ExtractTables returns every table in the tree. A row consisting solely of
// <th> cells is treated as the header; all other rows land in Rows.
func ExtractTables(root *Node) []Table {
	var tables []Table
	for _, tn := range root.ByTag("table") {
		t := Table{ID: tn.AttrOr("id", "")}
		for _, tr := range tn.ByTag("tr") {
			if nearestTable(tr) != tn {
				continue // row belongs to a nested table
			}
			var cells []Cell
			allHeader := true
			for _, c := range tr.Children {
				if c.Tag != "td" && c.Tag != "th" {
					continue
				}
				if c.Tag != "th" {
					allHeader = false
				}
				cells = append(cells, Cell{Text: c.TextContent(), Attrs: c.Attrs})
			}
			if len(cells) == 0 {
				continue
			}
			if allHeader && t.Header == nil && len(t.Rows) == 0 {
				for _, c := range cells {
					t.Header = append(t.Header, c.Text)
				}
				continue
			}
			t.Rows = append(t.Rows, cells)
		}
		tables = append(tables, t)
	}
	return tables
}

// nearestTable walks up to the closest enclosing table element.
func nearestTable(n *Node) *Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.Tag == "table" {
			return p
		}
	}
	return nil
}

// TableByID returns the table with the given id, or nil.
func TableByID(root *Node, id string) *Table {
	tables := ExtractTables(root)
	for i := range tables {
		if tables[i].ID == id {
			return &tables[i]
		}
	}
	return nil
}
