// Package htmlx is a small, dependency-free HTML parser sufficient for
// scraping conjunctive web form interfaces: it tokenizes real-world HTML
// (unquoted attributes, unclosed <option>/<tr>/<td>, comments, script
// bodies), builds a DOM-lite tree, and extracts forms, select domains and
// result tables — the layer HDSampler needs to discover a hidden database's
// attributes and read query answers off its pages.
package htmlx

import (
	"html"
	"strings"
)

// Node is one element or text node of the parsed tree.
type Node struct {
	// Tag is the lowercase element name; empty for text nodes.
	Tag string
	// Text holds the unescaped text of a text node.
	Text string
	// Attrs holds the element's attributes in source order with lowercase
	// keys and unescaped values.
	Attrs []Attr
	// Children are the node's child nodes in document order.
	Children []*Node
	// Parent is the enclosing element; nil at the root.
	Parent *Node
}

// Attr is one element attribute.
type Attr struct {
	Key, Val string
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AttrOr returns the named attribute or def when absent.
func (n *Node) AttrOr(key, def string) string {
	if v, ok := n.Attr(key); ok {
		return v
	}
	return def
}

// IsText reports whether n is a text node.
func (n *Node) IsText() bool { return n.Tag == "" }

// Find returns the first node (depth-first, preorder, including n itself)
// satisfying pred, or nil.
func (n *Node) Find(pred func(*Node) bool) *Node {
	if pred(n) {
		return n
	}
	for _, c := range n.Children {
		if m := c.Find(pred); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every node (depth-first, including n) satisfying pred.
func (n *Node) FindAll(pred func(*Node) bool) []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if pred(m) {
			out = append(out, m)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// ByTag returns every descendant element with the given tag name.
func (n *Node) ByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	return n.FindAll(func(m *Node) bool { return m.Tag == tag })
}

// ByID returns the first element with id=id, or nil.
func (n *Node) ByID(id string) *Node {
	return n.Find(func(m *Node) bool {
		v, ok := m.Attr("id")
		return ok && v == id
	})
}

// TextContent returns the concatenation of all descendant text, with
// every run of whitespace collapsed to single spaces and the ends trimmed.
func (n *Node) TextContent() string {
	var b strings.Builder
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsText() {
			b.WriteString(m.Text)
			b.WriteByte(' ')
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return strings.Join(strings.Fields(b.String()), " ")
}

// voidElements never have children or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow everything until their literal end tag.
var rawTextElements = map[string]bool{"script": true, "style": true, "textarea": true, "title": true}

// impliedEnd maps a tag to the set of open tags it implicitly closes,
// covering the sloppy HTML real sites emit (unclosed <option>, <tr>, <td>,
// <li>, <p>).
var impliedEnd = map[string][]string{
	"option": {"option"},
	"tr":     {"tr", "td", "th"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"li":     {"li"},
	"p":      {"p"},
	"thead":  {"tr", "td", "th"},
	"tbody":  {"tr", "td", "th", "thead"},
}

// Parse builds the tree for an HTML document or fragment. It never fails on
// malformed input: stray end tags are dropped, unterminated constructs are
// closed at end of input, and unknown entities pass through literally.
func Parse(src string) *Node {
	root := &Node{Tag: "#root"}
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }
	appendText := func(s string) {
		if s == "" {
			return
		}
		t := top()
		t.Children = append(t.Children, &Node{Text: html.UnescapeString(s), Parent: t})
	}
	closeTag := func(tag string) {
		for i := len(stack) - 1; i >= 1; i-- {
			if stack[i].Tag == tag {
				stack = stack[:i]
				return
			}
		}
		// No matching open tag: ignore, as browsers do.
	}

	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			appendText(src[i:])
			break
		}
		appendText(src[i : i+lt])
		i += lt
		switch {
		case strings.HasPrefix(src[i:], "<!--"):
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				i = len(src)
			} else {
				i += 4 + end + 3
			}
		case strings.HasPrefix(src[i:], "<!"), strings.HasPrefix(src[i:], "<?"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
			} else {
				i += end + 1
			}
		case strings.HasPrefix(src[i:], "</"):
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				i = len(src)
				break
			}
			tag := strings.ToLower(strings.TrimSpace(src[i+2 : i+end]))
			closeTag(tag)
			i += end + 1
		default:
			tag, attrs, selfClose, next, ok := parseStartTag(src, i)
			if !ok {
				// Lone '<' in text: keep it as literal text.
				appendText("<")
				i++
				continue
			}
			i = next
			// Implied end tags before opening this one.
			if closes, hit := impliedEnd[tag]; hit {
				for len(stack) > 1 {
					cur := top().Tag
					matched := false
					for _, c := range closes {
						if cur == c {
							matched = true
							break
						}
					}
					if !matched {
						break
					}
					stack = stack[:len(stack)-1]
				}
			}
			n := &Node{Tag: tag, Attrs: attrs, Parent: top()}
			top().Children = append(top().Children, n)
			if selfClose || voidElements[tag] {
				continue
			}
			if rawTextElements[tag] {
				endTag := "</" + tag
				idx := indexFold(src[i:], endTag)
				if idx < 0 {
					n.Children = append(n.Children, &Node{Text: src[i:], Parent: n})
					i = len(src)
					continue
				}
				if idx > 0 {
					n.Children = append(n.Children, &Node{Text: src[i : i+idx], Parent: n})
				}
				gt := strings.IndexByte(src[i+idx:], '>')
				if gt < 0 {
					i = len(src)
				} else {
					i += idx + gt + 1
				}
				continue
			}
			stack = append(stack, n)
		}
	}
	return root
}

// indexFold is strings.Index with ASCII case folding on the needle match.
func indexFold(s, substr string) int {
	n := len(substr)
	for i := 0; i+n <= len(s); i++ {
		if strings.EqualFold(s[i:i+n], substr) {
			return i
		}
	}
	return -1
}

// parseStartTag parses "<tag attr=val ...>" beginning at src[i] (which is
// '<'). It returns the lowercase tag, attributes, whether the tag
// self-closes, the index just past '>', and whether this was a plausible
// tag at all.
func parseStartTag(src string, i int) (tag string, attrs []Attr, selfClose bool, next int, ok bool) {
	j := i + 1
	start := j
	for j < len(src) && isTagNameByte(src[j]) {
		j++
	}
	if j == start {
		return "", nil, false, 0, false
	}
	tag = strings.ToLower(src[start:j])
	for {
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j >= len(src) {
			return tag, attrs, false, len(src), true
		}
		if src[j] == '>' {
			return tag, attrs, false, j + 1, true
		}
		if src[j] == '/' {
			j++
			for j < len(src) && src[j] != '>' {
				j++
			}
			if j < len(src) {
				j++
			}
			return tag, attrs, true, j, true
		}
		// Attribute name.
		ks := j
		for j < len(src) && !isSpace(src[j]) && src[j] != '=' && src[j] != '>' && src[j] != '/' {
			j++
		}
		key := strings.ToLower(src[ks:j])
		for j < len(src) && isSpace(src[j]) {
			j++
		}
		if j < len(src) && src[j] == '=' {
			j++
			for j < len(src) && isSpace(src[j]) {
				j++
			}
			var val string
			if j < len(src) && (src[j] == '"' || src[j] == '\'') {
				q := src[j]
				j++
				vs := j
				for j < len(src) && src[j] != q {
					j++
				}
				val = src[vs:j]
				if j < len(src) {
					j++
				}
			} else {
				vs := j
				for j < len(src) && !isSpace(src[j]) && src[j] != '>' {
					j++
				}
				val = src[vs:j]
			}
			attrs = append(attrs, Attr{Key: key, Val: html.UnescapeString(val)})
		} else if key != "" {
			attrs = append(attrs, Attr{Key: key, Val: ""})
		}
	}
}

func isTagNameByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '-' || b == ':'
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r' || b == '\f'
}
